#!/usr/bin/env python3
"""Compare a bench JSON against its committed baseline and fail on
higher-is-better regressions.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--max_regression_pct=15]

Every numeric field named `qps`/ending in `_qps` (throughput), plus the
savings bench's `net_savings_transactions` and `net_savings_pct` headline
figures, is compared at the same JSON path in both files; the check fails
when any current value is more than --max_regression_pct below its
baseline. Throughput here is dominated by the simulated market call
latency (--call_latency_us) and net savings by deterministic workload
replay, so both are mostly machine-independent and a generous threshold
separates real regressions (e.g. a serialized hot path, a counterfactual
that stopped pricing) from runner noise. Higher-than-baseline values never
fail: speedups and extra savings are not regressions.
"""

import json
import sys

# Field names whose values are higher-is-better and stable across runners.
# The throughput bench's thread-scaling speedups are ratios (wall_1 /
# wall_N on the same runner), so like qps they compare across machines.
HIGHER_IS_BETTER = (
    "net_savings_transactions",
    "net_savings_pct",
    "speedup_16_threads",
    "speedup_32_threads",
    # The advisor must keep finding a configuration that beats the seed on
    # the recorded workload; shrinking savings is a regression.
    "advisor_savings_pct",
)

# Absolute caps, checked on the CURRENT file alone: the warm-restart
# bench's spend-parity divergences are billing promises, not throughput —
# a restart that re-buys already-durable data is a bug at any baseline.
ABSOLUTE_MAX = {
    "clean_restart_divergence_pct": 1.0,
    "crash_restart_divergence_pct": 1.0,
    # Federation failover may re-buy undelivered calls at a next-cheapest
    # endpoint whose page size differs; non-wasted spend must still land
    # within 1% of the fault-free run.
    "failover_divergence_pct": 1.0,
    # Latency decomposition honesty: the wall-stage sums must account for
    # the measured end-to-end latency — a gap is a stage the decomposition
    # forgot. And the always-on flight recorder may not cost real qps.
    "stage_sum_gap_pct": 5.0,
    "recorder_overhead_pct": 5.0,
}

# Absolute floors, the MIN siblings of ABSOLUTE_MAX: the coalescing meter
# runs an overlap-by-construction workload, so reporting zero opportunity
# means the meter (not the workload) broke.
ABSOLUTE_MIN = {
    "coalescable_transactions": 1.0,
    # Advisor correctness invariants, not throughput: twin shadow replays
    # must produce byte-identical bills, and the seed cell's replay must
    # reproduce the bill the recording deployment was actually charged.
    "twin_bills_identical": 1.0,
    "replay_matches_recorded": 1.0,
}


def capped_fields(node, path=""):
    """Yields (json_path, key, value) for every absolutely-bounded field."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if isinstance(value, (int, float)) and (
                key in ABSOLUTE_MAX or key in ABSOLUTE_MIN
            ):
                yield child, key, float(value)
            else:
                yield from capped_fields(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from capped_fields(value, f"{path}[{i}]")


def qps_fields(node, path=""):
    """Yields (json_path, value) for every compared field."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if isinstance(value, (int, float)) and (
                key == "qps" or key.endswith("_qps") or key in HIGHER_IS_BETTER
            ):
                yield child, float(value)
            else:
                yield from qps_fields(value, child)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from qps_fields(value, f"{path}[{i}]")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.stderr.write(__doc__)
        return 2
    max_regression_pct = 15.0
    for arg in argv[1:]:
        if arg.startswith("--max_regression_pct="):
            max_regression_pct = float(arg.split("=", 1)[1])

    with open(args[0]) as f:
        baseline_doc = json.load(f)
    with open(args[1]) as f:
        current_doc = json.load(f)
    baseline = dict(qps_fields(baseline_doc))
    current = dict(qps_fields(current_doc))

    failed = False
    # Absolute caps first: these gate the current run on its own merits.
    current_caps = {p: (k, v) for p, k, v in capped_fields(current_doc)}
    for path, key, _ in capped_fields(baseline_doc):
        if path not in current_caps:
            print(f"MISSING {path}: capped field absent in current")
            failed = True
    for path, (key, value) in sorted(current_caps.items()):
        if key in ABSOLUTE_MAX:
            cap = ABSOLUTE_MAX[key]
            verdict = "FAIL" if value > cap else "ok"
            print(f"{verdict:4} {path}: {value:.3f} (cap {cap:.1f})")
        else:
            floor = ABSOLUTE_MIN[key]
            verdict = "FAIL" if value < floor else "ok"
            print(f"{verdict:4} {path}: {value:.3f} (floor {floor:.1f})")
        failed = failed or verdict == "FAIL"

    if not baseline and not current_caps:
        sys.stderr.write(f"no compared fields in baseline {args[0]}\n")
        return 2

    for path, base in sorted(baseline.items()):
        if base <= 0:
            continue
        if path not in current:
            print(f"MISSING {path}: baseline {base:.1f}, absent in current")
            failed = True
            continue
        now = current[path]
        delta_pct = 100.0 * (base - now) / base
        verdict = "FAIL" if delta_pct > max_regression_pct else "ok"
        print(
            f"{verdict:4} {path}: baseline {base:.1f} -> current {now:.1f} "
            f"({-delta_pct:+.1f}%)"
        )
        failed = failed or verdict == "FAIL"

    if failed:
        sys.stderr.write(
            f"regression beyond {max_regression_pct:.0f}% "
            f"vs {args[0]}\n"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
