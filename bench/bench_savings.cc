// Savings curve on the repeated real workload: the same Fig. 10a query
// mix replayed for --rounds rounds through ONE client, with the savings
// accountant pricing every query's counterfactual (cheapest legal plan
// against an EMPTY semantic store, no cached template). Round 1 is the
// cold round — the store starts empty, so actual spend tracks the
// counterfactual and savings hover near zero (estimate corrections can
// even push them slightly negative). Every later round re-asks questions
// the store has already paid for, so warm spend collapses toward zero
// while the counterfactual keeps charging full price: cumulative savings
// must grow strictly at round granularity, and every warm round must be
// strictly cheaper than the cold one. The bench exits non-zero when
// either shape breaks, or when the savings ledger fails to reconcile
// against itself (counterfactual == actual + savings, causes sum to the
// savings, per tenant and dataset).
//
// With --dashboard_out the bench also writes the (static, self-contained)
// /dashboard document, so CI can archive the admin page as an artifact.
//
//   build/bench/bench_savings [--scale_pct=10] [--per_template=40]
//                             [--rounds=4] [--seed=42] [--query_seed=1]
//                             [--json=BENCH_savings.json]
//                             [--dashboard_out=payless_dashboard.html]
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "obs/dashboard.h"
#include "obs/savings.h"

namespace payless::bench {
namespace {

struct RoundTotals {
  int64_t counterfactual = 0;
  int64_t actual = 0;
  int64_t savings = 0;
  int64_t cumulative_savings = 0;
};

int Main(int argc, char** argv) {
  const WorkloadFlags flags =
      ParseWorkloadFlags(argc, argv, /*scale_pct=*/10, /*per_template=*/40);
  const int64_t scale_pct = flags.scale_pct;
  const int64_t per_template = flags.per_template;
  const int64_t rounds = FlagOr(argc, argv, "rounds", 4);
  const int64_t seed = flags.seed;
  const int64_t query_seed = flags.query_seed;
  const std::string& json_path = flags.json_path;
  const std::string dashboard_path =
      StringFlagOr(argc, argv, "dashboard_out", "");
  if (rounds < 2) {
    std::fprintf(stderr, "--rounds must be >= 2 (cold + at least one warm)\n");
    return 1;
  }

  workload::RealDataOptions options;
  options.scale = static_cast<double>(scale_pct) / 100.0;
  options.seed = static_cast<uint64_t>(seed);
  auto bundle = workload::MakeRealBundle(
      options, static_cast<size_t>(per_template),
      static_cast<uint64_t>(query_seed));
  auto client =
      workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());

  // Replay the identical query list each round; per-query savings come off
  // the report, round spend off the billing meter delta.
  std::vector<RoundTotals> per_round;
  int64_t cumulative = 0;
  for (int64_t round = 0; round < rounds; ++round) {
    RoundTotals totals;
    const int64_t spend_before = client->meter().total_transactions();
    for (const workload::QueryInstance& query : bundle->queries) {
      const auto report = client->QueryWithReport(query.sql, query.params);
      if (!report.ok()) {
        std::fprintf(stderr, "round %lld query failed: %s\n  sql: %s\n",
                     static_cast<long long>(round),
                     report.status().ToString().c_str(), query.sql.c_str());
        return 1;
      }
      if (report->counterfactual_transactions >= 0) {
        totals.counterfactual += report->counterfactual_transactions;
        totals.savings += report->savings_transactions;
      }
    }
    totals.actual = client->meter().total_transactions() - spend_before;
    cumulative += totals.savings;
    totals.cumulative_savings = cumulative;
    per_round.push_back(totals);
  }

  const obs::SavingsLedger& ledger = client->observability()->savings;
  const int64_t net = ledger.total_savings();
  const double net_pct =
      ledger.total_counterfactual() > 0
          ? 100.0 * static_cast<double>(net) /
                static_cast<double>(ledger.total_counterfactual())
          : 0.0;

  std::printf("# bench_savings: %zu queries/round x %lld rounds, scale %.2f\n",
              bundle->queries.size(), static_cast<long long>(rounds),
              options.scale);
  std::printf("# round counterfactual actual savings cumulative\n");

  BenchJson json;
  json.Meta("bench", std::string("savings"));
  json.Meta("rounds", rounds);
  json.Meta("queries_per_round", static_cast<int64_t>(bundle->queries.size()));
  json.Meta("scale", options.scale);
  json.Meta("net_savings_transactions", net);
  json.Meta("net_savings_pct", net_pct);
  json.Meta("counterfactual_transactions", ledger.total_counterfactual());
  json.Meta("actual_transactions", ledger.total_actual());
  for (int i = 0; i < obs::kNumSavingsCauses; ++i) {
    json.Meta(std::string("cause_") +
                  obs::SavingsCauseName(static_cast<obs::SavingsCause>(i)),
              ledger.total_by_cause(static_cast<obs::SavingsCause>(i)));
  }
  for (size_t r = 0; r < per_round.size(); ++r) {
    const RoundTotals& totals = per_round[r];
    std::printf("%zu %lld %lld %lld %lld\n", r + 1,
                static_cast<long long>(totals.counterfactual),
                static_cast<long long>(totals.actual),
                static_cast<long long>(totals.savings),
                static_cast<long long>(totals.cumulative_savings));
    json.BeginRow("rounds");
    json.Field("round", static_cast<int64_t>(r + 1));
    json.Field("counterfactual_transactions", totals.counterfactual);
    json.Field("actual_transactions", totals.actual);
    json.Field("savings_transactions", totals.savings);
    json.Field("cumulative_savings_transactions", totals.cumulative_savings);
  }
  std::printf("# net savings: %lld txn (%.1f%% of counterfactual)\n",
              static_cast<long long>(net), net_pct);
  if (!json.WriteTo(json_path)) return 1;
  if (!dashboard_path.empty()) {
    std::FILE* f = std::fopen(dashboard_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write dashboard to '%s'\n",
                   dashboard_path.c_str());
      return 1;
    }
    const std::string html = obs::DashboardHtml();
    std::fwrite(html.data(), 1, html.size(), f);
    std::fclose(f);
  }

  // Shape gates. Round 1 may price slightly above or below its spend
  // (estimate corrections); from round 2 on the store serves repeats, so
  // every warm round must save strictly AND spend strictly less than cold.
  bool ok = true;
  for (size_t r = 1; r < per_round.size(); ++r) {
    if (per_round[r].savings <= 0) {
      std::fprintf(stderr,
                   "warm round %zu saved %lld txn; cumulative savings must "
                   "grow every warm round\n",
                   r + 1, static_cast<long long>(per_round[r].savings));
      ok = false;
    }
    if (per_round[r].actual >= per_round[0].actual) {
      std::fprintf(stderr,
                   "warm round %zu spent %lld txn, not below the cold "
                   "round's %lld\n",
                   r + 1, static_cast<long long>(per_round[r].actual),
                   static_cast<long long>(per_round[0].actual));
      ok = false;
    }
  }
  if (net <= 0) {
    std::fprintf(stderr, "net savings %lld txn is not positive\n",
                 static_cast<long long>(net));
    ok = false;
  }
  if (!ledger.Reconciles()) {
    std::fprintf(stderr, "savings ledger failed to reconcile\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
