// Shared experiment driver for the figure-regeneration benches: runs a
// query stream through a client and records the cumulative number of data
// market transactions after every query (the paper's y-axis).
#ifndef PAYLESS_BENCH_DRIVER_H_
#define PAYLESS_BENCH_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "workload/bundle.h"

namespace payless::bench {

/// Runs every query; returns cumulative transactions after each one.
/// Aborts loudly on any query failure — a bench must not silently skip.
template <typename Client>
std::vector<int64_t> RunCumulative(Client* client,
                                   const std::vector<workload::QueryInstance>& queries) {
  std::vector<int64_t> cumulative;
  cumulative.reserve(queries.size());
  for (const workload::QueryInstance& query : queries) {
    const auto result = client->Query(query.sql, query.params);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), query.sql.c_str());
      std::abort();
    }
    cumulative.push_back(client->meter().total_transactions());
  }
  return cumulative;
}

/// Element-wise mean of several cumulative series (repetition averaging).
inline std::vector<double> MeanSeries(
    const std::vector<std::vector<int64_t>>& runs) {
  std::vector<double> mean(runs.empty() ? 0 : runs[0].size(), 0.0);
  for (const std::vector<int64_t>& run : runs) {
    for (size_t i = 0; i < run.size(); ++i) {
      mean[i] += static_cast<double>(run[i]);
    }
  }
  for (double& v : mean) v /= static_cast<double>(runs.size());
  return mean;
}

/// Prints one labelled series at evenly spaced checkpoints (plus the final
/// point), in the "x y" layout of the paper's gnuplot figures.
inline void PrintSeries(const std::string& label,
                        const std::vector<double>& series,
                        size_t checkpoints = 10) {
  std::printf("# %s\n", label.c_str());
  if (series.empty()) return;
  const size_t step = series.size() <= checkpoints
                          ? 1
                          : series.size() / checkpoints;
  for (size_t i = step - 1; i < series.size(); i += step) {
    std::printf("%zu %.1f\n", i + 1, series[i]);
  }
  if ((series.size() - 1) % step != step - 1) {
    std::printf("%zu %.1f\n", series.size(), series.back());
  }
  std::printf("\n");
}

/// Parses "--key=value" style int64 flags (very small helper; benches have
/// a handful of knobs each).
inline int64_t FlagOr(int argc, char** argv, const std::string& key,
                      int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

/// String sibling of FlagOr — for "--json=BENCH_throughput.json" etc.
inline std::string StringFlagOr(int argc, char** argv, const std::string& key,
                                std::string fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// The knobs every load-style bench shares: simulated market RTT, workload
/// repeats per measurement, client threads, best-of trials (clamped to
/// >= 1 — a zero-trial bench measures nothing), and the JSON artifact
/// path. Defaults differ per bench, so they are parameters, not constants.
struct LoadFlags {
  int64_t call_latency_us = 0;
  int64_t repeats = 0;
  int64_t threads = 0;
  int64_t trials = 1;
  std::string json_path;
};

inline LoadFlags ParseLoadFlags(int argc, char** argv,
                                int64_t default_latency_us,
                                int64_t default_repeats,
                                int64_t default_threads,
                                int64_t default_trials) {
  LoadFlags flags;
  flags.call_latency_us =
      FlagOr(argc, argv, "call_latency_us", default_latency_us);
  flags.repeats = FlagOr(argc, argv, "repeats", default_repeats);
  flags.threads = FlagOr(argc, argv, "threads", default_threads);
  flags.trials =
      std::max<int64_t>(1, FlagOr(argc, argv, "trials", default_trials));
  flags.json_path = StringFlagOr(argc, argv, "json", "");
  return flags;
}

/// The knobs every workload-replay bench shares: generation scale (percent
/// of paper size) and seed, instances per template, query shuffle seed,
/// and the JSON artifact path.
struct WorkloadFlags {
  int64_t scale_pct = 10;
  int64_t per_template = 0;
  int64_t seed = 42;
  int64_t query_seed = 1;
  std::string json_path;
};

inline WorkloadFlags ParseWorkloadFlags(int argc, char** argv,
                                        int64_t default_scale_pct,
                                        int64_t default_per_template) {
  WorkloadFlags flags;
  flags.scale_pct = FlagOr(argc, argv, "scale_pct", default_scale_pct);
  flags.per_template =
      FlagOr(argc, argv, "per_template", default_per_template);
  flags.seed = FlagOr(argc, argv, "seed", 42);
  flags.query_seed = FlagOr(argc, argv, "query_seed", 1);
  flags.json_path = StringFlagOr(argc, argv, "json", "");
  return flags;
}

/// Machine-readable bench results: one flat JSON object of run metadata
/// plus named arrays of row objects — what the stdout tables print, minus
/// the parsing. CI uploads these files as artifacts so regressions can be
/// diffed across commits without scraping logs.
class BenchJson {
 public:
  void Meta(const std::string& key, int64_t v) {
    meta_.push_back(Pair(key, Render(v)));
  }
  void Meta(const std::string& key, double v) {
    meta_.push_back(Pair(key, Render(v)));
  }
  void Meta(const std::string& key, const std::string& v) {
    meta_.push_back(Pair(key, Quote(v)));
  }

  /// Starts a new row in the named section (sections keep append order).
  void BeginRow(const std::string& section) {
    if (sections_.empty() || sections_.back().first != section) {
      sections_.emplace_back(section, std::vector<std::string>{});
    }
    sections_.back().second.emplace_back();
  }
  void Field(const std::string& key, int64_t v) { AppendField(key, Render(v)); }
  void Field(const std::string& key, double v) { AppendField(key, Render(v)); }
  void Field(const std::string& key, const std::string& v) {
    AppendField(key, Quote(v));
  }

  /// Serializes the document; empty path is a no-op (the flag was not set).
  /// Returns false (after complaining on stderr) when the file can't open.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench json to '%s'\n", path.c_str());
      return false;
    }
    std::string out = "{";
    for (const std::string& kv : meta_) {
      out += kv;
      out += ",";
    }
    for (size_t s = 0; s < sections_.size(); ++s) {
      out += Quote(sections_[s].first) + ":[";
      const std::vector<std::string>& rows = sections_[s].second;
      for (size_t r = 0; r < rows.size(); ++r) {
        out += "{" + rows[r] + "}";
        if (r + 1 < rows.size()) out += ",";
      }
      out += "]";
      if (s + 1 < sections_.size()) out += ",";
    }
    if (out.back() == ',') out.pop_back();
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string Render(int64_t v) { return std::to_string(v); }
  static std::string Render(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }
  static std::string Pair(const std::string& key, const std::string& value) {
    return Quote(key) + ":" + value;
  }
  void AppendField(const std::string& key, const std::string& rendered) {
    std::string& row = sections_.back().second.back();
    if (!row.empty()) row += ",";
    row += Pair(key, rendered);
  }

  std::vector<std::string> meta_;
  std::vector<std::pair<std::string, std::vector<std::string>>> sections_;
};

}  // namespace payless::bench

#endif  // PAYLESS_BENCH_DRIVER_H_
