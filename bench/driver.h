// Shared experiment driver for the figure-regeneration benches: runs a
// query stream through a client and records the cumulative number of data
// market transactions after every query (the paper's y-axis).
#ifndef PAYLESS_BENCH_DRIVER_H_
#define PAYLESS_BENCH_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "workload/bundle.h"

namespace payless::bench {

/// Runs every query; returns cumulative transactions after each one.
/// Aborts loudly on any query failure — a bench must not silently skip.
template <typename Client>
std::vector<int64_t> RunCumulative(Client* client,
                                   const std::vector<workload::QueryInstance>& queries) {
  std::vector<int64_t> cumulative;
  cumulative.reserve(queries.size());
  for (const workload::QueryInstance& query : queries) {
    const auto result = client->Query(query.sql, query.params);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), query.sql.c_str());
      std::abort();
    }
    cumulative.push_back(client->meter().total_transactions());
  }
  return cumulative;
}

/// Element-wise mean of several cumulative series (repetition averaging).
inline std::vector<double> MeanSeries(
    const std::vector<std::vector<int64_t>>& runs) {
  std::vector<double> mean(runs.empty() ? 0 : runs[0].size(), 0.0);
  for (const std::vector<int64_t>& run : runs) {
    for (size_t i = 0; i < run.size(); ++i) {
      mean[i] += static_cast<double>(run[i]);
    }
  }
  for (double& v : mean) v /= static_cast<double>(runs.size());
  return mean;
}

/// Prints one labelled series at evenly spaced checkpoints (plus the final
/// point), in the "x y" layout of the paper's gnuplot figures.
inline void PrintSeries(const std::string& label,
                        const std::vector<double>& series,
                        size_t checkpoints = 10) {
  std::printf("# %s\n", label.c_str());
  if (series.empty()) return;
  const size_t step = series.size() <= checkpoints
                          ? 1
                          : series.size() / checkpoints;
  for (size_t i = step - 1; i < series.size(); i += step) {
    std::printf("%zu %.1f\n", i + 1, series[i]);
  }
  if ((series.size() - 1) % step != step - 1) {
    std::printf("%zu %.1f\n", series.size(), series.back());
  }
  std::printf("\n");
}

/// Parses "--key=value" style int64 flags (very small helper; benches have
/// a handful of knobs each).
inline int64_t FlagOr(int argc, char** argv, const std::string& key,
                      int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoll(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

}  // namespace payless::bench

#endif  // PAYLESS_BENCH_DRIVER_H_
