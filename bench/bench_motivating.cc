// Figure 1 (b, c): the motivating example. The WHW setup of the paper —
// 788 US weather stations, exactly one of them in Seattle (StationID 3817),
// 30 days of June 2014 — and query Q1 (daily temperature of Seattle in June
// 2014). Plan P1 (range call on Weather for the whole US month) costs
// 1 + ceil(788*30/100) = 238 transactions; plan P2 (bind join on StationID)
// costs 1 + 1 = 2. PayLess must pick P2 and be billed 2 transactions.
#include <cstdio>

#include <cassert>

#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/explain.h"
#include "sql/parser.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::TableDef;

int Main() {
  // ---- The data of the example.
  const int64_t kUsStations = 788;
  const int64_t kSeattleStation = 3500;
  const int64_t kJuneFirst = 20140601;
  const int64_t kJuneLast = 20140630;

  catalog::Catalog cat;
  Status st = cat.RegisterDataset(catalog::DatasetDef{"WHW", 1.0, 100});
  assert(st.ok());

  // Published basic statistics (§2.1): the US slice of WHW — 788 stations,
  // one per city (Seattle's only station is #3500), June 2014 coverage.
  AttrDomain country_domain = AttrDomain::Categorical({"United States"});
  AttrDomain station_domain = AttrDomain::Numeric(3001, 3001 + kUsStations - 1);
  std::vector<std::string> cities;
  for (int64_t id = 1; id <= kUsStations; ++id) {
    cities.push_back(3000 + id == kSeattleStation
                         ? "Seattle"
                         : "City" + std::to_string(1000 + id));
  }
  std::sort(cities.begin(), cities.end());
  AttrDomain city_domain = AttrDomain::Categorical(cities);
  AttrDomain date_domain = AttrDomain::Numeric(kJuneFirst, kJuneLast);

  TableDef station_def;
  station_def.name = "Station";
  station_def.dataset = "WHW";
  station_def.columns = {
      ColumnDef::Free("Country", ValueType::kString, country_domain),
      ColumnDef::Free("StationID", ValueType::kInt64, station_domain),
      ColumnDef::Free("City", ValueType::kString, city_domain)};
  station_def.cardinality = kUsStations;
  st = cat.RegisterTable(station_def);
  assert(st.ok());

  TableDef weather_def;
  weather_def.name = "Weather";
  weather_def.dataset = "WHW";
  weather_def.columns = {
      ColumnDef::Free("Country", ValueType::kString, country_domain),
      ColumnDef::Free("StationID", ValueType::kInt64, station_domain),
      ColumnDef::Free("Date", ValueType::kInt64, date_domain),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather_def.cardinality = kUsStations * 30;
  st = cat.RegisterTable(weather_def);
  assert(st.ok());

  market::DataMarket market(&cat);
  {
    std::vector<Row> stations;
    std::vector<Row> weather;
    for (int64_t id = 1; id <= kUsStations; ++id) {
      const int64_t station_id = 3000 + id;
      const bool seattle = station_id == kSeattleStation;
      stations.push_back(Row{Value("United States"), Value(station_id),
                             Value(seattle ? "Seattle"
                                           : "City" + std::to_string(1000 + id))});
      for (int64_t day = kJuneFirst; day <= kJuneLast; ++day) {
        weather.push_back(Row{Value("United States"), Value(station_id),
                              Value(day), Value(20.0 + day % 7)});
      }
    }
    st = market.HostTable("Station", std::move(stations));
    assert(st.ok());
    st = market.HostTable("Weather", std::move(weather));
    assert(st.ok());
  }

  // ---- Plan P1's price, computed the way Fig. 1b does.
  const int64_t p1 = 1 + (kUsStations * 30 + 99) / 100;
  std::printf("Plan P1 (range call on Weather): 1 + ceil(%lld*30/100)"
              " = %lld transactions\n",
              static_cast<long long>(kUsStations), static_cast<long long>(p1));

  // ---- PayLess end to end.
  exec::PayLessConfig config;
  exec::PayLess payless(&cat, &market, config);
  const std::string q1 =
      "SELECT Temperature FROM Station, Weather "
      "WHERE City = 'Seattle' AND Station.Country = 'United States' AND "
      "Weather.Country = 'United States' AND "
      "Date >= 20140601 AND Date <= 20140630 AND "
      "Station.StationID = Weather.StationID";
  Result<exec::QueryReport> report = payless.QueryWithReport(q1);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  {
    Result<sql::SelectStmt> stmt = sql::Parse(q1);
    assert(stmt.ok());
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat, {});
    assert(bound.ok());
    std::printf("PayLess plan:\n%s",
                obs::RenderPlan(report->plan, *bound).c_str());
  }
  std::printf("PayLess billed: %lld transactions (paper plan P2: 2)\n",
              static_cast<long long>(report->transactions_spent));
  std::printf("Result rows: %zu (expected 30 daily temperatures)\n",
              report->result.num_rows());
  return report->transactions_spent == 2 && report->result.num_rows() == 30
             ? 0
             : 1;
}

}  // namespace
}  // namespace payless::bench

int main() { return payless::bench::Main(); }
