// Estimator accuracy on the real workload: per-table q-error, cold vs
// warm. The paper's optimizer starts from the uniform assumption and
// refines its histograms from market feedback (§4.3); this bench measures
// how wrong the cold estimates actually are on the Fig. 10a WHW/EHR
// workload, and how far feedback pulls them back. The first
// --cold_queries queries form the cold window (uniform-dominated
// estimates); the remainder is the warm window, whose aggregates are the
// deltas between the end-of-run and cold-window accuracy snapshots (the
// tracker accumulates over its lifetime and has no reset).
//
//   build/bench/bench_qerror [--scale_pct=10] [--per_template=200]
//                            [--cold_queries=25] [--seed=42]
//                            [--query_seed=1] [--json=BENCH_qerror.json]
//
// Expected shape: warm mean q-error strictly below cold mean q-error on
// every market table the workload prices by estimate; the drift epoch
// ends positive (the cold misestimates crossed the invalidation
// threshold, so cached templates were re-optimized against learned
// statistics — the paper's uniform-to-learned plan switch).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "obs/accuracy.h"

namespace payless::bench {
namespace {

struct Window {
  uint64_t samples = 0;
  double mean = 0.0;
  double max = 0.0;
};

// The warm window is the lifetime aggregate minus the cold snapshot.
Window Delta(const obs::AccuracySnapshot& at_end,
             const obs::AccuracySnapshot& at_cold) {
  Window w;
  w.samples = at_end.samples - at_cold.samples;
  if (w.samples > 0) {
    w.mean = (at_end.sum_qerror - at_cold.sum_qerror) /
             static_cast<double>(w.samples);
  }
  // max is monotone, so the end-of-run max only names the warm window when
  // it grew after the cold snapshot.
  w.max = at_end.max_qerror > at_cold.max_qerror ? at_end.max_qerror : 0.0;
  return w;
}

int Main(int argc, char** argv) {
  const WorkloadFlags flags =
      ParseWorkloadFlags(argc, argv, /*scale_pct=*/10, /*per_template=*/200);
  const int64_t scale_pct = flags.scale_pct;
  const int64_t per_template = flags.per_template;
  const int64_t cold_queries = FlagOr(argc, argv, "cold_queries", 25);
  const int64_t seed = flags.seed;
  const int64_t query_seed = flags.query_seed;
  const std::string& json_path = flags.json_path;

  workload::RealDataOptions options;
  options.scale = static_cast<double>(scale_pct) / 100.0;
  options.seed = static_cast<uint64_t>(seed);
  auto bundle = workload::MakeRealBundle(
      options, static_cast<size_t>(per_template),
      static_cast<uint64_t>(query_seed));
  auto client =
      workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());

  const size_t cold_count =
      std::min(static_cast<size_t>(cold_queries), bundle->queries.size());
  const std::vector<std::string> tables = bundle->catalog.TableNames();
  std::map<std::string, obs::AccuracySnapshot> cold;

  size_t executed = 0;
  for (const workload::QueryInstance& query : bundle->queries) {
    const auto result = client->Query(query.sql, query.params);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), query.sql.c_str());
      return 1;
    }
    if (++executed == cold_count) {
      for (const std::string& table : tables) {
        cold[table] = client->accuracy().Snapshot(table);
      }
    }
  }

  std::printf("# bench_qerror: %zu queries (%zu cold / %zu warm), "
              "scale %.2f, drift epoch %llu\n",
              executed, cold_count, executed - cold_count, options.scale,
              static_cast<unsigned long long>(
                  client->accuracy().drift_epoch()));
  std::printf("# table cold_n cold_mean cold_max warm_n warm_mean warm_max\n");

  BenchJson json;
  json.Meta("bench", std::string("qerror"));
  json.Meta("queries", static_cast<int64_t>(executed));
  json.Meta("cold_queries", static_cast<int64_t>(cold_count));
  json.Meta("scale", options.scale);
  json.Meta("drift_epoch",
            static_cast<int64_t>(client->accuracy().drift_epoch()));

  for (const std::string& table : tables) {
    const obs::AccuracySnapshot end = client->accuracy().Snapshot(table);
    if (end.samples == 0) continue;  // local table — never estimated
    const obs::AccuracySnapshot& at_cold = cold[table];
    const Window warm = Delta(end, at_cold);
    std::printf("%s %llu %.2f %.2f %llu %.2f %.2f\n", table.c_str(),
                static_cast<unsigned long long>(at_cold.samples),
                at_cold.mean_qerror(), at_cold.max_qerror,
                static_cast<unsigned long long>(warm.samples), warm.mean,
                warm.max);
    json.BeginRow("tables");
    json.Field("table", table);
    json.Field("cold_samples", static_cast<int64_t>(at_cold.samples));
    json.Field("cold_mean_qerror", at_cold.mean_qerror());
    json.Field("cold_max_qerror", at_cold.max_qerror);
    json.Field("warm_samples", static_cast<int64_t>(warm.samples));
    json.Field("warm_mean_qerror", warm.mean);
    json.Field("warm_max_qerror", warm.max);
  }
  if (!json.WriteTo(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
