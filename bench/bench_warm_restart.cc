// Warm-restart spend parity: the monetary promise of the durability layer,
// measured on the real workload (Fig. 10a query mix).
//
// Four clients run the identical two-round workload:
//   - the TWIN never restarts: round 1 cold, round 2 warm — its round-2
//     spend is the baseline bill;
//   - the CLEAN-RESTART client persists round 1, the process is discarded,
//     and a fresh client recovers from the durability directory before
//     running round 2;
//   - the CRASH-RESTART client dies at the kAfterHarvestLog crash point on
//     its LAST round-1 harvest (record durable, process gone before the
//     in-memory apply) — the worst crash that loses no money;
//   - the LOST-SLAB client dies at kBeforeHarvestLog on its last harvest:
//     one slab billed but never durable, the one case a restart
//     legitimately re-buys.
//
// Gates (exit 1 on violation): clean and crash round-2 spend within
// --max_divergence_pct (default 1%) of the twin's, and the lost-slab
// client's extra spend bounded by the forfeited harvest's transactions —
// a restart never re-buys a durable slab. (It may re-buy LESS than the
// forfeited slab when round 2 never needs that region again; the exact
// re-buy identity is asserted on a controlled fixture in
// tests/durability_recovery_test.cc.)
//
//   build/bench/bench_warm_restart [--scale_pct=10] [--per_template=10]
//       [--seed=42] [--query_seed=1] [--max_divergence_pct=1]
//       [--json=BENCH_warm_restart.json] [--state_dir=/tmp/...]
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "market/fault_injector.h"
#include "workload/bundle.h"

namespace payless::bench {
namespace {

namespace fs = std::filesystem;

/// Runs the whole query list once; returns the round's billed transactions.
int64_t RunRound(exec::PayLess* client,
                 const std::vector<workload::QueryInstance>& queries) {
  const int64_t before = client->meter().total_transactions();
  for (const workload::QueryInstance& query : queries) {
    const auto result = client->Query(query.sql, query.params);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), query.sql.c_str());
      std::abort();
    }
  }
  return client->meter().total_transactions() - before;
}

double DivergencePct(int64_t actual, int64_t baseline) {
  const int64_t diff = actual > baseline ? actual - baseline : baseline - actual;
  return 100.0 * static_cast<double>(diff) /
         static_cast<double>(baseline > 0 ? baseline : 1);
}

int Main(int argc, char** argv) {
  const WorkloadFlags flags =
      ParseWorkloadFlags(argc, argv, /*scale_pct=*/10, /*per_template=*/10);
  const int64_t scale_pct = flags.scale_pct;
  const int64_t per_template = flags.per_template;
  const int64_t seed = flags.seed;
  const int64_t query_seed = flags.query_seed;
  const int64_t max_divergence_pct = FlagOr(argc, argv, "max_divergence_pct", 1);
  const std::string& json_path = flags.json_path;
  const std::string store_json_path =
      StringFlagOr(argc, argv, "store_json_out", "");
  const std::string state_dir = StringFlagOr(
      argc, argv, "state_dir",
      (fs::temp_directory_path() / "payless_warm_restart").string());

  workload::RealDataOptions options;
  options.scale = static_cast<double>(scale_pct) / 100.0;
  options.seed = static_cast<uint64_t>(seed);
  auto bundle = workload::MakeRealBundle(options,
                                         static_cast<size_t>(per_template),
                                         static_cast<uint64_t>(query_seed));

  // Serial market calls: the harvest sequence is then deterministic, so
  // "the last round-1 harvest" is the same call for every client and the
  // lost-slab accounting is exact.
  exec::PayLessConfig base = workload::PayLessFullConfig();
  base.max_parallel_calls = 1;

  // ---- Twin: the uncrashed baseline, plus the per-harvest spend trace.
  auto twin = workload::NewPayLessClient(*bundle, base);
  std::vector<int64_t> harvest_tx;
  twin->connector()->AddListener(
      [&harvest_tx](const market::RestCall&, const market::CallResult& r) {
        harvest_tx.push_back(r.transactions);
      });
  const int64_t round1_spend = RunRound(twin.get(), bundle->queries);
  const size_t num_harvests = harvest_tx.size();
  const int64_t round2_spend = RunRound(twin.get(), bundle->queries);
  if (num_harvests < 2) {
    std::fprintf(stderr, "workload produced %zu harvests; need >= 2\n",
                 num_harvests);
    return 1;
  }

  fs::remove_all(state_dir);
  const auto dir_for = [&state_dir](const char* name) {
    return (fs::path(state_dir) / name).string();
  };

  // ---- Clean restart: persist round 1, recover, run round 2.
  exec::PayLessConfig durable = base;
  durable.durability.dir = dir_for("clean");
  {
    auto cold = workload::NewPayLessClient(*bundle, durable);
    const int64_t cold_spend = RunRound(cold.get(), bundle->queries);
    if (cold_spend != round1_spend) {
      std::fprintf(stderr,
                   "durable cold round spent %lld, twin spent %lld — "
                   "durability must not change billing\n",
                   static_cast<long long>(cold_spend),
                   static_cast<long long>(round1_spend));
      return 1;
    }
  }
  auto clean = workload::NewPayLessClient(*bundle, durable);
  const durability::RecoveryInfo recovery = clean->durability()->recovery();
  if (!store_json_path.empty()) {
    // The recovered client's /store document (coverage + durability block),
    // exactly what the introspection endpoint would serve after a restart.
    std::string doc = clean->store().StatsJson();
    if (!doc.empty() && doc.back() == '}') {
      doc.pop_back();
      doc += ",\"durability\":" + clean->durability()->StatsJson() + "}";
    }
    if (std::FILE* f = std::fopen(store_json_path.c_str(), "w")) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write recovered-store json to '%s'\n",
                   store_json_path.c_str());
      return 1;
    }
  }
  const int64_t clean_round2 = RunRound(clean.get(), bundle->queries);
  const double clean_divergence = DivergencePct(clean_round2, round2_spend);

  // ---- Crash restart: die AFTER the last harvest's log append (durable,
  // but the process never saw it applied). Loses nothing.
  exec::PayLessConfig crashed = base;
  crashed.durability.dir = dir_for("crash");
  {
    market::FaultInjector injector(market::FaultProfile{});
    market::CrashPlan plan;
    plan.point = market::CrashPoint::kAfterHarvestLog;
    plan.after_hits = static_cast<int>(num_harvests) - 1;
    injector.ArmCrash(plan);
    exec::PayLessConfig config = crashed;
    config.durability.crash_injector = &injector;
    auto dying = workload::NewPayLessClient(*bundle, config);
    (void)RunRound(dying.get(), bundle->queries);
    if (injector.stats().crashes != 1) {
      std::fprintf(stderr, "after-log crash never fired\n");
      return 1;
    }
  }
  auto crash = workload::NewPayLessClient(*bundle, crashed);
  const int64_t crash_round2 = RunRound(crash.get(), bundle->queries);
  const double crash_divergence = DivergencePct(crash_round2, round2_spend);

  // ---- Lost slab: die BEFORE the last harvest's log append. The restart
  // may re-buy at most that harvest's transactions, never anything durable.
  exec::PayLessConfig lost = base;
  lost.durability.dir = dir_for("lost");
  {
    market::FaultInjector injector(market::FaultProfile{});
    market::CrashPlan plan;
    plan.point = market::CrashPoint::kBeforeHarvestLog;
    plan.after_hits = static_cast<int>(num_harvests) - 1;
    injector.ArmCrash(plan);
    exec::PayLessConfig config = lost;
    config.durability.crash_injector = &injector;
    auto dying = workload::NewPayLessClient(*bundle, config);
    (void)RunRound(dying.get(), bundle->queries);
    if (injector.stats().crashes != 1) {
      std::fprintf(stderr, "before-log crash never fired\n");
      return 1;
    }
  }
  auto rebuyer = workload::NewPayLessClient(*bundle, lost);
  const int64_t lost_round2 = RunRound(rebuyer.get(), bundle->queries);
  const int64_t rebuy_tx = lost_round2 - round2_spend;
  const int64_t lost_slab_tx = harvest_tx[num_harvests - 1];

  std::printf("# bench_warm_restart: %zu queries/round, %zu harvests, "
              "scale %.2f\n",
              bundle->queries.size(), num_harvests, options.scale);
  std::printf("round1_spend %lld\n", static_cast<long long>(round1_spend));
  std::printf("round2_spend_no_restart %lld\n",
              static_cast<long long>(round2_spend));
  std::printf("round2_spend_clean_restart %lld (divergence %.3f%%)\n",
              static_cast<long long>(clean_round2), clean_divergence);
  std::printf("round2_spend_crash_restart %lld (divergence %.3f%%)\n",
              static_cast<long long>(crash_round2), crash_divergence);
  std::printf("round2_spend_lost_slab %lld (re-bought %lld, slab cost %lld)\n",
              static_cast<long long>(lost_round2),
              static_cast<long long>(rebuy_tx),
              static_cast<long long>(lost_slab_tx));
  std::printf("recovery: %llu records replayed, %llu views / %llu rows / "
              "%llu plans restored, %lld us\n",
              static_cast<unsigned long long>(recovery.replayed_records),
              static_cast<unsigned long long>(recovery.recovered_views),
              static_cast<unsigned long long>(recovery.recovered_rows),
              static_cast<unsigned long long>(recovery.recovered_plans),
              static_cast<long long>(recovery.recovery_micros));

  BenchJson json;
  json.Meta("bench", std::string("warm_restart"));
  json.Meta("queries_per_round", static_cast<int64_t>(bundle->queries.size()));
  json.Meta("harvests", static_cast<int64_t>(num_harvests));
  json.Meta("scale", options.scale);
  json.Meta("round1_spend", round1_spend);
  json.Meta("round2_spend_no_restart", round2_spend);
  json.Meta("round2_spend_clean_restart", clean_round2);
  json.Meta("round2_spend_crash_restart", crash_round2);
  json.Meta("round2_spend_lost_slab", lost_round2);
  json.Meta("clean_restart_divergence_pct", clean_divergence);
  json.Meta("crash_restart_divergence_pct", crash_divergence);
  json.Meta("rebuy_transactions", rebuy_tx);
  json.Meta("lost_slab_transactions", lost_slab_tx);
  json.Meta("replayed_records",
            static_cast<int64_t>(recovery.replayed_records));
  json.Meta("recovered_views", static_cast<int64_t>(recovery.recovered_views));
  json.Meta("recovered_rows", static_cast<int64_t>(recovery.recovered_rows));
  json.Meta("recovery_micros", recovery.recovery_micros);
  if (!json.WriteTo(json_path)) return 1;

  fs::remove_all(state_dir);

  bool ok = true;
  if (clean_divergence > static_cast<double>(max_divergence_pct)) {
    std::fprintf(stderr, "clean restart diverged %.3f%% (> %lld%%)\n",
                 clean_divergence, static_cast<long long>(max_divergence_pct));
    ok = false;
  }
  if (crash_divergence > static_cast<double>(max_divergence_pct)) {
    std::fprintf(stderr, "crash restart diverged %.3f%% (> %lld%%)\n",
                 crash_divergence, static_cast<long long>(max_divergence_pct));
    ok = false;
  }
  if (rebuy_tx < 0 || rebuy_tx > lost_slab_tx) {
    std::fprintf(stderr,
                 "lost-slab restart re-bought %lld txn, forfeited slab cost "
                 "%lld — a restart re-buys at most the lost harvest\n",
                 static_cast<long long>(rebuy_tx),
                 static_cast<long long>(lost_slab_tx));
    ok = false;
  }
  if (recovery.replayed_records != num_harvests || recovery.recovered_rows > 0) {
    std::fprintf(stderr,
                 "clean recovery replayed %llu records (want %zu, all from "
                 "the log)\n",
                 static_cast<unsigned long long>(recovery.replayed_records),
                 num_harvests);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
