// The record → advise loop, end to end, as a regression gate. Not a paper
// figure — this drives the PR's acceptance criteria: a seed-configured
// deployment (the paper's full system, single market, unbounded store, no
// prefetch, no caps) serves the Fig. 10a real workload split across two
// tenants while the workload journal records every query; the journal is
// read back and fed to the deployment advisor, which shadow-replays the
// recorded traffic through the default configuration grid.
//
//   build/bench/bench_advisor [--scale_pct=10] [--per_template=20]
//                             [--seed=42] [--query_seed=1] [--threads=0]
//                             [--json=BENCH_advisor.json]
//
// Gates (any failure exits non-zero):
//   1. the journal read back intact: no torn tail, no decode failures,
//      one record per issued query;
//   2. every grid cell is reproducible (twin replays byte-identical) and
//      reconciles (shadow ledger == sum of shadow meters);
//   3. replay fidelity: the seed cell's shadow bill equals the bill the
//      recording deployment was actually charged;
//   4. the recommended configuration spends strictly less than the seed.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "advisor/deployment_advisor.h"
#include "bench/driver.h"
#include "obs/observability.h"
#include "obs/workload_journal.h"
#include "workload/bundle.h"

namespace payless::bench {
namespace {

namespace fs = std::filesystem;

int Main(int argc, char** argv) {
  const WorkloadFlags flags =
      ParseWorkloadFlags(argc, argv, /*scale_pct=*/10, /*per_template=*/20);
  const int64_t threads = FlagOr(argc, argv, "threads", 0);

  workload::RealDataOptions options;
  options.scale = static_cast<double>(flags.scale_pct) / 100.0;
  options.seed = static_cast<uint64_t>(flags.seed);
  auto bundle = workload::MakeRealBundle(
      options, static_cast<size_t>(flags.per_template),
      static_cast<uint64_t>(flags.query_seed));

  // ---- Record: the seed deployment, journal on, two tenants ------------
  const fs::path journal_dir =
      fs::temp_directory_path() / "payless_bench_advisor_journal";
  fs::remove_all(journal_dir);
  obs::WorkloadJournalOptions journal_options;
  journal_options.dir = journal_dir.string();
  auto journal = obs::WorkloadJournal::Open(journal_options);
  if (!journal.ok()) {
    std::fprintf(stderr, "cannot open journal: %s\n",
                 journal.status().ToString().c_str());
    return 1;
  }

  // The recording clients run the exact configuration the advisor's seed
  // cell replays (see advisor::ShadowConfig defaults): full system,
  // strictly serial, savings accounting on — so gate 3 compares like with
  // like and any divergence is a replay bug, not a config mismatch.
  const std::vector<std::string> tenants = {"tenant-a", "tenant-b"};
  obs::Observability record_obs;
  std::vector<std::unique_ptr<exec::PayLess>> clients;
  for (const std::string& tenant : tenants) {
    exec::PayLessConfig config = workload::PayLessFullConfig();
    config.tenant = tenant;
    config.observability = &record_obs;
    config.max_parallel_calls = 1;
    config.enable_tracing = false;
    config.enable_flight_recorder = false;
    config.enable_savings_accounting = true;
    config.workload_journal = journal->get();
    clients.push_back(workload::NewPayLessClient(*bundle, std::move(config)));
  }
  int64_t issued = 0;
  for (const workload::QueryInstance& query : bundle->queries) {
    exec::PayLess* client = clients[issued % clients.size()].get();
    const auto result = client->Query(query.sql, query.params);
    if (!result.ok()) {
      std::fprintf(stderr, "recording query failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), query.sql.c_str());
      return 1;
    }
    ++issued;
  }
  const int64_t recorded_tx = record_obs.ledger.total_transactions();
  const double recorded_price = record_obs.ledger.total_price();
  std::printf("# recorded %lld queries, %lld transactions, price %.2f\n",
              static_cast<long long>(issued),
              static_cast<long long>(recorded_tx), recorded_price);

  // ---- Gate 1: the journal holds exactly what was served ---------------
  const obs::JournalReadResult read = obs::ReadJournal(journal_dir.string());
  const bool journal_intact = !read.torn_tail && read.decode_failures == 0 &&
                              static_cast<int64_t>(read.records.size()) ==
                                  issued;
  if (!journal_intact) {
    std::fprintf(stderr,
                 "JOURNAL GATE FAILED: %zu records (want %lld), torn=%d, "
                 "decode_failures=%zu\n",
                 read.records.size(), static_cast<long long>(issued),
                 read.torn_tail ? 1 : 0, read.decode_failures);
    return 1;
  }

  // ---- Advise over the default grid ------------------------------------
  advisor::AdvisorOptions advisor_options;
  advisor_options.max_parallel_cells = static_cast<size_t>(threads);
  const Result<advisor::AdvisorReport> report =
      advisor::Advise(*bundle, read.records, advisor_options);
  if (!report.ok()) {
    std::fprintf(stderr, "Advise failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->RenderText().c_str());

  // ---- Gates 2-4 --------------------------------------------------------
  bool twins_ok = true;
  bool reconciled_ok = true;
  const advisor::CellOutcome* seed_cell = nullptr;
  for (const advisor::CellOutcome& cell : report->ranked) {
    if (!cell.twin_identical) twins_ok = false;
    if (!cell.replay.ledger_matches_meter) reconciled_ok = false;
    if (cell.config.name == advisor::kSeedConfigName) seed_cell = &cell;
  }
  if (!twins_ok || !reconciled_ok) {
    std::fprintf(stderr,
                 "DETERMINISM GATE FAILED: twins_ok=%d reconciled_ok=%d\n",
                 twins_ok ? 1 : 0, reconciled_ok ? 1 : 0);
  }
  const bool replay_matches =
      seed_cell != nullptr &&
      seed_cell->replay.total_transactions == recorded_tx &&
      std::abs(seed_cell->replay.total_price - recorded_price) < 1e-6;
  if (!replay_matches) {
    std::fprintf(
        stderr,
        "FIDELITY GATE FAILED: seed replay %lld tx / %.6f vs recorded "
        "%lld tx / %.6f\n",
        seed_cell != nullptr
            ? static_cast<long long>(seed_cell->replay.total_transactions)
            : -1LL,
        seed_cell != nullptr ? seed_cell->replay.total_price : -1.0,
        static_cast<long long>(recorded_tx), recorded_price);
  }
  const bool beats_seed = !report->recommended.empty() &&
                          report->recommended_price < report->seed_price;
  if (!beats_seed) {
    std::fprintf(stderr,
                 "SAVINGS GATE FAILED: recommended '%s' price %.6f vs seed "
                 "%.6f\n",
                 report->recommended.c_str(), report->recommended_price,
                 report->seed_price);
  }

  BenchJson json;
  json.Meta("bench", std::string("advisor"));
  json.Meta("records", static_cast<int64_t>(read.records.size()));
  json.Meta("tenants", static_cast<int64_t>(tenants.size()));
  json.Meta("grid_cells", static_cast<int64_t>(report->ranked.size()));
  json.Meta("recorded_transactions", recorded_tx);
  json.Meta("recorded_price", recorded_price);
  json.Meta("seed_price", report->seed_price);
  json.Meta("recommended", report->recommended);
  json.Meta("recommended_price", report->recommended_price);
  json.Meta("advisor_savings_pct", report->savings_vs_seed_pct);
  json.Meta("twin_bills_identical",
            static_cast<int64_t>(twins_ok && reconciled_ok ? 1 : 0));
  json.Meta("replay_matches_recorded",
            static_cast<int64_t>(replay_matches ? 1 : 0));
  for (const advisor::CellOutcome& cell : report->ranked) {
    json.BeginRow("cells");
    json.Field("name", cell.config.name);
    json.Field("price", cell.replay.total_price);
    json.Field("transactions", cell.replay.total_transactions);
    json.Field("feasible", static_cast<int64_t>(cell.feasible ? 1 : 0));
    json.Field("rejected", cell.replay.rejected);
    json.Field("failed", cell.replay.failed);
    json.Field("savings_transactions", cell.replay.savings_transactions);
  }
  if (!json.WriteTo(flags.json_path)) return 1;

  return (twins_ok && reconciled_ok && replay_matches && beats_seed) ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
