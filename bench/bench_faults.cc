// Resilience overhead against a flaky market. Not a paper figure — this
// quantifies the cost of the failure model: N client threads serve
// disjoint bind-join streams against ONE shared PayLess while the fault
// injector drops calls, loses responses (post-evaluation: billed by the
// seller, delivered to nobody) and throttles, at increasing fault rates.
//
//   build/bench/bench_faults [--call_latency_us=500] [--repeats=3]
//                            [--threads=8] [--trials=3]
//
// Reported per fault rate (0%, 1%, 5%, 20%, split evenly between the
// three fault kinds): queries per second, retries, total billed
// transactions, and the wasted transactions/price of lost responses.
// Each rate runs --trials times (fresh client and injector, same seed)
// and reports the best-throughput trial — like bench_throughput, a
// single trial on a busy box is dominated by scheduler noise. The
// billing invariant is checked on EVERY trial, not just the reported
// one: total - wasted == fault-free total (retries and rate limits cost
// time, never money; every extra billed transaction is an accounted
// post-evaluation loss).
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/driver.h"
#include "exec/payless.h"
#include "market/data_market.h"
#include "market/fault_injector.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

constexpr int64_t kNumStations = 128;
constexpr int64_t kNumDates = 30;
constexpr int64_t kStationsPerQuery = 4;

constexpr const char* kBindSql =
    "SELECT Temperature FROM CityMap, Weather "
    "WHERE CityId >= ? AND CityId <= ? AND "
    "CityMap.StationID = Weather.StationID AND "
    "Weather.Country = 'US' AND Date >= 1 AND Date <= 30";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  const LoadFlags flags = ParseLoadFlags(argc, argv, /*latency_us=*/500,
                                         /*repeats=*/3, /*threads=*/8,
                                         /*trials=*/3);
  const int64_t latency_us = flags.call_latency_us;
  const int64_t repeats = flags.repeats;
  const int64_t threads = flags.threads;
  const int64_t trials = flags.trials;
  const std::string& json_path = flags.json_path;
  BenchJson json;

  catalog::Catalog cat;
  {
    Status st = cat.RegisterDataset(DatasetDef{"WHW", 1.0, 10});
    assert(st.ok());
    (void)st;
  }
  TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      ColumnDef::Free("Country", ValueType::kString,
                      AttrDomain::Categorical({"US"})),
      // Bound point probes: disjoint streams stay disjoint at the call
      // level, so the fault-free bill is interleaving-independent and the
      // waste accounting below is exact (see bench_throughput).
      ColumnDef::Bound("StationID", ValueType::kInt64,
                       AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("Date", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumDates)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kNumStations * kNumDates;
  {
    Status st = cat.RegisterTable(weather);
    assert(st.ok());
    (void)st;
  }
  TableDef citymap;
  citymap.name = "CityMap";
  citymap.is_local = true;
  citymap.columns = {
      ColumnDef::Free("CityId", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations))};
  citymap.cardinality = kNumStations;
  {
    Status st = cat.RegisterTable(citymap);
    assert(st.ok());
    (void)st;
  }

  market::DataMarket market(&cat);
  {
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 1000 + d))});
      }
    }
    Status st = market.HostTable("Weather", std::move(rows));
    assert(st.ok());
    (void)st;
  }
  std::vector<Row> city_rows;
  for (int64_t i = 1; i <= kNumStations; ++i) {
    city_rows.push_back(Row{Value(i), Value(i)});
  }

  // Disjoint streams of repeated footprints, claimed whole by one thread.
  struct Job {
    std::vector<Value> params;
  };
  std::vector<std::vector<Job>> streams;
  for (int64_t f = 0; f < kNumStations / kStationsPerQuery; ++f) {
    std::vector<Job> stream;
    const int64_t lo = f * kStationsPerQuery + 1;
    for (int64_t r = 0; r < repeats; ++r) {
      stream.push_back(Job{{Value(lo), Value(lo + kStationsPerQuery - 1)}});
    }
    streams.push_back(std::move(stream));
  }
  const size_t total_queries = streams.size() * static_cast<size_t>(repeats);

  // One trial at one fault rate: fresh client, fresh injector (same seed).
  // Fills `out` and returns false on a query failure or a broken billing
  // invariant — both are hard errors regardless of which trial they hit.
  struct TrialResult {
    double qps = 0.0;
    int64_t retries = 0;
    int64_t total_tx = 0;
    int64_t wasted_tx = 0;
    int64_t wasted_calls = 0;
    double wasted_price = 0.0;
  };
  const auto run_trial = [&](double fault_rate, int64_t fault_free_tx,
                             TrialResult* out) -> bool {
    PayLessConfig config;
    config.stats_kind = stats::StatsKind::kUniform;  // see bench_throughput
    config.max_parallel_calls = 1;
    config.retry.max_attempts = 12;
    config.retry.initial_backoff_micros = 50;
    config.retry.max_backoff_micros = 2'000;
    auto client = std::make_unique<PayLess>(&cat, &market, config);
    {
      Status st = client->LoadLocalTable("CityMap", city_rows);
      assert(st.ok());
      (void)st;
    }
    client->connector()->SetSimulatedLatencyMicros(latency_us);

    market::FaultProfile profile;
    profile.transient_rate = fault_rate / 3.0;
    profile.lost_response_rate = fault_rate / 3.0;
    profile.rate_limit_rate = fault_rate / 3.0;
    profile.retry_after_micros = 2 * latency_us;
    profile.seed = 1234;
    market::FaultInjector injector(profile);
    if (fault_rate > 0.0) client->connector()->SetFaultInjector(&injector);

    std::atomic<size_t> next_stream{0};
    std::atomic<bool> failed{false};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int64_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t s = next_stream.fetch_add(1); s < streams.size();
             s = next_stream.fetch_add(1)) {
          for (const Job& job : streams[s]) {
            const auto result = client->Query(kBindSql, job.params);
            if (!result.ok()) {
              std::fprintf(stderr, "stream %zu: %s\n", s,
                           result.status().ToString().c_str());
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double wall_ms = MillisSince(start);
    client->connector()->SetFaultInjector(nullptr);
    if (failed.load()) return false;

    const market::RetryStats stats = client->connector()->retry_stats();
    const int64_t total_tx = client->meter().total_transactions();
    const int64_t useful_tx = total_tx - stats.wasted_transactions;
    if (fault_free_tx >= 0 && useful_tx != fault_free_tx) {
      std::fprintf(stderr,
                   "BILLING CONTRACT BROKEN at rate %.2f: useful %lld vs "
                   "fault-free %lld\n",
                   fault_rate, static_cast<long long>(useful_tx),
                   static_cast<long long>(fault_free_tx));
      return false;
    }
    out->qps = 1000.0 * static_cast<double>(total_queries) / wall_ms;
    out->retries = stats.retries;
    out->total_tx = total_tx;
    out->wasted_tx = stats.wasted_transactions;
    out->wasted_calls = stats.wasted_calls;
    out->wasted_price = stats.wasted_price;
    return true;
  };

  // Best of --trials at each rate, reporting the fastest trial's row; a
  // single trial on a loaded machine measures the scheduler, not us.
  const auto run_at = [&](double fault_rate, int64_t fault_free_tx,
                          bool* ok) -> int64_t {
    TrialResult best;
    for (int64_t trial = 0; trial < trials; ++trial) {
      TrialResult result;
      if (!run_trial(fault_rate, fault_free_tx, &result)) {
        *ok = false;
        return 0;
      }
      if (trial == 0 || result.qps > best.qps) best = result;
    }
    std::printf("%.2f %.1f %lld %lld %lld %lld %.1f\n", fault_rate, best.qps,
                static_cast<long long>(best.retries),
                static_cast<long long>(best.total_tx),
                static_cast<long long>(best.wasted_tx),
                static_cast<long long>(best.wasted_calls),
                best.wasted_price);
    json.BeginRow("rates");
    json.Field("fault_rate", fault_rate);
    json.Field("qps", best.qps);
    json.Field("retries", best.retries);
    json.Field("total_transactions", best.total_tx);
    json.Field("wasted_transactions", best.wasted_tx);
    json.Field("wasted_calls", best.wasted_calls);
    json.Field("wasted_price", best.wasted_price);
    *ok = true;
    return best.total_tx;
  };

  json.Meta("bench", std::string("faults"));
  json.Meta("streams", static_cast<int64_t>(streams.size()));
  json.Meta("repeats", repeats);
  json.Meta("total_queries", static_cast<int64_t>(total_queries));
  json.Meta("threads", threads);
  json.Meta("call_latency_us", latency_us);
  json.Meta("trials", trials);
  std::printf("# bench_faults: %zu streams x %lld repeats = %zu queries, "
              "%lld threads, call latency %lld us, best of %lld trials\n",
              streams.size(), static_cast<long long>(repeats), total_queries,
              static_cast<long long>(threads),
              static_cast<long long>(latency_us),
              static_cast<long long>(trials));
  std::printf("# fault_rate qps retries total_tx wasted_tx wasted_calls "
              "wasted_price\n");
  bool ok = false;
  const int64_t fault_free_tx = run_at(0.0, -1, &ok);
  if (!ok) return 1;
  for (const double rate : {0.01, 0.05, 0.20}) {
    run_at(rate, fault_free_tx, &ok);
    if (!ok) return 1;
  }
  return json.WriteTo(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
