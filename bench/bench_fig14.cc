// Figure 14: effectiveness of the search-space reduction techniques.
// Average number of candidate (sub)plans evaluated per query instance, for
// (i) PayLess (SQR + Theorems 1-3), (ii) Disable SQR (theorems only), and
// (iii) Disable All (bushy exhaustive enumeration, no SQR), as q varies.
// Expected shape: Disable All is orders of magnitude above the others, and
// PayLess dips below Disable SQR because rewriting turns relations into
// zero-price ones, triggering Theorem 2 more often as q grows.
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

double AvgEvaluatedPlans(const workload::Bundle& bundle,
                         exec::PayLessConfig config) {
  auto client = workload::NewPayLessClient(bundle, config);
  double total = 0.0;
  for (const workload::QueryInstance& query : bundle.queries) {
    auto report = client->QueryWithReport(query.sql, query.params);
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    total += static_cast<double>(report->counters.evaluated_plans);
  }
  return total / static_cast<double>(bundle.queries.size());
}

exec::PayLessConfig DisableAllConfig() {
  exec::PayLessConfig config = workload::PayLessNoSqrConfig();
  config.optimizer.use_search_reduction = false;
  return config;
}

void RunPoint(const workload::Bundle& bundle, int64_t q) {
  const double payless =
      AvgEvaluatedPlans(bundle, workload::PayLessFullConfig());
  const double no_sqr =
      AvgEvaluatedPlans(bundle, workload::PayLessNoSqrConfig());
  const double disable_all = AvgEvaluatedPlans(bundle, DisableAllConfig());
  std::printf("q=%lld  PayLess=%.1f  DisableSQR=%.1f  DisableAll=%.1f\n",
              static_cast<long long>(q), payless, no_sqr, disable_all);
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("=== Figure 14a: real data ===\n");
  for (const int64_t q : {100, 200, 300}) {
    workload::RealDataOptions options;
    options.scale = 0.05;
    auto bundle = workload::MakeRealBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/50 + q);
    RunPoint(*bundle, q);
  }

  std::printf("=== Figure 14b: TPC-H ===\n");
  for (const int64_t q : {5, 10, 20}) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/60 + q);
    RunPoint(*bundle, q);
  }

  std::printf("=== Figure 14c: TPC-H skew ===\n");
  for (const int64_t q : {5, 10, 20}) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 1.0;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/70 + q);
    RunPoint(*bundle, q);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
