// Figure 13: influence of the data size. PayLess vs Download All on TPC-H
// and TPC-H skew at D in {0.5x, 1x, 2x} of the base scale factor. Expected
// shape: Download All scales with D, PayLess scales with what the queries
// touch, winning until the dataset is effectively retrieved.
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

int Main(int argc, char** argv) {
  const int64_t q = FlagOr(argc, argv, "q", 5);
  const double base_sf = 0.002;

  for (const double zipf : {0.0, 1.0}) {
    std::printf("=== Figure 13%s: TPC-H%s, varying data size ===\n",
                zipf == 0.0 ? "a" : "b", zipf == 0.0 ? "" : " skew");
    for (const double mult : {0.5, 1.0, 2.0}) {
      workload::TpchOptions options;
      options.scale_factor = base_sf * mult;
      options.zipf = zipf;
      auto bundle = workload::MakeTpchBundle(
          options, static_cast<size_t>(q),
          /*query_seed=*/static_cast<uint64_t>(40 + mult * 10 + zipf));
      auto payless =
          workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
      auto download = workload::NewDownloadAllClient(*bundle);
      const auto payless_run = RunCumulative(payless.get(), bundle->queries);
      const auto download_run = RunCumulative(download.get(), bundle->queries);
      char label[32];
      std::snprintf(label, sizeof(label), "D=%.1fx", mult);
      PrintSeries(std::string("PayLess ") + label, MeanSeries({payless_run}));
      PrintSeries(std::string("Download All ") + label,
                  MeanSeries({download_run}));
    }
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
