// Figure 12: influence of the number of query instances per template (q).
// PayLess vs Download All for q in {100, 200, 300} on real data and
// q in {5, 10, 20} on TPC-H / TPC-H skew. Expected shape: PayLess stays
// below Download All on real data for every q; on TPC-H it wins until the
// whole dataset is effectively retrieved.
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

void RunPair(const workload::Bundle& bundle) {
  auto payless =
      workload::NewPayLessClient(bundle, workload::PayLessFullConfig());
  auto download = workload::NewDownloadAllClient(bundle);
  const auto payless_run = RunCumulative(payless.get(), bundle.queries);
  const auto download_run = RunCumulative(download.get(), bundle.queries);
  PrintSeries("PayLess", MeanSeries({payless_run}));
  PrintSeries("Download All", MeanSeries({download_run}));
}

int Main(int argc, char** argv) {
  const int64_t real_scale_pct = FlagOr(argc, argv, "real_scale_pct", 5);

  for (const int64_t q : {100, 200, 300}) {
    std::printf("=== Figure 12 (real data): q = %lld ===\n",
                static_cast<long long>(q));
    workload::RealDataOptions options;
    options.scale = static_cast<double>(real_scale_pct) / 100.0;
    auto bundle = workload::MakeRealBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/10 + q);
    RunPair(*bundle);
  }

  for (const int64_t q : {5, 10, 20}) {
    std::printf("=== Figure 12 (TPC-H): q = %lld ===\n",
                static_cast<long long>(q));
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/20 + q);
    RunPair(*bundle);
  }

  for (const int64_t q : {5, 10, 20}) {
    std::printf("=== Figure 12 (TPC-H skew): q = %lld ===\n",
                static_cast<long long>(q));
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 1.0;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/30 + q);
    RunPair(*bundle);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
