// Concurrent query serving throughput. Not a paper figure — this measures
// the engineering headroom of the thread-safe client: N client threads
// serve disjoint bind-join query streams against ONE shared PayLess, with
// a simulated per-REST-call network round trip (the dominant latency of a
// real cloud market; configurable via --call_latency_us). Because every
// thread's footprint is disjoint and merging is deterministic, the total
// number of billed transactions must be IDENTICAL at every thread count —
// concurrency buys queries per second, never a different bill.
//
//   build/bench/bench_throughput [--call_latency_us=2000] [--repeats=4]
//                                [--trials=2]
//
// Section 1: multi-client scaling — qps and cumulative transactions vs
//            number of client threads (1..32), engine fan-out serial.
//            Each thread count runs --trials times (fresh client each) and
//            reports the best wall time; billing identity is asserted on
//            EVERY trial, not just the reported one.
// Section 2: intra-query fan-out — one big bind join, wall time vs
//            ExecConfig::max_parallel_calls.
// Section 3: overlap-heavy bind join — one query whose binding list spans
//            every station (128 point calls) driven through the connector's
//            event-loop CallScheduler at increasing in-flight windows. This
//            is the workload thread-per-call dispatch cannot serve: 128
//            in-flight calls on one worker thread.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/driver.h"
#include "exec/payless.h"
#include "market/data_market.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

constexpr int64_t kNumStations = 128;
constexpr int64_t kNumDates = 30;
constexpr int64_t kStationsPerQuery = 4;

constexpr const char* kBindSql =
    "SELECT Temperature FROM CityMap, Weather "
    "WHERE CityId >= ? AND CityId <= ? AND "
    "CityMap.StationID = Weather.StationID AND "
    "Weather.Country = 'US' AND Date >= 1 AND Date <= 30";

struct Job {
  std::vector<Value> params;
};

/// One stream = all repeats of one disjoint station footprint; streams are
/// the unit of distribution across threads, so no footprint is ever fetched
/// concurrently by two threads and totals stay interleaving-independent.
using Stream = std::vector<Job>;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  const LoadFlags flags = ParseLoadFlags(argc, argv, /*latency_us=*/2000,
                                         /*repeats=*/4, /*threads=*/8,
                                         /*trials=*/2);
  const int64_t latency_us = flags.call_latency_us;
  const int64_t repeats = flags.repeats;
  const int64_t trials = flags.trials;
  const std::string& json_path = flags.json_path;

  catalog::Catalog cat;
  {
    Status st = cat.RegisterDataset(DatasetDef{"WHW", 1.0, 10});
    assert(st.ok());
    (void)st;
  }
  TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      ColumnDef::Free("Country", ValueType::kString,
                      AttrDomain::Categorical({"US"})),
      // Bound (Fig. 4 binding pattern): the seller only answers point
      // probes on StationID. This forces every plan through the bind-join
      // path under test AND keeps the streams disjoint at the call level —
      // a free StationID would let the optimizer pick a whole-domain plain
      // call whose SQR remainder depends on every OTHER stream's coverage,
      // making the bill interleaving-dependent (a double-fetch while a
      // region is in flight elsewhere is legitimate, but not identical).
      ColumnDef::Bound("StationID", ValueType::kInt64,
                       AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("Date", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumDates)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kNumStations * kNumDates;
  {
    Status st = cat.RegisterTable(weather);
    assert(st.ok());
    (void)st;
  }

  TableDef citymap;
  citymap.name = "CityMap";
  citymap.is_local = true;
  citymap.columns = {
      ColumnDef::Free("CityId", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations))};
  citymap.cardinality = kNumStations;
  {
    Status st = cat.RegisterTable(citymap);
    assert(st.ok());
    (void)st;
  }

  market::DataMarket market(&cat);
  {
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 1000 + d))});
      }
    }
    Status st = market.HostTable("Weather", std::move(rows));
    assert(st.ok());
    (void)st;
  }
  std::vector<Row> city_rows;
  for (int64_t i = 1; i <= kNumStations; ++i) {
    city_rows.push_back(Row{Value(i), Value(i)});
  }

  // Disjoint streams: footprint f covers stations [f*4+1, f*4+4]; the first
  // query of a stream fetches (4 binding-value calls), the repeats are
  // served from the semantic store and, after warm-up, from the plan cache.
  std::vector<Stream> streams;
  for (int64_t f = 0; f < kNumStations / kStationsPerQuery; ++f) {
    Stream stream;
    const int64_t lo = f * kStationsPerQuery + 1;
    const int64_t hi = lo + kStationsPerQuery - 1;
    for (int64_t r = 0; r < repeats; ++r) {
      stream.push_back(Job{{Value(lo), Value(hi)}});
    }
    streams.push_back(std::move(stream));
  }
  const size_t total_queries = streams.size() * static_cast<size_t>(repeats);

  const auto new_client = [&](size_t fan_out) {
    PayLessConfig config;
    config.max_parallel_calls = fan_out;
    // Frozen uniform estimates: with learning on, feedback from one
    // thread's stream can flip another stream's plan choice, and the bill
    // would (legitimately) depend on the interleaving. Frozen stats make
    // every plan a function of the stream's own coverage only, so the
    // identical-billing invariant below is exact at every thread count.
    config.stats_kind = stats::StatsKind::kUniform;
    auto client = std::make_unique<PayLess>(&cat, &market, config);
    Status st = client->LoadLocalTable("CityMap", city_rows);
    assert(st.ok());
    (void)st;
    client->connector()->SetSimulatedLatencyMicros(latency_us);
    return client;
  };

  BenchJson json;
  json.Meta("bench", std::string("throughput"));
  json.Meta("streams", static_cast<int64_t>(streams.size()));
  json.Meta("repeats", repeats);
  json.Meta("total_queries", static_cast<int64_t>(total_queries));
  json.Meta("call_latency_us", latency_us);

  // ---- Section 1: client-thread scaling, serial engine fan-out.
  std::printf("# bench_throughput: %zu streams x %lld repeats = %zu queries, "
              "call latency %lld us\n",
              streams.size(), static_cast<long long>(repeats), total_queries,
              static_cast<long long>(latency_us));
  std::printf("# multi-client scaling (max_parallel_calls=1, best of %lld)\n",
              static_cast<long long>(trials));
  std::printf("# threads qps total_transactions wall_ms\n");
  double qps_1 = 0.0, qps_8 = 0.0, qps_16 = 0.0, qps_32 = 0.0;
  int64_t tx_1 = -1;
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    double best_wall_ms = 0.0;
    int64_t total_tx = -1;
    for (int64_t trial = 0; trial < trials; ++trial) {
      auto client = new_client(/*fan_out=*/1);
      std::atomic<size_t> next_stream{0};
      std::atomic<bool> failed{false};
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      workers.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
          // Whole streams are claimed atomically: repeats of one footprint
          // always run in order on one thread.
          for (size_t s = next_stream.fetch_add(1); s < streams.size();
               s = next_stream.fetch_add(1)) {
            for (const Job& job : streams[s]) {
              const auto result = client->Query(kBindSql, job.params);
              if (!result.ok()) {
                std::fprintf(stderr, "stream %zu: %s\n", s,
                             result.status().ToString().c_str());
                failed.store(true);
                return;
              }
            }
          }
        });
      }
      for (std::thread& w : workers) w.join();
      const double wall_ms = MillisSince(start);
      if (failed.load()) {
        std::fprintf(stderr, "query failed at %d threads\n", threads);
        return 1;
      }
      total_tx = client->meter().total_transactions();
      if (tx_1 < 0) tx_1 = total_tx;
      // Every trial at every thread count must bill the same: concurrency
      // buys queries per second, never a different bill.
      if (total_tx != tx_1) {
        std::fprintf(stderr,
                     "BILLING DIVERGED: %lld transactions at %d threads vs "
                     "%lld at 1 thread\n",
                     static_cast<long long>(total_tx), threads,
                     static_cast<long long>(tx_1));
        return 1;
      }
      if (trial == 0 || wall_ms < best_wall_ms) best_wall_ms = wall_ms;
    }
    const double qps =
        1000.0 * static_cast<double>(total_queries) / best_wall_ms;
    if (threads == 1) qps_1 = qps;
    if (threads == 8) qps_8 = qps;
    if (threads == 16) qps_16 = qps;
    if (threads == 32) qps_32 = qps;
    std::printf("%d %.1f %lld %.1f\n", threads, qps,
                static_cast<long long>(total_tx), best_wall_ms);
    json.BeginRow("multi_client");
    json.Field("threads", static_cast<int64_t>(threads));
    json.Field("qps", qps);
    json.Field("total_transactions", total_tx);
    json.Field("wall_ms", best_wall_ms);
  }
  std::printf("# speedup at 8 threads: %.2fx\n", qps_8 / qps_1);
  std::printf("# speedup at 16 threads: %.2fx\n", qps_16 / qps_1);
  std::printf("# speedup at 32 threads: %.2fx\n\n", qps_32 / qps_1);
  json.Meta("speedup_8_threads", qps_8 / qps_1);
  json.Meta("speedup_16_threads", qps_16 / qps_1);
  json.Meta("speedup_32_threads", qps_32 / qps_1);

  // ---- Section 2: intra-query fan-out on one wide bind join (32 binding
  // values -> 32 point calls), fresh client per setting so every run pays
  // the full fetch.
  std::printf("# intra-query fan-out (one 32-binding-value bind join)\n");
  std::printf("# max_parallel_calls wall_ms transactions\n");
  const std::vector<Value> wide_params = {Value(int64_t{1}),
                                          Value(int64_t{32})};
  for (const size_t fan_out : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                               size_t{16}}) {
    auto client = new_client(fan_out);
    const auto start = std::chrono::steady_clock::now();
    const auto report = client->QueryWithReport(kBindSql, wide_params);
    const double wall_ms = MillisSince(start);
    if (!report.ok()) {
      std::fprintf(stderr, "wide query failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu %.1f %lld\n", fan_out, wall_ms,
                static_cast<long long>(report->transactions_spent));
    json.BeginRow("fan_out");
    json.Field("max_parallel_calls", static_cast<int64_t>(fan_out));
    json.Field("wall_ms", wall_ms);
    json.Field("transactions", report->transactions_spent);
  }

  // ---- Section 3: overlap-heavy bind join — every station in one binding
  // list (128 point calls from a single worker). Thread-per-call dispatch
  // tops out at a thread's worth of concurrency; the event-loop scheduler
  // keeps the whole window in flight. The bill must not depend on the
  // window size.
  std::printf("\n# overlap-heavy bind join (one %lld-binding-value query, "
              "event-loop scheduler)\n",
              static_cast<long long>(kNumStations));
  std::printf("# in_flight_window wall_ms transactions\n");
  const std::vector<Value> overlap_params = {Value(int64_t{1}),
                                             Value(kNumStations)};
  int64_t overlap_tx = -1;
  for (const size_t window :
       {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
    auto client = new_client(window);
    const auto start = std::chrono::steady_clock::now();
    const auto report = client->QueryWithReport(kBindSql, overlap_params);
    const double wall_ms = MillisSince(start);
    if (!report.ok()) {
      std::fprintf(stderr, "overlap query failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (overlap_tx < 0) overlap_tx = report->transactions_spent;
    if (report->transactions_spent != overlap_tx) {
      std::fprintf(stderr,
                   "BILLING DIVERGED: %lld transactions at window %zu vs "
                   "%lld at window 1\n",
                   static_cast<long long>(report->transactions_spent), window,
                   static_cast<long long>(overlap_tx));
      return 1;
    }
    std::printf("%zu %.1f %lld\n", window, wall_ms,
                static_cast<long long>(report->transactions_spent));
    json.BeginRow("overlap");
    json.Field("in_flight_window", static_cast<int64_t>(window));
    json.Field("wall_ms", wall_ms);
    json.Field("transactions", report->transactions_spent);
  }
  return json.WriteTo(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
