// §4.1 search-space analysis: for chain queries of n all-free relations,
// the unrestricted plan space is ≈ 6^n - 5^n candidates while PayLess's
// (Theorems 1-3) is ≈ 2^n' + (2/3)n'^3. This bench builds synthetic chain
// catalogs, runs both enumeration modes, and prints the measured candidate
// counts next to the paper's closed-form approximations.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/optimizer.h"
#include "semstore/semantic_store.h"
#include "sql/parser.h"
#include "stats/estimator.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::TableDef;

/// Chain of n market relations T1(a1,a2), T2(a2,a3), ..., all attributes
/// free, joined a2=a2, a3=a3, ...
catalog::Catalog MakeChainCatalog(int n) {
  catalog::Catalog cat;
  Status st = cat.RegisterDataset(catalog::DatasetDef{"CHAIN", 1.0, 100});
  assert(st.ok());
  for (int i = 1; i <= n; ++i) {
    TableDef def;
    def.name = "T" + std::to_string(i);
    def.dataset = "CHAIN";
    def.columns = {
        ColumnDef::Free("a" + std::to_string(i), ValueType::kInt64,
                        AttrDomain::Numeric(1, 1000)),
        ColumnDef::Free("a" + std::to_string(i + 1), ValueType::kInt64,
                        AttrDomain::Numeric(1, 1000))};
    def.cardinality = 10000;
    st = cat.RegisterTable(def);
    assert(st.ok());
  }
  return cat;
}

std::string ChainQuery(int n) {
  std::string sql = "SELECT COUNT(*) FROM ";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) sql += ", ";
    sql += "T" + std::to_string(i);
  }
  sql += " WHERE T1.a1 >= 1";
  for (int i = 1; i < n; ++i) {
    const std::string attr = "a" + std::to_string(i + 1);
    sql += " AND T" + std::to_string(i) + "." + attr + " = T" +
           std::to_string(i + 1) + "." + attr;
  }
  return sql;
}

size_t CountPlans(const catalog::Catalog& cat, const std::string& sql,
                  bool reduced) {
  stats::StatsRegistry stats;
  for (const std::string& name : cat.TableNames()) {
    stats.RegisterTable(*cat.FindTable(name));
  }
  semstore::SemanticStore store;
  core::OptimizerOptions options;
  options.use_sqr = false;
  options.use_search_reduction = reduced;
  const core::Optimizer optimizer(&cat, &stats, &store, options);

  Result<sql::SelectStmt> stmt = sql::Parse(sql);
  assert(stmt.ok());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat, {});
  assert(bound.ok());
  Result<core::OptimizeResult> result = optimizer.Optimize(*bound);
  assert(result.ok());
  return result->counters.evaluated_plans;
}

int Main() {
  std::printf("# chain query over n all-free market relations\n");
  std::printf("%3s %14s %14s %16s %16s\n", "n", "PayLess", "exhaustive",
              "~2^n+(2/3)n^3", "~6^n-5^n");
  for (int n = 2; n <= 9; ++n) {
    const catalog::Catalog cat = MakeChainCatalog(n);
    const std::string sql = ChainQuery(n);
    const size_t reduced = CountPlans(cat, sql, /*reduced=*/true);
    const size_t exhaustive = CountPlans(cat, sql, /*reduced=*/false);
    const double formula_reduced =
        std::pow(2.0, n) + (2.0 / 3.0) * std::pow(n, 3);
    const double formula_full = std::pow(6.0, n) - std::pow(5.0, n);
    std::printf("%3d %14zu %14zu %16.0f %16.0f\n", n, reduced, exhaustive,
                formula_reduced, formula_full);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main() { return payless::bench::Main(); }
