// Figure 15: effectiveness of the bounding-box pruning rules of
// Algorithm 1. Average number of bounding boxes surviving generation per
// query instance, with the two pruning rules on ("PayLess") vs off ("No
// Pruning"), as q varies. Expected shape: pruning cuts roughly an order of
// magnitude.
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

double AvgBoundingBoxes(const workload::Bundle& bundle, bool pruning) {
  exec::PayLessConfig config = workload::PayLessFullConfig();
  config.optimizer.remainder.prune_minimal = pruning;
  config.optimizer.remainder.prune_price = pruning;
  auto client = workload::NewPayLessClient(bundle, config);
  double total = 0.0;
  for (const workload::QueryInstance& query : bundle.queries) {
    auto report = client->QueryWithReport(query.sql, query.params);
    if (!report.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    total += static_cast<double>(report->counters.kept_bboxes);
  }
  return total / static_cast<double>(bundle.queries.size());
}

void RunPoint(const workload::Bundle& bundle, int64_t q) {
  const double pruned = AvgBoundingBoxes(bundle, /*pruning=*/true);
  const double unpruned = AvgBoundingBoxes(bundle, /*pruning=*/false);
  std::printf("q=%lld  PayLess=%.1f  NoPruning=%.1f\n",
              static_cast<long long>(q), pruned, unpruned);
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("=== Figure 15a: real data ===\n");
  for (const int64_t q : {100, 200, 300}) {
    workload::RealDataOptions options;
    options.scale = 0.05;
    auto bundle = workload::MakeRealBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/80 + q);
    RunPoint(*bundle, q);
  }

  std::printf("=== Figure 15b: TPC-H ===\n");
  for (const int64_t q : {5, 10, 20}) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/90 + q);
    RunPoint(*bundle, q);
  }

  std::printf("=== Figure 15c: TPC-H skew ===\n");
  for (const int64_t q : {5, 10, 20}) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 1.0;
    auto bundle = workload::MakeTpchBundle(options, static_cast<size_t>(q),
                                           /*query_seed=*/95 + q);
    RunPoint(*bundle, q);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
