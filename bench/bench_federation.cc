// Federation sweep: the real workload replayed against 1/2/4-endpoint
// markets, fault-free and under injected transient faults.
//
// Endpoint menus are built by workload::MakeFederatedMarket: dataset d is
// discounted (half price, double pages) at endpoint d % N, so with N >= 2
// no single market is cheapest for every dataset and the buy-site-aware
// optimizer must split its purchases to win. For every fault-free
// N >= 2 configuration the bench ALSO replays the identical workload
// against each endpoint alone (same menu, same data) and gates on:
//
//   1. federated spend (money) strictly below the cheapest single market;
//   2. the savings ledger reconciling, with the federation's edge over the
//      cheapest-single-market counterfactual attributed to the
//      federation_routing cause (> 0 for N >= 2, == 0 for N == 1, and the
//      causes summing to the savings — Reconciles() checks the sum);
//   3. under faults: identical delivered rows, failovers actually
//      exercised, and non-wasted spend within 1% of the fault-free run
//      (failover re-buys undelivered calls at the next-cheapest live
//      endpoint, whose page size may differ slightly) — the
//      `failover_divergence_pct` field is absolutely capped in
//      scripts/check_bench_regression.py.
//
//   build/bench/bench_federation [--scale_pct=10] [--per_template=20]
//                                [--seed=42] [--query_seed=1]
//                                [--fault_pct=20]
//                                [--json=BENCH_federation.json]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/driver.h"
#include "federation/market_endpoint.h"
#include "obs/observability.h"
#include "obs/savings.h"

namespace payless::bench {
namespace {

struct RunTotals {
  int64_t transactions = 0;  // billed, across every endpoint meter
  double money = 0.0;        // billed price, from the cost ledger
  int64_t rows = 0;          // delivered result rows
  int64_t wasted = 0;        // lost-response transactions (none injected)
  int64_t failovers = 0;
  int64_t counterfactual = 0;      // cheapest-single-market estimate (txn)
  int64_t federation_routing = 0;  // savings attributed to routing (txn)
  bool reconciles = false;
  bool failed = false;
};

/// Replays the bundle's workload once through a fresh client wired to
/// `federation`; `fault_rate` > 0 injects transient faults on every
/// endpoint (deterministic per-endpoint sub-seeded streams).
RunTotals RunWorkload(const workload::Bundle& bundle,
                      federation::FederatedMarket* federation,
                      double fault_rate) {
  obs::Observability obs;
  exec::PayLessConfig config = workload::PayLessFullConfig();
  config.observability = &obs;
  if (fault_rate > 0.0) {
    // A multi-endpoint client can fail over after a short retry budget; a
    // single-market client has no alternative seller and must retry its
    // way through the same fault stream.
    config.retry.max_attempts = federation->num_endpoints() > 1 ? 3 : 6;
    config.retry.initial_backoff_micros = 20;
    config.retry.max_backoff_micros = 200;
    config.retry.breaker_failure_threshold = 8;
    config.retry.breaker_cooldown_micros = 2'000;
  }
  auto client =
      workload::NewFederatedPayLessClient(bundle, federation, config);

  RunTotals totals;
  for (const workload::QueryInstance& query : bundle.queries) {
    const auto report = client->QueryWithReport(query.sql, query.params);
    if (!report.ok() || !report->error.ok()) {
      const Status& st = report.ok() ? report->error : report.status();
      std::fprintf(stderr, "query failed: %s\n  sql: %s\n",
                   st.ToString().c_str(), query.sql.c_str());
      totals.failed = true;
      return totals;
    }
    totals.rows += static_cast<int64_t>(report->result.rows().size());
  }

  auto* router = client->router();
  totals.transactions = router->TotalMeteredTransactions();
  totals.money = obs.ledger.total_price();
  totals.failovers = router->failovers();
  for (size_t i = 0; i < federation->num_endpoints(); ++i) {
    totals.wasted += router->connector(i)->retry_stats().wasted_transactions;
  }
  totals.counterfactual = obs.savings.total_counterfactual();
  totals.federation_routing =
      obs.savings.total_by_cause(obs::SavingsCause::kFederationRouting);
  totals.reconciles = obs.savings.Reconciles();
  return totals;
}

/// A federation holding ONE endpoint with `config`'s menu — the
/// single-market counterfactual world, re-hosted on the same rows.
std::unique_ptr<federation::FederatedMarket> SingleMarketOf(
    const workload::Bundle& bundle, const federation::EndpointConfig& config) {
  auto single = std::make_unique<federation::FederatedMarket>(
      &bundle.catalog, /*base_seed=*/42);
  federation::EndpointConfig clean = config;
  clean.inject_faults = false;  // the counterfactual is a healthy market
  if (!single->AddEndpoint(clean).ok()) return nullptr;
  for (const auto& [name, rows] : bundle.market_tables) {
    if (!single->HostTable(name, rows).ok()) return nullptr;
  }
  return single;
}

int Main(int argc, char** argv) {
  const WorkloadFlags flags =
      ParseWorkloadFlags(argc, argv, /*scale_pct=*/10, /*per_template=*/20);
  const int64_t scale_pct = flags.scale_pct;
  const int64_t per_template = flags.per_template;
  const int64_t seed = flags.seed;
  const int64_t query_seed = flags.query_seed;
  const int64_t fault_pct = FlagOr(argc, argv, "fault_pct", 20);
  // A page small enough that the workload's scans span several of them;
  // with the default market page (100 tuples) every access fits one page
  // and the double-page discount endpoints can't show up in transaction
  // counts — only in money.
  const int64_t page_tuples = FlagOr(argc, argv, "page_tuples", 5);
  const std::string& json_path = flags.json_path;

  workload::RealDataOptions options;
  options.scale = static_cast<double>(scale_pct) / 100.0;
  options.seed = static_cast<uint64_t>(seed);
  options.tuples_per_transaction = page_tuples;
  auto bundle = workload::MakeRealBundle(
      options, static_cast<size_t>(per_template),
      static_cast<uint64_t>(query_seed));
  const double fault_rate = static_cast<double>(fault_pct) / 100.0;

  std::printf("# bench_federation: %zu queries, scale %.2f, fault %.2f\n",
              bundle->queries.size(), options.scale, fault_rate);
  std::printf(
      "# endpoints txn money cheapest_single_money routing_txn "
      "failovers divergence_pct\n");

  BenchJson json;
  json.Meta("bench", std::string("federation"));
  json.Meta("queries", static_cast<int64_t>(bundle->queries.size()));
  json.Meta("scale", options.scale);
  json.Meta("fault_rate", fault_rate);
  json.Meta("page_tuples", page_tuples);

  bool ok = true;
  for (const size_t num_endpoints : {size_t{1}, size_t{2}, size_t{4}}) {
    std::vector<workload::FederatedEndpointSpec> specs(num_endpoints);
    for (size_t e = 0; e < num_endpoints; ++e) {
      specs[e].id = "m" + std::to_string(e);
      specs[e].discount_scale = 0.5;
    }

    // Fault-free federated run.
    auto federation = workload::MakeFederatedMarket(*bundle, specs, 42);
    const RunTotals clean = RunWorkload(*bundle, federation.get(), 0.0);
    if (clean.failed || !clean.reconciles) {
      if (!clean.reconciles) {
        std::fprintf(stderr, "%zu endpoints: savings ledger did not "
                             "reconcile\n", num_endpoints);
      }
      return 1;
    }

    // The same workload confined to each endpoint alone; the cheapest of
    // these is the single-market world federation must beat.
    double cheapest_single_money = -1.0;
    for (size_t e = 0; e < num_endpoints; ++e) {
      auto single =
          SingleMarketOf(*bundle, federation->endpoint(e)->config());
      if (single == nullptr) return 1;
      const RunTotals alone = RunWorkload(*bundle, single.get(), 0.0);
      if (alone.failed) return 1;
      if (alone.rows != clean.rows) {
        std::fprintf(stderr,
                     "%zu endpoints: single market %s delivered %lld rows, "
                     "federated %lld\n",
                     num_endpoints, single->endpoint(size_t{0})->id().c_str(),
                     static_cast<long long>(alone.rows),
                     static_cast<long long>(clean.rows));
        return 1;
      }
      if (cheapest_single_money < 0.0 || alone.money < cheapest_single_money) {
        cheapest_single_money = alone.money;
      }
    }

    // Faulty federated run on a fresh federation (clean meters, same
    // deterministic per-endpoint fault streams every invocation).
    std::vector<workload::FederatedEndpointSpec> faulty_specs = specs;
    for (auto& spec : faulty_specs) {
      spec.inject_faults = true;
      spec.fault_profile.transient_rate = fault_rate;
    }
    auto faulty_federation =
        workload::MakeFederatedMarket(*bundle, faulty_specs, 42);
    const RunTotals faulty =
        RunWorkload(*bundle, faulty_federation.get(), fault_rate);
    if (faulty.failed || !faulty.reconciles) return 1;

    const int64_t clean_net = clean.transactions - clean.wasted;
    const int64_t faulty_net = faulty.transactions - faulty.wasted;
    const double divergence_pct =
        clean_net > 0 ? 100.0 *
                            std::abs(static_cast<double>(faulty_net) -
                                     static_cast<double>(clean_net)) /
                            static_cast<double>(clean_net)
                      : 0.0;

    std::printf("%zu %lld %.1f %.1f %lld %lld %.3f\n", num_endpoints,
                static_cast<long long>(clean.transactions), clean.money,
                cheapest_single_money,
                static_cast<long long>(clean.federation_routing),
                static_cast<long long>(faulty.failovers), divergence_pct);

    json.BeginRow("configs");
    json.Field("endpoints", static_cast<int64_t>(num_endpoints));
    json.Field("transactions", clean.transactions);
    json.Field("money", clean.money);
    json.Field("cheapest_single_market_money", cheapest_single_money);
    json.Field("counterfactual_transactions", clean.counterfactual);
    json.Field("federation_routing_transactions", clean.federation_routing);
    json.Field("faulty_failovers", faulty.failovers);
    json.Field("faulty_transactions", faulty.transactions);
    json.Field("failover_divergence_pct", divergence_pct);

    // Gates.
    if (num_endpoints >= 2) {
      if (clean.money >= cheapest_single_money) {
        std::fprintf(stderr,
                     "%zu endpoints: federated spend %.1f not strictly below "
                     "cheapest single market %.1f\n",
                     num_endpoints, clean.money, cheapest_single_money);
        ok = false;
      }
      if (clean.federation_routing <= 0) {
        std::fprintf(stderr,
                     "%zu endpoints: federation_routing cause is %lld, "
                     "expected > 0\n",
                     num_endpoints,
                     static_cast<long long>(clean.federation_routing));
        ok = false;
      }
      if (faulty.failovers <= 0) {
        std::fprintf(stderr,
                     "%zu endpoints: fault run never failed over\n",
                     num_endpoints);
        ok = false;
      }
    } else if (clean.federation_routing != 0) {
      std::fprintf(stderr,
                   "1 endpoint: federation_routing cause is %lld, expected "
                   "0 (there is no alternative market)\n",
                   static_cast<long long>(clean.federation_routing));
      ok = false;
    }
    if (faulty.rows != clean.rows) {
      std::fprintf(stderr,
                   "%zu endpoints: fault run delivered %lld rows, clean run "
                   "%lld\n",
                   num_endpoints, static_cast<long long>(faulty.rows),
                   static_cast<long long>(clean.rows));
      ok = false;
    }
    if (divergence_pct > 1.0) {
      std::fprintf(stderr,
                   "%zu endpoints: failover divergence %.3f%% exceeds 1%%\n",
                   num_endpoints, divergence_pct);
      ok = false;
    }
  }

  if (!json.WriteTo(json_path)) return 1;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
