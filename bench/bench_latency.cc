// Latency observability: per-stage tail decomposition, the coalescing-
// opportunity meter, and the flight recorder's overhead. Not a paper
// figure — this validates the observability PR's acceptance invariants on
// the same simulated-market workload as bench_throughput:
//
//   build/bench/bench_latency [--call_latency_us=2000] [--repeats=4]
//                             [--trials=2] [--max_overhead_pct=5]
//                             [--max_gap_pct=5] [--json=...]
//
// Section 1: per-stage tail decomposition — e2e and per-stage p50/p99
//            (from the registry's HDR histograms) at 1/8/32 client
//            threads; billing identical at every thread count. Self-gate:
//            the wall-stage sums must account for the measured end-to-end
//            latency within --max_gap_pct (the decomposition's honesty
//            check — a stage the decomposition forgot shows up as a gap).
// Section 2: coalescing opportunity — threads race the SAME footprint
//            through one client (plan cache and SQR off, so every thread's
//            point calls hit the market byte-identical and concurrent).
//            Self-gate: the meter must report at least one coalescable
//            transaction (ROADMAP item 1's baseline measurement).
// Section 3: flight-recorder overhead — the Section 1 workload at 8
//            threads with the recorder on vs off. Self-gate: the recorder
//            (a fetch_add plus one pre-rendered JSON string per query) may
//            cost at most --max_overhead_pct of qps.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/driver.h"
#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/latency.h"
#include "obs/metrics.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;
using exec::QueryReport;

constexpr int64_t kNumStations = 128;
constexpr int64_t kNumDates = 30;
constexpr int64_t kStationsPerQuery = 4;

constexpr const char* kBindSql =
    "SELECT Temperature FROM CityMap, Weather "
    "WHERE CityId >= ? AND CityId <= ? AND "
    "CityMap.StationID = Weather.StationID AND "
    "Weather.Country = 'US' AND Date >= 1 AND Date <= 30";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  const LoadFlags flags = ParseLoadFlags(argc, argv, /*latency_us=*/2000,
                                         /*repeats=*/4, /*threads=*/8,
                                         /*trials=*/2);
  const int64_t latency_us = flags.call_latency_us;
  const int64_t repeats = flags.repeats;
  const int64_t trials = flags.trials;
  const int64_t max_overhead_pct = FlagOr(argc, argv, "max_overhead_pct", 5);
  const int64_t max_gap_pct = FlagOr(argc, argv, "max_gap_pct", 5);
  const std::string& json_path = flags.json_path;

  catalog::Catalog cat;
  {
    Status st = cat.RegisterDataset(DatasetDef{"WHW", 1.0, 10});
    assert(st.ok());
    (void)st;
  }
  TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      ColumnDef::Free("Country", ValueType::kString,
                      AttrDomain::Categorical({"US"})),
      // Bound: every plan goes through the bind-join path and the streams
      // stay disjoint at the call level (see bench_throughput).
      ColumnDef::Bound("StationID", ValueType::kInt64,
                       AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("Date", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumDates)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kNumStations * kNumDates;
  {
    Status st = cat.RegisterTable(weather);
    assert(st.ok());
    (void)st;
  }
  TableDef citymap;
  citymap.name = "CityMap";
  citymap.is_local = true;
  citymap.columns = {
      ColumnDef::Free("CityId", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations))};
  citymap.cardinality = kNumStations;
  {
    Status st = cat.RegisterTable(citymap);
    assert(st.ok());
    (void)st;
  }
  market::DataMarket market(&cat);
  {
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 1000 + d))});
      }
    }
    Status st = market.HostTable("Weather", std::move(rows));
    assert(st.ok());
    (void)st;
  }
  std::vector<Row> city_rows;
  for (int64_t i = 1; i <= kNumStations; ++i) {
    city_rows.push_back(Row{Value(i), Value(i)});
  }

  // Disjoint streams: footprint f covers stations [f*4+1, f*4+4].
  std::vector<std::vector<Value>> footprints;
  for (int64_t f = 0; f < kNumStations / kStationsPerQuery; ++f) {
    const int64_t lo = f * kStationsPerQuery + 1;
    footprints.push_back(
        {Value(lo), Value(lo + kStationsPerQuery - 1)});
  }
  const size_t total_queries =
      footprints.size() * static_cast<size_t>(repeats);

  const auto new_client = [&](bool recorder_on) {
    PayLessConfig config;
    config.max_parallel_calls = 1;
    // Frozen uniform estimates: billing identical at every thread count
    // (see bench_throughput for why learning would break that).
    config.stats_kind = stats::StatsKind::kUniform;
    config.enable_flight_recorder = recorder_on;
    auto client = std::make_unique<PayLess>(&cat, &market, config);
    Status st = client->LoadLocalTable("CityMap", city_rows);
    assert(st.ok());
    (void)st;
    client->connector()->SetSimulatedLatencyMicros(latency_us);
    return client;
  };

  // Runs every stream (repeats per footprint, streams claimed whole) on
  // `threads` workers; returns wall ms and accumulates e2e/stage sums.
  const auto run_streams = [&](PayLess* client, int threads,
                               int64_t* sum_e2e_us, int64_t* sum_stage_us,
                               bool* ok) {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::atomic<int64_t> e2e_total{0};
    std::atomic<int64_t> stage_total{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t f = next.fetch_add(1); f < footprints.size();
             f = next.fetch_add(1)) {
          for (int64_t r = 0; r < repeats; ++r) {
            const Result<QueryReport> report =
                client->QueryWithReport(kBindSql, footprints[f]);
            if (!report.ok() || !report->ok()) {
              failed.store(true);
              return;
            }
            e2e_total.fetch_add(report->latency_us);
            // The WALL stages partition the end-to-end path; the detail
            // stages (admission/rtt/backoff) overlap them and are excluded
            // from the honesty sum.
            int64_t wall = 0;
            for (int s = 0; s < obs::kNumWallStages; ++s) {
              wall += report->stage_micros[s];
            }
            stage_total.fetch_add(wall);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double wall_ms = MillisSince(start);
    *ok = !failed.load();
    if (sum_e2e_us != nullptr) *sum_e2e_us = e2e_total.load();
    if (sum_stage_us != nullptr) *sum_stage_us = stage_total.load();
    return wall_ms;
  };

  BenchJson json;
  json.Meta("bench", std::string("latency"));
  json.Meta("streams", static_cast<int64_t>(footprints.size()));
  json.Meta("repeats", repeats);
  json.Meta("total_queries", static_cast<int64_t>(total_queries));
  json.Meta("call_latency_us", latency_us);

  // ---- Section 1: per-stage tail decomposition at 1/8/32 threads.
  std::printf("# bench_latency: %zu streams x %lld repeats = %zu queries, "
              "call latency %lld us\n",
              footprints.size(), static_cast<long long>(repeats),
              total_queries, static_cast<long long>(latency_us));
  std::printf("# per-stage decomposition (best of %lld)\n",
              static_cast<long long>(trials));
  std::printf("# threads qps e2e_p50 e2e_p99 fetch_p50 fetch_p99 "
              "plan_p50 plan_p99 eval_p50 eval_p99 gap_pct\n");
  double worst_gap_pct = 0.0;
  int64_t tx_1 = -1;
  for (const int threads : {1, 8, 32}) {
    double best_wall_ms = 0.0;
    int64_t total_tx = -1;
    double gap_pct = 0.0;
    obs::MetricsRegistry* metrics = nullptr;
    std::unique_ptr<PayLess> kept;
    for (int64_t trial = 0; trial < trials; ++trial) {
      auto client = new_client(/*recorder_on=*/true);
      int64_t sum_e2e = 0, sum_stage = 0;
      bool ok = false;
      const double wall_ms =
          run_streams(client.get(), threads, &sum_e2e, &sum_stage, &ok);
      if (!ok) {
        std::fprintf(stderr, "query failed at %d threads\n", threads);
        return 1;
      }
      total_tx = client->meter().total_transactions();
      if (tx_1 < 0) tx_1 = total_tx;
      if (total_tx != tx_1) {
        std::fprintf(stderr,
                     "BILLING DIVERGED: %lld transactions at %d threads vs "
                     "%lld at 1 thread\n",
                     static_cast<long long>(total_tx), threads,
                     static_cast<long long>(tx_1));
        return 1;
      }
      if (trial == 0 || wall_ms < best_wall_ms) {
        best_wall_ms = wall_ms;
        gap_pct = sum_e2e > 0
                      ? 100.0 * std::abs(static_cast<double>(sum_e2e) -
                                         static_cast<double>(sum_stage)) /
                            static_cast<double>(sum_e2e)
                      : 0.0;
        kept = std::move(client);  // its histograms feed the percentiles
        metrics = &kept->observability()->metrics;
      }
    }
    worst_gap_pct = std::max(worst_gap_pct, gap_pct);
    obs::LatencyHistogram* e2e =
        metrics->GetLatencyHistogram("payless_latency_e2e_micros");
    obs::LatencyHistogram* fetch =
        metrics->GetLatencyHistogram("payless_stage_fetch_micros");
    obs::LatencyHistogram* plan =
        metrics->GetLatencyHistogram("payless_stage_parse_plan_micros");
    obs::LatencyHistogram* eval =
        metrics->GetLatencyHistogram("payless_stage_local_eval_micros");
    const double qps =
        1000.0 * static_cast<double>(total_queries) / best_wall_ms;
    std::printf("%d %.1f %lld %lld %lld %lld %lld %lld %lld %lld %.2f\n",
                threads, qps,
                static_cast<long long>(e2e->ValueAtQuantile(0.5)),
                static_cast<long long>(e2e->ValueAtQuantile(0.99)),
                static_cast<long long>(fetch->ValueAtQuantile(0.5)),
                static_cast<long long>(fetch->ValueAtQuantile(0.99)),
                static_cast<long long>(plan->ValueAtQuantile(0.5)),
                static_cast<long long>(plan->ValueAtQuantile(0.99)),
                static_cast<long long>(eval->ValueAtQuantile(0.5)),
                static_cast<long long>(eval->ValueAtQuantile(0.99)),
                gap_pct);
    json.BeginRow("decomposition");
    json.Field("threads", static_cast<int64_t>(threads));
    json.Field("qps", qps);
    json.Field("total_transactions", total_tx);
    json.Field("e2e_p50_us", e2e->ValueAtQuantile(0.5));
    json.Field("e2e_p99_us", e2e->ValueAtQuantile(0.99));
    json.Field("fetch_p50_us", fetch->ValueAtQuantile(0.5));
    json.Field("fetch_p99_us", fetch->ValueAtQuantile(0.99));
    json.Field("plan_p50_us", plan->ValueAtQuantile(0.5));
    json.Field("plan_p99_us", plan->ValueAtQuantile(0.99));
    json.Field("eval_p50_us", eval->ValueAtQuantile(0.5));
    json.Field("eval_p99_us", eval->ValueAtQuantile(0.99));
  }
  json.Meta("stage_sum_gap_pct", worst_gap_pct);

  // ---- Section 2: coalescing opportunity — 8 threads race the SAME
  // footprint; plan cache and SQR off so every thread's point calls reach
  // the market. The calls are byte-identical and (at 5000 us simulated
  // RTT) overlap inside the scheduler's in-flight window.
  constexpr int kRacers = 8;
  int64_t coalescable_calls = 0;
  int64_t coalescable_tx = 0;
  {
    PayLessConfig config;
    config.stats_kind = stats::StatsKind::kUniform;
    config.enable_plan_cache = false;
    config.optimizer.use_sqr = false;
    config.max_parallel_calls = 16;
    auto client = std::make_unique<PayLess>(&cat, &market, config);
    Status st = client->LoadLocalTable("CityMap", city_rows);
    assert(st.ok());
    (void)st;
    client->connector()->SetSimulatedLatencyMicros(
        std::max<int64_t>(latency_us, 5000));
    std::atomic<bool> failed{false};
    std::vector<std::thread> racers;
    racers.reserve(kRacers);
    for (int t = 0; t < kRacers; ++t) {
      racers.emplace_back([&] {
        if (!client->Query(kBindSql, footprints[0]).ok()) failed.store(true);
      });
    }
    for (std::thread& r : racers) r.join();
    if (failed.load()) {
      std::fprintf(stderr, "coalescing-section query failed\n");
      return 1;
    }
    obs::MetricsRegistry& m = client->observability()->metrics;
    coalescable_calls =
        m.GetCounter("payless_coalescable_calls_total")->value();
    coalescable_tx =
        m.GetCounter("payless_coalescable_transactions_total")->value();
    std::printf("\n# coalescing opportunity (%d racers, same footprint)\n"
                "# coalescable_calls coalescable_transactions "
                "billed_transactions\n%lld %lld %lld\n",
                kRacers, static_cast<long long>(coalescable_calls),
                static_cast<long long>(coalescable_tx),
                static_cast<long long>(
                    client->meter().total_transactions()));
    json.Meta("coalescable_calls", coalescable_calls);
    json.Meta("coalescable_transactions", coalescable_tx);
  }

  // ---- Section 3: flight-recorder overhead at 8 threads, on vs off.
  double qps_on = 0.0, qps_off = 0.0;
  for (const bool recorder_on : {false, true}) {
    double best_wall_ms = 0.0;
    for (int64_t trial = 0; trial < trials; ++trial) {
      auto client = new_client(recorder_on);
      bool ok = false;
      const double wall_ms =
          run_streams(client.get(), 8, nullptr, nullptr, &ok);
      if (!ok) {
        std::fprintf(stderr, "overhead-section query failed\n");
        return 1;
      }
      if (client->meter().total_transactions() != tx_1) {
        std::fprintf(stderr, "BILLING DIVERGED in overhead section\n");
        return 1;
      }
      if (trial == 0 || wall_ms < best_wall_ms) best_wall_ms = wall_ms;
    }
    const double qps =
        1000.0 * static_cast<double>(total_queries) / best_wall_ms;
    (recorder_on ? qps_on : qps_off) = qps;
  }
  const double recorder_overhead_pct =
      100.0 * (qps_off - qps_on) / qps_off;
  std::printf("\n# flight-recorder overhead (8 threads, best of %lld)\n"
              "# recorder_off_qps recorder_on_qps overhead_pct (gate %lld)\n"
              "%.1f %.1f %.2f\n",
              static_cast<long long>(trials),
              static_cast<long long>(max_overhead_pct), qps_off, qps_on,
              recorder_overhead_pct);
  json.Meta("recorder_off_qps", qps_off);
  json.Meta("recorder_on_qps", qps_on);
  json.Meta("recorder_overhead_pct", recorder_overhead_pct);
  if (!json.WriteTo(json_path)) return 1;

  // Self-gates: a decomposition that does not add up, a meter that saw no
  // opportunity on an overlap-by-construction workload, or a recorder that
  // costs real throughput each fail the bench.
  if (worst_gap_pct > static_cast<double>(max_gap_pct)) {
    std::fprintf(stderr, "FAIL: stage-sum gap %.2f%% exceeds %lld%%\n",
                 worst_gap_pct, static_cast<long long>(max_gap_pct));
    return 1;
  }
  if (coalescable_tx < 1) {
    std::fprintf(stderr, "FAIL: no coalescable transactions metered\n");
    return 1;
  }
  if (recorder_overhead_pct > static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr, "FAIL: recorder overhead %.2f%% exceeds %lld%%\n",
                 recorder_overhead_pct,
                 static_cast<long long>(max_overhead_pct));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
