// Figure 11: influence of the number of tuples per transaction. PayLess vs
// Download All for t in {50, 100, 500}, on real data, TPC-H and TPC-H skew.
// Expected shape: smaller t means more transactions for everyone, but the
// PayLess-vs-Download-All relationship is unchanged.
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

void RunPair(const workload::Bundle& bundle, int64_t t, int64_t reps) {
  std::vector<std::vector<int64_t>> payless_runs, download_runs;
  for (int64_t rep = 0; rep < reps; ++rep) {
    auto payless =
        workload::NewPayLessClient(bundle, workload::PayLessFullConfig());
    auto download = workload::NewDownloadAllClient(bundle);
    payless_runs.push_back(RunCumulative(payless.get(), bundle.queries));
    download_runs.push_back(RunCumulative(download.get(), bundle.queries));
  }
  PrintSeries("PayLess t=" + std::to_string(t), MeanSeries(payless_runs));
  PrintSeries("Download All t=" + std::to_string(t),
              MeanSeries(download_runs));
}

int Main(int argc, char** argv) {
  const int64_t reps = FlagOr(argc, argv, "reps", 1);
  const int64_t real_q = FlagOr(argc, argv, "real_q", 100);
  const int64_t tpch_q = FlagOr(argc, argv, "tpch_q", 5);
  const int64_t page_sizes[] = {50, 100, 500};

  std::printf("=== Figure 11a: real data, varying t ===\n");
  for (const int64_t t : page_sizes) {
    workload::RealDataOptions options;
    options.scale = 0.05;
    options.tuples_per_transaction = t;
    auto bundle = workload::MakeRealBundle(
        options, static_cast<size_t>(real_q), /*query_seed=*/1);
    RunPair(*bundle, t, reps);
  }

  std::printf("=== Figure 11b: TPC-H, varying t ===\n");
  for (const int64_t t : page_sizes) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.tuples_per_transaction = t;
    auto bundle = workload::MakeTpchBundle(
        options, static_cast<size_t>(tpch_q), /*query_seed=*/2);
    RunPair(*bundle, t, reps);
  }

  std::printf("=== Figure 11c: TPC-H skew, varying t ===\n");
  for (const int64_t t : page_sizes) {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 1.0;
    options.tuples_per_transaction = t;
    auto bundle = workload::MakeTpchBundle(
        options, static_cast<size_t>(tpch_q), /*query_seed=*/3);
    RunPair(*bundle, t, reps);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
