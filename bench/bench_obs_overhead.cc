// Observability overhead. Not a paper figure — this prices the spend
// observability subsystem itself: the same multi-client bind-join workload
// as bench_throughput, served in four configurations — bare (metrics and
// cost ledger only; they are always on, the cheap handle-based part), with
// estimator-accuracy tracking (q-error recording at every feedback point),
// with full tracing plus a JSONL trace sink on top, and finally with
// savings accounting (a counterfactual optimizer pass per planned query)
// plus a background time-series sampler over the shared registry, and
// finally the durable workload journal (a CRC-framed record appended per
// admitted query) on top of everything. The gaps price each layer
// separately; the acceptance bars are that the fully loaded configuration
// stays within a few percent of the bare one, and the journal itself costs
// at most --max_journal_overhead_pct relative to the configuration it was
// added to.
//
//   build/bench/bench_obs_overhead [--call_latency_us=2000] [--repeats=4]
//                                  [--threads=8] [--trials=3]
//                                  [--max_overhead_pct=5]
//                                  [--max_journal_overhead_pct=2]
//                                  [--trace_out=/dev/null]
//                                  [--json=BENCH_obs_overhead.json]
//
// Each configuration runs `trials` times and keeps its best qps (the
// least-noise estimate); the bench exits non-zero when the fully traced
// run is more than --max_overhead_pct slower than the bare one.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "bench/driver.h"
#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/observability.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/workload_journal.h"

namespace payless::bench {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

constexpr int64_t kNumStations = 128;
constexpr int64_t kNumDates = 30;
constexpr int64_t kStationsPerQuery = 4;

constexpr const char* kBindSql =
    "SELECT Temperature FROM CityMap, Weather "
    "WHERE CityId >= ? AND CityId <= ? AND "
    "CityMap.StationID = Weather.StationID AND "
    "Weather.Country = 'US' AND Date >= 1 AND Date <= 30";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  const LoadFlags flags = ParseLoadFlags(argc, argv, /*latency_us=*/2000,
                                         /*repeats=*/4, /*threads=*/8,
                                         /*trials=*/3);
  const int64_t latency_us = flags.call_latency_us;
  const int64_t repeats = flags.repeats;
  const int64_t threads = flags.threads;
  const int64_t trials = flags.trials;
  const int64_t max_overhead_pct = FlagOr(argc, argv, "max_overhead_pct", 5);
  const int64_t max_journal_overhead_pct =
      FlagOr(argc, argv, "max_journal_overhead_pct", 2);
  const std::string trace_out =
      StringFlagOr(argc, argv, "trace_out", "/dev/null");
  const std::string& json_path = flags.json_path;

  catalog::Catalog cat;
  {
    Status st = cat.RegisterDataset(DatasetDef{"WHW", 1.0, 10});
    assert(st.ok());
    (void)st;
  }
  TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      ColumnDef::Free("Country", ValueType::kString,
                      AttrDomain::Categorical({"US"})),
      ColumnDef::Bound("StationID", ValueType::kInt64,
                       AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("Date", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumDates)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kNumStations * kNumDates;
  {
    Status st = cat.RegisterTable(weather);
    assert(st.ok());
    (void)st;
  }
  TableDef citymap;
  citymap.name = "CityMap";
  citymap.is_local = true;
  citymap.columns = {
      ColumnDef::Free("CityId", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations)),
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kNumStations))};
  citymap.cardinality = kNumStations;
  {
    Status st = cat.RegisterTable(citymap);
    assert(st.ok());
    (void)st;
  }

  market::DataMarket market(&cat);
  {
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 1000 + d))});
      }
    }
    Status st = market.HostTable("Weather", std::move(rows));
    assert(st.ok());
    (void)st;
  }
  std::vector<Row> city_rows;
  for (int64_t i = 1; i <= kNumStations; ++i) {
    city_rows.push_back(Row{Value(i), Value(i)});
  }

  struct Job {
    std::vector<Value> params;
  };
  std::vector<std::vector<Job>> streams;
  for (int64_t f = 0; f < kNumStations / kStationsPerQuery; ++f) {
    std::vector<Job> stream;
    const int64_t lo = f * kStationsPerQuery + 1;
    for (int64_t r = 0; r < repeats; ++r) {
      stream.push_back(Job{{Value(lo), Value(lo + kStationsPerQuery - 1)}});
    }
    streams.push_back(std::move(stream));
  }
  const size_t total_queries = streams.size() * static_cast<size_t>(repeats);

  // One timed pass of the whole workload against a fresh client; returns
  // qps, or a negative value when a query failed.
  const auto run_once = [&](bool accuracy, bool tracing, bool savings,
                            obs::Observability* shared,
                            obs::TimeSeriesSampler* sampler,
                            obs::WorkloadJournal* journal) {
    PayLessConfig config;
    config.stats_kind = stats::StatsKind::kUniform;  // see bench_throughput
    config.max_parallel_calls = 1;
    config.enable_accuracy_tracking = accuracy;
    config.enable_tracing = tracing;
    config.enable_savings_accounting = savings;
    config.observability = shared;
    config.workload_journal = journal;
    auto client = std::make_unique<PayLess>(&cat, &market, config);
    {
      Status st = client->LoadLocalTable("CityMap", city_rows);
      assert(st.ok());
      (void)st;
    }
    client->connector()->SetSimulatedLatencyMicros(latency_us);
    if (sampler != nullptr) sampler->Start();

    std::atomic<size_t> next_stream{0};
    std::atomic<bool> failed{false};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int64_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t s = next_stream.fetch_add(1); s < streams.size();
             s = next_stream.fetch_add(1)) {
          for (const Job& job : streams[s]) {
            const auto result = client->Query(kBindSql, job.params);
            if (!result.ok()) {
              std::fprintf(stderr, "stream %zu: %s\n", s,
                           result.status().ToString().c_str());
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    const double wall_ms = MillisSince(start);
    if (sampler != nullptr) sampler->Stop();
    if (failed.load()) return -1.0;
    return 1000.0 * static_cast<double>(total_queries) / wall_ms;
  };

  std::printf("# bench_obs_overhead: %zu streams x %lld repeats = %zu "
              "queries, %lld threads, call latency %lld us, best of %lld\n",
              streams.size(), static_cast<long long>(repeats), total_queries,
              static_cast<long long>(threads),
              static_cast<long long>(latency_us),
              static_cast<long long>(trials));

  // Full pipeline for the traced configuration: per-query trace with
  // per-call spans, serialized to a JSONL sink. Metrics and the cost
  // ledger are on in BOTH configurations — they are not the knob.
  obs::Observability shared;
  auto sink = obs::JsonlTraceSink::Open(trace_out);
  if (!sink.ok()) {
    std::fprintf(stderr, "cannot open trace sink '%s': %s\n",
                 trace_out.c_str(), sink.status().ToString().c_str());
    return 1;
  }
  shared.trace_sink = sink->get();

  // The fully loaded configuration adds the counterfactual pricing pass
  // and a fast background sampler (100x the default period) over the
  // shared registry — both live for the whole run.
  obs::TimeSeriesSampler::Options sampler_options;
  sampler_options.period_micros = 10'000;
  obs::TimeSeriesSampler sampler(&shared.metrics, sampler_options);

  // The journaled configuration appends one durable record per admitted
  // query on top of the fully loaded stack. No fsync per append (the
  // journal's default) — durability is at OS-flush granularity, which is
  // the configuration the <= --max_journal_overhead_pct budget prices.
  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() / "payless_bench_obs_journal";
  std::filesystem::remove_all(journal_dir);
  obs::WorkloadJournalOptions journal_options;
  journal_options.dir = journal_dir.string();
  auto journal = obs::WorkloadJournal::Open(journal_options);
  if (!journal.ok()) {
    std::fprintf(stderr, "cannot open workload journal in '%s': %s\n",
                 journal_dir.string().c_str(),
                 journal.status().ToString().c_str());
    return 1;
  }

  // Best-of-N per configuration, trials interleaved so slow machine phases
  // (thermal, noisy neighbours) hit every configuration equally.
  double base_qps = 0.0, accuracy_qps = 0.0, traced_qps = 0.0,
         full_qps = 0.0, journal_qps = 0.0;
  for (int64_t i = 0; i < trials; ++i) {
    const double base = run_once(/*accuracy=*/false, /*tracing=*/false,
                                 /*savings=*/false, nullptr, nullptr, nullptr);
    if (base < 0.0) return 1;
    base_qps = std::max(base_qps, base);
    const double accuracy =
        run_once(/*accuracy=*/true, /*tracing=*/false,
                 /*savings=*/false, nullptr, nullptr, nullptr);
    if (accuracy < 0.0) return 1;
    accuracy_qps = std::max(accuracy_qps, accuracy);
    const double traced = run_once(/*accuracy=*/true, /*tracing=*/true,
                                   /*savings=*/false, &shared, nullptr,
                                   nullptr);
    if (traced < 0.0) return 1;
    traced_qps = std::max(traced_qps, traced);
    const double full = run_once(/*accuracy=*/true, /*tracing=*/true,
                                 /*savings=*/true, &shared, &sampler, nullptr);
    if (full < 0.0) return 1;
    full_qps = std::max(full_qps, full);
    const double journaled =
        run_once(/*accuracy=*/true, /*tracing=*/true,
                 /*savings=*/true, &shared, &sampler, journal->get());
    if (journaled < 0.0) return 1;
    journal_qps = std::max(journal_qps, journaled);
  }

  const double accuracy_pct = 100.0 * (base_qps - accuracy_qps) / base_qps;
  const double traced_pct = 100.0 * (base_qps - traced_qps) / base_qps;
  const double overhead_pct = 100.0 * (base_qps - full_qps) / base_qps;
  // The journal is priced against the configuration it was added to, not
  // against bare — its budget must not be eaten by the other layers.
  const double journal_pct = 100.0 * (full_qps - journal_qps) / full_qps;
  std::printf("# config qps\n");
  std::printf("bare %.1f\n", base_qps);
  std::printf("accuracy %.1f\n", accuracy_qps);
  std::printf("accuracy+traced+sink %.1f\n", traced_qps);
  std::printf("accuracy+traced+savings+sampler %.1f\n", full_qps);
  std::printf("accuracy+traced+savings+sampler+journal %.1f\n", journal_qps);
  std::printf("# accuracy overhead: %.2f%%, traced overhead: %.2f%%, "
              "full overhead: %.2f%% (budget %lld%%), journal overhead: "
              "%.2f%% (budget %lld%%)\n",
              accuracy_pct, traced_pct, overhead_pct,
              static_cast<long long>(max_overhead_pct), journal_pct,
              static_cast<long long>(max_journal_overhead_pct));
  const obs::WorkloadJournal::Stats journal_stats = (*journal)->stats();
  std::printf("# journal: %lld records in %lld segments, %lld bytes\n",
              static_cast<long long>(journal_stats.records),
              static_cast<long long>(journal_stats.segments),
              static_cast<long long>(journal_stats.bytes));

  BenchJson json;
  json.Meta("bench", std::string("obs_overhead"));
  json.Meta("total_queries", static_cast<int64_t>(total_queries));
  json.Meta("threads", threads);
  json.Meta("call_latency_us", latency_us);
  json.Meta("trials", trials);
  json.Meta("untraced_qps", base_qps);
  json.Meta("accuracy_qps", accuracy_qps);
  json.Meta("traced_qps", traced_qps);
  json.Meta("full_qps", full_qps);
  json.Meta("journal_qps", journal_qps);
  json.Meta("accuracy_overhead_pct", accuracy_pct);
  json.Meta("traced_overhead_pct", traced_pct);
  json.Meta("overhead_pct", overhead_pct);
  json.Meta("journal_overhead_pct", journal_pct);
  json.Meta("journal_records", journal_stats.records);
  json.Meta("journal_bytes", journal_stats.bytes);
  if (!json.WriteTo(json_path)) return 1;

  if (overhead_pct > static_cast<double>(max_overhead_pct)) {
    std::fprintf(stderr,
                 "observability overhead %.2f%% exceeds budget %lld%%\n",
                 overhead_pct, static_cast<long long>(max_overhead_pct));
    return 1;
  }
  if (journal_pct > static_cast<double>(max_journal_overhead_pct)) {
    std::fprintf(stderr,
                 "workload journal overhead %.2f%% exceeds budget %lld%%\n",
                 journal_pct,
                 static_cast<long long>(max_journal_overhead_pct));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
