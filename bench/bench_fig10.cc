// Figure 10: overall effectiveness. Cumulative data-market transactions vs
// number of queries, for PayLess, PayLess w/o SQR, Minimizing Calls [27],
// and Download All, over (a) the real WHW/EHR workload, (b) TPC-H and
// (c) TPC-H skew (zipf = 1).
//
// Expected shape (paper): on real data PayLess sits ~1 order below
// Minimizing Calls and ~2 orders below Download All; on TPC-H the non-
// rewriting systems climb past Download All while PayLess stays below it
// until the whole dataset is effectively cached, then flattens.
#include <cstdio>
#include <memory>

#include "bench/driver.h"

namespace payless::bench {
namespace {

void RunAllSystems(const workload::Bundle& bundle, int64_t reps) {
  std::vector<std::vector<int64_t>> payless_runs, nosqr_runs, mincalls_runs,
      download_runs;
  for (int64_t rep = 0; rep < reps; ++rep) {
    auto payless =
        workload::NewPayLessClient(bundle, workload::PayLessFullConfig());
    auto nosqr =
        workload::NewPayLessClient(bundle, workload::PayLessNoSqrConfig());
    auto mincalls =
        workload::NewPayLessClient(bundle, workload::MinimizingCallsConfig());
    auto download = workload::NewDownloadAllClient(bundle);
    payless_runs.push_back(RunCumulative(payless.get(), bundle.queries));
    nosqr_runs.push_back(RunCumulative(nosqr.get(), bundle.queries));
    mincalls_runs.push_back(RunCumulative(mincalls.get(), bundle.queries));
    download_runs.push_back(RunCumulative(download.get(), bundle.queries));
  }
  PrintSeries("PayLess", MeanSeries(payless_runs));
  PrintSeries("PayLess w/o SQR", MeanSeries(nosqr_runs));
  PrintSeries("Minimizing Calls", MeanSeries(mincalls_runs));
  PrintSeries("Download All", MeanSeries(download_runs));
}

int Main(int argc, char** argv) {
  // Defaults match the paper's q (200 real / down-scaled TPC-H); fewer
  // repetitions than the paper's 30 — the curves are already stable.
  const int64_t reps = FlagOr(argc, argv, "reps", 2);
  const int64_t real_q = FlagOr(argc, argv, "real_q", 200);
  const int64_t tpch_q = FlagOr(argc, argv, "tpch_q", 5);

  std::printf("=== Figure 10a: real data (WHW + EHR), q=%lld/template ===\n",
              static_cast<long long>(real_q));
  {
    workload::RealDataOptions options;
    options.scale = 0.1;
    options.seed = 42;
    auto bundle = workload::MakeRealBundle(
        options, static_cast<size_t>(real_q), /*query_seed=*/1);
    RunAllSystems(*bundle, reps);
  }

  std::printf("=== Figure 10b: TPC-H, q=%lld/template ===\n",
              static_cast<long long>(tpch_q));
  {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 0.0;
    auto bundle = workload::MakeTpchBundle(
        options, static_cast<size_t>(tpch_q), /*query_seed=*/2);
    RunAllSystems(*bundle, reps);
  }

  std::printf("=== Figure 10c: TPC-H skew (zipf=1), q=%lld/template ===\n",
              static_cast<long long>(tpch_q));
  {
    workload::TpchOptions options;
    options.scale_factor = 0.002;
    options.zipf = 1.0;
    auto bundle = workload::MakeTpchBundle(
        options, static_cast<size_t>(tpch_q), /*query_seed=*/3);
    RunAllSystems(*bundle, reps);
  }
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
