// Ablation benches for the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//   (a) statistics backend — multidimensional feedback histogram (ISOMER
//       role) vs per-dimension independent histograms vs frozen uniform
//       (§3 promises to "test other updatable statistics"),
//   (b) batched multi-query optimization vs sequential execution (§7).
#include <cstdio>

#include "bench/driver.h"

namespace payless::bench {
namespace {

void StatsAblation(int64_t real_q) {
  std::printf("=== Ablation A: statistics backend (real data, q=%lld) ===\n",
              static_cast<long long>(real_q));
  workload::RealDataOptions options;
  options.scale = 0.05;
  auto bundle = workload::MakeRealBundle(options,
                                         static_cast<size_t>(real_q), 7);
  const struct {
    const char* name;
    stats::StatsKind kind;
  } variants[] = {
      {"feedback-histogram (ISOMER role)",
       stats::StatsKind::kFeedbackHistogram},
      {"independent 1-d histograms", stats::StatsKind::kIndependentHistograms},
      {"frozen uniform", stats::StatsKind::kUniform},
  };
  for (const auto& variant : variants) {
    exec::PayLessConfig config = workload::PayLessFullConfig();
    config.stats_kind = variant.kind;
    auto client = workload::NewPayLessClient(*bundle, config);
    const std::vector<int64_t> run =
        RunCumulative(client.get(), bundle->queries);
    std::printf("%-36s total=%lld transactions\n", variant.name,
                static_cast<long long>(run.back()));
  }
  std::printf("\n");
}

void BatchAblation(int64_t real_q) {
  std::printf("=== Ablation B: batched MQO vs sequential (real data, "
              "q=%lld) ===\n",
              static_cast<long long>(real_q));
  workload::RealDataOptions options;
  options.scale = 0.05;
  auto bundle = workload::MakeRealBundle(options,
                                         static_cast<size_t>(real_q), 8);
  // Sequential.
  {
    auto client =
        workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
    const std::vector<int64_t> run =
        RunCumulative(client.get(), bundle->queries);
    std::printf("%-36s total=%lld transactions\n", "sequential",
                static_cast<long long>(run.back()));
  }
  // Batched in groups of 25 (users defer their queries, §7).
  {
    auto client =
        workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
    size_t merged = 0;
    for (size_t start = 0; start < bundle->queries.size(); start += 25) {
      std::vector<exec::BatchQuery> batch;
      for (size_t i = start;
           i < std::min(start + 25, bundle->queries.size()); ++i) {
        batch.push_back(exec::BatchQuery{bundle->queries[i].sql,
                                         bundle->queries[i].params});
      }
      auto report = client->QueryBatch(batch);
      if (!report.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     report.status().ToString().c_str());
        std::abort();
      }
      merged += report->merged_groups;
    }
    std::printf("%-36s total=%lld transactions (%zu merged groups)\n",
                "batched (25-query batches)",
                static_cast<long long>(client->meter().total_transactions()),
                merged);
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  const int64_t real_q = FlagOr(argc, argv, "real_q", 40);
  StatsAblation(real_q);
  BatchAblation(real_q);
  return 0;
}

}  // namespace
}  // namespace payless::bench

int main(int argc, char** argv) { return payless::bench::Main(argc, argv); }
