// §5 "Efficiency": the paper reports that PayLess's optimization and local
// execution finish within milliseconds. google-benchmark microbenchmarks of
// the parse + bind + optimize pipeline (cold and warm semantic store) and of
// remainder-query generation.
#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "exec/payless.h"
#include "semstore/remainder.h"
#include "sql/parser.h"
#include "workload/bundle.h"

namespace payless::bench {
namespace {

struct Fixture {
  std::unique_ptr<workload::Bundle> bundle;
  std::unique_ptr<exec::PayLess> warm_client;

  Fixture() {
    workload::RealDataOptions options;
    options.scale = 0.05;
    bundle = workload::MakeRealBundle(options, /*per_template=*/20,
                                      /*query_seed=*/5);
    // Warm the semantic store and the statistics with half the workload.
    warm_client =
        workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
    for (size_t i = 0; i < bundle->queries.size() / 2; ++i) {
      const auto& q = bundle->queries[i];
      const auto result = warm_client->Query(q.sql, q.params);
      assert(result.ok());
      (void)result;
    }
  }

  static Fixture& Get() {
    static Fixture fixture;
    return fixture;
  }
};

void BM_ParseAndBind(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const auto& query = f.bundle->queries.front();
  for (auto _ : state) {
    auto stmt = sql::Parse(query.sql);
    assert(stmt.ok());
    auto bound = sql::Bind(*stmt, f.bundle->catalog, query.params);
    assert(bound.ok());
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_ParseAndBind);

void BM_OptimizeWarmStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  // Optimize each workload query in turn against the warmed store.
  std::vector<sql::BoundQuery> bound_queries;
  for (const auto& q : f.bundle->queries) {
    auto stmt = sql::Parse(q.sql);
    auto bound = sql::Bind(*stmt, f.bundle->catalog, q.params);
    bound_queries.push_back(std::move(*bound));
  }
  const core::Optimizer optimizer(
      &f.bundle->catalog, &f.warm_client->stats(), &f.warm_client->store(),
      workload::PayLessFullConfig().optimizer);
  size_t i = 0;
  for (auto _ : state) {
    auto result = optimizer.Optimize(bound_queries[i % bound_queries.size()]);
    assert(result.ok());
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_OptimizeWarmStore);

void BM_RemainderGeneration(benchmark::State& state) {
  // A 2-d query with `holes` stored views, Fig. 7 style.
  const int64_t holes = state.range(0);
  const Box query({Interval(0, 1000), Interval(0, 1000)});
  std::vector<Box> stored;
  for (int64_t i = 0; i < holes; ++i) {
    const int64_t x = (i * 137) % 900;
    const int64_t y = (i * 211) % 900;
    stored.push_back(Box({Interval(x, x + 80), Interval(y, y + 80)}));
  }
  std::vector<semstore::DimSpec> dims(2);
  dims[0].mode = semstore::DimSpec::Mode::kNumeric;
  dims[0].domain = Interval(0, 1000);
  dims[1] = dims[0];
  semstore::RemainderOptions options;
  for (auto _ : state) {
    auto result = semstore::GenerateRemainder(
        query, stored, dims, [](const Box& b) {
          return static_cast<double>(b.Volume()) / 1000.0;
        },
        options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RemainderGeneration)->Arg(2)->Arg(5)->Arg(10);

void BM_EndToEndQueryWarm(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  size_t i = f.bundle->queries.size() / 2;
  for (auto _ : state) {
    const auto& q = f.bundle->queries[i % f.bundle->queries.size()];
    auto result = f.warm_client->Query(q.sql, q.params);
    assert(result.ok());
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_EndToEndQueryWarm);

}  // namespace
}  // namespace payless::bench

BENCHMARK_MAIN();
