// Federated TPC-H: the paper's synthetic workload (§5). Nation and Region
// live in the buyer's local DBMS; the six fact/dimension tables are sold in
// the market. The example runs one instance of every TPC-H-style template
// through PayLess, prints how each plan mixes local tables, cached data,
// range calls and bind joins, and compares the total bill against
// Download All and the call-minimizing optimizer of [27].
#include <cassert>
#include <cstdio>

#include "workload/bundle.h"

using namespace payless;  // NOLINT: example brevity

int main() {
  workload::TpchOptions options;
  options.scale_factor = 0.002;
  options.zipf = 0.0;
  auto bundle =
      workload::MakeTpchBundle(options, /*per_template=*/1, /*query_seed=*/4);

  auto payless =
      workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
  auto min_calls =
      workload::NewPayLessClient(*bundle, workload::MinimizingCallsConfig());
  auto download_all = workload::NewDownloadAllClient(*bundle);

  std::printf("%-4s %7s %8s %7s  %s\n", "tmpl", "rows", "txn", "calls",
              "plan");
  for (const auto& query : bundle->queries) {
    Result<exec::QueryReport> report =
        payless->QueryWithReport(query.sql, query.params);
    assert(report.ok());
    std::string sketch;
    for (const auto& access : report->plan.accesses) {
      if (!sketch.empty()) sketch += " -> ";
      sketch += core::AccessKindName(access.kind);
    }
    std::printf("T%-3zu %7zu %8lld %7lld  %s\n", query.template_id + 1,
                report->result.num_rows(),
                static_cast<long long>(report->transactions_spent),
                static_cast<long long>(report->exec.calls), sketch.c_str());

    assert(min_calls->Query(query.sql, query.params).ok());
    assert(download_all->Query(query.sql, query.params).ok());
  }

  std::printf("\nTotals over %zu queries:\n", bundle->queries.size());
  std::printf("  PayLess          : %6lld transactions\n",
              static_cast<long long>(payless->meter().total_transactions()));
  std::printf("  Minimizing Calls : %6lld transactions\n",
              static_cast<long long>(min_calls->meter().total_transactions()));
  std::printf("  Download All     : %6lld transactions\n",
              static_cast<long long>(
                  download_all->meter().total_transactions()));
  return 0;
}
