// Consistency levels (§4.3): weak vs X-week vs full consistency when the
// dataset receives periodic releases. A small Pollution-style table gets a
// new batch of rows every "week"; the same COUNT query is issued after each
// release through three PayLess instances configured with the three
// levels. Weak consistency reuses everything it ever fetched (cheapest,
// stalest), full consistency re-buys every time (freshest, priciest), and
// 2-week consistency sits in between.
#include <cassert>
#include <cstdio>

#include "exec/payless.h"
#include "market/data_market.h"

using namespace payless;  // NOLINT: example brevity

namespace {

std::vector<Row> WeekBatch(int64_t week, int64_t rows_per_week) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < rows_per_week; ++i) {
    const int64_t rank = week * rows_per_week + i + 1;
    rows.push_back(Row{Value(10000 + rank % 400), Value(rank)});
  }
  return rows;
}

}  // namespace

int main() {
  const int64_t kWeeks = 6;
  const int64_t kRowsPerWeek = 150;

  catalog::Catalog cat;
  Status st = cat.RegisterDataset(catalog::DatasetDef{"EHR", 1.0, 100});
  assert(st.ok());
  catalog::TableDef pollution;
  pollution.name = "Pollution";
  pollution.dataset = "EHR";
  pollution.columns = {
      catalog::ColumnDef::Free("ZipCode", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(10000, 10399)),
      catalog::ColumnDef::Free("Rank", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(
                                   1, kWeeks * kRowsPerWeek))};
  pollution.cardinality = kWeeks * kRowsPerWeek;
  st = cat.RegisterTable(pollution);
  assert(st.ok());

  market::DataMarket market(&cat);
  st = market.HostTable("Pollution", WeekBatch(0, kRowsPerWeek));
  assert(st.ok());

  exec::PayLessConfig weak_config;
  weak_config.consistency = exec::ConsistencyLevel::kWeak;
  exec::PayLessConfig xweek_config;
  xweek_config.consistency = exec::ConsistencyLevel::kXWeek;
  xweek_config.consistency_weeks = 2;
  exec::PayLessConfig full_config;
  full_config.consistency = exec::ConsistencyLevel::kFull;

  exec::PayLess weak(&cat, &market, weak_config);
  exec::PayLess xweek(&cat, &market, xweek_config);
  exec::PayLess full(&cat, &market, full_config);

  const std::string query =
      "SELECT COUNT(ZipCode) FROM Pollution "
      "WHERE Pollution.Rank >= 1 AND Pollution.Rank <= 900";

  std::printf("%-5s | %-18s | %-18s | %-18s\n", "week",
              "weak (rows/txn)", "2-week (rows/txn)", "full (rows/txn)");
  const int64_t true_rows_per_week = kRowsPerWeek;
  for (int64_t week = 0; week < kWeeks; ++week) {
    if (week > 0) {
      st = market.AppendRows("Pollution", WeekBatch(week, kRowsPerWeek));
      assert(st.ok());
    }
    weak.SetCurrentWeek(week);
    xweek.SetCurrentWeek(week);
    full.SetCurrentWeek(week);

    const auto run = [&](exec::PayLess& client) {
      Result<exec::QueryReport> report = client.QueryWithReport(query);
      assert(report.ok());
      const int64_t count = report->result.rows()[0][0].AsInt64();
      return std::pair<int64_t, int64_t>{count, report->transactions_spent};
    };
    const auto [weak_rows, weak_txn] = run(weak);
    const auto [x_rows, x_txn] = run(xweek);
    const auto [full_rows, full_txn] = run(full);
    std::printf("%-5lld | %8lld / %-7lld | %8lld / %-7lld | %8lld / %-7lld\n",
                static_cast<long long>(week),
                static_cast<long long>(weak_rows),
                static_cast<long long>(weak_txn),
                static_cast<long long>(x_rows), static_cast<long long>(x_txn),
                static_cast<long long>(full_rows),
                static_cast<long long>(full_txn));
    (void)true_rows_per_week;
  }

  std::printf(
      "\nFull consistency always sees all %lld rows of the latest release\n"
      "and pays every week; weak consistency pays only for data it never\n"
      "saw but keeps answering from (possibly stale) stored results; 2-week\n"
      "consistency re-buys anything older than 2 weeks (§4.3).\n",
      static_cast<long long>(kWeeks * kRowsPerWeek));
  std::printf("\nTotals: weak=%lld txn, 2-week=%lld txn, full=%lld txn\n",
              static_cast<long long>(weak.meter().total_transactions()),
              static_cast<long long>(xweek.meter().total_transactions()),
              static_cast<long long>(full.meter().total_transactions()));
  return 0;
}
