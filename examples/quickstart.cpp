// Quickstart: the smallest complete PayLess setup.
//
// Builds a two-table data market (the Fig. 1 WHW scenario), registers it in
// a catalog with binding patterns and pricing, points PayLess at it, and
// runs the paper's motivating query — daily temperatures of Seattle in June
// 2014 — twice, showing (a) the bind-join plan that costs 2 transactions
// instead of 238 and (b) the second run being free thanks to the semantic
// store.
#include <cassert>
#include <cstdio>

#include "exec/payless.h"
#include "market/data_market.h"

using namespace payless;  // NOLINT: example brevity

int main() {
  // ---- 1. Describe the datasets you registered for (Fig. 2): schemas,
  // binding patterns (all attributes free here), domains, pricing.
  catalog::Catalog cat;
  Status st = cat.RegisterDataset(catalog::DatasetDef{
      "WHW", /*price_per_transaction=*/1.0, /*tuples_per_transaction=*/100});
  assert(st.ok());

  const int64_t kStations = 788;
  std::vector<std::string> cities;
  for (int64_t i = 1; i <= kStations; ++i) {
    cities.push_back(i == 500 ? "Seattle" : "City" + std::to_string(1000 + i));
  }
  std::sort(cities.begin(), cities.end());

  catalog::TableDef station;
  station.name = "Station";
  station.dataset = "WHW";
  station.columns = {
      catalog::ColumnDef::Free("Country", ValueType::kString,
                               catalog::AttrDomain::Categorical(
                                   {"United States"})),
      catalog::ColumnDef::Free("StationID", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(1, kStations)),
      catalog::ColumnDef::Free("City", ValueType::kString,
                               catalog::AttrDomain::Categorical(cities))};
  station.cardinality = kStations;
  st = cat.RegisterTable(station);
  assert(st.ok());

  catalog::TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      catalog::ColumnDef::Free("Country", ValueType::kString,
                               catalog::AttrDomain::Categorical(
                                   {"United States"})),
      catalog::ColumnDef::Free("StationID", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(1, kStations)),
      catalog::ColumnDef::Free("Date", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(20140601,
                                                            20140630)),
      catalog::ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kStations * 30;
  st = cat.RegisterTable(weather);
  assert(st.ok());

  // ---- 2. The market side (in production this is the cloud service; here
  // the simulator hosts the seller's data).
  market::DataMarket market(&cat);
  {
    std::vector<Row> station_rows, weather_rows;
    for (int64_t id = 1; id <= kStations; ++id) {
      station_rows.push_back(
          Row{Value("United States"), Value(id),
              Value(id == 500 ? "Seattle" : "City" + std::to_string(1000 + id))});
      for (int64_t date = 20140601; date <= 20140630; ++date) {
        weather_rows.push_back(Row{Value("United States"), Value(id),
                                   Value(date),
                                   Value(15.0 + (id + date) % 10)});
      }
    }
    st = market.HostTable("Station", std::move(station_rows));
    assert(st.ok());
    st = market.HostTable("Weather", std::move(weather_rows));
    assert(st.ok());
  }

  // ---- 3. PayLess: the buyer-side middleware.
  exec::PayLess payless(&cat, &market, exec::PayLessConfig{});

  const std::string query =
      "SELECT Date, Temperature FROM Station, Weather "
      "WHERE City = 'Seattle' AND Station.Country = 'United States' AND "
      "Weather.Country = 'United States' AND "
      "Date >= 20140601 AND Date <= 20140630 AND "
      "Station.StationID = Weather.StationID";

  Result<exec::QueryReport> first = payless.QueryWithReport(query);
  assert(first.ok());
  std::printf("First run : %zu rows, %lld transactions "
              "(a naive range scan costs %lld)\n",
              first->result.num_rows(),
              static_cast<long long>(first->transactions_spent),
              static_cast<long long>(1 + (kStations * 30 + 99) / 100));

  Result<exec::QueryReport> second = payless.QueryWithReport(query);
  assert(second.ok());
  std::printf("Second run: %zu rows, %lld transactions "
              "(served from the semantic store)\n",
              second->result.num_rows(),
              static_cast<long long>(second->transactions_spent));

  std::printf("\n%s", payless.meter().Report().c_str());
  std::printf("\nSample output:\n%s", second->result.ToString(5).c_str());
  return 0;
}
