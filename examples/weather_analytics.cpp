// Weather analytics session: the paper's end-user scenario (§2.2). A data
// scientist explores the WHW + EHR datasets through the Table 1 templates —
// average temperatures per city, pollution counts, and the 4-table
// correlation query Q5 — while PayLess keeps the bill down. The same
// session replayed against a Download-All buyer shows what exploratory
// walk-away behaviour would have cost.
#include <cassert>
#include <cstdio>

#include "workload/bundle.h"

using namespace payless;  // NOLINT: example brevity

int main() {
  workload::RealDataOptions options;
  options.scale = 0.05;
  options.seed = 2026;
  auto bundle =
      workload::MakeRealBundle(options, /*per_template=*/8, /*query_seed=*/9);

  auto payless =
      workload::NewPayLessClient(*bundle, workload::PayLessFullConfig());
  auto download_all = workload::NewDownloadAllClient(*bundle);

  std::printf("%-4s %-9s %7s %10s %12s  %s\n", "#", "template", "rows",
              "this query", "cumulative", "plan sketch");
  size_t i = 0;
  for (const auto& query : bundle->queries) {
    Result<exec::QueryReport> report =
        payless->QueryWithReport(query.sql, query.params);
    assert(report.ok());
    // One-line plan sketch: access kinds in order.
    std::string sketch;
    for (const auto& access : report->plan.accesses) {
      if (!sketch.empty()) sketch += " -> ";
      sketch += core::AccessKindName(access.kind);
    }
    std::printf("%-4zu Q%-8zu %7zu %10lld %12lld  %s\n", ++i,
                query.template_id + 1, report->result.num_rows(),
                static_cast<long long>(report->transactions_spent),
                static_cast<long long>(payless->meter().total_transactions()),
                sketch.c_str());

    Result<storage::Table> check =
        download_all->Query(query.sql, query.params);
    assert(check.ok());
  }

  std::printf("\nSession total:\n");
  std::printf("  PayLess      : %6lld transactions\n",
              static_cast<long long>(payless->meter().total_transactions()));
  std::printf("  Download All : %6lld transactions\n",
              static_cast<long long>(
                  download_all->meter().total_transactions()));
  std::printf(
      "\nThe analyst issued %zu exploratory queries and walked away; with\n"
      "PayLess nobody had to decide up front whether buying the whole\n"
      "dataset would pay off (§1).\n",
      bundle->queries.size());
  std::printf("\nSemantic store: %zu views, %zu stored tuples\n",
              payless->store().TotalViews(),
              payless->store().TotalStoredRows());
  return 0;
}
