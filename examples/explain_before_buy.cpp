// Explain-before-you-buy: a buyer inspects a query's plan and estimated
// spend WITHOUT sending a single call, then decides. Also shows loading a
// local table from CSV (the buyer's own zip-code mapping) and how the
// estimate sharpens as the learning statistics see real results.
#include <cassert>
#include <cstdio>

#include "exec/payless.h"
#include "market/data_market.h"
#include "storage/csv.h"

using namespace payless;  // NOLINT: example brevity

int main() {
  // Catalog: one priced table (Pollution of the EHR dataset) and one local
  // mapping table fed from CSV.
  catalog::Catalog cat;
  Status st = cat.RegisterDataset(catalog::DatasetDef{"EHR", 1.0, 100});
  assert(st.ok());
  catalog::TableDef pollution;
  pollution.name = "Pollution";
  pollution.dataset = "EHR";
  pollution.columns = {
      catalog::ColumnDef::Free("ZipCode", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(10000, 10009)),
      catalog::ColumnDef::Free("Rank", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(1, 5000)),
      catalog::ColumnDef::Output("Score", ValueType::kDouble)};
  pollution.cardinality = 5000;
  st = cat.RegisterTable(pollution);
  assert(st.ok());
  catalog::TableDef zipmap;
  zipmap.name = "ZipMap";
  zipmap.is_local = true;
  zipmap.columns = {
      catalog::ColumnDef::Free("ZipCode", ValueType::kInt64,
                               catalog::AttrDomain::Numeric(10000, 10009)),
      catalog::ColumnDef::Output("City", ValueType::kString)};
  zipmap.cardinality = 10;
  st = cat.RegisterTable(zipmap);
  assert(st.ok());

  // Market side. The data is heavily skewed: 80% of the ranks belong to
  // zip 10000 — which the cold optimizer cannot know yet.
  market::DataMarket market(&cat);
  {
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 5000; ++rank) {
      const int64_t zip = rank <= 4000 ? 10000 : 10000 + rank % 10;
      rows.push_back(Row{Value(zip), Value(rank), Value(rank / 100.0)});
    }
    st = market.HostTable("Pollution", std::move(rows));
    assert(st.ok());
  }

  exec::PayLess payless(&cat, &market, exec::PayLessConfig{});

  // The buyer's own zip->city map, straight from CSV.
  const std::string csv =
      "zip,city\n"
      "10000,Springfield\n10001,Shelbyville\n10002,Ogdenville\n"
      "10003,Brockway\n10004,Capital City\n";
  Result<std::vector<Row>> zip_rows = storage::ParseCsv(
      csv, storage::SchemaFromTableDef(*cat.FindTable("ZipMap")));
  assert(zip_rows.ok());
  st = payless.LoadLocalTable("ZipMap", *zip_rows);
  assert(st.ok());

  const std::string query =
      "SELECT City, COUNT(*) AS sites FROM Pollution, ZipMap "
      "WHERE Pollution.ZipCode = ZipMap.ZipCode AND "
      "Pollution.ZipCode = 10000 AND Rank >= 1 AND Rank <= 5000 "
      "GROUP BY City";

  // 1. Cold EXPLAIN: the uniform assumption predicts 1/10 of the table.
  Result<exec::QueryReport> cold = payless.Explain(query);
  assert(cold.ok());
  std::printf("Cold estimate : %lld transactions (uniform assumption: "
              "5000 rows / 10 zips / 100 per page)\n",
              static_cast<long long>(cold->plan.est_cost));

  // 2. A scouting query teaches the statistics the skew: the uniform
  // assumption predicts ~405 rows for this slice, the market returns 3600.
  Result<exec::QueryReport> probe = payless.QueryWithReport(
      "SELECT COUNT(*) FROM Pollution WHERE Pollution.ZipCode = 10000 AND "
      "Rank >= 1 AND Rank <= 4500");
  assert(probe.ok());
  std::printf("Scouting probe: %lld transactions spent, saw %s rows where "
              "uniformity predicted ~405\n",
              static_cast<long long>(probe->transactions_spent),
              probe->result.rows()[0][0].ToString().c_str());

  // 3. Warm EXPLAIN: the probed slice is owned (free); the remainder is
  // repriced with the refined histogram — the estimate now matches what
  // execution will actually bill.
  Result<exec::QueryReport> warm = payless.Explain(query);
  assert(warm.ok());
  std::printf("Warm estimate : %lld transactions (probed slice cached, "
              "remainder repriced)\n",
              static_cast<long long>(warm->plan.est_cost));

  // 4. Execute and compare the bill with the estimate.
  Result<exec::QueryReport> run = payless.QueryWithReport(query);
  assert(run.ok());
  std::printf("Actual bill   : %lld transactions; result:\n",
              static_cast<long long>(run->transactions_spent));
  std::printf("%s", run->result.ToString(5).c_str());
  std::printf("\n%s", payless.meter().Report().c_str());
  return 0;
}
