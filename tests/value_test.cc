#include "common/value.h"

#include <gtest/gtest.h>

#include "common/compare.h"

namespace payless {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_FALSE(v.is_double());
  EXPECT_FALSE(v.is_string());
}

TEST(ValueTest, Int64Roundtrip) {
  Value v(int64_t{42});
  ASSERT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_EQ(v.type(), ValueType::kInt64);
}

TEST(ValueTest, DoubleRoundtrip) {
  Value v(3.25);
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
  EXPECT_EQ(v.type(), ValueType::kDouble);
}

TEST(ValueTest, StringRoundtrip) {
  Value v("Seattle");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "Seattle");
  EXPECT_EQ(v.type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{7}), Value(7.0));
  EXPECT_NE(Value(int64_t{7}), Value(7.5));
}

TEST(ValueTest, NumericCrossTypeHashAgrees) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
}

TEST(ValueTest, IntegerComparisonIsExactForLargeKeys) {
  // Values differing only in low bits beyond double precision.
  const int64_t a = (int64_t{1} << 60) + 1;
  const int64_t b = (int64_t{1} << 60) + 2;
  EXPECT_LT(Value(a), Value(b));
  EXPECT_NE(Value(a), Value(b));
}

TEST(ValueTest, NullComparesLessThanEverything) {
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_LT(Value::Null(), Value("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("Berlin"), Value("Canada"));
  EXPECT_GT(Value("b"), Value("a"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, HeterogeneousComparisonIsTotal) {
  const Value num(int64_t{1});
  const Value str("1");
  EXPECT_NE(num.Compare(str), 0);
  EXPECT_EQ(num.Compare(str), -str.Compare(num));
}

TEST(ValueTest, AsNumericCoversBothNumericTypes) {
  EXPECT_DOUBLE_EQ(Value(int64_t{5}).AsNumeric(), 5.0);
  EXPECT_DOUBLE_EQ(Value(5.5).AsNumeric(), 5.5);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(RowTest, HashRowDistinguishesOrder) {
  const Row a = {Value(int64_t{1}), Value(int64_t{2})};
  const Row b = {Value(int64_t{2}), Value(int64_t{1})};
  EXPECT_NE(HashRow(a), HashRow(b));
}

TEST(RowTest, HashRowStable) {
  const Row a = {Value("x"), Value(int64_t{9})};
  const Row b = {Value("x"), Value(int64_t{9})};
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(RowTest, RowToStringFormats) {
  EXPECT_EQ(RowToString({Value(int64_t{1}), Value("a")}), "(1, 'a')");
  EXPECT_EQ(RowToString({}), "()");
}

TEST(CompareTest, AllOperators) {
  const Value a(int64_t{1});
  const Value b(int64_t{2});
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, a));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGt, a));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGe, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kEq, a));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
}

TEST(CompareTest, NullNeverMatches) {
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(EvalCompare(Value::Null(), op, Value(int64_t{1})));
    EXPECT_FALSE(EvalCompare(Value(int64_t{1}), op, Value::Null()));
    EXPECT_FALSE(EvalCompare(Value::Null(), op, Value::Null()));
  }
}

TEST(CompareTest, OpNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "<>");
  EXPECT_STREQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpName(CompareOp::kGe), ">=");
}

// Property sweep: Compare is antisymmetric and consistent with the derived
// operators over a mixed value pool.
class ValueCompareProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueCompareProperty, AntisymmetricAndConsistent) {
  const std::vector<Value> pool = {
      Value::Null(),       Value(int64_t{-5}), Value(int64_t{0}),
      Value(int64_t{7}),   Value(-2.5),        Value(7.0),
      Value(100.25),       Value(""),          Value("Seattle"),
      Value("zebra"),
  };
  const int i = GetParam();
  const Value& a = pool[static_cast<size_t>(i) % pool.size()];
  for (const Value& b : pool) {
    EXPECT_EQ(a.Compare(b), -b.Compare(a));
    EXPECT_EQ(a == b, a.Compare(b) == 0);
    EXPECT_EQ(a < b, a.Compare(b) < 0);
    if (a == b) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pool, ValueCompareProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace payless
