// Status / Result<T> round-trips, including the infrastructure codes the
// resilient market connector speaks (kUnavailable, kDeadlineExceeded,
// kResourceExhausted) and the IsRetryable classification the retry loop
// relies on.
#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace payless {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st, Status::OK());
}

TEST(StatusTest, FactoriesRoundTripCodeAndMessage) {
  const std::vector<std::pair<Status, Status::Code>> cases = {
      {Status::InvalidArgument("m"), Status::Code::kInvalidArgument},
      {Status::NotFound("m"), Status::Code::kNotFound},
      {Status::NotSupported("m"), Status::Code::kNotSupported},
      {Status::ParseError("m"), Status::Code::kParseError},
      {Status::BindingViolation("m"), Status::Code::kBindingViolation},
      {Status::Internal("m"), Status::Code::kInternal},
      {Status::Unavailable("m"), Status::Code::kUnavailable},
      {Status::DeadlineExceeded("m"), Status::Code::kDeadlineExceeded},
      {Status::ResourceExhausted("m"), Status::Code::kResourceExhausted},
      {Status::BudgetExceeded("m"), Status::Code::kBudgetExceeded},
  };
  for (const auto& [st, code] : cases) {
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), code);
    EXPECT_EQ(st.message(), "m");
  }
}

TEST(StatusTest, CodeNamesAreDistinctAndStable) {
  EXPECT_STREQ(Status::CodeName(Status::Code::kOk), "OK");
  EXPECT_STREQ(Status::CodeName(Status::Code::kUnavailable), "Unavailable");
  EXPECT_STREQ(Status::CodeName(Status::Code::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(Status::CodeName(Status::Code::kResourceExhausted),
               "ResourceExhausted");
  // ToString embeds the code name, so logs and test failures are grep-able.
  EXPECT_EQ(Status::Unavailable("market down").ToString(),
            "Unavailable: market down");
  EXPECT_EQ(Status::DeadlineExceeded("10ms budget").ToString(),
            "DeadlineExceeded: 10ms budget");
  EXPECT_EQ(Status::ResourceExhausted("throttled").ToString(),
            "ResourceExhausted: throttled");
  EXPECT_STREQ(Status::CodeName(Status::Code::kBudgetExceeded),
               "BudgetExceeded");
  EXPECT_EQ(Status::BudgetExceeded("tenant over cap").ToString(),
            "BudgetExceeded: tenant over cap");
}

TEST(StatusTest, IsRetryableClassification) {
  EXPECT_TRUE(IsRetryable(Status::Code::kUnavailable));
  EXPECT_TRUE(IsRetryable(Status::Code::kResourceExhausted));
  // A blown deadline is the caller's budget, not a transient fault.
  EXPECT_FALSE(IsRetryable(Status::Code::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(Status::Code::kOk));
  EXPECT_FALSE(IsRetryable(Status::Code::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(Status::Code::kNotFound));
  EXPECT_FALSE(IsRetryable(Status::Code::kNotSupported));
  EXPECT_FALSE(IsRetryable(Status::Code::kParseError));
  EXPECT_FALSE(IsRetryable(Status::Code::kBindingViolation));
  EXPECT_FALSE(IsRetryable(Status::Code::kInternal));
  // Rejected by the buyer's own admission control: retrying cannot help
  // until the budget changes, and nothing was billed.
  EXPECT_FALSE(IsRetryable(Status::Code::kBudgetExceeded));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Unavailable("x"), Status::Unavailable("x"));
  EXPECT_FALSE(Status::Unavailable("x") == Status::Unavailable("y"));
  EXPECT_FALSE(Status::Unavailable("x") == Status::ResourceExhausted("x"));
}

TEST(StatusTest, ResultCarriesErrorStatus) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err(Status::DeadlineExceeded("query budget"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(err.status().message(), "query budget");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const auto fails = []() -> Status {
    PAYLESS_RETURN_IF_ERROR(Status::ResourceExhausted("quota"));
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(fails().code(), Status::Code::kResourceExhausted);
  const auto passes = []() -> Status {
    PAYLESS_RETURN_IF_ERROR(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(passes().ok());
}

}  // namespace
}  // namespace payless
