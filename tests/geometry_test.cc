#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace payless {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  EXPECT_TRUE(Interval().empty());
  EXPECT_EQ(Interval().Width(), 0);
}

TEST(IntervalTest, PointInterval) {
  const Interval p = Interval::Point(5);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.Width(), 1);
  EXPECT_TRUE(p.Contains(5));
  EXPECT_FALSE(p.Contains(4));
}

TEST(IntervalTest, WidthInclusive) {
  EXPECT_EQ(Interval(3, 7).Width(), 5);
}

TEST(IntervalTest, WidthSaturates) {
  const Interval huge(std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max());
  EXPECT_EQ(huge.Width(), std::numeric_limits<int64_t>::max());
}

TEST(IntervalTest, ContainsInterval) {
  EXPECT_TRUE(Interval(0, 10).Contains(Interval(3, 7)));
  EXPECT_TRUE(Interval(0, 10).Contains(Interval(0, 10)));
  EXPECT_FALSE(Interval(0, 10).Contains(Interval(5, 11)));
  EXPECT_TRUE(Interval(0, 10).Contains(Interval::Empty()));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 5).Overlaps(Interval(6, 9)));
  EXPECT_FALSE(Interval(0, 5).Overlaps(Interval::Empty()));
}

TEST(IntervalTest, IntersectProducesEmptyOnDisjoint) {
  EXPECT_TRUE(Interval(0, 3).Intersect(Interval(5, 8)).empty());
  EXPECT_EQ(Interval(0, 6).Intersect(Interval(4, 9)), Interval(4, 6));
}

TEST(IntervalTest, EmptyIntervalsCompareEqual) {
  EXPECT_EQ(Interval(3, 2), Interval(10, 5));
}

TEST(BoxTest, ZeroDimensionalBoxIsUnit) {
  const Box unit;
  EXPECT_FALSE(unit.empty());
  EXPECT_EQ(unit.Volume(), 1);
  EXPECT_TRUE(unit.Overlaps(unit));
  EXPECT_TRUE(unit.Contains(Box{}));
}

TEST(BoxTest, EmptyWhenAnyDimEmpty) {
  EXPECT_TRUE(Box({Interval(0, 5), Interval::Empty()}).empty());
  EXPECT_FALSE(Box({Interval(0, 5), Interval(1, 1)}).empty());
}

TEST(BoxTest, VolumeIsProduct) {
  EXPECT_EQ(Box({Interval(0, 9), Interval(0, 4)}).Volume(), 50);
}

TEST(BoxTest, VolumeSaturates) {
  const Box huge({Interval(0, int64_t{1} << 40),
                  Interval(0, int64_t{1} << 40)});
  EXPECT_EQ(huge.Volume(), std::numeric_limits<int64_t>::max());
}

TEST(BoxTest, ContainsPoint) {
  const Box box({Interval(0, 5), Interval(10, 20)});
  EXPECT_TRUE(box.Contains(std::vector<int64_t>{0, 20}));
  EXPECT_FALSE(box.Contains(std::vector<int64_t>{6, 15}));
}

TEST(BoxTest, IntersectComponentWise) {
  const Box a({Interval(0, 10), Interval(0, 10)});
  const Box b({Interval(5, 15), Interval(-5, 5)});
  EXPECT_EQ(a.Intersect(b), Box({Interval(5, 10), Interval(0, 5)}));
}

TEST(SubtractBoxTest, DisjointLeavesOriginal) {
  const Box a({Interval(0, 4)});
  const Box b({Interval(10, 12)});
  const std::vector<Box> diff = SubtractBox(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], a);
}

TEST(SubtractBoxTest, FullyCoveredYieldsNothing) {
  EXPECT_TRUE(SubtractBox(Box({Interval(2, 3)}), Box({Interval(0, 9)})).empty());
}

TEST(SubtractBoxTest, MiddleCutYieldsTwoPieces1D) {
  const std::vector<Box> diff =
      SubtractBox(Box({Interval(0, 9)}), Box({Interval(4, 6)}));
  ASSERT_EQ(diff.size(), 2u);
  int64_t total = 0;
  for (const Box& piece : diff) total += piece.Volume();
  EXPECT_EQ(total, 7);
}

TEST(SubtractBoxTest, CornerOverlap2D) {
  const Box a({Interval(0, 9), Interval(0, 9)});
  const Box b({Interval(5, 15), Interval(5, 15)});
  const std::vector<Box> diff = SubtractBox(a, b);
  int64_t total = 0;
  for (const Box& piece : diff) total += piece.Volume();
  EXPECT_EQ(total, 100 - 25);
  // Pieces are pairwise disjoint.
  for (size_t i = 0; i < diff.size(); ++i) {
    for (size_t j = i + 1; j < diff.size(); ++j) {
      EXPECT_FALSE(diff[i].Overlaps(diff[j]));
    }
  }
}

TEST(SubtractAllTest, MultipleHoles) {
  const Box base({Interval(0, 9)});
  const std::vector<Box> holes = {Box({Interval(0, 2)}), Box({Interval(7, 9)})};
  const std::vector<Box> diff = SubtractAll(base, holes);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], Box({Interval(3, 6)}));
}

TEST(SubtractAllTest, EmptyBaseYieldsNothing) {
  EXPECT_TRUE(SubtractAll(Box({Interval::Empty()}), {}).empty());
}

TEST(IsCoveredTest, ExactTiling) {
  const Box target({Interval(0, 9), Interval(0, 9)});
  EXPECT_TRUE(IsCovered(target, {Box({Interval(0, 9), Interval(0, 4)}),
                                 Box({Interval(0, 9), Interval(5, 9)})}));
  EXPECT_FALSE(IsCovered(target, {Box({Interval(0, 9), Interval(0, 4)}),
                                  Box({Interval(0, 8), Interval(5, 9)})}));
}

TEST(IsCoveredTest, EmptyTargetAlwaysCovered) {
  EXPECT_TRUE(IsCovered(Box({Interval::Empty()}), {}));
}

// ---------------------------------------------------------------------------
// Property sweep: subtraction semantics checked against brute-force lattice
// membership on random 2-d boxes over a small grid.
// ---------------------------------------------------------------------------

class SubtractionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubtractionProperty, MatchesBruteForceLattice) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const auto random_box = [&rng] {
    const int64_t x1 = rng.Uniform(0, 11);
    const int64_t x2 = rng.Uniform(0, 11);
    const int64_t y1 = rng.Uniform(0, 11);
    const int64_t y2 = rng.Uniform(0, 11);
    return Box({Interval(std::min(x1, x2), std::max(x1, x2)),
                Interval(std::min(y1, y2), std::max(y1, y2))});
  };
  const Box base = random_box();
  std::vector<Box> holes;
  const int64_t num_holes = rng.Uniform(0, 4);
  for (int64_t i = 0; i < num_holes; ++i) holes.push_back(random_box());

  const std::vector<Box> diff = SubtractAll(base, holes);

  // Pieces are pairwise disjoint and inside the base.
  for (size_t i = 0; i < diff.size(); ++i) {
    EXPECT_TRUE(base.Contains(diff[i]));
    for (size_t j = i + 1; j < diff.size(); ++j) {
      EXPECT_FALSE(diff[i].Overlaps(diff[j]));
    }
  }

  // Exact lattice membership.
  for (int64_t x = 0; x <= 11; ++x) {
    for (int64_t y = 0; y <= 11; ++y) {
      const std::vector<int64_t> p = {x, y};
      bool in_base = base.Contains(p);
      bool in_hole = false;
      for (const Box& hole : holes) {
        if (hole.Contains(p)) in_hole = true;
      }
      bool in_diff = false;
      for (const Box& piece : diff) {
        if (piece.Contains(p)) in_diff = true;
      }
      EXPECT_EQ(in_diff, in_base && !in_hole)
          << "point (" << x << "," << y << ")";
    }
  }

  EXPECT_EQ(IsCovered(base, holes), diff.empty());
}

INSTANTIATE_TEST_SUITE_P(Random, SubtractionProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace payless
