// The plan-template cache: hit/miss accounting, drift-based invalidation
// (estimator q-error beyond the configured threshold ticks a staleness
// epoch), consistency-horizon keying, parameter and template sensitivity of
// the key, and the regression that serving a plan from the cache never
// changes what a query bills.
#include "core/plan_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/payless.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"EHR", 1.0, 100}).ok());
    TableDef pollution;
    pollution.name = "Pollution";
    pollution.dataset = "EHR";
    pollution.columns = {
        ColumnDef::Free("ZipCode", ValueType::kInt64,
                        AttrDomain::Numeric(10000, 10199)),
        ColumnDef::Free("Rank", ValueType::kInt64,
                        AttrDomain::Numeric(1, 2000)),
        ColumnDef::Output("Score", ValueType::kDouble)};
    pollution.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(pollution).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 2000; ++rank) {
      rows.push_back(Row{Value(10000 + rank % 200), Value(rank),
                         Value(static_cast<double>(rank) / 10)});
    }
    ASSERT_TRUE(market_->HostTable("Pollution", std::move(rows)).ok());
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    return std::make_unique<PayLess>(&cat_, market_.get(), config);
  }

  static constexpr const char* kRangeSql =
      "SELECT * FROM Pollution WHERE Rank >= ? AND Rank <= ?";

  static std::vector<Value> Range(int64_t lo, int64_t hi) {
    return {Value(lo), Value(hi)};
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST(NormalizeSqlTemplateTest, CollapsesWhitespaceAndKeywordCase) {
  EXPECT_EQ(core::NormalizeSqlTemplate("SELECT  *\n FROM  T WHERE a = ?"),
            core::NormalizeSqlTemplate("select * from T where a = ?"));
  // Identifiers and string literals are case-sensitive in this dialect, so
  // normalization must preserve both.
  EXPECT_NE(core::NormalizeSqlTemplate("SELECT * FROM T WHERE a = 'US'"),
            core::NormalizeSqlTemplate("SELECT * FROM T WHERE a = 'us'"));
  EXPECT_NE(core::NormalizeSqlTemplate("SELECT * FROM T WHERE a = ?"),
            core::NormalizeSqlTemplate("SELECT * FROM t WHERE a = ?"));
  EXPECT_EQ(core::NormalizeSqlTemplate("SELECT * FROM T WHERE a='X'  "),
            core::NormalizeSqlTemplate("select * from T where a ='X'"));
  // A quoted literal can never collide with an identifier spelled alike.
  EXPECT_NE(core::NormalizeSqlTemplate("SELECT abc FROM T"),
            core::NormalizeSqlTemplate("SELECT 'abc' FROM T"));
}

TEST_F(PlanCacheTest, HitWhileEstimatesHoldMissAfterDrift) {
  // The fixture data is perfectly uniform, so the uniform estimator is
  // exact (q-error 1) and the drift epoch never ticks on Pollution.
  auto client = NewClient();

  // Query 1: cold cache -> miss, inserts under the current drift epoch.
  Result<QueryReport> r1 = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->counters.plan_cache_misses, 1u);
  EXPECT_EQ(r1->counters.plan_cache_hits, 0u);

  // Query 2, same template+params: estimates were accurate, no drift ->
  // hit, even though query 1 grew the semantic store. This run is fully
  // covered by the store: no calls, nothing billed.
  Result<QueryReport> r2 = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->counters.plan_cache_hits, 1u);
  EXPECT_EQ(r2->counters.plan_cache_misses, 0u);
  EXPECT_EQ(r2->transactions_spent, 0);
  EXPECT_EQ(r2->result.num_rows(), r1->result.num_rows());

  // Fetching fresh (still uniform) data grows the store again but keeps
  // q-error at 1, so the entry stays valid.
  Result<QueryReport> other =
      client->QueryWithReport(kRangeSql, Range(500, 600));
  ASSERT_TRUE(other.ok());
  EXPECT_GT(other->transactions_spent, 0);
  Result<QueryReport> r3 = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->counters.plan_cache_hits, 1u);
  EXPECT_EQ(r3->counters.plan_cache_misses, 0u);

  const core::PlanCacheStats stats = client->plan_cache().Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GE(stats.entries, 1u);
  EXPECT_EQ(client->accuracy().drift_epoch(), 0u);

  // A heavily skewed table: the catalog claims 2000 rows spread over Rank
  // 1..2000, but every hosted row lands in Rank 1..100. The uniform
  // estimate for Rank<=100 is ~100 rows; the market returns 2000 ->
  // q-error ~20 >> threshold -> the drift epoch ticks...
  TableDef skewed;
  skewed.name = "Skewed";
  skewed.dataset = "EHR";
  skewed.columns = {ColumnDef::Free("Rank", ValueType::kInt64,
                                    AttrDomain::Numeric(1, 2000)),
                    ColumnDef::Output("Score", ValueType::kDouble)};
  skewed.cardinality = 2000;
  ASSERT_TRUE(cat_.RegisterTable(skewed).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 2000; ++i) {
    rows.push_back(Row{Value(i % 100 + 1), Value(0.5)});
  }
  ASSERT_TRUE(market_->HostTable("Skewed", std::move(rows)).ok());
  Result<QueryReport> skew = client->QueryWithReport(
      "SELECT * FROM Skewed WHERE Rank >= ? AND Rank <= ?", Range(1, 100));
  ASSERT_TRUE(skew.ok()) << skew.status().ToString();
  EXPECT_GE(client->accuracy().drift_epoch(), 1u);

  // ...and the previously hitting template misses once more: its plan was
  // built from estimates the feedback loop has since disproven.
  Result<QueryReport> r4 = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->counters.plan_cache_misses, 1u);
  EXPECT_EQ(r4->counters.plan_cache_hits, 0u);
}

TEST_F(PlanCacheTest, DistinctParamsAreDistinctKeys) {
  auto client = NewClient();
  ASSERT_TRUE(client->Query(kRangeSql, Range(1, 100)).ok());
  // Same template, different params: must not hit the (1,100) entry.
  Result<QueryReport> r = client->QueryWithReport(kRangeSql, Range(1, 200));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->counters.plan_cache_hits, 0u);
}

TEST_F(PlanCacheTest, TemplateNormalizationSharesEntries) {
  auto client = NewClient();
  const std::string sql_a =
      "SELECT * FROM Pollution WHERE Rank >= ? AND Rank <= ?";
  const std::string sql_b =
      "select  *  from Pollution\n where Rank >= ? and Rank <= ?";
  ASSERT_TRUE(client->Query(sql_a, Range(1, 250)).ok());   // miss, insert
  ASSERT_TRUE(client->Query(sql_a, Range(1, 250)).ok());   // miss (stale)
  Result<QueryReport> r = client->QueryWithReport(sql_b, Range(1, 250));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->counters.plan_cache_hits, 1u);
}

TEST_F(PlanCacheTest, ConsistencyHorizonIsPartOfTheKey) {
  PayLessConfig config;
  config.consistency = ConsistencyLevel::kXWeek;
  config.consistency_weeks = 2;
  auto client = NewClient(config);

  ASSERT_TRUE(client->Query(kRangeSql, Range(1, 250)).ok());
  ASSERT_TRUE(client->Query(kRangeSql, Range(1, 250)).ok());
  Result<QueryReport> hit = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->counters.plan_cache_hits, 1u);

  // Advancing the clock moves the consistency horizon: cached plans made
  // under the old horizon must not be served.
  client->SetCurrentWeek(client->current_week() + 1);
  Result<QueryReport> miss = client->QueryWithReport(kRangeSql, Range(1, 250));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->counters.plan_cache_hits, 0u);
  EXPECT_EQ(miss->counters.plan_cache_misses, 1u);
}

TEST_F(PlanCacheTest, DisabledCacheBypassesEverything) {
  PayLessConfig config;
  config.enable_plan_cache = false;
  auto client = NewClient(config);
  for (int i = 0; i < 3; ++i) {
    Result<QueryReport> r = client->QueryWithReport(kRangeSql, Range(1, 250));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->counters.plan_cache_hits, 0u);
    EXPECT_EQ(r->counters.plan_cache_misses, 0u);
  }
  const core::PlanCacheStats stats = client->plan_cache().Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(PlanCacheTest, ExplainNeverTouchesTheCache) {
  auto client = NewClient();
  Result<QueryReport> e = client->Explain(kRangeSql, Range(1, 250));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->counters.plan_cache_hits, 0u);
  EXPECT_EQ(e->counters.plan_cache_misses, 0u);
  EXPECT_EQ(client->plan_cache().Stats().entries, 0u);
  EXPECT_EQ(client->plan_cache().Stats().misses, 0u);
}

// Regression: a plan served from the cache must bill exactly what a fresh
// optimization would, over an entire learning sequence with repeats.
TEST_F(PlanCacheTest, CachedPlansNeverChangeBilling) {
  PayLessConfig cached_config;
  cached_config.enable_plan_cache = true;
  PayLessConfig fresh_config;
  fresh_config.enable_plan_cache = false;
  auto cached = NewClient(cached_config);
  auto fresh = NewClient(fresh_config);

  const std::vector<std::vector<Value>> sequence = {
      Range(1, 250),  Range(1, 250),   Range(1, 250),  Range(100, 400),
      Range(1, 250),  Range(350, 800), Range(100, 400), Range(1, 250),
      Range(350, 800), Range(1, 2000),  Range(1, 250),  Range(1, 2000),
  };
  for (const auto& params : sequence) {
    Result<QueryReport> a = cached->QueryWithReport(kRangeSql, params);
    Result<QueryReport> b = fresh->QueryWithReport(kRangeSql, params);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->transactions_spent, b->transactions_spent);
    EXPECT_EQ(a->result.num_rows(), b->result.num_rows());
  }
  EXPECT_GT(cached->plan_cache().Stats().hits, 0u);
  EXPECT_EQ(cached->meter().total_transactions(),
            fresh->meter().total_transactions());
}

}  // namespace
}  // namespace payless::exec
