// Write-ahead-log and snapshot-file unit tests, including the torn-tail
// exhaustion required by the durability contract: a log truncated at EVERY
// byte offset inside its final frame must recover to exactly the preceding
// records — the partial record is dropped, never applied, and the intact
// prefix is never double-applied.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/plan_cache.h"
#include "durability/durability.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "market/data_market.h"
#include "obs/metrics.h"
#include "semstore/semantic_store.h"
#include "stats/estimator.h"

namespace payless::durability {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string WalPath() const { return (dir_ / "harvest.wal").string(); }

  fs::path dir_;
};

/// A harvest record with every field exercised (mixed-type rows, nulls, a
/// two-dimensional region).
HarvestRecord SampleRecord(uint64_t seq) {
  HarvestRecord r;
  r.seq = seq;
  r.table = "Weather";
  r.dataset = "WHW";
  r.epoch = 7;
  r.num_records = 4;
  r.transactions = 2;
  r.price = 0.4;
  r.region = Box({Interval(1, 4), Interval(10, 10)});
  r.rows = {
      Row{Value(int64_t{1}), Value(3.5), Value("US")},
      Row{Value(int64_t{2}), Value::Null(), Value(std::string())},
  };
  return r;
}

void ExpectEqualRecords(const HarvestRecord& got, const HarvestRecord& want) {
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.table, want.table);
  EXPECT_EQ(got.dataset, want.dataset);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.num_records, want.num_records);
  EXPECT_EQ(got.transactions, want.transactions);
  EXPECT_EQ(got.price, want.price);
  EXPECT_EQ(got.region, want.region);
  EXPECT_EQ(got.rows, want.rows);
}

TEST_F(WalTest, Crc32MatchesKnownVectors) {
  // The canonical CRC-32 (IEEE, reflected) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_NE(Crc32(std::string("abc")), Crc32(std::string("abd")));
}

TEST_F(WalTest, HarvestRecordRoundtrips) {
  const HarvestRecord want = SampleRecord(42);
  HarvestRecord got;
  ASSERT_TRUE(DecodeHarvest(EncodeHarvest(want), &got));
  ExpectEqualRecords(got, want);
}

TEST_F(WalTest, DecodeRejectsEveryTruncation) {
  const std::string payload = EncodeHarvest(SampleRecord(1));
  for (size_t len = 0; len < payload.size(); ++len) {
    HarvestRecord out;
    EXPECT_FALSE(DecodeHarvest(payload.substr(0, len), &out))
        << "decoded from " << len << " of " << payload.size() << " bytes";
  }
}

TEST_F(WalTest, AppendReadRoundtrip) {
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  std::vector<std::string> payloads;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    payloads.push_back(EncodeHarvest(SampleRecord(seq)));
    ASSERT_TRUE(wal.Append(payloads.back(), /*fsync=*/true).ok());
  }
  wal.Close();

  const WalReadResult read = ReadWal(WalPath());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, read.total_bytes);
  ASSERT_EQ(read.payloads.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read.payloads[i], payloads[i]);
    HarvestRecord record;
    ASSERT_TRUE(DecodeHarvest(read.payloads[i], &record));
    EXPECT_EQ(record.seq, i + 1);
  }
}

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  const WalReadResult read = ReadWal(WalPath());
  EXPECT_TRUE(read.payloads.empty());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.total_bytes, 0);
}

TEST_F(WalTest, ResetTruncatesAndStaysAppendable) {
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(EncodeHarvest(SampleRecord(1)), true).ok());
  ASSERT_GT(wal.size_bytes(), 0);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.size_bytes(), 0);
  EXPECT_TRUE(ReadWal(WalPath()).payloads.empty());
  ASSERT_TRUE(wal.Append(EncodeHarvest(SampleRecord(2)), true).ok());
  wal.Close();
  const WalReadResult read = ReadWal(WalPath());
  ASSERT_EQ(read.payloads.size(), 1u);
  HarvestRecord record;
  ASSERT_TRUE(DecodeHarvest(read.payloads[0], &record));
  EXPECT_EQ(record.seq, 2u);
}

TEST_F(WalTest, AppendTornLeavesThePrefixIntact) {
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(wal.Append(EncodeHarvest(SampleRecord(seq)), true).ok());
  }
  const int64_t prefix = wal.size_bytes();
  ASSERT_TRUE(wal.AppendTorn(EncodeHarvest(SampleRecord(4)), 11).ok());
  wal.Close();

  const WalReadResult read = ReadWal(WalPath());
  EXPECT_TRUE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, prefix);
  EXPECT_EQ(read.total_bytes, prefix + 11);
  ASSERT_EQ(read.payloads.size(), 3u);
}

TEST_F(WalTest, CorruptMiddleRecordStopsReplayBeforeIt) {
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  const std::string first = EncodeHarvest(SampleRecord(1));
  ASSERT_TRUE(wal.Append(first, true).ok());
  const int64_t first_end = wal.size_bytes();
  ASSERT_TRUE(wal.Append(EncodeHarvest(SampleRecord(2)), true).ok());
  ASSERT_TRUE(wal.Append(EncodeHarvest(SampleRecord(3)), true).ok());
  wal.Close();

  // Flip one payload byte of record 2: its CRC fails, and replay must stop
  // there — record 3, though bytewise intact, is unreachable behind it.
  std::string bytes = ReadFile(WalPath());
  bytes[static_cast<size_t>(first_end) + 8 + 5] ^= 0x01;
  WriteFile(WalPath(), bytes);

  const WalReadResult read = ReadWal(WalPath());
  EXPECT_TRUE(read.torn_tail);
  EXPECT_EQ(read.valid_bytes, first_end);
  ASSERT_EQ(read.payloads.size(), 1u);
  EXPECT_EQ(read.payloads[0], first);
}

TEST_F(WalTest, TornTailAtEveryByteOffsetDropsExactlyTheFinalRecord) {
  // Satellite: write three records, then truncate a copy of the log at
  // EVERY byte offset of the final frame. Each truncation must yield the
  // first two records exactly — never a crash, never a third record, never
  // a duplicate.
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  std::vector<std::string> payloads;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    payloads.push_back(EncodeHarvest(SampleRecord(seq)));
    ASSERT_TRUE(wal.Append(payloads.back(), true).ok());
  }
  wal.Close();
  const std::string bytes = ReadFile(WalPath());
  const size_t prefix = 2 * (8 + payloads[0].size());  // records 1..2
  ASSERT_LT(prefix, bytes.size());

  const std::string cut_path = (dir_ / "cut.wal").string();
  for (size_t cut = prefix; cut < bytes.size(); ++cut) {
    WriteFile(cut_path, bytes.substr(0, cut));
    const WalReadResult read = ReadWal(cut_path);
    ASSERT_EQ(read.payloads.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(read.payloads[0], payloads[0]) << "cut at byte " << cut;
    EXPECT_EQ(read.payloads[1], payloads[1]) << "cut at byte " << cut;
    EXPECT_EQ(read.torn_tail, cut > prefix) << "cut at byte " << cut;
    EXPECT_EQ(read.valid_bytes, static_cast<int64_t>(prefix))
        << "cut at byte " << cut;
    EXPECT_EQ(read.total_bytes, static_cast<int64_t>(cut))
        << "cut at byte " << cut;
  }
}

// ---- Full recovery over every torn-tail truncation.

class RecoveryFixture {
 public:
  explicit RecoveryFixture(const std::string& dir) {
    EXPECT_TRUE(catalog_.RegisterDataset(catalog::DatasetDef{"WHW", 1.0, 5})
                    .ok());
    catalog::TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        catalog::ColumnDef::Bound("StationID", ValueType::kInt64,
                                  catalog::AttrDomain::Numeric(1, 16)),
        catalog::ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = 16;
    EXPECT_TRUE(catalog_.RegisterTable(weather).ok());
    stats_.RegisterTable(weather);

    DurabilityOptions options;
    options.dir = dir;
    manager_ = std::make_unique<DurabilityManager>(
        options, &catalog_, &store_, &stats_, &plan_cache_, &metrics_);
  }

  Status Recover() {
    return manager_->Recover([this](const catalog::TableDef& def,
                                    const Box& region, std::vector<Row> rows,
                                    int64_t num_records, int64_t epoch) {
      applied_rows_ += rows.size();
      applied_regions_.push_back(region);
      store_.Store(def, region, std::move(rows), epoch);
      stats_.Feedback(def.name, region, num_records);
    });
  }

  catalog::Catalog catalog_;
  semstore::SemanticStore store_;
  stats::StatsRegistry stats_;
  core::PlanCache plan_cache_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<DurabilityManager> manager_;
  size_t applied_rows_ = 0;
  std::vector<Box> applied_regions_;
};

/// One single-station harvest: region [station, station], one row.
HarvestRecord StationHarvest(uint64_t seq, int64_t station) {
  HarvestRecord r;
  r.seq = seq;
  r.table = "Weather";
  r.dataset = "WHW";
  r.epoch = 1;
  r.num_records = 1;
  r.transactions = 1;
  r.price = 0.2;
  r.region = Box({Interval::Point(station)});
  r.rows = {Row{Value(station), Value(static_cast<double>(station) * 1.5)}};
  return r;
}

TEST_F(WalTest, RecoveryAtEveryTornOffsetNeverDoubleApplies) {
  // Satellite, manager level: for every truncation offset inside the final
  // frame, full recovery must apply records 1..2 exactly once, adopt the
  // intact prefix as the live log, and keep accepting appends.
  WriteAheadLog wal(WalPath());
  ASSERT_TRUE(wal.Open().ok());
  size_t prefix = 0;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(wal.Append(EncodeHarvest(StationHarvest(seq, int64_t(seq))),
                           true)
                    .ok());
    if (seq == 2) prefix = static_cast<size_t>(wal.size_bytes());
  }
  wal.Close();
  const std::string bytes = ReadFile(WalPath());

  for (size_t cut = prefix; cut < bytes.size(); ++cut) {
    const fs::path trial_dir = dir_ / ("trial_" + std::to_string(cut));
    fs::create_directories(trial_dir);
    WriteFile((trial_dir / "harvest.wal").string(), bytes.substr(0, cut));

    RecoveryFixture fixture(trial_dir.string());
    ASSERT_TRUE(fixture.Recover().ok()) << "cut at byte " << cut;
    const RecoveryInfo& info = fixture.manager_->recovery();
    EXPECT_TRUE(info.recovered) << "cut at byte " << cut;
    EXPECT_FALSE(info.had_snapshot);
    // Exactly the two intact records, applied exactly once each.
    EXPECT_EQ(info.replayed_records, 2u) << "cut at byte " << cut;
    EXPECT_EQ(info.skipped_records, 0u);
    EXPECT_EQ(fixture.applied_rows_, 2u) << "cut at byte " << cut;
    EXPECT_EQ(fixture.store_.TotalStoredRows(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(info.wal_torn_tail, cut > prefix) << "cut at byte " << cut;
    EXPECT_EQ(info.wal_bytes, static_cast<int64_t>(prefix));
    // The torn bytes are gone from the re-adopted log: the next harvest
    // appends after the intact prefix and seq continues past the survivors.
    EXPECT_EQ(fs::file_size(trial_dir / "harvest.wal"), prefix)
        << "cut at byte " << cut;
    EXPECT_EQ(fixture.manager_->next_seq(), 3u);

    const catalog::TableDef* def = fixture.catalog_.FindTable("Weather");
    ASSERT_NE(def, nullptr);
    const HarvestRecord next = StationHarvest(0, 9);
    market::CallResult result;
    result.rows = next.rows;
    result.num_records = next.num_records;
    result.transactions = next.transactions;
    result.price = next.price;
    fixture.manager_->LogAndApply(
        *def, next.region, result, next.epoch,
        [&](const catalog::TableDef& d, const Box& region,
            std::vector<Row> rows, int64_t num_records, int64_t epoch) {
          fixture.store_.Store(d, region, std::move(rows), epoch);
          fixture.stats_.Feedback(d.name, region, num_records);
        });
    const WalReadResult reread = ReadWal((trial_dir / "harvest.wal").string());
    EXPECT_FALSE(reread.torn_tail) << "cut at byte " << cut;
    ASSERT_EQ(reread.payloads.size(), 3u) << "cut at byte " << cut;
    HarvestRecord appended;
    ASSERT_TRUE(DecodeHarvest(reread.payloads.back(), &appended));
    EXPECT_EQ(appended.seq, 3u);  // manager-assigned: max durable + 1
    fs::remove_all(trial_dir);
  }
}

// ---- Snapshot files.

TEST_F(WalTest, SnapshotRoundtripsEveryField) {
  SnapshotData want;
  want.last_seq = 17;
  want.drift_epoch = 3;
  want.current_week = 12;

  SnapshotData::TableViews views;
  views.table = "Weather";
  semstore::StoredView view;
  view.region = Box({Interval(1, 4), Interval(2, 2)});
  view.rows = {Row{Value(int64_t{1}), Value(2.5)},
               Row{Value(int64_t{2}), Value::Null()}};
  view.epoch = 11;
  views.views.push_back(view);
  want.store_tables.push_back(views);

  want.stats_tables.emplace_back("Weather", std::string("\x01\x02\x00\x03", 4));

  core::CachedPlan cached;
  cached.plan.est_cost = 21;
  cached.plan.est_result_rows = 34.5;
  core::AccessSpec access;
  access.rel = 1;
  access.kind = core::AccessSpec::Kind::kBind;
  access.bind_edges.push_back(sql::JoinEdge{{0, 1}, {1, 0}});
  access.used_sqr = true;
  access.est_rows = 8.25;
  access.est_bind_values = 4.0;
  access.est_transactions = 6;
  access.est_calls = 4;
  access.sqr_counters.cover_boxes = 3;
  cached.plan.accesses.push_back(access);
  cached.counters.evaluated_plans = 9;
  cached.counters.enumerated_bboxes = 5;
  cached.counters.kept_bboxes = 2;
  cached.cf_total = 40;
  cached.cf_by_dataset["WHW"] = 40;
  cached.cf_signature = "bind:Weather";
  want.plans.emplace_back("key-1", cached);

  const std::string path = (dir_ / "store.snap").string();
  ASSERT_TRUE(WriteSnapshotFile(path, want).ok());
  SnapshotData got;
  ASSERT_TRUE(ReadSnapshotFile(path, &got).ok());

  EXPECT_EQ(got.last_seq, want.last_seq);
  EXPECT_EQ(got.drift_epoch, want.drift_epoch);
  EXPECT_EQ(got.current_week, want.current_week);
  ASSERT_EQ(got.store_tables.size(), 1u);
  EXPECT_EQ(got.store_tables[0].table, "Weather");
  ASSERT_EQ(got.store_tables[0].views.size(), 1u);
  EXPECT_EQ(got.store_tables[0].views[0].region, view.region);
  EXPECT_EQ(got.store_tables[0].views[0].rows, view.rows);
  EXPECT_EQ(got.store_tables[0].views[0].epoch, view.epoch);
  ASSERT_EQ(got.stats_tables.size(), 1u);
  EXPECT_EQ(got.stats_tables[0], want.stats_tables[0]);
  ASSERT_EQ(got.plans.size(), 1u);
  EXPECT_EQ(got.plans[0].first, "key-1");
  const core::CachedPlan& plan = got.plans[0].second;
  EXPECT_EQ(plan.plan.est_cost, 21);
  EXPECT_EQ(plan.plan.est_result_rows, 34.5);
  ASSERT_EQ(plan.plan.accesses.size(), 1u);
  const core::AccessSpec& a = plan.plan.accesses[0];
  EXPECT_EQ(a.rel, 1u);
  EXPECT_EQ(a.kind, core::AccessSpec::Kind::kBind);
  ASSERT_EQ(a.bind_edges.size(), 1u);
  EXPECT_EQ(a.bind_edges[0].left.rel, 0u);
  EXPECT_EQ(a.bind_edges[0].left.col, 1u);
  EXPECT_EQ(a.bind_edges[0].right.rel, 1u);
  EXPECT_EQ(a.bind_edges[0].right.col, 0u);
  EXPECT_TRUE(a.used_sqr);
  EXPECT_EQ(a.est_rows, 8.25);
  EXPECT_EQ(a.est_bind_values, 4.0);
  EXPECT_EQ(a.est_transactions, 6);
  EXPECT_EQ(a.est_calls, 4);
  EXPECT_EQ(a.sqr_counters.cover_boxes, 3u);
  EXPECT_EQ(plan.counters.evaluated_plans, 9u);
  EXPECT_EQ(plan.counters.enumerated_bboxes, 5u);
  EXPECT_EQ(plan.counters.kept_bboxes, 2u);
  EXPECT_EQ(plan.cf_total, 40);
  EXPECT_EQ(plan.cf_by_dataset, cached.cf_by_dataset);
  EXPECT_EQ(plan.cf_signature, "bind:Weather");
}

TEST_F(WalTest, SnapshotMissingIsNotFound) {
  SnapshotData out;
  EXPECT_EQ(ReadSnapshotFile((dir_ / "absent.snap").string(), &out).code(),
            Status::Code::kNotFound);
}

TEST_F(WalTest, SnapshotCorruptionIsDetected) {
  SnapshotData data;
  data.last_seq = 5;
  const std::string path = (dir_ / "store.snap").string();
  ASSERT_TRUE(WriteSnapshotFile(path, data).ok());

  // Flip one body byte: the CRC must catch it.
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 1] ^= 0x10;
  WriteFile(path, bytes);
  SnapshotData out;
  EXPECT_EQ(ReadSnapshotFile(path, &out).code(), Status::Code::kInternal);

  // A half-written file (the torn tmp a crash mid-snapshot leaves) too.
  WriteFile(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(ReadSnapshotFile(path, &out).code(), Status::Code::kInternal);

  WriteFile(path, "torn-snapshot");
  EXPECT_EQ(ReadSnapshotFile(path, &out).code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace payless::durability
