// Multi-query optimization (§7): deferred batches merge overlapping market
// footprints into shared prefetches.
#include <gtest/gtest.h>

#include "exec/payless.h"
#include "exec/reference.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    TableDef t;
    t.name = "Readings";
    t.dataset = "D";
    t.columns = {
        ColumnDef::Free("Pos", ValueType::kInt64,
                        AttrDomain::Numeric(0, 9999)),
        ColumnDef::Output("Val", ValueType::kDouble)};
    t.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(t).ok());
    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t p = 0; p < 10000; p += 5) {  // 2000 rows, every 5th slot
      rows.push_back(Row{Value(p), Value(static_cast<double>(p))});
    }
    ASSERT_TRUE(market_->HostTable("Readings", std::move(rows)).ok());

    // A table whose BOUND categorical attribute makes some merged hulls
    // inexpressible as one REST call (a hull spanning both categories
    // leaves the bound attribute unconstrained).
    TableDef sensors;
    sensors.name = "Sensors";
    sensors.dataset = "D";
    sensors.columns = {
        ColumnDef::Bound("C", ValueType::kString,
                         AttrDomain::Categorical({"a", "b"})),
        ColumnDef::Free("Pos", ValueType::kInt64,
                        AttrDomain::Numeric(0, 999)),
        ColumnDef::Output("Val", ValueType::kDouble)};
    sensors.cardinality = 200;
    ASSERT_TRUE(cat_.RegisterTable(sensors).ok());
    std::vector<Row> sensor_rows;
    for (int64_t p = 0; p < 1000; p += 10) {
      sensor_rows.push_back(Row{Value("a"), Value(p), Value(p * 1.0)});
      sensor_rows.push_back(Row{Value("b"), Value(p), Value(p * 2.0)});
    }
    ASSERT_TRUE(market_->HostTable("Sensors", std::move(sensor_rows)).ok());
  }

  static std::vector<BatchQuery> OverlappingBatch() {
    // Six queries over interleaved narrow ranges within [1000, 1960]:
    // individually 6 calls of 1 page each; merged, one ~2-page fetch.
    std::vector<BatchQuery> batch;
    for (int64_t i = 0; i < 6; ++i) {
      const int64_t lo = 1000 + i * 160;
      batch.push_back(BatchQuery{
          "SELECT * FROM Readings WHERE Pos >= " + std::to_string(lo) +
              " AND Pos <= " + std::to_string(lo + 150),
          {}});
    }
    return batch;
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(BatchTest, BatchNeverCostsMoreThanSequential) {
  PayLess sequential(&cat_, market_.get(), PayLessConfig{});
  for (const BatchQuery& q : OverlappingBatch()) {
    ASSERT_TRUE(sequential.Query(q.sql, q.params).ok());
  }
  PayLess batched(&cat_, market_.get(), PayLessConfig{});
  Result<BatchReport> report = batched.QueryBatch(OverlappingBatch());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LE(report->transactions_spent,
            sequential.meter().total_transactions());
}

TEST_F(BatchTest, BatchResultsMatchSequentialResults) {
  PayLess sequential(&cat_, market_.get(), PayLessConfig{});
  PayLess batched(&cat_, market_.get(), PayLessConfig{});
  const std::vector<BatchQuery> batch = OverlappingBatch();
  Result<BatchReport> report = batched.QueryBatch(batch);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Result<storage::Table> expected =
        sequential.Query(batch[i].sql, batch[i].params);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(SameResult(report->results[i], *expected)) << batch[i].sql;
  }
}

TEST_F(BatchTest, MergesOverlappingFootprints) {
  PayLess batched(&cat_, market_.get(), PayLessConfig{});
  Result<BatchReport> report = batched.QueryBatch(OverlappingBatch());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->merged_groups, 1u);
  EXPECT_GT(report->prefetch_transactions, 0);
}

TEST_F(BatchTest, DisjointBatchDoesNotForceMerging) {
  // Two far-apart single-page queries: the hull spans ~half the table, so
  // merging must NOT happen and the cost equals sequential.
  std::vector<BatchQuery> batch = {
      BatchQuery{"SELECT * FROM Readings WHERE Pos >= 0 AND Pos <= 400", {}},
      BatchQuery{
          "SELECT * FROM Readings WHERE Pos >= 9000 AND Pos <= 9400", {}},
  };
  PayLess sequential(&cat_, market_.get(), PayLessConfig{});
  for (const BatchQuery& q : batch) {
    ASSERT_TRUE(sequential.Query(q.sql, q.params).ok());
  }
  PayLess batched(&cat_, market_.get(), PayLessConfig{});
  Result<BatchReport> report = batched.QueryBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_spent,
            sequential.meter().total_transactions());
}

TEST_F(BatchTest, InexpressibleMergedHullIsCountedNotSilentlySkipped) {
  // Two overlapping footprints on different values of the bound categorical
  // attribute: the merged hull spans the whole {a, b} domain, which no
  // single REST call can express (the bound attribute would be
  // unconstrained). The prefetch must SKIP the hull — visibly, via
  // prefetch_skipped_calls — and the queries must still answer correctly
  // through their own per-query calls in phase 3.
  const std::vector<BatchQuery> batch = {
      BatchQuery{
          "SELECT Val FROM Sensors WHERE C = 'a' AND Pos >= 100 AND "
          "Pos <= 300",
          {}},
      BatchQuery{
          "SELECT Val FROM Sensors WHERE C = 'b' AND Pos >= 120 AND "
          "Pos <= 320",
          {}},
  };
  PayLess sequential(&cat_, market_.get(), PayLessConfig{});
  std::vector<storage::Table> expected;
  for (const BatchQuery& q : batch) {
    Result<storage::Table> r = sequential.Query(q.sql, q.params);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  PayLess batched(&cat_, market_.get(), PayLessConfig{});
  Result<BatchReport> report = batched.QueryBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->prefetch_skipped_calls, 1u);
  EXPECT_EQ(report->merged_groups, 0u);  // nothing issuable was merged
  ASSERT_EQ(report->results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameResult(report->results[i], expected[i])) << batch[i].sql;
  }
  EXPECT_EQ(report->transactions_spent,
            sequential.meter().total_transactions());
}

TEST_F(BatchTest, EmptyBatch) {
  PayLess client(&cat_, market_.get(), PayLessConfig{});
  Result<BatchReport> report = client.QueryBatch({});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results.empty());
  EXPECT_EQ(report->transactions_spent, 0);
}

TEST_F(BatchTest, BatchParseErrorPropagates) {
  PayLess client(&cat_, market_.get(), PayLessConfig{});
  EXPECT_FALSE(client.QueryBatch({BatchQuery{"SELEC oops", {}}}).ok());
}

TEST_F(BatchTest, BatchWithSqrDisabledStillAnswers) {
  PayLessConfig config;
  config.optimizer.use_sqr = false;
  PayLess client(&cat_, market_.get(), config);
  Result<BatchReport> report = client.QueryBatch(OverlappingBatch());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->merged_groups, 0u);  // no store: nothing to merge into
  EXPECT_EQ(report->results.size(), 6u);
}

}  // namespace
}  // namespace payless::exec
