// Shared market + catalog fixture for the crash-recovery tests and the
// hard-kill child binary: the WHW weather dataset of the chaos tests, a
// bind-join query mix, and helpers to run the mix on one client. Kept in a
// header so the in-process test and the child process run the IDENTICAL
// workload — the twin-comparison invariants depend on it.
#ifndef PAYLESS_TESTS_DURABILITY_FIXTURE_H_
#define PAYLESS_TESTS_DURABILITY_FIXTURE_H_

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"
#include "market/fault_injector.h"

namespace payless::exec {

/// The WHW fixture: a priced Weather table (bound StationID), a priced
/// Station table, and a local CityMap driving bind joins.
class DurabilityFixture {
 public:
  static constexpr int kNumStations = 16;
  static constexpr int kNumDates = 4;

  // Bind join driven by the local CityMap: CityId range -> StationID values.
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= ?";

  DurabilityFixture() {
    Check(cat_.RegisterDataset(catalog::DatasetDef{"WHW", 1.0, 5}).ok());

    catalog::TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        catalog::ColumnDef::Free("Country", ValueType::kString,
                                 catalog::AttrDomain::Categorical({"US"})),
        catalog::ColumnDef::Bound(
            "StationID", ValueType::kInt64,
            catalog::AttrDomain::Numeric(1, kNumStations)),
        catalog::ColumnDef::Free("Date", ValueType::kInt64,
                                 catalog::AttrDomain::Numeric(1, kNumDates)),
        catalog::ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kNumStations * kNumDates;
    Check(cat_.RegisterTable(weather).ok());

    catalog::TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        catalog::ColumnDef::Free(
            "CityId", ValueType::kInt64,
            catalog::AttrDomain::Numeric(1, kNumStations)),
        catalog::ColumnDef::Free(
            "StationID", ValueType::kInt64,
            catalog::AttrDomain::Numeric(1, kNumStations))};
    citymap.cardinality = kNumStations;
    Check(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> weather_rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        weather_rows.push_back(Row{Value("US"), Value(s), Value(d),
                                   Value(static_cast<double>(s * 100 + d))});
      }
    }
    Check(market_->HostTable("Weather", std::move(weather_rows)).ok());

    for (int64_t i = 1; i <= kNumStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  /// A client over the shared market. Serial calls (max_parallel_calls=1)
  /// so the harvest sequence — and therefore which harvest an armed crash
  /// hits — is deterministic.
  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    config.max_parallel_calls = 1;
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    Check(client->LoadLocalTable("CityMap", city_rows_).ok());
    return client;
  }

  /// The query mix: overlapping CityId ranges so later queries partially
  /// reuse earlier harvests, plus an exact repeat for the full-reuse path.
  static std::vector<std::vector<Value>> ParamMix() {
    std::vector<std::vector<Value>> mix;
    mix.push_back(
        {Value(int64_t{1}), Value(int64_t{6}), Value(int64_t{kNumDates})});
    mix.push_back({Value(int64_t{4}), Value(int64_t{12}), Value(int64_t{2})});
    mix.push_back(
        {Value(int64_t{1}), Value(int64_t{6}), Value(int64_t{kNumDates})});
    mix.push_back(
        {Value(int64_t{10}), Value(int64_t{16}), Value(int64_t{kNumDates})});
    return mix;
  }

  /// Runs the mix once; every query must succeed. Returns the sorted result
  /// rows per query.
  static std::vector<std::vector<Row>> RunMix(PayLess* client) {
    std::vector<std::vector<Row>> results;
    for (const auto& params : ParamMix()) {
      Result<QueryReport> r = client->QueryWithReport(kBindSql, params);
      Check(r.ok() && r->error.ok());
      std::vector<Row> rows = r->result.rows();
      std::sort(rows.begin(), rows.end());
      results.push_back(std::move(rows));
    }
    return results;
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;

 private:
  /// abort()s on failure — usable from both gtest and the child binary.
  static void Check(bool ok) {
    if (!ok) std::abort();
  }
};

}  // namespace payless::exec

#endif  // PAYLESS_TESTS_DURABILITY_FIXTURE_H_
