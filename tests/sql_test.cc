#include <gtest/gtest.h>

#include "sql/bound_query.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace payless::sql {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens =
      Tokenize("SELECT a, b FROM t WHERE x >= 10");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[2].type, TokenType::kComma);
  EXPECT_TRUE((*tokens)[8].IsOperator(">="));
  EXPECT_EQ((*tokens)[9].int_value, 10);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  Result<std::vector<Token>> tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, IdentifiersPreserveCase) {
  Result<std::vector<Token>> tokens = Tokenize("StationID");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "StationID");
}

TEST(LexerTest, StringLiterals) {
  Result<std::vector<Token>> tokens = Tokenize("'Seattle' ''");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "Seattle");
  EXPECT_EQ((*tokens)[1].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Tokenize("'oops").status().code(), Status::Code::kParseError);
}

TEST(LexerTest, FloatsAndInts) {
  Result<std::vector<Token>> tokens = Tokenize("3.5 42 7.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[0].float_value, 3.5);
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
  // "7." without digits after the dot lexes as integer then dot.
  EXPECT_EQ((*tokens)[2].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[3].type, TokenType::kDot);
}

TEST(LexerTest, Operators) {
  Result<std::vector<Token>> tokens = Tokenize("= <> != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsOperator("="));
  EXPECT_TRUE((*tokens)[1].IsOperator("<>"));
  EXPECT_TRUE((*tokens)[2].IsOperator("<>"));  // != normalizes
  EXPECT_TRUE((*tokens)[3].IsOperator("<"));
  EXPECT_TRUE((*tokens)[4].IsOperator("<="));
  EXPECT_TRUE((*tokens)[5].IsOperator(">"));
  EXPECT_TRUE((*tokens)[6].IsOperator(">="));
}

TEST(LexerTest, IntegerOverflowFails) {
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, MinimalSelect) {
  Result<SelectStmt> stmt = Parse("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select.size(), 1u);
  EXPECT_EQ(stmt->select[0].kind, SelectItem::Kind::kStar);
  EXPECT_EQ(stmt->from, (std::vector<std::string>{"t"}));
  EXPECT_TRUE(stmt->where.empty());
}

TEST(ParserTest, QualifiedColumnsAndAliases) {
  Result<SelectStmt> stmt = Parse("SELECT t.a AS x, b FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select[0].column.table, "t");
  EXPECT_EQ(stmt->select[0].column.column, "a");
  EXPECT_EQ(stmt->select[0].alias, "x");
  EXPECT_EQ(stmt->select[1].column.column, "b");
}

TEST(ParserTest, Aggregates) {
  Result<SelectStmt> stmt =
      Parse("SELECT COUNT(*), AVG(t.v), MIN(v), MAX(v), SUM(v) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select[0].agg_star);
  EXPECT_EQ(stmt->select[0].agg, storage::AggFunc::kCount);
  EXPECT_EQ(stmt->select[1].agg, storage::AggFunc::kAvg);
  EXPECT_EQ(stmt->select[1].column.table, "t");
  EXPECT_EQ(stmt->select[4].agg, storage::AggFunc::kSum);
}

TEST(ParserTest, WhereConjunction) {
  Result<SelectStmt> stmt =
      Parse("SELECT a FROM t WHERE a = 1 AND b >= 2.5 AND c = 'x' AND d <> 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 4u);
  EXPECT_EQ(stmt->where[0].op, CompareOp::kEq);
  EXPECT_EQ(stmt->where[1].rhs.literal, Value(2.5));
  EXPECT_EQ(stmt->where[2].rhs.literal, Value("x"));
  EXPECT_EQ(stmt->where[3].op, CompareOp::kNe);
}

TEST(ParserTest, JoinPredicate) {
  Result<SelectStmt> stmt =
      Parse("SELECT a FROM t, u WHERE t.k = u.k");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 1u);
  EXPECT_EQ(stmt->where[0].rhs.kind, Operand::Kind::kColumn);
}

TEST(ParserTest, ChainedEqualityDesugars) {
  Result<SelectStmt> stmt =
      Parse("SELECT a FROM t, u WHERE t.c = u.c = 'US'");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_EQ(stmt->where[0].lhs.ToString(), "t.c");
  EXPECT_EQ(stmt->where[0].rhs.column.ToString(), "u.c");
  EXPECT_EQ(stmt->where[1].lhs.ToString(), "u.c");
  EXPECT_EQ(stmt->where[1].rhs.literal, Value("US"));
}

TEST(ParserTest, TripleChainedEquality) {
  Result<SelectStmt> stmt =
      Parse("SELECT a FROM t, u, v WHERE t.c = u.c = v.c = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where.size(), 3u);
}

TEST(ParserTest, ChainRequiresColumnOnBothSides) {
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a = 1 = 2").ok());
}

TEST(ParserTest, Parameters) {
  Result<SelectStmt> stmt =
      Parse("SELECT a FROM t WHERE a = ? AND b >= ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->num_params, 2u);
  EXPECT_EQ(stmt->where[0].rhs.param_index, 0u);
  EXPECT_EQ(stmt->where[1].rhs.param_index, 1u);
}

TEST(ParserTest, GroupBy) {
  Result<SelectStmt> stmt =
      Parse("SELECT c, COUNT(*) FROM t GROUP BY c, t.d");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->group_by.size(), 2u);
  EXPECT_EQ(stmt->group_by[1].table, "t");
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT a").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t GROUP c").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t trailing").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(a FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a = ").ok());
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const std::string sql =
      "SELECT City, AVG(Temperature) AS avg_t FROM Station, Weather "
      "WHERE Station.ID = Weather.ID AND Date >= 5 GROUP BY City";
  Result<SelectStmt> stmt = Parse(sql);
  ASSERT_TRUE(stmt.ok());
  Result<SelectStmt> reparsed = Parse(stmt->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(stmt->ToString(), reparsed->ToString());
}

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
    TableDef station;
    station.name = "Station";
    station.dataset = "WHW";
    station.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"Canada", "US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 100)),
        ColumnDef::Output("State", ValueType::kString)};
    station.cardinality = 100;
    ASSERT_TRUE(cat_.RegisterTable(station).ok());

    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"Canada", "US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 100)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(0, 364)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = 36500;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef zipmap;
    zipmap.name = "ZipMap";
    zipmap.is_local = true;
    zipmap.columns = {
        ColumnDef::Free("ZipCode", ValueType::kInt64,
                        AttrDomain::Numeric(10000, 10099)),
        ColumnDef::Output("City", ValueType::kString)};
    zipmap.cardinality = 100;
    ASSERT_TRUE(cat_.RegisterTable(zipmap).ok());
  }

  Result<BoundQuery> BindSql(const std::string& sql,
                             std::vector<Value> params = {}) {
    Result<SelectStmt> stmt = Parse(sql);
    if (!stmt.ok()) return stmt.status();
    return Bind(*stmt, cat_, params);
  }

  catalog::Catalog cat_;
};

TEST_F(BinderTest, ResolvesTablesAndLocality) {
  Result<BoundQuery> q = BindSql("SELECT * FROM Station, ZipMap");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->relations[0].is_market());
  EXPECT_FALSE(q->relations[1].is_market());
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_EQ(BindSql("SELECT * FROM Nope").status().code(),
            Status::Code::kNotFound);
}

TEST_F(BinderTest, SelfJoinUnsupported) {
  EXPECT_EQ(BindSql("SELECT * FROM Station, Station").status().code(),
            Status::Code::kNotSupported);
}

TEST_F(BinderTest, PointConditionPushedIntoCall) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Country = 'US'");
  ASSERT_TRUE(q.ok());
  const market::AttrCondition& cond = q->relations[0].conditions[0];
  EXPECT_EQ(cond.kind, market::AttrCondition::Kind::kPoint);
  EXPECT_EQ(cond.point, Value("US"));
}

TEST_F(BinderTest, RangeBoundsFoldIntoOneInterval) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Weather WHERE Date >= 10 AND Date <= 20 AND Date < 18");
  ASSERT_TRUE(q.ok());
  const market::AttrCondition& cond = q->relations[0].conditions[2];
  EXPECT_EQ(cond.kind, market::AttrCondition::Kind::kRange);
  EXPECT_EQ(cond.range, Interval(10, 17));
}

TEST_F(BinderTest, StrictBoundsBecomeClosedIntervals) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Date > 10 AND Date < 20");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->relations[0].conditions[2].range, Interval(11, 19));
}

TEST_F(BinderTest, ContradictoryEqualitiesMarkEmpty) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Country = 'Canada'");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->relations[0].always_empty);
}

TEST_F(BinderTest, EqOutsideRangeMarksEmpty) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Weather WHERE Date = 5 AND Date >= 10");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->relations[0].always_empty);
}

TEST_F(BinderTest, EmptyRangeMarksEmpty) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Date >= 20 AND Date <= 10");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->relations[0].always_empty);
}

TEST_F(BinderTest, OutputAttrPredicateBecomesResidual) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Temperature >= 20.5");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->residuals.size(), 1u);
  EXPECT_EQ(q->residuals[0].op, CompareOp::kGe);
  EXPECT_TRUE(q->relations[0].conditions[3].is_none());
}

TEST_F(BinderTest, NotEqualIsResidual) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Date <> 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->residuals.size(), 1u);
  EXPECT_TRUE(q->relations[0].conditions[2].is_none());
}

TEST_F(BinderTest, JoinEdgeExtraction) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Station, Weather "
      "WHERE Station.StationID = Weather.StationID");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left.rel, 0u);
  EXPECT_EQ(q->joins[0].right.rel, 1u);
}

TEST_F(BinderTest, ChainedEqualityPropagatesConstant) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Station, Weather "
      "WHERE Station.Country = Weather.Country = 'US' AND "
      "Station.StationID = Weather.StationID");
  ASSERT_TRUE(q.ok());
  // Both relations end up constrained on Country (the Fig. 1 plans).
  EXPECT_EQ(q->relations[0].conditions[0].kind,
            market::AttrCondition::Kind::kPoint);
  EXPECT_EQ(q->relations[1].conditions[0].kind,
            market::AttrCondition::Kind::kPoint);
}

TEST_F(BinderTest, RangePropagatesAcrossJoin) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Station, Weather "
      "WHERE Station.StationID = Weather.StationID AND "
      "Weather.StationID >= 5 AND Weather.StationID <= 9");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->relations[0].conditions[1].range, Interval(5, 9));
}

TEST_F(BinderTest, PropagatedValueOutsideDomainMarksEmpty) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Station, ZipMap "
      "WHERE Station.StationID = ZipMap.ZipCode AND Station.StationID = 50");
  ASSERT_TRUE(q.ok());
  // 50 is outside ZipMap's [10000, 10099] zip domain: the join is empty.
  EXPECT_TRUE(q->relations[1].always_empty);
}

TEST_F(BinderTest, ParameterSubstitution) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Weather WHERE Country = ? AND Date >= ? AND Date <= ?",
      {Value("US"), Value(int64_t{5}), Value(int64_t{10})});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->relations[0].conditions[0].point, Value("US"));
  EXPECT_EQ(q->relations[0].conditions[2].range, Interval(5, 10));
}

TEST_F(BinderTest, MissingParametersFail) {
  EXPECT_EQ(BindSql("SELECT * FROM Weather WHERE Date >= ?").status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(BinderTest, TypeMismatchFails) {
  EXPECT_FALSE(BindSql("SELECT * FROM Weather WHERE Country = 5").ok());
  EXPECT_FALSE(BindSql("SELECT * FROM Weather WHERE Date = 'abc'").ok());
}

TEST_F(BinderTest, IntCoercesToDoubleColumn) {
  Result<BoundQuery> q =
      BindSql("SELECT * FROM Weather WHERE Temperature >= 20");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->residuals[0].literal, Value(20.0));
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  EXPECT_EQ(BindSql("SELECT * FROM Station, Weather WHERE Country = 'US'")
                .status()
                .code(),
            Status::Code::kInvalidArgument);
}

TEST_F(BinderTest, UnknownColumnFails) {
  EXPECT_EQ(BindSql("SELECT Nope FROM Station").status().code(),
            Status::Code::kNotFound);
}

TEST_F(BinderTest, GroupByValidation) {
  EXPECT_TRUE(BindSql(
      "SELECT Country, COUNT(*) FROM Station GROUP BY Country").ok());
  // Plain column not in GROUP BY.
  EXPECT_FALSE(BindSql(
      "SELECT StationID, COUNT(*) FROM Station GROUP BY Country").ok());
  // GROUP BY without aggregates.
  EXPECT_EQ(BindSql("SELECT Country FROM Station GROUP BY Country")
                .status()
                .code(),
            Status::Code::kNotSupported);
}

TEST_F(BinderTest, NonEqColumnComparisonUnsupported) {
  EXPECT_EQ(BindSql("SELECT * FROM Station, Weather "
                    "WHERE Station.StationID < Weather.StationID")
                .status()
                .code(),
            Status::Code::kNotSupported);
}

TEST_F(BinderTest, QueryRegionReflectsConditions) {
  Result<BoundQuery> q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'Canada' AND Date >= 100 AND "
      "Date <= 200");
  ASSERT_TRUE(q.ok());
  const Box region = q->relations[0].QueryRegion();
  EXPECT_EQ(region.dim(0), Interval::Point(0));
  EXPECT_EQ(region.dim(1), Interval(1, 100));
  EXPECT_EQ(region.dim(2), Interval(100, 200));
}

TEST_F(BinderTest, SelectItemNamesAndAliases) {
  Result<BoundQuery> q = BindSql(
      "SELECT Country AS c, AVG(Temperature) FROM Weather GROUP BY Country");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].output_name, "c");
  EXPECT_EQ(q->select[1].output_name, "AVG(Temperature)");
}

TEST_F(BinderTest, HasAggregatesAndJoinsOf) {
  Result<BoundQuery> q = BindSql(
      "SELECT COUNT(*) FROM Station, Weather "
      "WHERE Station.StationID = Weather.StationID");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->HasAggregates());
  EXPECT_EQ(q->JoinsOf(0).size(), 1u);
  EXPECT_EQ(q->JoinsOf(1).size(), 1u);
}

}  // namespace
}  // namespace payless::sql
