// Crash-consistent recovery: the billing contract of the durability layer.
//
// Every test compares a crash-and-restart run against an uncrashed twin on
// the same workload. The invariants are monetary:
//   1. a harvest whose WAL record (or snapshot) is durable is NEVER bought
//      again after a restart — the warm store serves it for free;
//   2. a crash before/mid append loses exactly the harvests that were
//      billed but not yet durable — the restarted client re-buys those and
//      nothing else;
//   3. nothing is ever served that was not paid for: recovered store rows
//      are always a subset of the twin's;
//   4. the seq filter makes the snapshot/WAL overlap window (crash between
//      snapshot rename and log reset) apply-once;
//   5. the ledgers reconcile after recovery: cost-ledger spend equals the
//      billing meter, and the savings ledger's arithmetic holds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <memory>
#include <numeric>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "durability/wal.h"
#include "durability_fixture.h"
#include "market/fault_injector.h"

namespace payless::exec {
namespace {

namespace fs = std::filesystem;

using durability::DecodeHarvest;
using durability::HarvestRecord;
using durability::ReadWal;
using durability::WalReadResult;
using market::CrashPlan;
using market::CrashPoint;
using market::FaultInjector;
using market::FaultProfile;

class DurabilityRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("recovery_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    // The uncrashed twin: round 1 (cold) + round 2 (warm, same mix). Its
    // per-harvest transaction trace is the ground truth for what a crash
    // at harvest k forfeits.
    twin_ = fixture_.NewClient();
    twin_->connector()->AddListener(
        [this](const market::RestCall&, const market::CallResult& result) {
          harvest_tx_.push_back(result.transactions);
        });
    twin_round1_results_ = DurabilityFixture::RunMix(twin_.get());
    round1_spend_ = twin_->meter().total_transactions();
    num_harvests_ = harvest_tx_.size();
    twin_round2_results_ = DurabilityFixture::RunMix(twin_.get());
    round2_spend_ = twin_->meter().total_transactions() - round1_spend_;
    ASSERT_GE(num_harvests_, 3u) << "fixture must produce a real harvest run";
  }

  void TearDown() override { fs::remove_all(dir_); }

  PayLessConfig DurableConfig() {
    PayLessConfig config;
    config.durability.dir = dir_.string();
    // Explicit SnapshotNow only — the crash-point tests control compaction.
    config.durability.snapshot_every_records = 0;
    return config;
  }

  /// Recovers a fresh client from `dir_`, checks the ledgers reconcile,
  /// and returns it.
  std::unique_ptr<PayLess> Restart() {
    auto client = fixture_.NewClient(DurableConfig());
    EXPECT_TRUE(client->durability() != nullptr);
    EXPECT_TRUE(client->observability()->savings.Reconciles());
    return client;
  }

  /// Runs the mix on a recovered client and asserts the billing contract:
  /// round-2 results identical to the twin's, spend = twin round-2 spend +
  /// the transactions of the `lost` harvests (those billed before the
  /// crash but never durable), and ledger == meter afterwards.
  void ExpectWarmRound(PayLess* client, int64_t lost_transactions) {
    const std::vector<std::vector<Row>> results =
        DurabilityFixture::RunMix(client);
    EXPECT_EQ(results, twin_round2_results_);
    EXPECT_EQ(client->meter().total_transactions(),
              round2_spend_ + lost_transactions);
    EXPECT_EQ(client->observability()->ledger.total_transactions(),
              client->meter().total_transactions());
    EXPECT_TRUE(client->observability()->savings.Reconciles());
    // Served nothing unpaid, forgot nothing paid: after the warm round the
    // store converges to exactly the twin's coverage.
    EXPECT_EQ(client->store().TotalStoredRows(),
              twin_->store().TotalStoredRows());
  }

  /// Sum of the transactions of harvests [from, to) of the round-1 trace.
  int64_t TraceSpend(size_t from, size_t to) const {
    int64_t total = 0;
    for (size_t i = from; i < to && i < harvest_tx_.size(); ++i) {
      total += harvest_tx_[i];
    }
    return total;
  }

  DurabilityFixture fixture_;
  fs::path dir_;
  std::unique_ptr<PayLess> twin_;
  std::vector<int64_t> harvest_tx_;  // twin round-1 per-harvest transactions
  std::vector<std::vector<Row>> twin_round1_results_;
  std::vector<std::vector<Row>> twin_round2_results_;
  int64_t round1_spend_ = 0;
  int64_t round2_spend_ = 0;
  size_t num_harvests_ = 0;
};

TEST_F(DurabilityRecoveryTest, WarmRestartReplaysTheLogAndRebuysNothing) {
  auto client = fixture_.NewClient(DurableConfig());
  ASSERT_NE(client->durability(), nullptr);
  EXPECT_FALSE(client->durability()->recovery().recovered);
  const std::vector<std::vector<Row>> results =
      DurabilityFixture::RunMix(client.get());
  EXPECT_EQ(results, twin_round1_results_);
  EXPECT_EQ(client->meter().total_transactions(), round1_spend_);
  const size_t stored_rows = client->store().TotalStoredRows();
  const size_t stats_feedbacks = client->stats().TotalFeedbacks();
  client.reset();  // clean shutdown — but nothing was flushed at exit:
                   // durability never relies on destructors

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_TRUE(info.recovered);
  EXPECT_FALSE(info.had_snapshot);
  EXPECT_FALSE(info.wal_torn_tail);
  EXPECT_EQ(info.replayed_records, num_harvests_);
  EXPECT_EQ(info.skipped_records, 0u);
  EXPECT_EQ(info.recovered_rows, 0u);  // rows came from replay, not a snapshot
  EXPECT_EQ(restarted->store().TotalStoredRows(), stored_rows);
  // Replay runs the same feedback path a live harvest does.
  EXPECT_EQ(restarted->stats().TotalFeedbacks(), stats_feedbacks);
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
}

TEST_F(DurabilityRecoveryTest, SnapshotCompactsAndRestoresEverything) {
  auto client = fixture_.NewClient(DurableConfig());
  (void)DurabilityFixture::RunMix(client.get());
  const size_t stored_rows = client->store().TotalStoredRows();
  const size_t plan_entries = client->plan_cache().Stats().entries;
  const uint64_t drift_epoch = client->accuracy().drift_epoch();
  ASSERT_GT(plan_entries, 0u);
  ASSERT_TRUE(client->durability()->SnapshotNow().ok());
  EXPECT_EQ(client->durability()->wal_bytes(), 0);  // compaction reset it
  client.reset();

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_TRUE(info.recovered);
  EXPECT_TRUE(info.had_snapshot);
  EXPECT_EQ(info.snapshot_seq, num_harvests_);
  EXPECT_EQ(info.replayed_records, 0u);
  EXPECT_EQ(info.recovered_rows, stored_rows);
  EXPECT_GT(info.recovered_views, 0u);
  EXPECT_EQ(info.recovered_plans, plan_entries);
  EXPECT_GT(info.recovered_stats_tables, 0u);
  EXPECT_EQ(info.restored_drift_epoch, drift_epoch);
  EXPECT_EQ(restarted->accuracy().drift_epoch(), drift_epoch);
  EXPECT_EQ(restarted->store().TotalStoredRows(), stored_rows);
  EXPECT_EQ(restarted->plan_cache().Stats().entries, plan_entries);

  const uint64_t hits_before = restarted->plan_cache().Stats().hits;
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
  // The recovered plan templates actually serve: the warm round hits them.
  EXPECT_GT(restarted->plan_cache().Stats().hits, hits_before);
}

TEST_F(DurabilityRecoveryTest, AutoSnapshotCompactsDuringTheRun) {
  PayLessConfig config = DurableConfig();
  config.durability.snapshot_every_records = 3;
  auto client = fixture_.NewClient(config);
  (void)DurabilityFixture::RunMix(client.get());
  EXPECT_TRUE(fs::exists(dir_ / "store.snap"));
  const size_t stored_rows = client->store().TotalStoredRows();
  client.reset();

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_TRUE(info.had_snapshot);
  // Snapshot base + the post-snapshot log tail together rebuild the store.
  EXPECT_EQ(info.snapshot_seq + info.replayed_records, num_harvests_);
  EXPECT_LT(info.replayed_records, num_harvests_);
  EXPECT_EQ(restarted->store().TotalStoredRows(), stored_rows);
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
}

TEST_F(DurabilityRecoveryTest, CrashBeforeLogRebuysExactlyTheLostSlab) {
  // The last harvest of round 1 is billed but dies before its log append:
  // the ONE case where a restart legitimately pays again — and it pays
  // exactly that harvest's transactions, nothing more.
  FaultInjector injector(FaultProfile{});
  CrashPlan plan;
  plan.point = CrashPoint::kBeforeHarvestLog;
  plan.after_hits = static_cast<int>(num_harvests_) - 1;
  injector.ArmCrash(plan);

  PayLessConfig config = DurableConfig();
  config.durability.crash_injector = &injector;
  auto client = fixture_.NewClient(config);
  const std::vector<std::vector<Row>> results =
      DurabilityFixture::RunMix(client.get());
  EXPECT_EQ(results, twin_round1_results_);  // in-memory it kept serving
  EXPECT_EQ(client->meter().total_transactions(), round1_spend_);
  ASSERT_TRUE(client->durability()->dead());
  EXPECT_EQ(injector.stats().crashes, 1);
  client.reset();

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_EQ(info.replayed_records, num_harvests_ - 1);
  EXPECT_FALSE(info.wal_torn_tail);
  // Strict subset: the lost slab is not served (it was never durable).
  EXPECT_LT(restarted->store().TotalStoredRows(),
            twin_->store().TotalStoredRows());
  ExpectWarmRound(restarted.get(),
                  TraceSpend(num_harvests_ - 1, num_harvests_));
}

TEST_F(DurabilityRecoveryTest, CrashMidLogTearsTheTailAndRebuysThatSlab) {
  FaultInjector injector(FaultProfile{});
  CrashPlan plan;
  plan.point = CrashPoint::kMidHarvestLog;
  plan.after_hits = static_cast<int>(num_harvests_) - 1;
  plan.torn_bytes = 13;  // header + 5 payload bytes reach the disk
  injector.ArmCrash(plan);

  PayLessConfig config = DurableConfig();
  config.durability.crash_injector = &injector;
  auto client = fixture_.NewClient(config);
  (void)DurabilityFixture::RunMix(client.get());
  ASSERT_TRUE(client->durability()->dead());
  client.reset();

  // The torn frame is on disk; recovery must drop exactly it.
  const WalReadResult wal = ReadWal((dir_ / "harvest.wal").string());
  EXPECT_TRUE(wal.torn_tail);
  EXPECT_EQ(wal.payloads.size(), num_harvests_ - 1);

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_TRUE(info.wal_torn_tail);
  EXPECT_EQ(info.replayed_records, num_harvests_ - 1);
  ExpectWarmRound(restarted.get(),
                  TraceSpend(num_harvests_ - 1, num_harvests_));
}

TEST_F(DurabilityRecoveryTest, CrashAfterLogLosesNotOneTransaction) {
  // The record reached the disk before the death: the restarted client's
  // bill is byte-identical to the uncrashed twin's.
  FaultInjector injector(FaultProfile{});
  CrashPlan plan;
  plan.point = CrashPoint::kAfterHarvestLog;
  plan.after_hits = static_cast<int>(num_harvests_) - 1;
  injector.ArmCrash(plan);

  PayLessConfig config = DurableConfig();
  config.durability.crash_injector = &injector;
  auto client = fixture_.NewClient(config);
  (void)DurabilityFixture::RunMix(client.get());
  ASSERT_TRUE(client->durability()->dead());
  const size_t stored_rows = client->store().TotalStoredRows();
  client.reset();

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_EQ(info.replayed_records, num_harvests_);
  EXPECT_FALSE(info.wal_torn_tail);
  EXPECT_EQ(restarted->store().TotalStoredRows(), stored_rows);
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
}

TEST_F(DurabilityRecoveryTest, CrashMidSnapshotKeepsTheLogAuthoritative) {
  FaultInjector injector(FaultProfile{});
  CrashPlan plan;
  plan.point = CrashPoint::kMidSnapshot;
  injector.ArmCrash(plan);

  PayLessConfig config = DurableConfig();
  config.durability.crash_injector = &injector;
  auto client = fixture_.NewClient(config);
  (void)DurabilityFixture::RunMix(client.get());
  ASSERT_TRUE(client->durability()->SnapshotNow().ok());  // "dies" inside
  ASSERT_TRUE(client->durability()->dead());
  client.reset();

  // Only the garbage tmp exists; the real snapshot path was never touched
  // and the WAL was never reset.
  EXPECT_TRUE(fs::exists(dir_ / "store.snap.tmp"));
  EXPECT_FALSE(fs::exists(dir_ / "store.snap"));

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_FALSE(info.had_snapshot);
  EXPECT_EQ(info.replayed_records, num_harvests_);
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
}

TEST_F(DurabilityRecoveryTest,
       CrashBetweenSnapshotRenameAndLogResetAppliesOnce) {
  // The overlap window: snapshot committed, WAL still holds every record.
  // The seq filter must skip all of them — applying even one twice would
  // double rows in the store.
  FaultInjector injector(FaultProfile{});
  CrashPlan plan;
  plan.point = CrashPoint::kAfterSnapshotBeforeReset;
  injector.ArmCrash(plan);

  PayLessConfig config = DurableConfig();
  config.durability.crash_injector = &injector;
  auto client = fixture_.NewClient(config);
  (void)DurabilityFixture::RunMix(client.get());
  const size_t stored_rows = client->store().TotalStoredRows();
  ASSERT_TRUE(client->durability()->SnapshotNow().ok());
  ASSERT_TRUE(client->durability()->dead());
  client.reset();

  EXPECT_TRUE(fs::exists(dir_ / "store.snap"));
  const WalReadResult wal = ReadWal((dir_ / "harvest.wal").string());
  EXPECT_EQ(wal.payloads.size(), num_harvests_);  // never reset

  auto restarted = Restart();
  const durability::RecoveryInfo& info = restarted->durability()->recovery();
  EXPECT_TRUE(info.had_snapshot);
  EXPECT_EQ(info.snapshot_seq, num_harvests_);
  EXPECT_EQ(info.skipped_records, num_harvests_);
  EXPECT_EQ(info.replayed_records, 0u);
  EXPECT_EQ(restarted->store().TotalStoredRows(), stored_rows);
  ExpectWarmRound(restarted.get(), /*lost_transactions=*/0);
}

TEST_F(DurabilityRecoveryTest, RepeatedCrashesConvergeToTheTwinBill) {
  // Crash-restart until convergence. Each incarnation persists its first
  // fresh harvest, then dies on the second (a soft death also un-persists
  // everything after it), so incarnation k starts with harvests [0, k)
  // durable and re-bills exactly the tail [k, D). The loop converges in
  // exactly D incarnations, the total spend is the twin's plus the
  // re-bought never-durable tails, and the survivor's warm round matches
  // the twin bill to the transaction.
  int64_t total_spend = 0;
  int64_t expected_spend = 0;
  size_t incarnation = 0;
  std::unique_ptr<PayLess> client;
  for (;; ++incarnation) {
    ASSERT_LT(incarnation, num_harvests_ + 2) << "crash loop did not converge";
    FaultInjector injector(FaultProfile{});
    CrashPlan plan;
    plan.point = CrashPoint::kBeforeHarvestLog;
    plan.after_hits = 1;  // persist one fresh harvest, die on the next
    injector.ArmCrash(plan);
    PayLessConfig config = DurableConfig();
    config.durability.crash_injector = &injector;
    client = fixture_.NewClient(config);
    EXPECT_EQ(client->durability()->recovery().replayed_records, incarnation);
    (void)DurabilityFixture::RunMix(client.get());
    total_spend += client->meter().total_transactions();
    expected_spend += TraceSpend(incarnation, num_harvests_);
    if (injector.stats().crashes == 0) break;  // bought <= 1 fresh harvest
    client.reset();
  }
  EXPECT_EQ(incarnation, num_harvests_ - 1);
  EXPECT_EQ(total_spend, expected_spend);
  // <= and not ==: a warm re-buy issues REMAINDER calls for just the missing
  // area, so its views overlap less than the twin's full-region calls and
  // TotalStoredRows (which counts per-view) can be slightly smaller. The
  // billing and result equalities above prove the coverage is identical.
  EXPECT_LE(client->store().TotalStoredRows(),
            twin_->store().TotalStoredRows());
  const int64_t before_warm = client->meter().total_transactions();
  const std::vector<std::vector<Row>> warm =
      DurabilityFixture::RunMix(client.get());
  EXPECT_EQ(warm, twin_round2_results_);
  EXPECT_EQ(client->meter().total_transactions() - before_warm, round2_spend_);
}

#ifdef CRASH_CHILD_BINARY
TEST_F(DurabilityRecoveryTest, HardKillAndRestartIsBillingCorrect) {
  // The real thing: a child PROCESS dies via _Exit(42) at each crash point
  // (no destructors, no flushes), and this process recovers from whatever
  // bytes the kill left behind. The WAL on disk tells us exactly which
  // harvests were durable; the recovered client may re-buy only the rest.
  const struct {
    const char* name;
    int point;
    bool torn;
  } kCases[] = {
      {"before-log", static_cast<int>(CrashPoint::kBeforeHarvestLog), false},
      {"mid-log", static_cast<int>(CrashPoint::kMidHarvestLog), true},
      {"after-log", static_cast<int>(CrashPoint::kAfterHarvestLog), false},
  };
  const int kAfterHits = 2;  // die on the third harvest, mid-run
  for (const auto& test_case : kCases) {
    const fs::path case_dir = dir_ / test_case.name;
    fs::create_directories(case_dir);
    const fs::path dump_path = case_dir / "flight_dump.json";
    const std::string command = std::string(CRASH_CHILD_BINARY) + " " +
                                case_dir.string() + " " +
                                std::to_string(test_case.point) + " " +
                                std::to_string(kAfterHits) + " " +
                                dump_path.string();
    const int status = std::system(command.c_str());
    ASSERT_TRUE(WIFEXITED(status)) << test_case.name;
    ASSERT_EQ(WEXITSTATUS(status), 42) << test_case.name;

    // The _Exit path dumped the flight recorder: the ring's last moments
    // are on disk, well-formed, and include the queries that ran before
    // the kill (with their per-stage decomposition and spans).
    ASSERT_TRUE(fs::exists(dump_path)) << test_case.name;
    std::ifstream dump_in(dump_path);
    std::stringstream dump_content;
    dump_content << dump_in.rdbuf();
    const std::string dump = dump_content.str();
    EXPECT_EQ(dump.front(), '{') << test_case.name;
    EXPECT_EQ(dump.back(), '}') << test_case.name;
    EXPECT_NE(dump.find("\"entries\":["), std::string::npos) << test_case.name;
    EXPECT_NE(dump.find("\"kind\":\"query\""), std::string::npos)
        << test_case.name;
    EXPECT_NE(dump.find("\"stages\":{"), std::string::npos) << test_case.name;
    EXPECT_NE(dump.find("\"spans\":["), std::string::npos) << test_case.name;

    // What actually survived the kill.
    const WalReadResult wal = ReadWal((case_dir / "harvest.wal").string());
    EXPECT_EQ(wal.torn_tail, test_case.torn) << test_case.name;
    const size_t durable =
        test_case.point == static_cast<int>(CrashPoint::kAfterHarvestLog)
            ? static_cast<size_t>(kAfterHits) + 1
            : static_cast<size_t>(kAfterHits);
    ASSERT_EQ(wal.payloads.size(), durable) << test_case.name;
    int64_t durable_tx = 0;
    for (const std::string& payload : wal.payloads) {
      HarvestRecord record;
      ASSERT_TRUE(DecodeHarvest(payload, &record));
      durable_tx += record.transactions;
    }
    EXPECT_EQ(durable_tx, TraceSpend(0, durable)) << test_case.name;

    // Recover against the kill's file state and run the FULL mix: the
    // durable prefix is served from the warm store, everything after it is
    // bought as if for the first time — round-1 minus the durable spend,
    // plus the twin's warm round-2.
    PayLessConfig config;
    config.durability.dir = case_dir.string();
    config.durability.snapshot_every_records = 0;
    auto restarted = fixture_.NewClient(config);
    const durability::RecoveryInfo& info =
        restarted->durability()->recovery();
    EXPECT_EQ(info.replayed_records, durable) << test_case.name;
    EXPECT_EQ(info.wal_torn_tail, test_case.torn) << test_case.name;

    const std::vector<std::vector<Row>> round1 =
        DurabilityFixture::RunMix(restarted.get());
    EXPECT_EQ(round1, twin_round1_results_) << test_case.name;
    EXPECT_EQ(restarted->meter().total_transactions(),
              round1_spend_ - durable_tx)
        << test_case.name;
    const std::vector<std::vector<Row>> round2 =
        DurabilityFixture::RunMix(restarted.get());
    EXPECT_EQ(round2, twin_round2_results_) << test_case.name;
    EXPECT_EQ(restarted->meter().total_transactions(),
              round1_spend_ - durable_tx + round2_spend_)
        << test_case.name;
    // <= — remainder calls after a warm restart overlap less than the
    // twin's cold calls did (see RepeatedCrashesConvergeToTheTwinBill).
    EXPECT_LE(restarted->store().TotalStoredRows(),
              twin_->store().TotalStoredRows())
        << test_case.name;
    EXPECT_EQ(restarted->observability()->ledger.total_transactions(),
              restarted->meter().total_transactions())
        << test_case.name;
  }
}
#endif  // CRASH_CHILD_BINARY

}  // namespace
}  // namespace payless::exec
