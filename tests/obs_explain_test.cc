// EXPLAIN / EXPLAIN ANALYZE and the estimator-accuracy loop, end-to-end:
//
//   - `EXPLAIN <query>` renders the plan without billing or caching;
//   - `EXPLAIN ANALYZE <query>` executes, joins the measured per-access
//     actuals from the trace and reports the transaction q-error;
//   - the cold (uniform) estimate on a bind join is off by the cold-start
//     factor, and after one round of feedback the warm q-error is no
//     worse (the paper's §4.3 refinement, observable in the output);
//   - a drifting estimate ticks the staleness epoch and makes the plan
//     cache re-optimize into a different (cheaper) plan — the
//     uniform-to-learned plan switch — while a disabled threshold keeps
//     serving the stale cached plan.
//
// Plus unit coverage for AccuracyTracker and the trace-span join.
#include "obs/explain.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/accuracy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::ConsistencyLevel;
using exec::PayLess;
using exec::PayLessConfig;
using exec::QueryReport;

// ---------------------------------------------------------------------------
// AccuracyTracker unit tests.

TEST(AccuracyTrackerTest, QErrorIsSymmetricAndAtLeastOne) {
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(10, 50), 5.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(50, 10), 5.0);
  // Zero-row sides clamp to 1 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(0, 8), 8.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(8, 0), 8.0);
}

TEST(AccuracyTrackerTest, DriftEpochTicksOnlyAboveThreshold) {
  AccuracyTracker tracker(nullptr, /*qerror_invalidation_threshold=*/2.0);
  tracker.Record("T", "D", 100, 100);  // q-error 1
  tracker.Record("T", "D", 100, 199);  // q-error 1.99 <= 2
  EXPECT_EQ(tracker.drift_epoch(), 0u);
  tracker.Record("T", "D", 100, 500);  // q-error 5 > 2
  EXPECT_EQ(tracker.drift_epoch(), 1u);
  tracker.Record("T", "D", 1, 1000);
  EXPECT_EQ(tracker.drift_epoch(), 2u);

  const AccuracySnapshot snap = tracker.Snapshot("T");
  EXPECT_EQ(snap.samples, 4u);
  EXPECT_DOUBLE_EQ(snap.last_qerror, 1000.0);
  EXPECT_DOUBLE_EQ(snap.max_qerror, 1000.0);
  EXPECT_GT(snap.mean_qerror(), 1.0);
  EXPECT_EQ(tracker.total_samples(), 4u);
  // Unknown tables answer an empty snapshot, not a crash.
  EXPECT_EQ(tracker.Snapshot("nope").samples, 0u);
}

TEST(AccuracyTrackerTest, NonPositiveThresholdNeverTicks) {
  AccuracyTracker tracker(nullptr, /*qerror_invalidation_threshold=*/0.0);
  tracker.Record("T", "D", 1, 1'000'000);
  EXPECT_EQ(tracker.drift_epoch(), 0u);
}

TEST(AccuracyTrackerTest, ExportsMetricsUnderSanitizedNames) {
  MetricsRegistry metrics;
  AccuracyTracker tracker(&metrics, 2.0);
  tracker.Record("My-Table", "acme/weather", 10, 40);  // q-error 4 -> drift
  tracker.RecordStatsQuality("My-Table", /*buckets=*/7, /*feedbacks=*/3,
                             /*total_rows=*/123.0);
  const std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("payless_qerror_last_x100_My_Table 400"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("payless_qerror_x100_My_Table_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("payless_stats_buckets_My_Table 7"), std::string::npos);
  EXPECT_NE(text.find("payless_stats_feedbacks_My_Table 3"),
            std::string::npos);
  EXPECT_NE(text.find("payless_stats_drift_ticks_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("payless_stats_drift_epoch 1"), std::string::npos);
}

TEST(AccuracyTrackerTest, SanitizeMetricName) {
  EXPECT_EQ(AccuracyTracker::SanitizeMetricName("a-b.c d/e"), "a_b_c_d_e");
  EXPECT_EQ(AccuracyTracker::SanitizeMetricName("Ok_name:42"), "Ok_name:42");
}

// ---------------------------------------------------------------------------
// JoinAccessActuals unit tests: spans -> per-access facts.

TEST(JoinAccessActualsTest, JoinsAccessSpansAndMarketCallChildren) {
  Trace trace;
  const uint64_t root = trace.StartSpan("query");
  const uint64_t access = trace.StartSpan("access:Weather", root);
  trace.AddAttr(access, "access_index", int64_t{1});
  trace.AddAttr(access, "rows", int64_t{30});
  trace.AddAttr(access, "calls", int64_t{2});
  trace.AddAttr(access, "transactions", int64_t{6});
  trace.AddAttr(access, "rows_from_market", int64_t{28});
  const uint64_t call1 = trace.StartSpan("market.get", access);
  trace.AddAttr(call1, "retries", int64_t{1});
  trace.AddAttr(call1, "wasted_transactions", int64_t{3});
  const uint64_t call2 = trace.StartSpan("market.get", access);
  trace.AddAttr(call2, "retries", int64_t{2});
  trace.EndSpan(call1);
  trace.EndSpan(call2);
  trace.EndSpan(access);
  trace.EndSpan(root);

  const std::vector<AccessActuals> actuals =
      JoinAccessActuals(trace.TakeSpans(), 2);
  ASSERT_EQ(actuals.size(), 2u);
  EXPECT_FALSE(actuals[0].present);  // access 0 never ran (zero-price skip)
  EXPECT_TRUE(actuals[1].present);
  EXPECT_EQ(actuals[1].rows, 30);
  EXPECT_EQ(actuals[1].calls, 2);
  EXPECT_EQ(actuals[1].transactions, 6);
  EXPECT_EQ(actuals[1].rows_from_market, 28);
  EXPECT_EQ(actuals[1].retries, 3);
  EXPECT_EQ(actuals[1].wasted_transactions, 3);
}

TEST(JoinAccessActualsTest, IgnoresMalformedAndOutOfRangeSpans) {
  Trace trace;
  const uint64_t no_index = trace.StartSpan("access:Weather");
  trace.EndSpan(no_index);  // no access_index attr -> skipped
  const uint64_t oob = trace.StartSpan("access:Other");
  trace.AddAttr(oob, "access_index", int64_t{9});  // beyond num_accesses
  trace.EndSpan(oob);
  const std::vector<AccessActuals> actuals =
      JoinAccessActuals(trace.TakeSpans(), 1);
  ASSERT_EQ(actuals.size(), 1u);
  EXPECT_FALSE(actuals[0].present);
  EXPECT_TRUE(JoinAccessActuals({}, 0).empty());
}

// ---------------------------------------------------------------------------
// End-to-end: a bind join whose published cardinality is wrong by 50x.
//
// Hosted(Key bound 1..100, Val) claims 100 rows but hosts 5'000 (50 per
// key); 10 tuples per transaction. The local table binds 20 keys, so the
// uniform plan estimates 20 calls x ceil(1/10) = 20 transactions while the
// market actually bills 20 x ceil(50/10) = 100.
class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"MKT", 1.0, 10}).ok());
    TableDef hosted;
    hosted.name = "Hosted";
    hosted.dataset = "MKT";
    hosted.columns = {ColumnDef::Bound("Key", ValueType::kInt64,
                                       AttrDomain::Numeric(1, 100)),
                      ColumnDef::Output("Val", ValueType::kDouble)};
    hosted.cardinality = 100;  // published stats: off by 50x
    ASSERT_TRUE(cat_.RegisterTable(hosted).ok());

    TableDef keys;
    keys.name = "Keys";
    keys.is_local = true;
    keys.columns = {ColumnDef::Free("Key", ValueType::kInt64,
                                    AttrDomain::Numeric(1, 100))};
    keys.cardinality = 20;
    ASSERT_TRUE(cat_.RegisterTable(keys).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t key = 1; key <= 100; ++key) {
      for (int64_t i = 0; i < 50; ++i) {
        rows.push_back(Row{Value(key), Value(static_cast<double>(key + i))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Hosted", std::move(rows)).ok());
    for (int64_t key = 1; key <= 20; ++key) {
      key_rows_.push_back(Row{Value(key)});
    }
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    // Full consistency: the warm run must go back to the market (otherwise
    // the semantic store serves it for free and there is nothing to
    // measure). Serial calls keep the feedback order deterministic.
    config.consistency = ConsistencyLevel::kFull;
    config.max_parallel_calls = 1;
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("Keys", key_rows_).ok());
    return client;
  }

  /// The q-error printed on the "actual:" line right below the bind-join
  /// access line; -1 when absent.
  static double BindJoinQError(const std::string& text) {
    const size_t access = text.find("bind-join Hosted");
    if (access == std::string::npos) return -1;
    const size_t marker = text.find("q-error(txn) ", access);
    if (marker == std::string::npos) return -1;
    return std::strtod(text.c_str() + marker + 13, nullptr);
  }

  static constexpr const char* kJoinSql =
      "SELECT Val FROM Keys, Hosted WHERE Keys.Key = Hosted.Key";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> key_rows_;
};

TEST_F(ExplainAnalyzeTest, ExplainRendersPlanWithoutSpendingOrCaching) {
  auto client = NewClient();
  Result<QueryReport> r =
      client->QueryWithReport(std::string("EXPLAIN ") + kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->transactions_spent, 0);
  EXPECT_EQ(client->meter().total_transactions(), 0);
  EXPECT_EQ(client->plan_cache().Stats().entries, 0u);

  // The result relation is the rendered text, one line per row.
  ASSERT_EQ(r->result.schema().num_columns(), 1u);
  EXPECT_EQ(r->result.schema().column(0).name, "QUERY PLAN");
  EXPECT_GT(r->result.num_rows(), 0u);

  const std::string& text = r->plan_text;
  EXPECT_NE(text.find("Plan[cost="), std::string::npos) << text;
  EXPECT_NE(text.find("bind-join Hosted on (Key)"), std::string::npos);
  EXPECT_NE(text.find("~20 bind values"), std::string::npos);
  EXPECT_NE(text.find("planning: evaluated_plans="), std::string::npos);
  EXPECT_NE(text.find("stats: Hosted buckets="), std::string::npos);
  // No ANALYZE: no actuals, no spend line.
  EXPECT_EQ(text.find("actual:"), std::string::npos);
  EXPECT_EQ(text.find("spent:"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, WarmQErrorIsNoWorseThanCold) {
  auto client = NewClient();
  const std::string sql = std::string("EXPLAIN ANALYZE ") + kJoinSql;

  // Cold: the uniform estimate prices the bind join at 20 transactions;
  // the market bills 100. The rendering shows both and their q-error.
  Result<QueryReport> cold = client->QueryWithReport(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold->error.ok()) << cold->error.ToString();
  EXPECT_EQ(cold->transactions_spent, 100);
  const std::string& cold_text = cold->plan_text;
  EXPECT_NE(cold_text.find("bind-join Hosted on (Key) ~20 txn"),
            std::string::npos)
      << cold_text;
  EXPECT_NE(cold_text.find("actual: 100 txn, 20 calls, 1000 rows"),
            std::string::npos)
      << cold_text;
  EXPECT_NE(cold_text.find("spent: 100 txn"), std::string::npos);
  const double cold_q = BindJoinQError(cold_text);
  EXPECT_DOUBLE_EQ(cold_q, 5.0) << cold_text;

  // The per-call misestimates (1 row expected, 50 delivered) were recorded
  // at the feedback point and crossed the drift threshold.
  EXPECT_GT(client->accuracy().Snapshot("Hosted").max_qerror, 2.0);
  EXPECT_GE(client->accuracy().drift_epoch(), 1u);

  // Warm: the feedback histogram has absorbed the true per-key counts and
  // the re-optimized plan prices the same join materially better. (Not
  // perfectly: point-region feedback smears across histogram buckets, so
  // the warm estimate lands near — not at — the true 100.)
  Result<QueryReport> warm = client->QueryWithReport(sql);
  ASSERT_TRUE(warm.ok() && warm->error.ok());
  const double warm_q = BindJoinQError(warm->plan_text);
  ASSERT_GE(warm_q, 1.0) << warm->plan_text;
  EXPECT_LT(warm_q, cold_q);
  EXPECT_LE(warm_q, 3.0) << warm->plan_text;
}

TEST_F(ExplainAnalyzeTest, AnalyzeWorksWithTracingDisabled) {
  PayLessConfig config;
  config.enable_tracing = false;
  auto client = NewClient(config);
  Result<QueryReport> r = client->QueryWithReport(
      std::string("EXPLAIN ANALYZE ") + kJoinSql);
  ASSERT_TRUE(r.ok() && r->error.ok());
  // The trace is forced on internally: the actuals still join.
  EXPECT_NE(r->plan_text.find("actual: 100 txn"), std::string::npos)
      << r->plan_text;
}

TEST_F(ExplainAnalyzeTest, ExplainTextNeverExecutes) {
  auto client = NewClient();
  Result<std::string> text = client->ExplainText(kJoinSql);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("bind-join Hosted"), std::string::npos);
  EXPECT_EQ(client->meter().total_transactions(), 0);
  EXPECT_FALSE(client->ExplainText("SELECT nothing FROM nowhere").ok());
}

// ---------------------------------------------------------------------------
// The uniform-to-learned plan switch: Wide(Key free 1..100) claims 100
// rows but hosts 5'000. Cold, a full download looks like 10 transactions
// (cheaper than a 20-value bind join at 20); it actually bills 500. The
// drift tick must force a re-optimization that switches to the bind join
// (100 transactions with learned stats) — unless drift invalidation is
// disabled, in which case the stale template keeps being served.
class PlanSwitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"MKT", 1.0, 10}).ok());
    TableDef wide;
    wide.name = "Wide";
    wide.dataset = "MKT";
    wide.columns = {ColumnDef::Free("Key", ValueType::kInt64,
                                    AttrDomain::Numeric(1, 100)),
                    ColumnDef::Output("Val", ValueType::kDouble)};
    wide.cardinality = 100;  // published stats: off by 50x
    ASSERT_TRUE(cat_.RegisterTable(wide).ok());

    TableDef keys;
    keys.name = "Keys";
    keys.is_local = true;
    keys.columns = {ColumnDef::Free("Key", ValueType::kInt64,
                                    AttrDomain::Numeric(1, 100))};
    keys.cardinality = 20;
    ASSERT_TRUE(cat_.RegisterTable(keys).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t key = 1; key <= 100; ++key) {
      for (int64_t i = 0; i < 50; ++i) {
        rows.push_back(Row{Value(key), Value(static_cast<double>(key + i))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Wide", std::move(rows)).ok());
    for (int64_t key = 1; key <= 20; ++key) {
      key_rows_.push_back(Row{Value(key)});
    }
  }

  std::unique_ptr<PayLess> NewClient(double threshold) {
    PayLessConfig config;
    config.consistency = ConsistencyLevel::kFull;
    config.max_parallel_calls = 1;
    config.qerror_invalidation_threshold = threshold;
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("Keys", key_rows_).ok());
    return client;
  }

  /// The single priced access of the plan (the one on Wide).
  static const core::AccessSpec& PricedAccess(const core::Plan& plan) {
    const core::AccessSpec* found = nullptr;
    for (const core::AccessSpec& access : plan.accesses) {
      if (!access.IsZeroPrice()) {
        EXPECT_EQ(found, nullptr) << "expected exactly one priced access";
        found = &access;
      }
    }
    EXPECT_NE(found, nullptr);
    return *found;
  }

  static constexpr const char* kJoinSql =
      "SELECT Val FROM Keys, Wide WHERE Keys.Key = Wide.Key";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> key_rows_;
};

TEST_F(PlanSwitchTest, DriftInvalidationSwitchesToTheLearnedPlan) {
  auto client = NewClient(/*threshold=*/2.0);

  Result<QueryReport> cold = client->QueryWithReport(kJoinSql);
  ASSERT_TRUE(cold.ok() && cold->error.ok());
  EXPECT_EQ(PricedAccess(cold->plan).kind, core::AccessSpec::Kind::kPlain);
  EXPECT_EQ(cold->transactions_spent, 500);
  EXPECT_GE(client->accuracy().drift_epoch(), 1u);

  // The drift tick changed the cache key: plain miss, re-optimization
  // against the refined histogram, and the plan switches to the bind join.
  Result<QueryReport> warm = client->QueryWithReport(kJoinSql);
  ASSERT_TRUE(warm.ok() && warm->error.ok());
  EXPECT_EQ(warm->counters.plan_cache_hits, 0u);
  EXPECT_EQ(warm->counters.plan_cache_misses, 1u);
  EXPECT_EQ(PricedAccess(warm->plan).kind, core::AccessSpec::Kind::kBind);
  EXPECT_EQ(warm->transactions_spent, 100);
  EXPECT_EQ(warm->result.num_rows(), cold->result.num_rows());
}

TEST_F(PlanSwitchTest, DisabledThresholdKeepsServingTheStalePlan) {
  auto client = NewClient(/*threshold=*/0.0);

  Result<QueryReport> cold = client->QueryWithReport(kJoinSql);
  ASSERT_TRUE(cold.ok() && cold->error.ok());
  EXPECT_EQ(PricedAccess(cold->plan).kind, core::AccessSpec::Kind::kPlain);
  EXPECT_EQ(cold->transactions_spent, 500);
  EXPECT_EQ(client->accuracy().drift_epoch(), 0u);

  // No drift tick -> cache hit -> the stale full-download plan runs again
  // (results stay correct; only the price is suboptimal).
  Result<QueryReport> warm = client->QueryWithReport(kJoinSql);
  ASSERT_TRUE(warm.ok() && warm->error.ok());
  EXPECT_EQ(warm->counters.plan_cache_hits, 1u);
  EXPECT_EQ(PricedAccess(warm->plan).kind, core::AccessSpec::Kind::kPlain);
  EXPECT_EQ(warm->transactions_spent, 500);
  EXPECT_EQ(warm->result.num_rows(), cold->result.num_rows());
}

}  // namespace
}  // namespace payless::obs
