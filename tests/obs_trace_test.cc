// Trace spans: exactly-once close semantics, RAII inertness, JSONL sink
// output, and the end-to-end shape of a real query's trace — including one
// executed with parallel bind-join dispatch, where pool workers append
// call spans to the query's trace concurrently.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

TEST(ObsTraceTest, SpansCloseExactlyOnce) {
  Trace trace;
  const uint64_t root = trace.StartSpan("query");
  const uint64_t child = trace.StartSpan("parse", root);
  EXPECT_NE(root, 0u);
  EXPECT_NE(child, root);

  EXPECT_TRUE(trace.EndSpan(child));
  EXPECT_FALSE(trace.EndSpan(child));  // second close is rejected
  EXPECT_FALSE(trace.EndSpan(999));    // unknown id is rejected
  EXPECT_TRUE(trace.EndSpan(root));

  const std::vector<SpanRecord> spans = trace.TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& span : spans) {
    EXPECT_TRUE(span.closed());
    EXPECT_GE(span.duration_micros, 0);
  }
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(trace.num_spans(), 0u);  // TakeSpans empties the trace
}

TEST(ObsTraceTest, ScopedSpanIsInertWithoutTrace) {
  ScopedSpan span(nullptr, "never");
  EXPECT_EQ(span.id(), 0u);
  span.AddAttr("key", std::string("value"));  // must not crash
  span.AddAttr("n", int64_t{42});
}

TEST(ObsTraceTest, ScopedSpanClosesOnScopeExit) {
  Trace trace;
  {
    ScopedSpan span(&trace, "work");
    span.AddAttr("rows", int64_t{7});
  }
  const std::vector<SpanRecord> spans = trace.TakeSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].closed());
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "rows");
  EXPECT_EQ(spans[0].attrs[0].second, "7");
}

TEST(ObsTraceTest, SpansToJsonEscapesStrings) {
  Trace trace;
  const uint64_t id = trace.StartSpan("q");
  trace.AddAttr(id, "sql", std::string("SELECT \"x\"\nFROM t"));
  trace.EndSpan(id);
  const std::string json = SpansToJson(trace.TakeSpans());
  EXPECT_NE(json.find("SELECT \\\"x\\\"\\nFROM t"), std::string::npos) << json;
}

TEST(ObsTraceTest, JsonlSinkWritesOneLinePerQuery) {
  const std::string path = ::testing::TempDir() + "/trace_sink_test.jsonl";
  auto sink = JsonlTraceSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  Trace trace;
  trace.EndSpan(trace.StartSpan("query"));
  (*sink)->Emit("acme", 1, trace.TakeSpans());
  (*sink)->Emit("acme", 2, {});
  EXPECT_EQ((*sink)->lines_written(), 2);
  sink->reset();  // flushes and closes

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t lines = 0;
  std::string first;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    if (lines++ == 0) first = buf;
  }
  std::fclose(f);
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(first.find("\"tenant\":\"acme\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"query_id\":1"), std::string::npos) << first;
  EXPECT_NE(first.find("\"name\":\"query\""), std::string::npos) << first;
}

/// Checks the structural invariants every finished query trace must hold:
/// all spans closed, ids unique, exactly one root, every parent resolvable.
void ExpectWellFormed(const std::vector<SpanRecord>& spans) {
  std::set<uint64_t> ids;
  size_t roots = 0;
  for (const SpanRecord& span : spans) {
    EXPECT_TRUE(span.closed()) << span.name << " left open";
    EXPECT_TRUE(ids.insert(span.id).second) << "duplicate id " << span.id;
    if (span.parent == 0) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  for (const SpanRecord& span : spans) {
    if (span.parent != 0) {
      EXPECT_TRUE(ids.count(span.parent) > 0)
          << span.name << " has unknown parent " << span.parent;
    }
  }
}

class TraceQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kStations * kDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations))};
    citymap.cardinality = kStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kStations; ++s) {
      for (int64_t d = 1; d <= kDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  static constexpr int64_t kStations = 16;
  static constexpr int64_t kDates = 4;
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 4";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(TraceQueryTest, QueryReportCarriesWellFormedTrace) {
  PayLess client(&cat_, market_.get(), {});
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());

  const auto report = client.QueryWithReport(
      kBindSql, {Value(int64_t{1}), Value(int64_t{4})});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ok());
  ASSERT_FALSE(report->trace.empty());
  ExpectWellFormed(report->trace);

  std::map<std::string, int> names;
  for (const SpanRecord& span : report->trace) ++names[span.name];
  EXPECT_EQ(names["query"], 1);
  EXPECT_EQ(names["parse"], 1);
  EXPECT_EQ(names["bind"], 1);
  EXPECT_EQ(names["plan"], 1);
  EXPECT_EQ(names["execute"], 1);
  EXPECT_GE(names["access:Weather"], 1);
  EXPECT_GE(names["market.get"], 1);

  // Market-call spans carry the billing attributes the ISSUE promises.
  for (const SpanRecord& span : report->trace) {
    if (span.name != "market.get") continue;
    std::map<std::string, std::string> attrs(span.attrs.begin(),
                                             span.attrs.end());
    EXPECT_EQ(attrs["dataset"], "WHW");
    EXPECT_TRUE(attrs.count("transactions")) << "no transactions attr";
    EXPECT_TRUE(attrs.count("attempts"));
    EXPECT_EQ(attrs["outcome"], "ok");
  }
}

TEST_F(TraceQueryTest, DisablingTracingYieldsEmptyTrace) {
  PayLessConfig config;
  config.enable_tracing = false;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  const auto report = client.QueryWithReport(
      kBindSql, {Value(int64_t{1}), Value(int64_t{4})});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->trace.empty());
  // Attribution is not tied to tracing: the breakdown is still there.
  EXPECT_FALSE(report->transactions_by_dataset.empty());
}

// Pool workers of a parallel bind join append their call spans to the
// query's trace concurrently; the trace must stay well-formed and every
// per-binding-value call span must nest under the Weather access span.
TEST_F(TraceQueryTest, NestingSurvivesParallelBindJoinDispatch) {
  PayLessConfig config;
  config.max_parallel_calls = 8;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());

  const auto report = client.QueryWithReport(
      kBindSql, {Value(int64_t{1}), Value(int64_t{16})});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ok());
  ExpectWellFormed(report->trace);

  uint64_t access_id = 0;
  for (const SpanRecord& span : report->trace) {
    if (span.name == "access:Weather") access_id = span.id;
  }
  ASSERT_NE(access_id, 0u);
  size_t calls_under_access = 0;
  for (const SpanRecord& span : report->trace) {
    if (span.name == "market.get") {
      EXPECT_EQ(span.parent, access_id);
      ++calls_under_access;
    }
  }
  EXPECT_GE(calls_under_access, 2u);
}

}  // namespace
}  // namespace payless::obs
