// Direct encodings of the paper's worked examples beyond Fig. 1:
//   - §1's counterexample: with 20 US stations of which 15 are in Seattle,
//     plan P1 (one range call, 7 transactions) beats P2 (16 bind calls);
//   - Fig. 4: the chain U(x^f,y^f), R(y^b,z^f), S(t^f,w^f), T(w^b,z^f)
//     where R and T are reachable only through bind joins;
//   - §4.2's observation that remainder queries may overlap stored results
//     (tested in remainder_test; here end-to-end through the facade).
#include <gtest/gtest.h>

#include <map>

#include "exec/payless.h"
#include "exec/reference.h"
#include "sql/parser.h"

namespace payless {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

// ---------------------------------------------------------------------------
// §1 counterexample: P1 (range call) must win when the bind fan-out is
// large relative to the table slice.
// ---------------------------------------------------------------------------
TEST(PaperScenarioTest, RangeCallBeatsBindJoinWhenFanOutIsLarge) {
  const int64_t kStations = 20;    // 20 US stations...
  const int64_t kInSeattle = 15;   // ...15 of them in Seattle
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());

  std::vector<std::string> cities = {"Portland", "Seattle"};
  TableDef station;
  station.name = "Station";
  station.dataset = "WHW";
  station.columns = {
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kStations)),
      ColumnDef::Free("City", ValueType::kString,
                      AttrDomain::Categorical(cities))};
  station.cardinality = kStations;
  ASSERT_TRUE(cat.RegisterTable(station).ok());

  TableDef weather;
  weather.name = "Weather";
  weather.dataset = "WHW";
  weather.columns = {
      ColumnDef::Free("StationID", ValueType::kInt64,
                      AttrDomain::Numeric(1, kStations)),
      ColumnDef::Free("Date", ValueType::kInt64, AttrDomain::Numeric(1, 30)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  weather.cardinality = kStations * 30;
  ASSERT_TRUE(cat.RegisterTable(weather).ok());

  market::DataMarket market(&cat);
  std::vector<Row> station_rows, weather_rows;
  for (int64_t id = 1; id <= kStations; ++id) {
    station_rows.push_back(
        Row{Value(id), Value(id <= kInSeattle ? "Seattle" : "Portland")});
    for (int64_t day = 1; day <= 30; ++day) {
      weather_rows.push_back(Row{Value(id), Value(day), Value(20.0)});
    }
  }
  ASSERT_TRUE(market.HostTable("Station", std::move(station_rows)).ok());
  ASSERT_TRUE(market.HostTable("Weather", std::move(weather_rows)).ok());

  // Teach the optimizer the true Seattle station count first (the paper's
  // argument presumes the optimizer knows the cardinalities).
  exec::PayLess payless(&cat, &market, exec::PayLessConfig{});
  ASSERT_TRUE(
      payless.Query("SELECT * FROM Station WHERE City = 'Seattle'").ok());
  const int64_t after_probe = payless.meter().total_transactions();
  EXPECT_EQ(after_probe, 1);

  Result<exec::QueryReport> report = payless.QueryWithReport(
      "SELECT Temperature FROM Station, Weather "
      "WHERE City = 'Seattle' AND Date >= 1 AND Date <= 30 AND "
      "Station.StationID = Weather.StationID");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // P1: whole Weather slice = ceil(600/100) = 6 transactions (Station is
  // already cached). P2 would need 15 bind calls (15 transactions).
  EXPECT_EQ(report->plan.accesses.back().kind,
            core::AccessSpec::Kind::kPlain);
  EXPECT_EQ(report->transactions_spent, 6);
  EXPECT_EQ(report->result.num_rows(),
            static_cast<size_t>(kInSeattle * 30));
}

// ---------------------------------------------------------------------------
// Fig. 4: U(x^f,y^f) |><| R(y^b,z^f), S(t^f,w^f) |><| T(w^b,z^f), joined on
// z. R and T have bound attributes fed only by U and S respectively.
// ---------------------------------------------------------------------------
class Figure4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    const auto add = [this](const char* name, ColumnDef c1, ColumnDef c2,
                            int64_t cardinality) {
      TableDef def;
      def.name = name;
      def.dataset = "D";
      def.columns = {std::move(c1), std::move(c2)};
      def.cardinality = cardinality;
      ASSERT_TRUE(cat_.RegisterTable(def).ok());
    };
    const AttrDomain key = AttrDomain::Numeric(1, 40);
    add("U", ColumnDef::Free("x", ValueType::kInt64, key),
        ColumnDef::Free("y", ValueType::kInt64, key), 40);
    add("R", ColumnDef::Bound("y", ValueType::kInt64, key),
        ColumnDef::Free("z", ValueType::kInt64, key), 40);
    add("S", ColumnDef::Free("t", ValueType::kInt64, key),
        ColumnDef::Free("w", ValueType::kInt64, key), 40);
    add("T", ColumnDef::Bound("w", ValueType::kInt64, key),
        ColumnDef::Free("z", ValueType::kInt64, key), 40);

    market_ = std::make_unique<market::DataMarket>(&cat_);
    for (const char* name : {"U", "R", "S", "T"}) {
      std::vector<Row> rows;
      for (int64_t k = 1; k <= 40; ++k) {
        rows.push_back(Row{Value(k), Value((k * 3) % 40 + 1)});
      }
      ASSERT_TRUE(market_->HostTable(name, std::move(rows)).ok());
    }
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(Figure4Test, BindOnlyRelationsGetBindJoins) {
  exec::PayLess payless(&cat_, market_.get(), exec::PayLessConfig{});
  Result<exec::QueryReport> report = payless.QueryWithReport(
      "SELECT COUNT(*) FROM U, R, S, T "
      "WHERE U.y = R.y AND S.w = T.w AND R.z = T.z AND "
      "U.x >= 1 AND U.x <= 5 AND S.t >= 1 AND S.t <= 5");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // R and T must be accessed via bind joins (their bound attributes have
  // no literal conditions), fed by U and S which are placed before them.
  std::map<std::string, core::AccessSpec::Kind> kind_of;
  std::map<std::string, size_t> position_of;
  // Recover relation names by re-binding.
  auto stmt = sql::Parse(
      "SELECT COUNT(*) FROM U, R, S, T "
      "WHERE U.y = R.y AND S.w = T.w AND R.z = T.z AND "
      "U.x >= 1 AND U.x <= 5 AND S.t >= 1 AND S.t <= 5");
  auto bound = sql::Bind(*stmt, cat_, {});
  for (size_t i = 0; i < report->plan.accesses.size(); ++i) {
    const core::AccessSpec& access = report->plan.accesses[i];
    const std::string name = bound->relations[access.rel].def->name;
    kind_of[name] = access.kind;
    position_of[name] = i;
  }
  EXPECT_EQ(kind_of["R"], core::AccessSpec::Kind::kBind);
  EXPECT_EQ(kind_of["T"], core::AccessSpec::Kind::kBind);
  EXPECT_EQ(kind_of["U"], core::AccessSpec::Kind::kPlain);
  EXPECT_EQ(kind_of["S"], core::AccessSpec::Kind::kPlain);
  EXPECT_LT(position_of["U"], position_of["R"]);
  EXPECT_LT(position_of["S"], position_of["T"]);

  // And the answer is right.
  storage::Database empty_db;
  Result<storage::Table> want = exec::ReferenceEvaluate(
      cat_, *market_, empty_db,
      "SELECT COUNT(*) FROM U, R, S, T "
      "WHERE U.y = R.y AND S.w = T.w AND R.z = T.z AND "
      "U.x >= 1 AND U.x <= 5 AND S.t >= 1 AND S.t <= 5");
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(exec::SameResult(report->result, *want));
}

TEST_F(Figure4Test, PureBindChainWithoutSelectionIsInfeasible) {
  // Without any selection, U and S can still be downloaded (free
  // attributes), so the query IS answerable; but R alone is not.
  exec::PayLess payless(&cat_, market_.get(), exec::PayLessConfig{});
  EXPECT_EQ(payless.Query("SELECT * FROM R").status().code(),
            Status::Code::kNotSupported);
  EXPECT_TRUE(payless
                  .Query("SELECT COUNT(*) FROM U, R WHERE U.y = R.y")
                  .ok());
}

// ---------------------------------------------------------------------------
// §4.2 end-to-end: a remainder that overlaps stored data when that is the
// cheaper cover (the Fig. 6 economics through the full facade).
// ---------------------------------------------------------------------------
TEST(PaperScenarioTest, OverlappingRemainderSavesAPage) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
  TableDef def;
  def.name = "R";
  def.dataset = "D";
  def.columns = {ColumnDef::Free("A", ValueType::kInt64,
                                 AttrDomain::Numeric(0, 100)),
                 ColumnDef::Output("V", ValueType::kDouble)};
  def.cardinality = 297;
  ASSERT_TRUE(cat.RegisterTable(def).ok());
  market::DataMarket market(&cat);
  // Densities from Fig. 6: 21 / 28 / 34 / 91 / 123 tuples per segment.
  std::vector<Row> rows;
  const auto fill = [&rows](int64_t lo, int64_t hi, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      const int64_t a = lo + i % (hi - lo + 1);
      rows.push_back(Row{Value(a), Value(static_cast<double>(i) + a * 1000)});
    }
  };
  fill(0, 9, 21);
  fill(10, 19, 28);
  fill(20, 29, 34);
  fill(30, 59, 91);
  fill(60, 100, 123);
  ASSERT_TRUE(market.HostTable("R", std::move(rows)).ok());

  exec::PayLess payless(&cat, &market, exec::PayLessConfig{});
  // Store V1 = [10,19] and V2 = [30,59] (and teach the statistics).
  ASSERT_TRUE(payless.Query("SELECT * FROM R WHERE A >= 10 AND A <= 19").ok());
  ASSERT_TRUE(payless.Query("SELECT * FROM R WHERE A >= 30 AND A <= 59").ok());
  // Warm the outer statistics so the remainder pricing matches Fig. 6.
  ASSERT_TRUE(payless.Query("SELECT * FROM R WHERE A >= 0 AND A <= 9").ok());
  ASSERT_TRUE(payless.Query("SELECT * FROM R WHERE A >= 20 AND A <= 29").ok());
  ASSERT_TRUE(
      payless.Query("SELECT * FROM R WHERE A >= 60 AND A <= 100").ok());

  // Everything is now cached; Q = [0,100] must be free and complete.
  const int64_t before = payless.meter().total_transactions();
  Result<exec::QueryReport> full =
      payless.QueryWithReport("SELECT * FROM R WHERE A >= 0 AND A <= 100");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(payless.meter().total_transactions(), before);
  EXPECT_EQ(full->result.num_rows(), 297u);
}

}  // namespace
}  // namespace payless
