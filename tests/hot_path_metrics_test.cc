// Steady-state queries must never take the metrics-registry mutex: every
// hot-path instrument is resolved to a handle at construction (or, for
// per-table accuracy instruments, at table preparation). The registry
// counts every name->handle lookup, so the assertion is simply that the
// count is FLAT while warm queries are being served — cold paths (client
// construction, first-touch of a table) may look up freely.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

constexpr int64_t kNumStations = 16;
constexpr int64_t kNumDates = 5;

class HotPathMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kNumStations * kNumDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations))};
    citymap.cardinality = kNumStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(
            Row{Value(s), Value(d), Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kNumStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND Date >= 1 AND Date <= 5";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(HotPathMetricsTest, SteadyStateQueriesTakeNoRegistryLookups) {
  PayLess client(&cat_, market_.get(), PayLessConfig{});
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  obs::MetricsRegistry& registry = client.observability()->metrics;

  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  const std::vector<Value> cold_params = {Value(int64_t{5}),
                                          Value(int64_t{8})};

  // Warm-up: first queries may resolve handles (per-table preparation,
  // first market fetch, plan-template creation) — both footprints, so the
  // steady-state loop below replays fetched-and-cached paths only.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(kBindSql, params).ok());
    ASSERT_TRUE(client.Query(kBindSql, cold_params).ok());
  }

  const int64_t lookups_before = registry.lookup_count();
  const auto cache_before = client.plan_cache().Stats();

  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(client.Query(kBindSql, params).ok());
    ASSERT_TRUE(client.Query(kBindSql, cold_params).ok());
  }

  // The whole point: zero name->handle lookups — hence zero registry mutex
  // acquisitions — across 50 steady-state queries.
  EXPECT_EQ(registry.lookup_count(), lookups_before);

  // And those queries really were the hot path: plan-template cache hits,
  // not re-optimizations.
  const auto cache_after = client.plan_cache().Stats();
  EXPECT_GT(cache_after.hits, cache_before.hits);
  EXPECT_EQ(cache_after.misses, cache_before.misses);

  // Metrics themselves still flowed: queries were counted without lookups.
  bool found_query_counter = false;
  for (const auto& [name, value] : registry.SnapshotScalars()) {
    if (name.find("queries") != std::string::npos && value >= 50) {
      found_query_counter = true;
    }
  }
  EXPECT_TRUE(found_query_counter);
}

}  // namespace
}  // namespace payless::exec
