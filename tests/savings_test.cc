// Savings accounting end to end: the counterfactual (store-less, uncached)
// price is deterministic and side-effect free, the savings ledger
// reconciles (counterfactual == actual + savings, causes sum to savings)
// per tenant and per dataset under serial, concurrent and fault-storm
// execution, and repeated workloads show the savings the paper promises.
#include "obs/savings.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "exec/payless.h"
#include "federation/market_endpoint.h"
#include "market/data_market.h"
#include "market/fault_injector.h"
#include "obs/observability.h"
#include "obs/savings_accountant.h"
#include "sql/parser.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;
using exec::QueryReport;
using market::FaultInjector;
using market::FaultProfile;

// ---------------------------------------------------------------------------
// SavingsLedger unit behaviour.

TEST(SavingsLedgerTest, RecordAccumulatesAndReconciles) {
  SavingsLedger ledger;
  const int64_t causes_a[kNumSavingsCauses] = {40, 0, 0, 0, 0, 0, 0};
  const int64_t causes_b[kNumSavingsCauses] = {0, 10, 0, 0, -3, 0, -7};
  ledger.Record("acme", "EHR", 100, 60, causes_a);
  ledger.Record("acme", "WHW", 20, 20, causes_b);
  ledger.Record("umbrella", "EHR", 50, 10, causes_a);

  EXPECT_EQ(ledger.total_counterfactual(), 170);
  EXPECT_EQ(ledger.total_actual(), 90);
  EXPECT_EQ(ledger.total_savings(), 80);
  EXPECT_EQ(ledger.TenantCounterfactual("acme"), 120);
  EXPECT_EQ(ledger.TenantActual("acme"), 80);
  EXPECT_EQ(ledger.TenantSavings("acme"), 40);
  EXPECT_EQ(ledger.total_by_cause(SavingsCause::kStoreFullHit), 80);
  EXPECT_EQ(ledger.total_by_cause(SavingsCause::kWaste), -7);
  EXPECT_TRUE(ledger.Reconciles());

  const auto cells = ledger.TenantByDataset("acme");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells.at("EHR").savings, 40);
  EXPECT_EQ(cells.at("EHR").queries, 1);
  EXPECT_EQ(cells.at("WHW").by_cause[static_cast<int>(SavingsCause::kWaste)],
            -7);

  ledger.Reset();
  EXPECT_EQ(ledger.total_counterfactual(), 0);
  EXPECT_TRUE(ledger.Reconciles());  // vacuously
}

TEST(SavingsLedgerTest, ReconcilesDetectsCauseMismatch) {
  SavingsLedger ledger;
  // Causes sum to 30 but counterfactual - actual is 40: must NOT reconcile.
  const int64_t bad[kNumSavingsCauses] = {30, 0, 0, 0, 0, 0, 0};
  ledger.Record("t", "D", 100, 60, bad);
  EXPECT_FALSE(ledger.Reconciles());
}

TEST(SavingsLedgerTest, ToJsonCarriesTotalsTenantsAndCauses) {
  SavingsLedger ledger;
  const int64_t causes[kNumSavingsCauses] = {0, 25, 0, 0, 0, 0, 0};
  ledger.Record("acme", "EHR", 75, 50, causes);
  const std::string json = ledger.ToJson();
  EXPECT_NE(json.find("\"total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"acme\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"EHR\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sqr_harvest\":25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counterfactual\":75"), std::string::npos) << json;
}

TEST(SavingsCauseTest, EveryCauseHasAStableName) {
  EXPECT_STREQ(SavingsCauseName(SavingsCause::kStoreFullHit),
               "store_full_hit");
  EXPECT_STREQ(SavingsCauseName(SavingsCause::kWaste), "waste");
  for (int i = 0; i < kNumSavingsCauses; ++i) {
    EXPECT_NE(SavingsCauseName(static_cast<SavingsCause>(i)), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Integration: PayLess against a hosted market.

class SavingsAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"EHR", 1.0, 100}).ok());
    TableDef pollution;
    pollution.name = "Pollution";
    pollution.dataset = "EHR";
    pollution.columns = {
        ColumnDef::Free("Rank", ValueType::kInt64,
                        AttrDomain::Numeric(1, 2000)),
        ColumnDef::Output("Score", ValueType::kDouble)};
    pollution.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(pollution).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 2000; ++rank) {
      rows.push_back(Row{Value(rank), Value(static_cast<double>(rank) / 10)});
    }
    ASSERT_TRUE(market_->HostTable("Pollution", std::move(rows)).ok());
  }

  static constexpr const char* kRangeSql =
      "SELECT * FROM Pollution WHERE Rank >= ? AND Rank <= ?";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(SavingsAccountingTest, SerialWorkloadReconcilesAgainstCostLedger) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);

  // A repeated-range workload: the second pass is served by the store.
  int64_t first_pass_savings = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t lo : {1, 301, 601}) {
      Result<QueryReport> r = client.QueryWithReport(
          kRangeSql, {Value(lo), Value(lo + 199)});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE(r->error.ok());
      // Every accounted query carries its own counterfactual and delta.
      EXPECT_GE(r->counterfactual_transactions, 0);
      EXPECT_EQ(r->savings_transactions,
                r->counterfactual_transactions - r->transactions_spent);
    }
    if (pass == 0) first_pass_savings = obs.savings.total_savings();
  }

  EXPECT_TRUE(obs.savings.Reconciles());
  // The savings ledger's "actual" is the cost ledger's spend, in total and
  // per dataset — the two books describe the same money.
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  EXPECT_EQ(obs.savings.TenantActual("default"),
            obs.ledger.TenantTransactions("default"));
  EXPECT_EQ(obs.savings.total_counterfactual(),
            obs.savings.total_actual() + obs.savings.total_savings());

  // The warm pass paid nothing, so cumulative savings strictly grew and
  // the growth is attributed to the semantic store.
  EXPECT_GT(obs.savings.total_savings(), first_pass_savings);
  EXPECT_GT(obs.savings.total_by_cause(SavingsCause::kStoreFullHit), 0);

  // The registry mirrors the ledger.
  EXPECT_EQ(obs.metrics.GetGauge("payless_savings_transactions")->value(),
            obs.savings.total_savings());
  EXPECT_EQ(
      obs.metrics.GetCounter("payless_counterfactual_transactions_total")
          ->value(),
      obs.savings.total_counterfactual());
}

TEST_F(SavingsAccountingTest, EightThreadsReconcile) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const int64_t lo = 1 + ((t * kQueriesPerThread + i) * 131) % 1700;
        Result<QueryReport> r = client.QueryWithReport(
            kRangeSql, {Value(lo), Value(lo + 99)});
        if (!r.ok() || !r->error.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(obs.savings.Reconciles());
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  EXPECT_EQ(obs.savings.total_counterfactual(),
            obs.savings.total_actual() + obs.savings.total_savings());
}

TEST_F(SavingsAccountingTest, FaultStormReconcilesAndCountsWaste) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.retry.max_attempts = 10;
  config.retry.initial_backoff_micros = 20;
  config.retry.max_backoff_micros = 200;
  PayLess client(&cat_, market_.get(), config);

  FaultProfile profile;
  profile.transient_rate = 0.1;
  profile.lost_response_rate = 0.2;  // billed-but-undelivered: pure waste
  FaultInjector injector(profile);
  client.connector()->SetFaultInjector(&injector);
  for (int i = 0; i < 30; ++i) {
    const int64_t lo = 1 + (i * 67) % 1800;
    Result<QueryReport> r =
        client.QueryWithReport(kRangeSql, {Value(lo), Value(lo + 149)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Mid-flight failures still reconcile: the spend-so-far (waste
    // included) was recorded before the report was returned.
  }
  client.connector()->SetFaultInjector(nullptr);

  EXPECT_TRUE(obs.savings.Reconciles());
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  // 20% lost responses over 30 paid queries must have produced waste, and
  // waste is accounted as NEGATIVE savings.
  EXPECT_GT(client.connector()->retry_stats().wasted_transactions, 0);
  EXPECT_LT(obs.savings.total_by_cause(SavingsCause::kWaste), 0);
  EXPECT_EQ(obs.savings.total_by_cause(SavingsCause::kWaste),
            -client.connector()->retry_stats().wasted_transactions);
}

TEST_F(SavingsAccountingTest, CounterfactualIsDeterministicAcrossThreads) {
  // Pricing runs against a pinned stats snapshot (nothing executes), so
  // eight concurrent pricers must agree bit for bit.
  stats::StatsRegistry stats(stats::StatsKind::kFeedbackHistogram);
  stats.RegisterTable(*cat_.FindTable("Pollution"));
  SavingsAccountant accountant(&cat_, &stats, core::OptimizerOptions{});

  Result<sql::SelectStmt> stmt = sql::Parse(kRangeSql);
  ASSERT_TRUE(stmt.ok());
  Result<sql::BoundQuery> bound =
      sql::Bind(*stmt, cat_, {Value(int64_t{100}), Value(int64_t{400})});
  ASSERT_TRUE(bound.ok());

  const Counterfactual reference = accountant.Price(*bound);
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference.total, 0);
  ASSERT_EQ(reference.by_dataset.count("EHR"), 1u);

  constexpr int kThreads = 8;
  std::vector<Counterfactual> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(
        [&, t] { results[static_cast<size_t>(t)] = accountant.Price(*bound); });
  }
  for (std::thread& w : workers) w.join();
  for (const Counterfactual& cf : results) {
    ASSERT_TRUE(cf.ok());
    EXPECT_EQ(cf.total, reference.total);
    EXPECT_EQ(cf.by_dataset, reference.by_dataset);
    EXPECT_EQ(cf.signature, reference.signature);
  }
}

TEST_F(SavingsAccountingTest, PlanCacheHitAndMissPathsPriceIdentically) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.enable_plan_cache = true;
  PayLess client(&cat_, market_.get(), config);

  const std::vector<Value> params = {Value(int64_t{50}), Value(int64_t{249})};
  Result<QueryReport> miss = client.QueryWithReport(kRangeSql, params);
  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(miss->error.ok());
  EXPECT_EQ(miss->counters.plan_cache_misses, 1u);
  ASSERT_GE(miss->counterfactual_transactions, 0);

  // Second run: template hit. The counterfactual rode in the template, so
  // both paths report the identical price.
  Result<QueryReport> hit = client.QueryWithReport(kRangeSql, params);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->error.ok());
  EXPECT_EQ(hit->counters.plan_cache_hits, 1u);
  EXPECT_EQ(hit->counterfactual_transactions,
            miss->counterfactual_transactions);
  EXPECT_TRUE(obs.savings.Reconciles());
}

TEST_F(SavingsAccountingTest, WhatIfPassNeitherBillsNorMutatesTheStore) {
  // Twin clients, same market, same queries: accounting ON must change
  // neither the billing nor the store contents relative to accounting OFF.
  Observability obs_on, obs_off;
  PayLessConfig on, off;
  on.observability = &obs_on;
  off.observability = &obs_off;
  off.enable_savings_accounting = false;
  PayLess with(&cat_, market_.get(), on);
  PayLess without(&cat_, market_.get(), off);

  for (int64_t lo : {1, 501, 1, 1001}) {
    Result<QueryReport> a =
        with.QueryWithReport(kRangeSql, {Value(lo), Value(lo + 99)});
    Result<QueryReport> b =
        without.QueryWithReport(kRangeSql, {Value(lo), Value(lo + 99)});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->transactions_spent, b->transactions_spent);
    // Accounting off: the report says "not accounted", not zero.
    EXPECT_EQ(b->counterfactual_transactions, -1);
  }
  EXPECT_EQ(with.meter().total_transactions(),
            without.meter().total_transactions());
  EXPECT_EQ(with.store().TotalStoredRows(), without.store().TotalStoredRows());
  // The disabled client recorded nothing into its savings ledger.
  EXPECT_EQ(obs_off.savings.total_counterfactual(), 0);
  EXPECT_GT(obs_on.savings.total_counterfactual(), 0);
}

TEST_F(SavingsAccountingTest, ExplainAnalyzeRendersSavingsFooter) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);

  // Warm the store so the ANALYZE run actually saves something.
  ASSERT_TRUE(
      client.Query(kRangeSql, {Value(int64_t{1}), Value(int64_t{200})}).ok());
  Result<QueryReport> r = client.QueryWithReport(
      "EXPLAIN ANALYZE SELECT * FROM Pollution WHERE Rank >= 1 AND "
      "Rank <= 200");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->error.ok());
  EXPECT_NE(r->plan_text.find("counterfactual: "), std::string::npos)
      << r->plan_text;
  EXPECT_NE(r->plan_text.find("saved: "), std::string::npos) << r->plan_text;
}

// ---------------------------------------------------------------------------
// Federation: the counterfactual becomes the cheapest SINGLE-market plan
// and every (tenant, dataset, market) cell must still close exactly.

/// Two endpoints selling EHR: "east" on double pages (cheaper in
/// transactions), "west" at catalog terms. Rows are replicated to both.
std::unique_ptr<federation::FederatedMarket> NewEhrFederation(
    const catalog::Catalog* cat) {
  auto federation = std::make_unique<federation::FederatedMarket>(cat, 42);
  federation::EndpointConfig east;
  east.id = "east";
  east.menu["EHR"] = federation::DatasetTerms{1.0, 200};
  EXPECT_TRUE(federation->AddEndpoint(east).ok());
  federation::EndpointConfig west;
  west.id = "west";
  west.menu["EHR"] = federation::DatasetTerms{1.0, 100};
  EXPECT_TRUE(federation->AddEndpoint(west).ok());
  std::vector<Row> rows;
  for (int64_t rank = 1; rank <= 2000; ++rank) {
    rows.push_back(Row{Value(rank), Value(static_cast<double>(rank) / 10)});
  }
  EXPECT_TRUE(federation->HostTable("Pollution", std::move(rows)).ok());
  return federation;
}

/// The exact-closure assertions shared by the serial and threaded runs:
/// every cell reconciles, the per-market actuals sum to the cell's actual,
/// and the grand totals equal the cost ledger and the endpoint meters.
void ExpectFederatedClosure(const Observability& obs, PayLess* client) {
  EXPECT_TRUE(obs.savings.Reconciles());
  int64_t cells_actual = 0;
  for (const auto& [dataset, cell] : obs.savings.TenantByDataset("default")) {
    EXPECT_EQ(cell.counterfactual, cell.actual + cell.savings) << dataset;
    int64_t by_market = 0;
    for (const auto& [site, txn] : cell.actual_by_market) by_market += txn;
    EXPECT_EQ(by_market, cell.actual) << dataset;
    cells_actual += cell.actual;
  }
  EXPECT_EQ(cells_actual, obs.savings.total_actual());
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  auto* router = client->router();
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(obs.ledger.total_transactions(),
            router->TotalMeteredTransactions());
}

TEST_F(SavingsAccountingTest, FederatedSerialWorkloadClosesPerMarketCell) {
  auto federation = NewEhrFederation(&cat_);
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.federation = federation.get();
  PayLess client(&cat_, market_.get(), config);

  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t lo : {1, 301, 601, 901, 1201}) {
      Result<QueryReport> r = client.QueryWithReport(
          kRangeSql, {Value(lo), Value(lo + 199)});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE(r->error.ok()) << r->error.ToString();
    }
  }
  ExpectFederatedClosure(obs, &client);
  // Every purchase happened at the cheap buy-site.
  for (const auto& [dataset, cell] : obs.savings.TenantByDataset("default")) {
    for (const auto& [site, txn] : cell.actual_by_market) {
      EXPECT_EQ(site, "east") << dataset;
      EXPECT_GT(txn, 0);
    }
  }
}

TEST_F(SavingsAccountingTest, FederatedEightThreadsClosePerMarketCell) {
  auto federation = NewEhrFederation(&cat_);
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.federation = federation.get();
  PayLess client(&cat_, market_.get(), config);

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const int64_t lo = 1 + ((t * kQueriesPerThread + i) * 131) % 1700;
        Result<QueryReport> r = client.QueryWithReport(
            kRangeSql, {Value(lo), Value(lo + 99)});
        if (!r.ok() || !r->error.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  ExpectFederatedClosure(obs, &client);
}

}  // namespace
}  // namespace payless::obs
