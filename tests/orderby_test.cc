// ORDER BY: parsing, binding to output columns, and end-to-end sorted
// results through the PayLess facade.
#include <gtest/gtest.h>

#include "exec/payless.h"
#include "sql/parser.h"

namespace payless {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

TEST(OrderByParseTest, AscDescDefaults) {
  Result<sql::SelectStmt> stmt = sql::Parse(
      "SELECT a, b FROM t ORDER BY a DESC, b ASC, a");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->order_by.size(), 3u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_TRUE(stmt->order_by[2].ascending);
}

TEST(OrderByParseTest, AfterGroupBy) {
  Result<sql::SelectStmt> stmt = sql::Parse(
      "SELECT c, COUNT(*) AS n FROM t GROUP BY c ORDER BY n DESC");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->order_by.size(), 1u);
}

TEST(OrderByParseTest, RequiresBy) {
  EXPECT_FALSE(sql::Parse("SELECT a FROM t ORDER a").ok());
}

TEST(OrderByParseTest, RoundTripsToString) {
  Result<sql::SelectStmt> stmt =
      sql::Parse("SELECT a FROM t ORDER BY a DESC");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->ToString().find("ORDER BY a DESC"), std::string::npos);
}

class OrderByEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    TableDef t;
    t.name = "Items";
    t.dataset = "D";
    t.columns = {
        ColumnDef::Free("K", ValueType::kInt64, AttrDomain::Numeric(1, 50)),
        ColumnDef::Free("Cat", ValueType::kString,
                        AttrDomain::Categorical({"a", "b", "c"})),
        ColumnDef::Output("V", ValueType::kDouble)};
    t.cardinality = 50;
    ASSERT_TRUE(cat_.RegisterTable(t).ok());
    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    const char* cats[] = {"a", "b", "c"};
    for (int64_t k = 1; k <= 50; ++k) {
      rows.push_back(Row{Value(k), Value(cats[k % 3]),
                         Value(static_cast<double>((k * 7) % 50))});
    }
    ASSERT_TRUE(market_->HostTable("Items", std::move(rows)).ok());
    client_ = std::make_unique<exec::PayLess>(&cat_, market_.get(),
                                              exec::PayLessConfig{});
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::unique_ptr<exec::PayLess> client_;
};

TEST_F(OrderByEndToEnd, AscendingSingleKey) {
  Result<storage::Table> result = client_->Query(
      "SELECT K, V FROM Items WHERE K >= 1 AND K <= 20 ORDER BY V");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 20u);
  for (size_t i = 1; i < result->num_rows(); ++i) {
    EXPECT_LE(result->rows()[i - 1][1], result->rows()[i][1]);
  }
}

TEST_F(OrderByEndToEnd, DescendingByAlias) {
  Result<storage::Table> result = client_->Query(
      "SELECT K AS key, V FROM Items WHERE K >= 1 AND K <= 20 "
      "ORDER BY key DESC");
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->num_rows(); ++i) {
    EXPECT_GE(result->rows()[i - 1][0], result->rows()[i][0]);
  }
}

TEST_F(OrderByEndToEnd, MultiKeyWithGroupBy) {
  Result<storage::Table> result = client_->Query(
      "SELECT Cat, COUNT(*) AS n, AVG(V) AS avg_v FROM Items "
      "GROUP BY Cat ORDER BY n DESC, Cat ASC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3u);
  for (size_t i = 1; i < result->num_rows(); ++i) {
    const Value& prev_n = result->rows()[i - 1][1];
    const Value& cur_n = result->rows()[i][1];
    EXPECT_GE(prev_n, cur_n);
    if (prev_n == cur_n) {
      EXPECT_LE(result->rows()[i - 1][0], result->rows()[i][0]);
    }
  }
}

TEST_F(OrderByEndToEnd, UnknownKeyRejected) {
  EXPECT_EQ(client_->Query("SELECT K FROM Items ORDER BY nope")
                .status()
                .code(),
            Status::Code::kNotFound);
}

TEST_F(OrderByEndToEnd, StarWithOrderByRejected) {
  EXPECT_EQ(client_->Query("SELECT * FROM Items ORDER BY K").status().code(),
            Status::Code::kNotSupported);
}

TEST_F(OrderByEndToEnd, QualifiedKeyRejected) {
  EXPECT_EQ(client_->Query("SELECT K FROM Items ORDER BY Items.K")
                .status()
                .code(),
            Status::Code::kNotSupported);
}

}  // namespace
}  // namespace payless
