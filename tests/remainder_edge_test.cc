// Remainder generation edge cases and degradation paths beyond the paper's
// figures: combinatorial guards, zero-dimensional spaces, pricing floors,
// and the interaction of pruning with the cover's feasibility.
#include <gtest/gtest.h>

#include "semstore/remainder.h"

namespace payless::semstore {
namespace {

DimSpec NumericDim(int64_t lo, int64_t hi) {
  DimSpec d;
  d.mode = DimSpec::Mode::kNumeric;
  d.domain = Interval(lo, hi);
  return d;
}

TEST(RemainderEdgeTest, ZeroDimensionalTableSpace) {
  // A table whose access pattern has no constrainable attribute: the
  // region space is the unit box. Uncovered -> one unconstrained call.
  const RemainderResult uncovered = GenerateRemainder(
      Box{}, {}, {}, [](const Box&) { return 500.0; }, RemainderOptions{});
  ASSERT_FALSE(uncovered.fully_covered);
  ASSERT_EQ(uncovered.remainder_boxes.size(), 1u);
  EXPECT_EQ(uncovered.estimated_transactions, 5);

  const RemainderResult covered = GenerateRemainder(
      Box{}, {Box{}}, {}, [](const Box&) { return 500.0; },
      RemainderOptions{});
  EXPECT_TRUE(covered.fully_covered);
}

TEST(RemainderEdgeTest, CellBudgetDegradesGracefully) {
  // Absurdly low cell budget: the generator must fall back to covering
  // with the raw uncovered pieces, still complete.
  const Box query({Interval(0, 999), Interval(0, 999)});
  std::vector<Box> stored;
  for (int64_t i = 0; i < 8; ++i) {
    stored.push_back(Box({Interval(i * 100, i * 100 + 50),
                          Interval(i * 90, i * 90 + 40)}));
  }
  RemainderOptions options;
  options.max_cells = 4;
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 999), NumericDim(0, 999)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 100.0; },
      options);
  ASSERT_FALSE(r.fully_covered);
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
}

TEST(RemainderEdgeTest, CandidateBudgetDegradesGracefully) {
  const Box query({Interval(0, 999), Interval(0, 999)});
  std::vector<Box> stored;
  for (int64_t i = 0; i < 10; ++i) {
    stored.push_back(
        Box({Interval(i * 97, i * 97 + 30), Interval(i * 83, i * 83 + 30)}));
  }
  RemainderOptions options;
  options.max_candidates = 10;  // forces the no-enumeration path
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 999), NumericDim(0, 999)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 100.0; },
      options);
  ASSERT_FALSE(r.fully_covered);
  EXPECT_EQ(r.counters.kept_boxes, 0u);  // nothing enumerated...
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));  // ...but the cover is complete
}

TEST(RemainderEdgeTest, StoredViewsOutsideQueryAreIrrelevant) {
  const Box query({Interval(0, 9)});
  const RemainderResult r = GenerateRemainder(
      query, {Box({Interval(50, 60)})}, {NumericDim(0, 100)},
      [](const Box& b) { return static_cast<double>(b.Volume()); },
      RemainderOptions{});
  ASSERT_EQ(r.remainder_boxes.size(), 1u);
  EXPECT_EQ(r.remainder_boxes[0], query);
}

TEST(RemainderEdgeTest, AdjacentViewsLeaveNoSliver) {
  // Views tile the query exactly with shared edges: fully covered, no
  // off-by-one slivers.
  const Box query({Interval(10, 29)});
  const RemainderResult r = GenerateRemainder(
      query, {Box({Interval(10, 19)}), Box({Interval(20, 29)})},
      {NumericDim(0, 100)}, [](const Box&) { return 1.0; },
      RemainderOptions{});
  EXPECT_TRUE(r.fully_covered);
}

TEST(RemainderEdgeTest, SingleLatticePointQuery) {
  const Box query({Interval::Point(42), Interval::Point(7)});
  const RemainderResult r = GenerateRemainder(
      query, {}, {NumericDim(0, 100), NumericDim(0, 10)},
      [](const Box&) { return 0.3; }, RemainderOptions{});
  ASSERT_EQ(r.remainder_boxes.size(), 1u);
  EXPECT_EQ(r.estimated_transactions, 1);  // floor: a call is never free
}

TEST(RemainderEdgeTest, PriceFloorAppliesPerChosenBox) {
  // Three far-apart slivers with ~0 estimated rows still cost one
  // transaction each (the optimizer must not believe in free lunches).
  const Box query({Interval(0, 100)});
  const std::vector<Box> stored = {Box({Interval(10, 40)}),
                                   Box({Interval(60, 90)})};
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 100)},
      [](const Box&) { return 0.01; }, RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  EXPECT_GE(r.estimated_transactions,
            static_cast<int64_t>(r.remainder_boxes.size()));
}

TEST(RemainderEdgeTest, MergingAcrossGapBeatsPerPieceWhenCheap) {
  // Three 1-transaction pieces with nearly-empty gaps: one merged range
  // call costing 1 page must win over three separate pages.
  const Box query({Interval(0, 59)});
  const std::vector<Box> stored = {Box({Interval(10, 19)}),
                                   Box({Interval(30, 39)})};
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 100)},
      [](const Box& b) { return static_cast<double>(b.Volume()) * 0.5; },
      RemainderOptions{});
  // Whole [0,59] holds ~30 rows -> 1 transaction; three pieces would be 3.
  EXPECT_EQ(r.estimated_transactions, 1);
  ASSERT_EQ(r.remainder_boxes.size(), 1u);
  EXPECT_EQ(r.remainder_boxes[0], Box({Interval(0, 59)}));
}

TEST(RemainderEdgeTest, CountersMonotoneUnderPruning) {
  const Box query({Interval(0, 99), Interval(0, 99)});
  const std::vector<Box> stored = {
      Box({Interval(20, 40), Interval(20, 40)}),
      Box({Interval(60, 80), Interval(10, 90)})};
  const auto estimate = [](const Box& b) {
    return static_cast<double>(b.Volume()) / 50.0;
  };
  RemainderOptions pruned;
  RemainderOptions unpruned;
  unpruned.prune_minimal = false;
  unpruned.prune_price = false;
  const RemainderResult a = GenerateRemainder(
      query, stored, {NumericDim(0, 99), NumericDim(0, 99)}, estimate,
      pruned);
  const RemainderResult b = GenerateRemainder(
      query, stored, {NumericDim(0, 99), NumericDim(0, 99)}, estimate,
      unpruned);
  EXPECT_EQ(a.counters.enumerated_boxes, b.counters.enumerated_boxes);
  EXPECT_LE(a.counters.kept_boxes, b.counters.kept_boxes);
  EXPECT_EQ(a.counters.elementary_boxes, b.counters.elementary_boxes);
}

}  // namespace
}  // namespace payless::semstore
