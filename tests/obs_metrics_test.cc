// Metrics registry: instrument semantics, create-or-get handle stability,
// exposition formats, and (under TSan) the concurrent recording contract —
// many threads hammering ONE histogram handle lose no observations.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace payless::obs {
namespace {

TEST(ObsMetricsTest, CounterAddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(ObsMetricsTest, GaugeSetsAndAdds) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 4);
  gauge.Set(100);
  EXPECT_EQ(gauge.value(), 100);
}

TEST(ObsMetricsTest, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram hist({10, 100});
  hist.Observe(5);     // <= 10
  hist.Observe(10);    // <= 10: bounds are inclusive
  hist.Observe(11);    // <= 100
  hist.Observe(1000);  // +inf
  EXPECT_EQ(hist.count(), 4);
  EXPECT_EQ(hist.sum(), 5 + 10 + 11 + 1000);
  const std::vector<int64_t> buckets = hist.BucketCounts();
  ASSERT_EQ(buckets.size(), 3u);  // two finite bounds + one +inf bucket
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
}

TEST(ObsMetricsTest, RegistryReturnsStableSharedHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);  // create-or-get: one instrument per name
  a->Add(3);
  EXPECT_EQ(b->value(), 3);

  Histogram* h1 = registry.GetHistogram("latency", {1, 2, 3});
  Histogram* h2 = registry.GetHistogram("latency", {9, 99});  // ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 3u);  // first registration wins

  EXPECT_NE(static_cast<void*>(registry.GetGauge("requests_total")),
            static_cast<void*>(a));  // namespaces are per-kind
}

TEST(ObsMetricsTest, JsonExpositionContainsAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("calls_total")->Add(5);
  registry.GetGauge("inflight")->Set(2);
  registry.GetHistogram("latency_us", {100})->Observe(50);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"calls_total\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inflight\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST(ObsMetricsTest, PrometheusExpositionUsesCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("calls_total")->Add(5);
  Histogram* hist = registry.GetHistogram("latency_us", {10, 100});
  hist->Observe(5);
  hist->Observe(50);
  hist->Observe(500);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("calls_total 5"), std::string::npos) << text;
  // Prometheus buckets are CUMULATIVE: le="100" includes the le="10" hit.
  EXPECT_NE(text.find("latency_us_bucket{le=\"10\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"100\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_count 3"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_us_sum 555"), std::string::npos) << text;
}

// Runs in the TSan preset: 8 threads on ONE histogram handle plus a shared
// counter. The contract is lossless relaxed-atomic recording — every
// observation lands in exactly one bucket and the totals add up.
TEST(ObsConcurrencyTest, EightThreadsShareOneHistogram) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("latency_us", {8, 64, 512});
  Counter* counter = registry.GetCounter("observations_total");

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe((t * kPerThread + i) % 1024);
        counter->Add();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (const int64_t b : hist->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// Registration racing recording: half the threads Get instruments (mutex
// path), half record through pre-resolved handles (lock-free path).
TEST(ObsConcurrencyTest, RegistrationRacesRecording) {
  constexpr int kIters = 2'000;
  MetricsRegistry registry;
  Counter* shared = registry.GetCounter("shared_total");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          registry.GetCounter("c" + std::to_string(i % 16))->Add();
        } else {
          shared->Add();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(shared->value(), 2 * kIters);
  int64_t spread = 0;
  for (int i = 0; i < 16; ++i) {
    spread += registry.GetCounter("c" + std::to_string(i))->value();
  }
  EXPECT_EQ(spread, 2 * kIters);
}

}  // namespace
}  // namespace payless::obs
