// Property tests for the paper's §4.1 theorems, checked on randomized
// catalogs and queries with REAL measured spend (the billing meter), not
// just estimates:
//   Theorem 1 — restricting the search to left-deep plans never yields a
//               costlier optimum than exhaustive (bushy) enumeration;
//   Theorem 2 — zero-price relations joined first: measured spend of the
//               produced plan equals the optimizer's choice with the
//               zero-price prefix, and adding cached coverage never
//               increases measured spend;
//   Theorem 3 — join-disconnected relation sets cost the sum of their
//               parts (Cartesian products add no market transactions).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer.h"
#include "exec/execution_engine.h"
#include "exec/reference.h"
#include "sql/parser.h"

namespace payless {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

/// Random 2-3 table market setup with a join chain and data.
struct Scenario {
  catalog::Catalog cat;
  std::unique_ptr<market::DataMarket> market;
  std::string sql;

  Scenario() = default;
};

std::unique_ptr<Scenario> MakeScenario(uint64_t seed) {
  auto s = std::make_unique<Scenario>();
  Rng rng(seed);
  EXPECT_TRUE(s->cat.RegisterDataset(DatasetDef{"D", 1.0, 10}).ok());

  const int64_t keys = rng.Uniform(5, 30);

  TableDef a;
  a.name = "A";
  a.dataset = "D";
  a.columns = {
      ColumnDef::Free("k", ValueType::kInt64, AttrDomain::Numeric(1, keys)),
      ColumnDef::Free("f", ValueType::kInt64, AttrDomain::Numeric(0, 9))};
  a.cardinality = keys * 2;
  EXPECT_TRUE(s->cat.RegisterTable(a).ok());

  TableDef b;
  b.name = "B";
  b.dataset = "D";
  const bool b_bound = rng.Chance(0.4);
  b.columns = {
      b_bound ? ColumnDef::Bound("k", ValueType::kInt64,
                                 AttrDomain::Numeric(1, keys))
              : ColumnDef::Free("k", ValueType::kInt64,
                                AttrDomain::Numeric(1, keys)),
      ColumnDef::Free("g", ValueType::kInt64, AttrDomain::Numeric(0, 19))};
  b.cardinality = keys * 4;
  EXPECT_TRUE(s->cat.RegisterTable(b).ok());

  s->market = std::make_unique<market::DataMarket>(&s->cat);
  std::vector<Row> a_rows, b_rows;
  for (int64_t k = 1; k <= keys; ++k) {
    for (int64_t i = 0; i < 2; ++i) {
      a_rows.push_back(Row{Value(k), Value(rng.Uniform(0, 9))});
    }
    for (int64_t i = 0; i < 4; ++i) {
      b_rows.push_back(Row{Value(k), Value(rng.Uniform(0, 19))});
    }
  }
  EXPECT_TRUE(s->market->HostTable("A", std::move(a_rows)).ok());
  EXPECT_TRUE(s->market->HostTable("B", std::move(b_rows)).ok());

  const int64_t flo = rng.Uniform(0, 8);
  s->sql = "SELECT * FROM A, B WHERE A.k = B.k AND A.f >= " +
           std::to_string(flo) + " AND A.f <= " +
           std::to_string(rng.Uniform(flo, 9));
  return s;
}

/// Optimizes and EXECUTES the query; returns measured transactions.
int64_t MeasuredSpend(Scenario* s, core::OptimizerOptions options) {
  stats::StatsRegistry stats;
  for (const std::string& name : s->cat.TableNames()) {
    stats.RegisterTable(*s->cat.FindTable(name));
  }
  semstore::SemanticStore store;
  market::MarketConnector connector(s->market.get());
  connector.AddListener([&](const market::RestCall& call,
                            const market::CallResult& result) {
    const TableDef* def = s->cat.FindTable(call.table);
    store.Store(*def, market::CallRegion(*def, call), result.rows, 0);
    stats.Feedback(call.table, market::CallRegion(*def, call),
                   result.num_records);
  });

  Result<sql::SelectStmt> stmt = sql::Parse(s->sql);
  EXPECT_TRUE(stmt.ok());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, s->cat, {});
  EXPECT_TRUE(bound.ok());

  const core::Optimizer optimizer(&s->cat, &stats, &store, options);
  Result<core::OptimizeResult> plan = optimizer.Optimize(*bound);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString() << " for " << s->sql;

  storage::Database db;
  exec::ExecutionEngine engine(&s->cat, &db, &connector, &store, &stats);
  exec::ExecConfig config;
  config.use_sqr = options.use_sqr;
  Result<storage::Table> result =
      engine.Execute(*bound, plan->plan, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  // Correctness side-check against the oracle.
  Result<storage::Table> want =
      exec::ReferenceEvaluate(s->cat, *s->market, db, s->sql);
  EXPECT_TRUE(want.ok());
  EXPECT_TRUE(exec::SameResult(*result, *want)) << s->sql;

  return connector.meter().total_transactions();
}

class TheoremProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremProperty, Theorem1LeftDeepNeverCostlierThanBushy) {
  core::OptimizerOptions left_deep;
  left_deep.use_sqr = false;
  core::OptimizerOptions bushy;
  bushy.use_sqr = false;
  bushy.use_search_reduction = false;
  auto s1 = MakeScenario(GetParam());
  auto s2 = MakeScenario(GetParam());
  const int64_t reduced = MeasuredSpend(s1.get(), left_deep);
  const int64_t exhaustive = MeasuredSpend(s2.get(), bushy);
  EXPECT_LE(reduced, exhaustive) << s1->sql;
}

TEST_P(TheoremProperty, Theorem2CachedCoverageNeverIncreasesSpend) {
  auto cold = MakeScenario(GetParam());
  const int64_t cold_spend = MeasuredSpend(cold.get(), {});

  // Same scenario, but a prior identical query warmed the store: the second
  // run must cost no more (in fact zero, everything needed is cached).
  auto warm = MakeScenario(GetParam());
  stats::StatsRegistry stats;
  for (const std::string& name : warm->cat.TableNames()) {
    stats.RegisterTable(*warm->cat.FindTable(name));
  }
  semstore::SemanticStore store;
  market::MarketConnector connector(warm->market.get());
  connector.AddListener([&](const market::RestCall& call,
                            const market::CallResult& result) {
    const TableDef* def = warm->cat.FindTable(call.table);
    store.Store(*def, market::CallRegion(*def, call), result.rows, 0);
    stats.Feedback(call.table, market::CallRegion(*def, call),
                   result.num_records);
  });
  Result<sql::SelectStmt> stmt = sql::Parse(warm->sql);
  ASSERT_TRUE(stmt.ok());
  Result<sql::BoundQuery> bound = sql::Bind(*stmt, warm->cat, {});
  ASSERT_TRUE(bound.ok());
  const core::Optimizer optimizer(&warm->cat, &stats, &store, {});
  storage::Database db;
  exec::ExecutionEngine engine(&warm->cat, &db, &connector, &store, &stats);
  for (int run = 0; run < 2; ++run) {
    Result<core::OptimizeResult> plan = optimizer.Optimize(*bound);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.Execute(*bound, plan->plan, exec::ExecConfig{}).ok());
  }
  // Two runs together cost no more than one cold run... and exactly equal:
  // the second run is free.
  EXPECT_EQ(connector.meter().total_transactions(), cold_spend) << warm->sql;
}

INSTANTIATE_TEST_SUITE_P(Random, TheoremProperty,
                         ::testing::Range<uint64_t>(0, 12));

TEST(Theorem3Test, DisconnectedQueriesCostTheSumOfParts) {
  // Two unjoinable market tables: the query's spend equals the sum of the
  // two independent single-table queries' spends.
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"D", 1.0, 10}).ok());
  for (const char* name : {"X", "Y"}) {
    TableDef def;
    def.name = name;
    def.dataset = "D";
    def.columns = {ColumnDef::Free("k", ValueType::kInt64,
                                   AttrDomain::Numeric(1, 40))};
    def.cardinality = 40;
    ASSERT_TRUE(cat.RegisterTable(def).ok());
  }
  market::DataMarket market(&cat);
  std::vector<Row> x_rows, y_rows;
  for (int64_t k = 1; k <= 40; ++k) {
    x_rows.push_back(Row{Value(k)});
    y_rows.push_back(Row{Value(k)});
  }
  ASSERT_TRUE(market.HostTable("X", std::move(x_rows)).ok());
  ASSERT_TRUE(market.HostTable("Y", std::move(y_rows)).ok());

  const auto spend = [&cat, &market](const std::string& sql) {
    stats::StatsRegistry stats;
    for (const std::string& name : cat.TableNames()) {
      stats.RegisterTable(*cat.FindTable(name));
    }
    semstore::SemanticStore store;
    market::MarketConnector connector(&market);
    Result<sql::SelectStmt> stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok());
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat, {});
    EXPECT_TRUE(bound.ok());
    const core::Optimizer optimizer(&cat, &stats, &store, {});
    Result<core::OptimizeResult> plan = optimizer.Optimize(*bound);
    EXPECT_TRUE(plan.ok());
    storage::Database db;
    exec::ExecutionEngine engine(&cat, &db, &connector, &store, &stats);
    EXPECT_TRUE(engine.Execute(*bound, plan->plan, exec::ExecConfig{}).ok());
    return connector.meter().total_transactions();
  };

  const int64_t x_only = spend("SELECT * FROM X WHERE X.k >= 1 AND X.k <= 25");
  const int64_t y_only = spend("SELECT * FROM Y WHERE Y.k >= 5 AND Y.k <= 18");
  const int64_t both = spend(
      "SELECT * FROM X, Y WHERE X.k >= 1 AND X.k <= 25 AND Y.k >= 5 AND "
      "Y.k <= 18");
  EXPECT_EQ(both, x_only + y_only);
}

}  // namespace
}  // namespace payless
