// Workload generators: schema fidelity, shape properties (skew, ratios),
// valid-instance guarantees, determinism.
#include <gtest/gtest.h>

#include "exec/reference.h"
#include "workload/bundle.h"
#include "workload/queries.h"
#include "workload/tpch.h"
#include "workload/whw.h"

namespace payless::workload {
namespace {

RealDataOptions SmallReal() {
  RealDataOptions options;
  options.scale = 0.03;
  options.num_countries = 6;
  options.days = 200;
  options.query_window_days = 100;
  options.seed = 3;
  return options;
}

TpchOptions SmallTpch(double zipf = 0.0) {
  TpchOptions options;
  options.scale_factor = 0.001;
  options.zipf = zipf;
  options.seed = 4;
  return options;
}

TEST(RealDataTest, SchemaMatchesFigure1a) {
  const RealData data = MakeRealData(SmallReal());
  const catalog::TableDef* station = data.catalog.FindTable("Station");
  ASSERT_NE(station, nullptr);
  EXPECT_EQ(station->dataset, "WHW");
  EXPECT_EQ(station->ConstrainableColumns().size(), 3u);  // Country/ID/City
  EXPECT_TRUE(station->FullyDownloadable());
  const catalog::TableDef* weather = data.catalog.FindTable("Weather");
  ASSERT_NE(weather, nullptr);
  EXPECT_EQ(weather->ColumnIndex("Temperature"), 3u);
  EXPECT_EQ(weather->columns[3].binding, catalog::BindingKind::kOutput);
  const catalog::TableDef* pollution = data.catalog.FindTable("Pollution");
  ASSERT_NE(pollution, nullptr);
  EXPECT_EQ(pollution->dataset, "EHR");
  const catalog::TableDef* zipmap = data.catalog.FindTable("ZipMap");
  ASSERT_NE(zipmap, nullptr);
  EXPECT_TRUE(zipmap->is_local);
}

TEST(RealDataTest, CardinalitiesMatchGeneratedRows) {
  const RealData data = MakeRealData(SmallReal());
  EXPECT_EQ(static_cast<size_t>(data.catalog.FindTable("Station")->cardinality),
            data.market_tables.at("Station").size());
  EXPECT_EQ(static_cast<size_t>(data.catalog.FindTable("Weather")->cardinality),
            data.market_tables.at("Weather").size());
  EXPECT_EQ(
      static_cast<size_t>(data.catalog.FindTable("Pollution")->cardinality),
      data.market_tables.at("Pollution").size());
}

TEST(RealDataTest, WeatherIsStationsTimesDays) {
  const RealData data = MakeRealData(SmallReal());
  EXPECT_EQ(data.market_tables.at("Weather").size(),
            data.market_tables.at("Station").size() * data.valid_dates.size());
}

TEST(RealDataTest, FirstCountryDominatesStations) {
  const RealData data = MakeRealData(SmallReal());
  std::map<std::string, int> counts;
  for (const Row& row : data.market_tables.at("Station")) {
    ++counts[row[0].AsString()];
  }
  const int us = counts["United States"];
  for (const auto& [country, n] : counts) {
    EXPECT_LE(n, us) << country;
  }
}

TEST(RealDataTest, AllRowsEncodeIntoDomains) {
  const RealData data = MakeRealData(SmallReal());
  for (const auto& [name, rows] : data.market_tables) {
    const catalog::TableDef* def = data.catalog.FindTable(name);
    for (size_t i = 0; i < rows.size(); i += 7) {
      for (const size_t col : def->ConstrainableColumns()) {
        EXPECT_TRUE(def->columns[col].domain.Encode(rows[i][col]).has_value())
            << name << " row " << i << " col " << col;
      }
    }
  }
}

TEST(RealDataTest, QueryableWindowIsSuffixOfDates) {
  const RealData data = MakeRealData(SmallReal());
  ASSERT_EQ(data.queryable_dates.size(), 100u);
  EXPECT_EQ(data.queryable_dates.back(), data.valid_dates.back());
}

TEST(RealDataTest, DeterministicForSameSeed) {
  const RealData a = MakeRealData(SmallReal());
  const RealData b = MakeRealData(SmallReal());
  EXPECT_EQ(a.market_tables.at("Weather").size(),
            b.market_tables.at("Weather").size());
  EXPECT_EQ(RowToString(a.market_tables.at("Weather")[10]),
            RowToString(b.market_tables.at("Weather")[10]));
}

TEST(RealQueriesTest, FiveTemplatesParameterized) {
  const RealData data = MakeRealData(SmallReal());
  Rng rng(9);
  const std::vector<QueryInstance> queries = MakeRealQueries(data, 4, &rng);
  EXPECT_EQ(queries.size(), 20u);
  std::map<size_t, int> per_template;
  for (const QueryInstance& q : queries) ++per_template[q.template_id];
  EXPECT_EQ(per_template.size(), 5u);
  for (const auto& [tid, n] : per_template) EXPECT_EQ(n, 4) << tid;
}

TEST(RealQueriesTest, InstancesAreValidNonEmpty) {
  // The paper requires valid instances (non-empty results). Check against
  // the oracle on a small bundle.
  auto bundle = MakeRealBundle(SmallReal(), 3, 77);
  storage::Database db;
  for (const auto& [name, rows] : bundle->local_tables) {
    ASSERT_TRUE(db.CreateTable(*bundle->catalog.FindTable(name)).ok());
    ASSERT_TRUE(db.InsertRows(name, rows).ok());
  }
  for (const QueryInstance& q : bundle->queries) {
    SCOPED_TRACE(q.sql);
    Result<storage::Table> result =
        exec::ReferenceEvaluate(bundle->catalog, *bundle->market, db, q.sql,
                                q.params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->num_rows(), 0u);
  }
}

TEST(TpchDataTest, EightTablesWithStandardRatios) {
  const TpchData data = MakeTpchData(SmallTpch());
  EXPECT_EQ(data.local_tables.at("Region").size(), 5u);
  EXPECT_EQ(data.local_tables.at("Nation").size(), 25u);
  EXPECT_EQ(data.market_tables.at("Supplier").size(),
            static_cast<size_t>(data.num_suppliers));
  EXPECT_EQ(data.market_tables.at("PartSupp").size(),
            static_cast<size_t>(data.num_parts) * 4);
  EXPECT_EQ(data.market_tables.at("Orders").size(),
            static_cast<size_t>(data.num_orders));
  // ~4 lineitems per order.
  const double ratio =
      static_cast<double>(data.market_tables.at("Lineitem").size()) /
      static_cast<double>(data.num_orders);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 5.5);
}

TEST(TpchDataTest, NationAndRegionAreLocal) {
  const TpchData data = MakeTpchData(SmallTpch());
  EXPECT_TRUE(data.catalog.FindTable("Nation")->is_local);
  EXPECT_TRUE(data.catalog.FindTable("Region")->is_local);
  EXPECT_FALSE(data.catalog.FindTable("Lineitem")->is_local);
}

TEST(TpchDataTest, AllParametricAttributesFree) {
  // §5: "All parametric attributes in TPC-H queries are set as free".
  const TpchData data = MakeTpchData(SmallTpch());
  for (const std::string& name : data.catalog.TableNames()) {
    for (const catalog::ColumnDef& col :
         data.catalog.FindTable(name)->columns) {
      EXPECT_NE(col.binding, catalog::BindingKind::kBound) << name;
    }
  }
}

TEST(TpchDataTest, SkewConcentratesForeignKeys) {
  const TpchData uniform = MakeTpchData(SmallTpch(0.0));
  const TpchData skewed = MakeTpchData(SmallTpch(1.0));
  const auto max_key_share = [](const std::vector<Row>& rows, size_t col) {
    std::map<std::string, int> counts;
    for (const Row& row : rows) ++counts[row[col].ToString()];
    int max_count = 0;
    for (const auto& [_, n] : counts) max_count = std::max(max_count, n);
    return static_cast<double>(max_count) / static_cast<double>(rows.size());
  };
  // Customer key of orders: the hottest key absorbs far more mass under
  // zipf(1).
  const double u = max_key_share(uniform.market_tables.at("Orders"), 1);
  const double s = max_key_share(skewed.market_tables.at("Orders"), 1);
  EXPECT_GT(s, 3 * u);
}

TEST(TpchDataTest, DatesWithinDomain) {
  const TpchData data = MakeTpchData(SmallTpch());
  for (const Row& row : data.market_tables.at("Lineitem")) {
    const int64_t shipdate = row[3].AsInt64();
    EXPECT_GE(shipdate, 0);
    EXPECT_LE(shipdate, kTpchDateMax);
  }
}

TEST(TpchQueriesTest, TwentyTemplates) {
  EXPECT_EQ(TpchTemplates().size(), 20u);
  const TpchData data = MakeTpchData(SmallTpch());
  Rng rng(12);
  const std::vector<QueryInstance> queries = MakeTpchQueries(data, 2, &rng);
  EXPECT_EQ(queries.size(), 40u);
}

TEST(TpchQueriesTest, AllTemplatesExecutable) {
  auto bundle = MakeTpchBundle(SmallTpch(), 1, 13);
  auto client = NewPayLessClient(*bundle, PayLessFullConfig());
  for (const QueryInstance& q : bundle->queries) {
    SCOPED_TRACE(q.sql);
    Result<storage::Table> result = client->Query(q.sql, q.params);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(TpchQueriesTest, SkewedWorkloadExecutable) {
  auto bundle = MakeTpchBundle(SmallTpch(1.0), 1, 14);
  auto client = NewPayLessClient(*bundle, PayLessFullConfig());
  for (const QueryInstance& q : bundle->queries) {
    SCOPED_TRACE(q.sql);
    EXPECT_TRUE(client->Query(q.sql, q.params).ok());
  }
}

TEST(BundleTest, ClientFactoriesShareTheMarket) {
  auto bundle = MakeRealBundle(SmallReal(), 1, 15);
  auto a = NewPayLessClient(*bundle, PayLessFullConfig());
  auto b = NewDownloadAllClient(*bundle);
  // Same hosted data: both answer the same query identically.
  const QueryInstance& q = bundle->queries.front();
  Result<storage::Table> ra = a->Query(q.sql, q.params);
  Result<storage::Table> rb = b->Query(q.sql, q.params);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(exec::SameResult(*ra, *rb));
  // But bill independently.
  EXPECT_NE(a->meter().total_transactions(), 0);
  EXPECT_NE(b->meter().total_transactions(), 0);
}

TEST(BundleTest, ConfigPresets) {
  EXPECT_TRUE(PayLessFullConfig().optimizer.use_sqr);
  EXPECT_FALSE(PayLessNoSqrConfig().optimizer.use_sqr);
  EXPECT_EQ(MinimizingCallsConfig().optimizer.cost_model,
            core::CostModelKind::kCalls);
}

}  // namespace
}  // namespace payless::workload
