#include "semstore/semantic_store.h"

#include <gtest/gtest.h>

#include <limits>

namespace payless::semstore {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

constexpr int64_t kWeak = std::numeric_limits<int64_t>::min();

class SemStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    TableDef def;
    def.name = "T";
    def.dataset = "D";
    def.columns = {
        ColumnDef::Free("c", ValueType::kString,
                        AttrDomain::Categorical({"x", "y"})),
        ColumnDef::Free("d", ValueType::kInt64, AttrDomain::Numeric(0, 99)),
        ColumnDef::Output("v", ValueType::kDouble)};
    def.cardinality = 0;
    ASSERT_TRUE(cat_.RegisterTable(def).ok());
  }

  const TableDef& def() const { return *cat_.FindTable("T"); }

  static Row MakeRow(const std::string& c, int64_t d, double v) {
    return Row{Value(c), Value(d), Value(v)};
  }

  static Box Region(int64_t c, int64_t dlo, int64_t dhi) {
    return Box({Interval::Point(c), Interval(dlo, dhi)});
  }

  catalog::Catalog cat_;
  SemanticStore store_;
};

TEST_F(SemStoreTest, RowPointEncodesConstrainableColumns) {
  const auto point = RowPoint(def(), MakeRow("y", 42, 1.5));
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(*point, (std::vector<int64_t>{1, 42}));
}

TEST_F(SemStoreTest, RowPointRejectsOutOfDomain) {
  EXPECT_FALSE(RowPoint(def(), MakeRow("z", 42, 1.5)).has_value());
  EXPECT_FALSE(RowPoint(def(), MakeRow("x", 500, 1.5)).has_value());
  EXPECT_FALSE(RowPoint(def(), {Value::Null(), Value(int64_t{1}),
                                Value(0.0)}).has_value());
}

TEST_F(SemStoreTest, StoreAndCoverSingleView) {
  store_.Store(def(), Region(0, 10, 20), {MakeRow("x", 15, 1.0)}, 0);
  EXPECT_EQ(store_.NumViews("T"), 1u);
  EXPECT_TRUE(store_.Covers(def(), Region(0, 12, 18), kWeak));
  EXPECT_FALSE(store_.Covers(def(), Region(0, 12, 25), kWeak));
  EXPECT_FALSE(store_.Covers(def(), Region(1, 12, 18), kWeak));
}

TEST_F(SemStoreTest, EmptyRegionNotStored) {
  store_.Store(def(), Box({Interval::Empty(), Interval(0, 5)}), {}, 0);
  EXPECT_EQ(store_.NumViews("T"), 0u);
}

TEST_F(SemStoreTest, CoverageMergesAdjacentRanges) {
  store_.Store(def(), Region(0, 0, 9), {}, 0);
  store_.Store(def(), Region(0, 10, 19), {}, 0);
  const std::vector<Box> regions = store_.CoveredRegions("T", kWeak);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], Region(0, 0, 19));
}

TEST_F(SemStoreTest, CoverageMergesOverlappingRanges) {
  store_.Store(def(), Region(0, 0, 12), {}, 0);
  store_.Store(def(), Region(0, 8, 20), {}, 0);
  const std::vector<Box> regions = store_.CoveredRegions("T", kWeak);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], Region(0, 0, 20));
}

TEST_F(SemStoreTest, CoverageDropsContainedRegions) {
  store_.Store(def(), Region(0, 0, 50), {}, 0);
  store_.Store(def(), Region(0, 10, 20), {}, 0);
  EXPECT_EQ(store_.CoveredRegions("T", kWeak).size(), 1u);
}

TEST_F(SemStoreTest, CoverageKeepsDisjointRegionsSeparate) {
  // Gap on the numeric dimension: no merge possible.
  store_.Store(def(), Region(0, 0, 9), {}, 0);
  store_.Store(def(), Region(0, 50, 60), {}, 0);
  EXPECT_EQ(store_.CoveredRegions("T", kWeak).size(), 2u);
}

TEST_F(SemStoreTest, CoverageMergesAdjacentCategoricalSlabs) {
  // Codes 0 and 1 are adjacent: the two same-range slabs merge. Coverage
  // boxes may legally span several categorical values — only CALLS cannot.
  store_.Store(def(), Region(0, 0, 9), {}, 0);
  store_.Store(def(), Region(1, 0, 9), {}, 0);
  const std::vector<Box> regions = store_.CoveredRegions("T", kWeak);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], Box({Interval(0, 1), Interval(0, 9)}));
}

TEST_F(SemStoreTest, ChainOfMergesCollapsesToOne) {
  store_.Store(def(), Region(0, 0, 9), {}, 0);
  store_.Store(def(), Region(0, 20, 29), {}, 0);
  store_.Store(def(), Region(0, 10, 19), {}, 0);  // bridges the gap
  const std::vector<Box> regions = store_.CoveredRegions("T", kWeak);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], Region(0, 0, 29));
}

TEST_F(SemStoreTest, RowsInRegionFiltersAndDedups) {
  store_.Store(def(), Region(0, 0, 20),
               {MakeRow("x", 5, 1.0), MakeRow("x", 15, 2.0)}, 0);
  store_.Store(def(), Region(0, 10, 30),
               {MakeRow("x", 15, 2.0), MakeRow("x", 25, 3.0)}, 0);
  const std::vector<Row> rows =
      store_.RowsInRegion(def(), Region(0, 0, 99), kWeak);
  EXPECT_EQ(rows.size(), 3u);  // the duplicate (x,15) appears once
  const std::vector<Row> narrow =
      store_.RowsInRegion(def(), Region(0, 10, 20), kWeak);
  ASSERT_EQ(narrow.size(), 1u);
  EXPECT_EQ(narrow[0][1], Value(int64_t{15}));
}

TEST_F(SemStoreTest, RowsInRegionUsesWidePathToo) {
  // A region wide on both dims exercises the linear pool scan.
  for (int64_t d = 0; d < 80; ++d) {
    store_.Store(def(), Region(d % 2, d, d), {MakeRow(d % 2 ? "y" : "x", d, 0.1)},
                 0);
  }
  const Box wide({Interval(0, 1), Interval(0, 99)});
  EXPECT_EQ(store_.RowsInRegion(def(), wide, kWeak).size(), 80u);
}

TEST_F(SemStoreTest, EpochFilteringForXWeekConsistency) {
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 5, 1.0)}, /*epoch=*/1);
  store_.Store(def(), Region(0, 10, 19), {MakeRow("x", 15, 2.0)},
               /*epoch=*/5);
  // min_epoch 3: only the newer view counts.
  EXPECT_FALSE(store_.Covers(def(), Region(0, 0, 9), 3));
  EXPECT_TRUE(store_.Covers(def(), Region(0, 10, 19), 3));
  EXPECT_EQ(store_.RowsInRegion(def(), Region(0, 0, 19), 3).size(), 1u);
  EXPECT_EQ(store_.RowsInRegion(def(), Region(0, 0, 19), 0).size(), 2u);
}

TEST_F(SemStoreTest, EpochPathPrefersNewestDuplicate) {
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 5, 1.0)}, 1);
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 5, 1.0)}, 2);
  EXPECT_EQ(store_.RowsInRegion(def(), Region(0, 0, 9), 0).size(), 1u);
}

TEST_F(SemStoreTest, Counters) {
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 1, 0.0)}, 0);
  store_.Store(def(), Region(1, 0, 9), {MakeRow("y", 1, 0.0)}, 0);
  EXPECT_EQ(store_.TotalViews(), 2u);
  EXPECT_EQ(store_.TotalStoredRows(), 2u);
  store_.Clear();
  EXPECT_EQ(store_.TotalViews(), 0u);
  EXPECT_TRUE(store_.CoveredRegions("T", kWeak).empty());
  EXPECT_TRUE(store_.RowsInRegion(def(), Region(0, 0, 9), kWeak).empty());
}

TEST_F(SemStoreTest, CoversEmptyRegionTrivially) {
  EXPECT_TRUE(store_.Covers(def(), Box({Interval::Empty(), Interval(0, 1)}),
                            kWeak));
}

TEST_F(SemStoreTest, ViewsOfUnknownTableEmpty) {
  EXPECT_TRUE(store_.ViewsOf("Nope").empty());
  EXPECT_EQ(store_.NumViews("Nope"), 0u);
}

TEST_F(SemStoreTest, ProbeCountersClassifyEveryOutcome) {
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 1, 0.0)}, 0);

  EXPECT_TRUE(store_.Covers(def(), Region(0, 2, 8), kWeak));   // hit
  EXPECT_FALSE(store_.Covers(def(), Region(0, 2, 50), kWeak));  // miss
  EXPECT_FALSE(store_.Covers(def(), Region(1, 2, 8), kWeak));   // miss
  // Empty region: trivially covered, still one (hit) probe.
  EXPECT_TRUE(store_.Covers(def(), Box({Interval::Empty(), Interval(0, 1)}),
                            kWeak));
  // Rows lookups are probes too: hit iff rows came back.
  EXPECT_FALSE(store_.RowsInRegion(def(), Region(0, 0, 9), kWeak).empty());
  EXPECT_TRUE(store_.RowsInRegion(def(), Region(1, 0, 9), kWeak).empty());

  EXPECT_EQ(store_.TotalProbes(), 6);
  EXPECT_EQ(store_.TotalHits(), 3);
  EXPECT_EQ(store_.TotalMisses(), 3);
  EXPECT_EQ(store_.TotalHits() + store_.TotalMisses(), store_.TotalProbes());
}

TEST_F(SemStoreTest, BoundMetricsMirrorProbeAndEvictionCounters) {
  obs::Counter hits, misses, evictions;
  store_.BindMetrics(&hits, &misses, &evictions);
  store_.Store(def(), Region(0, 0, 9), {MakeRow("x", 1, 0.0)}, 0);
  store_.Store(def(), Region(1, 0, 9), {}, 0);

  EXPECT_TRUE(store_.Covers(def(), Region(0, 2, 8), kWeak));
  EXPECT_FALSE(store_.Covers(def(), Region(0, 50, 60), kWeak));
  EXPECT_EQ(hits.value(), 1);
  EXPECT_EQ(misses.value(), 1);
  EXPECT_EQ(evictions.value(), 0);

  // Clear() is the eviction point: one eviction per dropped view.
  store_.Clear();
  EXPECT_EQ(evictions.value(), 2);
  EXPECT_EQ(store_.TotalEvictions(), 2);
}

TEST_F(SemStoreTest, SnapshotStatsSummarizesCoverage) {
  store_.Store(def(), Region(0, 0, 49), {MakeRow("x", 1, 0.0)}, 3);
  store_.Store(def(), Region(1, 0, 99), {MakeRow("y", 2, 0.0)}, 5);
  EXPECT_TRUE(store_.Covers(def(), Region(0, 0, 9), kWeak));

  const std::vector<StoreTableStats> stats = store_.SnapshotStats();
  ASSERT_EQ(stats.size(), 1u);
  const StoreTableStats& t = stats[0];
  EXPECT_EQ(t.table, "T");
  EXPECT_EQ(t.views, 2);
  EXPECT_EQ(t.pooled_rows, 2);
  EXPECT_GT(t.approx_bytes, 0);
  EXPECT_EQ(t.min_epoch, 3);
  EXPECT_EQ(t.max_epoch, 5);
  EXPECT_EQ(t.probes, 1);
  EXPECT_EQ(t.hits, 1);
  // Domain is 2 categories x 100 values = 200 points; 50 + 100 covered.
  EXPECT_NEAR(t.covered_fraction, 150.0 / 200.0, 1e-9);

  const std::string json = store_.StatsJson();
  EXPECT_NE(json.find("\"tables\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"T\""), std::string::npos) << json;
  EXPECT_NE(json.find("covered_fraction"), std::string::npos) << json;
}

}  // namespace
}  // namespace payless::semstore
