// Budget governance: unit semantics of the governor's three knobs, and the
// end-to-end admission contract through PayLess — a tenant at its hard cap
// gets kBudgetExceeded BEFORE any market call (zero transactions billed), a
// soft threshold only warns, and two tenants sharing one observability
// context are limited independently.
#include "obs/budget.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"
#include "obs/observability.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

TEST(BudgetGovernorTest, TenantsWithoutBudgetAreAlwaysAdmitted) {
  CostLedger ledger;
  BudgetGovernor governor(&ledger);
  ledger.Record("acme", 1, "WHW", 1'000'000, 1e6);
  const Admission admission = governor.Admit("acme", 1'000'000);
  EXPECT_TRUE(admission.status.ok());
  EXPECT_FALSE(admission.soft_warning);
}

TEST(BudgetGovernorTest, HardCapRejectsOnLedgerPlusEstimate) {
  CostLedger ledger;
  BudgetGovernor governor(&ledger);
  TenantBudget budget;
  budget.hard_cap_transactions = 10;
  governor.SetBudget("acme", budget);

  ledger.Record("acme", 1, "WHW", 8, 8.0);
  EXPECT_TRUE(governor.Admit("acme", 2).status.ok());  // 8 + 2 == cap: admit
  const Admission over = governor.Admit("acme", 3);    // 8 + 3 > cap: reject
  EXPECT_EQ(over.status.code(), Status::Code::kBudgetExceeded);

  ledger.Record("acme", 2, "WHW", 2, 2.0);  // now exactly at the cap
  EXPECT_TRUE(governor.Admit("acme", 0).status.ok());  // free query still ok
  EXPECT_EQ(governor.Admit("acme", 1).status.code(),
            Status::Code::kBudgetExceeded);
  EXPECT_EQ(governor.rejections("acme"), 2);
  // Another tenant sharing the governor is untouched.
  EXPECT_TRUE(governor.Admit("initech", 100).status.ok());
}

TEST(BudgetGovernorTest, SoftThresholdWarnsWithoutRejecting) {
  CostLedger ledger;
  BudgetGovernor governor(&ledger);
  TenantBudget budget;
  budget.soft_warn_transactions = 5;
  governor.SetBudget("acme", budget);

  ledger.Record("acme", 1, "WHW", 4, 4.0);
  const Admission below = governor.Admit("acme", 1);  // 4 + 1 == threshold
  EXPECT_TRUE(below.status.ok());
  EXPECT_FALSE(below.soft_warning);

  const Admission above = governor.Admit("acme", 2);  // 4 + 2 > threshold
  EXPECT_TRUE(above.status.ok());
  EXPECT_TRUE(above.soft_warning);
  EXPECT_EQ(governor.warnings("acme"), 1);

  // The early (estimate-free) gate must not double-count warnings.
  const Admission gate1 =
      governor.Admit("acme", 0, /*now_micros=*/-1,
                     /*note_soft_warning=*/false);
  EXPECT_TRUE(gate1.status.ok());
  EXPECT_EQ(governor.warnings("acme"), 1);
}

TEST(BudgetGovernorTest, SlidingWindowCapsRateNotLifetime) {
  CostLedger ledger;
  BudgetGovernor governor(&ledger);
  TenantBudget budget;
  budget.window_cap_transactions = 10;
  budget.window_micros = 1'000;
  governor.SetBudget("acme", budget);

  governor.RecordSpend("acme", 6, /*now_micros=*/100);
  governor.RecordSpend("acme", 4, /*now_micros=*/200);
  EXPECT_EQ(governor.WindowSpend("acme", 300), 10);
  // Window is full: even a 1-transaction query must wait.
  EXPECT_EQ(governor.Admit("acme", 1, /*now_micros=*/300).status.code(),
            Status::Code::kBudgetExceeded);
  // The first spend ages out once it is a full window old (at 100 + 1000);
  // afterwards there is room again.
  EXPECT_EQ(governor.WindowSpend("acme", 1'100), 4);
  EXPECT_TRUE(governor.Admit("acme", 6, /*now_micros=*/1'100).status.ok());
  // Lifetime spend was never the issue — no hard cap is configured.
  ledger.Record("acme", 1, "WHW", 1'000, 1e3);
  EXPECT_TRUE(governor.Admit("acme", 1, /*now_micros=*/2'500).status.ok());
}

class BudgetQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kStations * kDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations))};
    citymap.cardinality = kStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kStations; ++s) {
      for (int64_t d = 1; d <= kDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  std::unique_ptr<PayLess> NewTenant(const std::string& tenant,
                                     Observability* shared) {
    PayLessConfig config;
    config.tenant = tenant;
    config.observability = shared;
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("CityMap", city_rows_).ok());
    return client;
  }

  static constexpr int64_t kStations = 16;
  static constexpr int64_t kDates = 4;
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 4";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

// The acceptance criterion: a tenant at its hard cap gets kBudgetExceeded
// and the market bills ZERO transactions for the rejected query.
TEST_F(BudgetQueryTest, HardCapRejectsBeforeAnyMarketCall) {
  Observability shared;
  TenantBudget budget;
  budget.hard_cap_transactions = 1;  // the first real query blows this
  shared.governor.SetBudget("capped", budget);

  auto client = NewTenant("capped", &shared);
  // Gate 2 rejects: the plan's estimated cost already exceeds the cap, so
  // not a single market call goes out.
  const auto result = client->Query(kBindSql, {Value(int64_t{1}),
                                               Value(int64_t{8})});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kBudgetExceeded);
  EXPECT_EQ(client->meter().total_transactions(), 0);
  EXPECT_EQ(client->meter().total_calls(), 0);
  EXPECT_EQ(shared.ledger.TenantTransactions("capped"), 0);
  EXPECT_EQ(shared.governor.rejections("capped"), 1);
}

TEST_F(BudgetQueryTest, ExhaustedTenantFailsAtGateOne) {
  Observability shared;
  TenantBudget budget;
  budget.hard_cap_transactions = 8;
  shared.governor.SetBudget("capped", budget);

  auto client = NewTenant("capped", &shared);
  const auto first = client->QueryWithReport(kBindSql, {Value(int64_t{1}),
                                                        Value(int64_t{2})});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok());
  EXPECT_GT(first->transactions_spent, 0);
  ASSERT_TRUE(shared.ledger.TenantTransactions("capped") <= 8)
      << "fixture assumption broken: first query should fit the cap";

  // Burn the rest of the budget, then expect rejection with no new spend.
  while (shared.ledger.TenantTransactions("capped") < 8) {
    shared.ledger.Record("capped", 99, "WHW", 1, 1.0);
  }
  const int64_t billed_before = client->meter().total_transactions();
  const auto rejected = client->Query(kBindSql, {Value(int64_t{3}),
                                                 Value(int64_t{4})});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kBudgetExceeded);
  EXPECT_EQ(client->meter().total_transactions(), billed_before);
}

TEST_F(BudgetQueryTest, SoftThresholdOnlyWarns) {
  Observability shared;
  TenantBudget budget;
  budget.soft_warn_transactions = 1;
  shared.governor.SetBudget("chatty", budget);

  auto client = NewTenant("chatty", &shared);
  const auto report = client->QueryWithReport(kBindSql, {Value(int64_t{1}),
                                                         Value(int64_t{8})});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ok());
  EXPECT_TRUE(report->budget_warning);
  EXPECT_GT(report->transactions_spent, 0);  // the query RAN
  EXPECT_EQ(shared.governor.warnings("chatty"), 1);
  EXPECT_EQ(shared.governor.rejections("chatty"), 0);
}

// Two tenants, one shared context: the capped tenant is rejected, the
// unbudgeted tenant keeps querying, and the ledger keeps their spend apart
// while its total still matches the sum of both meters.
TEST_F(BudgetQueryTest, TenantsShareContextButNotBudgets) {
  Observability shared;
  TenantBudget budget;
  budget.hard_cap_transactions = 1;
  shared.governor.SetBudget("capped", budget);

  auto capped = NewTenant("capped", &shared);
  auto open = NewTenant("open", &shared);

  const auto rejected = capped->Query(kBindSql, {Value(int64_t{1}),
                                                 Value(int64_t{8})});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kBudgetExceeded);

  const auto served = open->QueryWithReport(kBindSql, {Value(int64_t{1}),
                                                       Value(int64_t{8})});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_TRUE(served->ok());

  EXPECT_EQ(shared.ledger.TenantTransactions("capped"), 0);
  EXPECT_EQ(shared.ledger.TenantTransactions("open"),
            served->transactions_spent);
  EXPECT_EQ(shared.ledger.total_transactions(),
            capped->meter().total_transactions() +
                open->meter().total_transactions());
}

}  // namespace
}  // namespace payless::obs
