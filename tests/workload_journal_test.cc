// Workload journal unit and integration tests: record codec, segment
// rotation and reopen discipline, the torn-tail exhaustion the durability
// contract requires (truncate at EVERY byte offset — the partial record is
// dropped, never applied, and later appends never hide it), concurrent
// appends, and the PayLess entry-point integration (every ADMITTED query
// is recorded, gate-1 rejections are not) with the /workload route.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/http_exposition.h"
#include "obs/observability.h"
#include "obs/workload_journal.h"

namespace payless::obs {
namespace {

namespace fs = std::filesystem;

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One-request HTTP client (the server closes after each response).
std::string HttpGetBody(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? "" :
                                           response.substr(header_end + 4);
}

class WorkloadJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("workload_journal_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  WorkloadJournalOptions Options(int64_t rotate_bytes = 4 << 20) const {
    WorkloadJournalOptions options;
    options.dir = dir_.string();
    options.rotate_bytes = rotate_bytes;
    return options;
  }

  static WorkloadRecord SampleRecord(const std::string& tenant,
                                     int64_t arrival_us) {
    WorkloadRecord record;
    record.tenant = tenant;
    record.sql = "SELECT Score FROM Pollution WHERE Rank >= ? AND Rank <= ?";
    record.params = {Value(static_cast<int64_t>(7)), Value(3.5),
                     Value("mixed"), Value()};
    record.arrival_us = arrival_us;
    record.status_code = 0;
    record.transactions = 11;
    record.result_rows = 42;
    record.latency_us = 1234;
    return record;
  }

  fs::path dir_;
};

TEST_F(WorkloadJournalTest, RecordCodecRoundTripsEveryField) {
  WorkloadRecord record = SampleRecord("acme", 555);
  record.seq = 17;
  record.status_code = static_cast<int32_t>(Status::Code::kBudgetExceeded);
  const std::string payload = EncodeWorkloadRecord(record);

  WorkloadRecord out;
  ASSERT_TRUE(DecodeWorkloadRecord(payload, &out));
  EXPECT_EQ(out.seq, 17u);
  EXPECT_EQ(out.tenant, "acme");
  EXPECT_EQ(out.sql, record.sql);
  ASSERT_EQ(out.params.size(), 4u);
  EXPECT_EQ(out.params[0], Value(static_cast<int64_t>(7)));
  EXPECT_EQ(out.params[1], Value(3.5));
  EXPECT_EQ(out.params[2], Value("mixed"));
  EXPECT_TRUE(out.params[3].is_null());
  EXPECT_EQ(out.arrival_us, 555);
  EXPECT_EQ(out.status_code,
            static_cast<int32_t>(Status::Code::kBudgetExceeded));
  EXPECT_EQ(out.transactions, 11);
  EXPECT_EQ(out.result_rows, 42);
  EXPECT_EQ(out.latency_us, 1234);

  // Unknown version and trailing garbage are rejected, not misread.
  std::string wrong_version = payload;
  wrong_version[0] = 9;
  EXPECT_FALSE(DecodeWorkloadRecord(wrong_version, &out));
  EXPECT_FALSE(DecodeWorkloadRecord(payload + "x", &out));
  EXPECT_FALSE(DecodeWorkloadRecord("", &out));
}

TEST_F(WorkloadJournalTest, AppendAssignsSeqAndReadsBackInOrder) {
  auto journal = WorkloadJournal::Open(Options());
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*journal)->Append(SampleRecord(i % 2 == 0 ? "a" : "b", i * 10)).ok());
  }
  const WorkloadJournal::Stats stats = (*journal)->stats();
  EXPECT_EQ(stats.records, 5);
  EXPECT_EQ(stats.next_seq, 6u);
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.by_tenant.at("a").records, 3);
  EXPECT_EQ(stats.by_tenant.at("b").records, 2);
  EXPECT_EQ(stats.by_tenant.at("a").transactions, 33);

  const JournalReadResult read = ReadJournal(dir_.string());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.decode_failures, 0u);
  ASSERT_EQ(read.records.size(), 5u);
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].seq, i + 1);
  }
  EXPECT_EQ(read.total_bytes, stats.bytes);
}

TEST_F(WorkloadJournalTest, RotatesPastThresholdAndReaderWalksSegments) {
  // Tiny rotation threshold: every record starts a fresh segment after the
  // first.
  auto journal = WorkloadJournal::Open(Options(/*rotate_bytes=*/64));
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*journal)->Append(SampleRecord("t", i)).ok());
  }
  const WorkloadJournal::Stats stats = (*journal)->stats();
  EXPECT_GE(stats.segments, 3u);

  const JournalReadResult read = ReadJournal(dir_.string());
  EXPECT_EQ(read.segments, stats.segments);
  ASSERT_EQ(read.records.size(), 6u);
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].seq, i + 1);
  }
}

TEST_F(WorkloadJournalTest, ReopenResumesSeqAfterLastDurableRecord) {
  {
    auto journal = WorkloadJournal::Open(Options());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(SampleRecord("t", i)).ok());
    }
  }
  auto reopened = WorkloadJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().next_seq, 4u);
  EXPECT_EQ((*reopened)->stats().records, 3);
  ASSERT_TRUE((*reopened)->Append(SampleRecord("t", 99)).ok());

  const JournalReadResult read = ReadJournal(dir_.string());
  ASSERT_EQ(read.records.size(), 4u);
  EXPECT_EQ(read.records.back().seq, 4u);
}

TEST_F(WorkloadJournalTest, TornTailAtEveryByteOffsetDropsExactlyTheTail) {
  auto journal = WorkloadJournal::Open(Options());
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*journal)->Append(SampleRecord("t", i)).ok());
  }
  const std::string segment = (dir_ / "journal-000001.seg").string();
  const std::string bytes = ReadFile(segment);
  ASSERT_FALSE(bytes.empty());
  const size_t record_bytes =
      8 + EncodeWorkloadRecord(SampleRecord("t", 0)).size();
  const size_t prefix = 2 * record_bytes;  // records 1..2 intact
  ASSERT_LT(prefix, bytes.size());

  journal->reset();  // release the fd before rewriting the segment
  for (size_t cut = prefix; cut < bytes.size(); ++cut) {
    WriteFile(segment, bytes.substr(0, cut));
    const JournalReadResult read = ReadJournal(dir_.string());
    ASSERT_EQ(read.records.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(read.records[0].seq, 1u) << "cut at byte " << cut;
    EXPECT_EQ(read.records[1].seq, 2u) << "cut at byte " << cut;
    EXPECT_EQ(read.torn_tail, cut > prefix) << "cut at byte " << cut;
    EXPECT_EQ(read.decode_failures, 0u) << "cut at byte " << cut;
  }
}

TEST_F(WorkloadJournalTest, ReopenAfterTornTailRotatesInsteadOfHiding) {
  {
    auto journal = WorkloadJournal::Open(Options());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(SampleRecord("t", i)).ok());
    }
  }
  // Tear the newest segment mid-frame: the third record loses its tail.
  const std::string segment = (dir_ / "journal-000001.seg").string();
  const std::string bytes = ReadFile(segment);
  WriteFile(segment, bytes.substr(0, bytes.size() - 3));

  // Reopen must NOT append after the torn tail — the reader stops at the
  // first invalid frame, so an in-place append would hide the new record.
  auto reopened = WorkloadJournal::Open(Options());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().next_seq, 3u);  // two durable records
  ASSERT_TRUE((*reopened)->Append(SampleRecord("t", 99)).ok());
  EXPECT_EQ((*reopened)->stats().segments, 2u);

  const JournalReadResult read = ReadJournal(dir_.string());
  EXPECT_TRUE(read.torn_tail);  // the old segment still reports its tear
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records.back().seq, 3u);
  EXPECT_EQ(read.records.back().arrival_us, 99);
}

TEST_F(WorkloadJournalTest, ConcurrentAppendsKeepSeqsUniqueAndDense) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  auto journal = WorkloadJournal::Open(Options(/*rotate_bytes=*/512));
  ASSERT_TRUE(journal.ok());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            (*journal)->Append(SampleRecord("t" + std::to_string(t), i)).ok());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const JournalReadResult read = ReadJournal(dir_.string());
  EXPECT_FALSE(read.torn_tail);
  ASSERT_EQ(read.records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  std::set<uint64_t> seqs;
  for (const WorkloadRecord& record : read.records) {
    seqs.insert(record.seq);
  }
  EXPECT_EQ(seqs.size(), read.records.size());
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), read.records.size());
}

// ---- PayLess entry-point integration ----------------------------------

class JournalIntegrationTest : public WorkloadJournalTest {
 protected:
  void SetUp() override {
    WorkloadJournalTest::SetUp();
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"EHR", 1.0, 100}).ok());
    TableDef pollution;
    pollution.name = "Pollution";
    pollution.dataset = "EHR";
    pollution.columns = {
        ColumnDef::Free("Rank", ValueType::kInt64,
                        AttrDomain::Numeric(1, 2000)),
        ColumnDef::Output("Score", ValueType::kDouble)};
    pollution.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(pollution).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 2000; ++rank) {
      rows.push_back(Row{Value(rank), Value(static_cast<double>(rank) / 10)});
    }
    ASSERT_TRUE(market_->HostTable("Pollution", std::move(rows)).ok());
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(JournalIntegrationTest, RecordsAdmittedQueriesButNotGateOneRejects) {
  auto journal = WorkloadJournal::Open(Options());
  ASSERT_TRUE(journal.ok());

  Observability obs;
  PayLessConfig config;
  config.tenant = "acme";
  config.observability = &obs;
  config.workload_journal = journal->get();
  PayLess client(&cat_, market_.get(), config);

  // 1. A delivered query is journaled with its outcome digest. Five pages
  //    of spend, so the cap of 1 below is genuinely exceeded.
  const auto ok = client.Query(
      "SELECT Score FROM Pollution WHERE Rank >= ? AND Rank <= ?",
      {Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(500))});
  ASSERT_TRUE(ok.ok());

  // 2. A parse error is still an admitted query — journaled as a failure.
  EXPECT_FALSE(client.Query("SELETC nonsense", {}).ok());

  // 3. Exhaust the tenant's budget, then issue again: gate 1 rejects
  //    before the parse, so nothing is journaled.
  TenantBudget budget;
  budget.hard_cap_transactions = 1;  // already spent past this
  obs.governor.SetBudget("acme", budget);
  EXPECT_FALSE(client
                   .Query("SELECT Score FROM Pollution WHERE Rank >= ? AND "
                          "Rank <= ?",
                          {Value(static_cast<int64_t>(1)),
                           Value(static_cast<int64_t>(10))})
                   .ok());

  const JournalReadResult read = ReadJournal(dir_.string());
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].tenant, "acme");
  EXPECT_EQ(read.records[0].status_code, 0);
  EXPECT_GT(read.records[0].transactions, 0);
  EXPECT_GT(read.records[0].result_rows, 0);
  ASSERT_EQ(read.records[0].params.size(), 2u);
  EXPECT_EQ(read.records[0].params[1], Value(static_cast<int64_t>(500)));
  EXPECT_NE(read.records[1].status_code, 0);
  EXPECT_EQ(read.records[1].sql, "SELETC nonsense");
  // Arrival clock is monotonic across the records.
  EXPECT_LE(read.records[0].arrival_us, read.records[1].arrival_us);
}

TEST_F(JournalIntegrationTest, WorkloadRouteServesJournalStats) {
  auto journal = WorkloadJournal::Open(Options());
  ASSERT_TRUE(journal.ok());

  Observability obs;
  PayLessConfig config;
  config.tenant = "acme";
  config.observability = &obs;
  config.workload_journal = journal->get();
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client
                  .Query("SELECT Score FROM Pollution WHERE Rank >= ? AND "
                         "Rank <= ?",
                         {Value(static_cast<int64_t>(1)),
                          Value(static_cast<int64_t>(50))})
                  .ok());

  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  client.RegisterIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string body = HttpGetBody(server.port(), "/workload");
  EXPECT_NE(body.find("\"records\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"acme\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"segments\":1"), std::string::npos) << body;
  server.Stop();

  // Without a journal the route reports that recording is off.
  PayLessConfig bare_config;
  bare_config.observability = &obs;
  PayLess bare(&cat_, market_.get(), bare_config);
  HttpExpositionServer bare_server(&obs.metrics, &obs.ledger);
  bare.RegisterIntrospection(&bare_server);
  ASSERT_TRUE(bare_server.Start().ok());
  const std::string off = HttpGetBody(bare_server.port(), "/workload");
  EXPECT_NE(off.find("\"recording\":false"), std::string::npos) << off;
  bare_server.Stop();
}

}  // namespace
}  // namespace payless::obs
