#include "stats/estimator.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace payless::stats {
namespace {

Box Grid2D(int64_t w, int64_t h) {
  return Box({Interval(0, w - 1), Interval(0, h - 1)});
}

TEST(UniformEstimatorTest, FullRegionReturnsCardinality) {
  UniformEstimator est(Grid2D(10, 10), 500);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Grid2D(10, 10)), 500.0);
}

TEST(UniformEstimatorTest, ProportionalToVolume) {
  UniformEstimator est(Grid2D(10, 10), 500);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box({Interval(0, 4), Interval(0, 9)})),
                   250.0);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box({Interval(0, 0), Interval(0, 0)})),
                   5.0);
}

TEST(UniformEstimatorTest, ClipsToDomain) {
  UniformEstimator est(Grid2D(10, 10), 100);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box({Interval(5, 50), Interval(0, 9)})),
                   50.0);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box({Interval(20, 30), Interval(0, 9)})),
                   0.0);
}

TEST(UniformEstimatorTest, OnlyWholeTableFeedbackRecalibrates) {
  UniformEstimator est(Grid2D(10, 10), 100);
  est.Feedback(Box({Interval(0, 4), Interval(0, 9)}), 90);  // ignored
  EXPECT_DOUBLE_EQ(est.EstimateRows(Grid2D(10, 10)), 100.0);
  est.Feedback(Grid2D(10, 10), 200);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Grid2D(10, 10)), 200.0);
}

TEST(FeedbackHistogramTest, StartsUniform) {
  FeedbackHistogram hist(Grid2D(10, 10), 100);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(0, 4), Interval(0, 9)})),
                   50.0);
  EXPECT_EQ(hist.num_buckets(), 1u);
}

TEST(FeedbackHistogramTest, ExactAfterAlignedFeedback) {
  FeedbackHistogram hist(Grid2D(10, 10), 100);
  const Box region({Interval(0, 4), Interval(0, 9)});
  hist.Feedback(region, 80);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(region), 80.0);
  // Mass conservation is NOT imposed outside the region: the rest keeps its
  // prior estimate.
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(5, 9), Interval(0, 9)})),
                   50.0);
}

TEST(FeedbackHistogramTest, DisjointFeedbacksStayExact) {
  FeedbackHistogram hist(Grid2D(100, 1), 1000);
  hist.Feedback(Box({Interval(0, 24), Interval(0, 0)}), 10);
  hist.Feedback(Box({Interval(25, 49), Interval(0, 0)}), 700);
  hist.Feedback(Box({Interval(50, 99), Interval(0, 0)}), 40);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(0, 24), Interval(0, 0)})),
                   10.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(25, 49), Interval(0, 0)})),
                   700.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(50, 99), Interval(0, 0)})),
                   40.0);
  EXPECT_NEAR(hist.total_count(), 750.0, 1e-6);
}

TEST(FeedbackHistogramTest, RefinementOverwritesCoarseFeedback) {
  FeedbackHistogram hist(Grid2D(100, 1), 1000);
  hist.Feedback(Box({Interval(0, 99), Interval(0, 0)}), 500);
  hist.Feedback(Box({Interval(0, 9), Interval(0, 0)}), 200);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(0, 9), Interval(0, 0)})),
                   200.0);
  // The coarse region total is no longer 500 (the refinement added mass),
  // but the untouched part keeps its share: 500 * 90/100 = 450.
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(10, 99), Interval(0, 0)})),
                   450.0);
}

TEST(FeedbackHistogramTest, ZeroFeedbackZeroesRegion) {
  FeedbackHistogram hist(Grid2D(10, 1), 100);
  hist.Feedback(Box({Interval(0, 4), Interval(0, 0)}), 0);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(0, 4), Interval(0, 0)})),
                   0.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRows(Box({Interval(5, 9), Interval(0, 0)})),
                   50.0);
}

TEST(FeedbackHistogramTest, FeedbackOnZeroMassRegionRedistributes) {
  FeedbackHistogram hist(Grid2D(10, 1), 100);
  hist.Feedback(Box({Interval(0, 4), Interval(0, 0)}), 0);
  hist.Feedback(Box({Interval(0, 1), Interval(0, 0)}), 30);
  EXPECT_NEAR(hist.EstimateRows(Box({Interval(0, 1), Interval(0, 0)})), 30.0,
              1e-6);
}

TEST(FeedbackHistogramTest, OutOfDomainFeedbackIgnored) {
  FeedbackHistogram hist(Grid2D(10, 1), 100);
  hist.Feedback(Box({Interval(20, 30), Interval(0, 0)}), 999);
  EXPECT_DOUBLE_EQ(hist.total_count(), 100.0);
  EXPECT_EQ(hist.num_feedbacks(), 0u);
}

TEST(FeedbackHistogramTest, CapacityBoundRespected) {
  FeedbackHistogram hist(Grid2D(1000, 1), 10000, /*max_buckets=*/8);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const int64_t lo = rng.Uniform(0, 990);
    hist.Feedback(Box({Interval(lo, lo + 9), Interval(0, 0)}), 10);
  }
  EXPECT_LE(hist.num_buckets(), 16u);  // 2x guard in implementation
  // Still answers estimates sanely.
  EXPECT_GE(hist.EstimateRows(Grid2D(1000, 1)), 0.0);
}

TEST(FeedbackHistogramTest, ConvergesToTrueCountsUnderRepeatedFeedback) {
  // Ground truth: 1000 rows concentrated in [0, 99] of a 10k-wide domain.
  FeedbackHistogram hist(Box({Interval(0, 9999)}), 5000);
  const auto truth = [](const Interval& r) {
    const Interval hit = r.Intersect(Interval(0, 99));
    return hit.empty() ? int64_t{0} : hit.Width() * 10;
  };
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const int64_t lo = rng.Uniform(0, 9900);
    const Interval r(lo, lo + rng.Uniform(10, 99));
    hist.Feedback(Box({r}), truth(r));
  }
  // After the learning phase, estimates for fresh ranges should be far more
  // accurate than the cold uniform assumption.
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const int64_t lo = rng.Uniform(0, 9900);
    const Interval r(lo, lo + 50);
    err += std::abs(hist.EstimateRows(Box({r})) -
                    static_cast<double>(truth(r)));
  }
  EXPECT_LT(err / 20.0, 60.0);  // cold-start error would be ~25 per miss
                                // and ~500 inside the hot range
}

TEST(StatsRegistryTest, RegisterAndEstimate) {
  catalog::Catalog cat;
  ASSERT_TRUE(
      cat.RegisterDataset(catalog::DatasetDef{"D", 1.0, 100}).ok());
  catalog::TableDef def;
  def.name = "T";
  def.dataset = "D";
  def.columns = {catalog::ColumnDef::Free(
      "a", ValueType::kInt64, catalog::AttrDomain::Numeric(0, 99))};
  def.cardinality = 1000;
  ASSERT_TRUE(cat.RegisterTable(def).ok());

  StatsRegistry registry;
  registry.RegisterTable(*cat.FindTable("T"));
  EXPECT_TRUE(registry.HasTable("T"));
  EXPECT_DOUBLE_EQ(registry.EstimateRows("T", Box({Interval(0, 49)})), 500.0);
  registry.Feedback("T", Box({Interval(0, 49)}), 10);
  EXPECT_DOUBLE_EQ(registry.EstimateRows("T", Box({Interval(0, 49)})), 10.0);
  EXPECT_EQ(registry.TotalFeedbacks(), 1u);
}

TEST(StatsRegistryTest, UnknownTableEstimatesZero) {
  StatsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.EstimateRows("Nope", Box({Interval(0, 1)})), 0.0);
  registry.Feedback("Nope", Box({Interval(0, 1)}), 5);  // no crash
}

TEST(StatsRegistryTest, LearningDisabledStaysUniform) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(catalog::DatasetDef{"D", 1.0, 100}).ok());
  catalog::TableDef def;
  def.name = "T";
  def.dataset = "D";
  def.columns = {catalog::ColumnDef::Free(
      "a", ValueType::kInt64, catalog::AttrDomain::Numeric(0, 99))};
  def.cardinality = 1000;
  ASSERT_TRUE(cat.RegisterTable(def).ok());

  StatsRegistry registry(/*learning_enabled=*/false);
  registry.RegisterTable(*cat.FindTable("T"));
  registry.Feedback("T", Box({Interval(0, 49)}), 10);
  EXPECT_DOUBLE_EQ(registry.EstimateRows("T", Box({Interval(0, 49)})), 500.0);
}

TEST(StatsRegistryTest, RegisterIsIdempotent) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(catalog::DatasetDef{"D", 1.0, 100}).ok());
  catalog::TableDef def;
  def.name = "T";
  def.dataset = "D";
  def.columns = {catalog::ColumnDef::Free(
      "a", ValueType::kInt64, catalog::AttrDomain::Numeric(0, 9))};
  def.cardinality = 100;
  ASSERT_TRUE(cat.RegisterTable(def).ok());
  StatsRegistry registry;
  registry.RegisterTable(*cat.FindTable("T"));
  registry.Feedback("T", Box({Interval(0, 4)}), 7);
  registry.RegisterTable(*cat.FindTable("T"));  // must not reset learning
  EXPECT_DOUBLE_EQ(registry.EstimateRows("T", Box({Interval(0, 4)})), 7.0);
}

// Parameterized sweep: feedback is idempotent — repeating the same
// observation never changes the estimate further.
class FeedbackIdempotence : public ::testing::TestWithParam<int64_t> {};

TEST_P(FeedbackIdempotence, RepeatedFeedbackStable) {
  FeedbackHistogram hist(Box({Interval(0, 999)}), 12345);
  const int64_t lo = GetParam() * 83;
  const Box region({Interval(lo, lo + 99)});
  hist.Feedback(region, 321);
  const double first = hist.EstimateRows(region);
  hist.Feedback(region, 321);
  hist.Feedback(region, 321);
  EXPECT_NEAR(hist.EstimateRows(region), first, 1e-9);
  EXPECT_NEAR(first, 321.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Offsets, FeedbackIdempotence,
                         ::testing::Range<int64_t>(0, 10));

}  // namespace
}  // namespace payless::stats
