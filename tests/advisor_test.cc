// Deployment advisor tests: deterministic shadow replay (twin replays are
// byte-identical, ledger reconciles with the shadow meters), the grid
// knobs actually move the bill (federation is cheaper, a tight cap
// rejects), ranking and recommendation over a custom grid, report
// serialization determinism, and the /advisor HTTP route.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "advisor/deployment_advisor.h"
#include "advisor/shadow_replay.h"
#include "obs/http_exposition.h"
#include "obs/metrics.h"
#include "obs/workload_journal.h"
#include "workload/bundle.h"

namespace payless::advisor {
namespace {

/// One-request HTTP client (the server closes after each response).
std::string HttpGetBody(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? "" :
                                           response.substr(header_end + 4);
}

/// Small real-data bundle + a synthesized journal over its queries, built
/// once for the whole suite (shadow replays only read them).
class AdvisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::RealDataOptions options;
    options.scale = 0.04;
    options.seed = 42;
    bundle_ = workload::MakeRealBundle(options, /*per_template=*/2,
                                       /*query_seed=*/1)
                  .release();
    records_ = new std::vector<obs::WorkloadRecord>();
    uint64_t seq = 0;
    for (const workload::QueryInstance& query : bundle_->queries) {
      if (seq >= 8) break;  // enough traffic to bill, small enough for TSan
      obs::WorkloadRecord record;
      record.seq = ++seq;
      record.tenant = seq % 2 == 0 ? "tenant-b" : "tenant-a";
      record.sql = query.sql;
      record.params = query.params;
      record.arrival_us = static_cast<int64_t>(seq) * 1000;
      records_->push_back(std::move(record));
    }
  }

  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
    delete bundle_;
    bundle_ = nullptr;
  }

  static workload::Bundle* bundle_;
  static std::vector<obs::WorkloadRecord>* records_;
};

workload::Bundle* AdvisorTest::bundle_ = nullptr;
std::vector<obs::WorkloadRecord>* AdvisorTest::records_ = nullptr;

TEST_F(AdvisorTest, TwinReplaysAreByteIdenticalAndReconcile) {
  ShadowConfig config;
  config.name = "twin";
  const ReplayResult first = ReplayJournal(*bundle_, *records_, config);
  const ReplayResult second = ReplayJournal(*bundle_, *records_, config);
  ASSERT_TRUE(first.error.ok()) << first.error.ToString();
  EXPECT_EQ(first.queries, static_cast<int64_t>(records_->size()));
  EXPECT_EQ(first.failed, 0);
  EXPECT_EQ(first.rejected, 0);
  EXPECT_GT(first.total_transactions, 0);
  EXPECT_TRUE(first.ledger_matches_meter);
  EXPECT_TRUE(second.ledger_matches_meter);
  EXPECT_EQ(BillFingerprint(first), BillFingerprint(second));
  // Both tenants were served and billed separately.
  ASSERT_EQ(first.bills.size(), 2u);
  EXPECT_GT(first.bills.at("tenant-a").transactions, 0);
  EXPECT_GT(first.bills.at("tenant-b").transactions, 0);
}

TEST_F(AdvisorTest, BatchPrefetchReplayIsDeterministicToo) {
  // All-one-tenant records so consecutive arrivals actually form batches.
  std::vector<obs::WorkloadRecord> solo = *records_;
  for (obs::WorkloadRecord& record : solo) record.tenant = "solo";
  ShadowConfig config;
  config.name = "batch";
  config.batch_prefetch = true;
  config.prefetch_window = 4;
  const ReplayResult first = ReplayJournal(*bundle_, solo, config);
  const ReplayResult second = ReplayJournal(*bundle_, solo, config);
  ASSERT_TRUE(first.error.ok()) << first.error.ToString();
  EXPECT_EQ(first.queries, static_cast<int64_t>(solo.size()));
  EXPECT_TRUE(first.ledger_matches_meter);
  EXPECT_EQ(BillFingerprint(first), BillFingerprint(second));
}

TEST_F(AdvisorTest, FederatedReplayBeatsSingleMarket) {
  ShadowConfig single;
  single.name = "single";
  ShadowConfig federated;
  federated.name = "federated";
  federated.federation_endpoints = 2;
  const ReplayResult single_result =
      ReplayJournal(*bundle_, *records_, single);
  const ReplayResult federated_result =
      ReplayJournal(*bundle_, *records_, federated);
  ASSERT_TRUE(single_result.error.ok());
  ASSERT_TRUE(federated_result.error.ok());
  EXPECT_TRUE(federated_result.ledger_matches_meter);
  // Every dataset is discounted somewhere in a 2-endpoint federation, so
  // buy-site optimization must spend strictly less money.
  EXPECT_LT(federated_result.total_price, single_result.total_price);
}

TEST_F(AdvisorTest, TightCapRejectsQueries) {
  ShadowConfig capped;
  capped.name = "capped";
  capped.tenant_hard_cap = 1;
  const ReplayResult result = ReplayJournal(*bundle_, *records_, capped);
  ASSERT_TRUE(result.error.ok());
  EXPECT_GT(result.rejected, 0);
  EXPECT_EQ(result.queries, static_cast<int64_t>(records_->size()));
}

TEST_F(AdvisorTest, AdviseRanksFeasibleFirstAndRecommendsCheapest) {
  ShadowConfig base;
  base.name = "base";
  ShadowConfig federated;
  federated.name = "federated";
  federated.federation_endpoints = 2;
  ShadowConfig capped;
  capped.name = "capped";
  capped.tenant_hard_cap = 1;

  AdvisorOptions options;
  options.grid = {base, federated, capped};
  const Result<AdvisorReport> report = Advise(*bundle_, *records_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->ranked.size(), 3u);

  // The capped cell rejected traffic → infeasible → ranked last despite
  // its lower bill; the federated cell wins on price among the feasible.
  EXPECT_EQ(report->ranked.back().config.name, "capped");
  EXPECT_FALSE(report->ranked.back().feasible);
  EXPECT_FALSE(report->ranked.back().infeasible_reasons.empty());
  EXPECT_EQ(report->recommended, "federated");
  EXPECT_TRUE(report->ranked.front().feasible);
  EXPECT_EQ(report->seed_name, "base");
  EXPECT_GT(report->seed_price, report->recommended_price);
  EXPECT_GT(report->savings_vs_seed_pct, 0.0);
  EXPECT_EQ(report->records_replayed,
            static_cast<int64_t>(records_->size()));
  for (const CellOutcome& cell : report->ranked) {
    EXPECT_TRUE(cell.twin_identical) << cell.config.name;
    EXPECT_TRUE(cell.replay.ledger_matches_meter) << cell.config.name;
  }

  // The report is deterministic end to end: advising again over the same
  // journal emits byte-identical JSON, and the text names the winner.
  const Result<AdvisorReport> again = Advise(*bundle_, *records_, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(report->ToJson(), again->ToJson());
  EXPECT_NE(report->RenderText().find("recommended: federated"),
            std::string::npos);
  EXPECT_NE(report->ToJson().find("\"recommended\":\"federated\""),
            std::string::npos);
}

TEST_F(AdvisorTest, AdvisorRouteServesTheReportJson) {
  ShadowConfig base;
  base.name = "base";
  AdvisorOptions options;
  options.grid = {base};
  options.twin_check = false;
  Result<AdvisorReport> advised = Advise(*bundle_, *records_, options);
  ASSERT_TRUE(advised.ok());
  auto report =
      std::make_shared<const AdvisorReport>(std::move(advised.value()));

  obs::MetricsRegistry metrics;
  obs::HttpExpositionServer server(&metrics, nullptr);
  RegisterAdvisorRoute(&server, report);
  ASSERT_TRUE(server.Start().ok());
  const std::string body = HttpGetBody(server.port(), "/advisor");
  EXPECT_EQ(body, report->ToJson());
  server.Stop();
}

}  // namespace
}  // namespace payless::advisor
