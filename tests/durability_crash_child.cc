// Child process for the hard-kill recovery harness.
//
// Runs the shared durability fixture's query mix with a HARD crash plan
// armed: at the requested pipeline point the durability manager _Exit(42)s
// the process — no destructors, no flushes — leaving on disk exactly what
// a kill -9 at that instant would. The parent test (see
// durability_recovery_test.cc) checks the exit code, inspects the surviving
// bytes, recovers a fresh client from them and verifies the warm restart is
// billing-correct.
//
// Usage: durability_crash_child <dir> <crash_point> <after_hits> [dump_path]
// `dump_path` arms the flight recorder's crash dump: the _Exit path then
// writes the last-moments ring there for the parent to inspect.
// Exits 42 when the armed crash fired, 1 when the run completed without
// crashing (a harness bug), 2 on bad arguments.
#include <cstdlib>
#include <iostream>
#include <string>

#include "durability_fixture.h"
#include "market/fault_injector.h"

int main(int argc, char** argv) {
  if (argc != 4 && argc != 5) {
    std::cerr << "usage: " << argv[0]
              << " <dir> <crash_point> <after_hits> [dump_path]\n";
    return 2;
  }
  const std::string dir = argv[1];
  const int point = std::atoi(argv[2]);
  const int after_hits = std::atoi(argv[3]);

  payless::exec::DurabilityFixture fixture;
  payless::market::FaultInjector injector(payless::market::FaultProfile{});
  payless::market::CrashPlan plan;
  plan.point = static_cast<payless::market::CrashPoint>(point);
  plan.after_hits = after_hits;
  plan.hard = true;
  injector.ArmCrash(plan);

  payless::exec::PayLessConfig config;
  config.durability.dir = dir;
  config.durability.snapshot_every_records = 0;
  config.durability.crash_injector = &injector;
  if (argc == 5) config.flight_recorder_dump_path = argv[4];
  auto client = fixture.NewClient(config);
  (void)payless::exec::DurabilityFixture::RunMix(client.get());

  // Reaching here means the armed crash never fired.
  std::cerr << "crash point " << point << " never fired\n";
  return 1;
}
