// Seeded 16-thread stress of the sharded lock-free read structures: the
// semantic store's COW table cells and the stats registry's estimator
// cells. Writers harvest disjoint slabs (and fire feedback) across enough
// tables to land in every shard of the cell maps; readers hammer the
// zero-lock probe paths concurrently. Invariants checked after the dust
// settles:
//   - probe accounting balances exactly (hits + misses == probes);
//   - no slab is lost: every Store call is a view, every unique row is
//     pooled, every region stored is covered;
//   - eviction (Clear) under way never corrupts a later quiescent state.
// Run under the TSan preset, this is the data-race canary for the whole
// snapshot-publication protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "semstore/semantic_store.h"
#include "stats/estimator.h"

namespace payless::semstore {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

constexpr int64_t kWeak = std::numeric_limits<int64_t>::min();
constexpr int kNumTables = 64;   // spread across all cell-map shards
constexpr int kNumThreads = 16;  // half writers, half readers
constexpr int64_t kKeys = 256;   // K domain; each slab covers 4 keys

/// Deterministic per-thread sequence (splitmix64): the schedule is seeded,
/// only the interleaving varies run to run.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class ShardStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    for (int t = 0; t < kNumTables; ++t) {
      TableDef def;
      def.name = TableName(t);
      def.dataset = "D";
      def.columns = {
          ColumnDef::Free("K", ValueType::kInt64,
                          AttrDomain::Numeric(1, kKeys)),
          ColumnDef::Free("D", ValueType::kInt64, AttrDomain::Numeric(1, 8)),
          ColumnDef::Output("V", ValueType::kDouble)};
      def.cardinality = kKeys * 8;
      ASSERT_TRUE(cat_.RegisterTable(def).ok());
    }
  }

  static std::string TableName(int t) {
    return "T" + std::to_string(t);
  }

  const TableDef& def(int t) const { return *cat_.FindTable(TableName(t)); }

  /// Slab s of a table: keys [s*4+1, s*4+4], all dates. 64 disjoint slabs.
  static Box SlabRegion(int64_t s) {
    return Box({Interval(s * 4 + 1, s * 4 + 4), Interval(1, 8)});
  }

  static std::vector<Row> SlabRows(int64_t s) {
    std::vector<Row> rows;
    for (int64_t k = s * 4 + 1; k <= s * 4 + 4; ++k) {
      for (int64_t d = 1; d <= 8; ++d) {
        rows.push_back(
            Row{Value(k), Value(d), Value(static_cast<double>(k * 10 + d))});
      }
    }
    return rows;
  }

  catalog::Catalog cat_;
  SemanticStore store_;
};

TEST_F(ShardStressTest, ConcurrentStoreAndProbeAcrossShards) {
  constexpr int kSlabsPerTable = 16;  // 64 keys' worth per table
  std::atomic<int64_t> stores{0};

  std::vector<std::thread> threads;
  threads.reserve(kNumThreads);
  for (int w = 0; w < kNumThreads / 2; ++w) {
    threads.emplace_back([&, w] {
      // Writer w harvests slab s into every table where s % writers == w:
      // all writers touch all shards, no slab is stored twice.
      for (int t = 0; t < kNumTables; ++t) {
        for (int64_t s = w; s < kSlabsPerTable; s += kNumThreads / 2) {
          store_.Store(def(t), SlabRegion(s), SlabRows(s), /*epoch=*/s);
          stores.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < kNumThreads / 2; ++r) {
    threads.emplace_back([&, r] {
      uint64_t rng = 0x5eed0000 + static_cast<uint64_t>(r);
      for (int i = 0; i < 2000; ++i) {
        rng = Mix(rng);
        const int t = static_cast<int>(rng % kNumTables);
        const int64_t s = static_cast<int64_t>((rng >> 8) % kSlabsPerTable);
        // Mixed probe kinds on the lock-free paths; results depend on the
        // interleaving, only the accounting identity is asserted later.
        if (i % 2 == 0) {
          (void)store_.Covers(def(t), SlabRegion(s), kWeak);
        } else {
          const std::vector<Row> rows =
              store_.RowsInRegion(def(t), SlabRegion(s), kWeak);
          // A slab is all-or-nothing: stores are atomic snapshot swaps.
          EXPECT_TRUE(rows.empty() || rows.size() == 32u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Probe accounting balances exactly.
  EXPECT_EQ(store_.TotalHits() + store_.TotalMisses(), store_.TotalProbes());

  // No lost slabs: every Store surfaced as a view, every unique row pooled,
  // every region covered.
  EXPECT_EQ(stores.load(), kNumTables * kSlabsPerTable);
  EXPECT_EQ(store_.TotalViews(),
            static_cast<size_t>(kNumTables * kSlabsPerTable));
  EXPECT_EQ(store_.TotalStoredRows(),
            static_cast<size_t>(kNumTables * kSlabsPerTable * 32));
  for (int t = 0; t < kNumTables; ++t) {
    EXPECT_EQ(store_.NumViews(TableName(t)),
              static_cast<size_t>(kSlabsPerTable));
    for (int64_t s = 0; s < kSlabsPerTable; ++s) {
      EXPECT_TRUE(store_.Covers(def(t), SlabRegion(s), kWeak));
      EXPECT_EQ(store_.RowsInRegion(def(t), SlabRegion(s), kWeak).size(),
                32u);
    }
  }
}

TEST_F(ShardStressTest, DuplicateHarvestsPoolOnce) {
  // Every writer stores the SAME slabs: views accumulate (append-only) but
  // the deduplicated row pool must not — regardless of interleaving.
  std::vector<std::thread> threads;
  for (int w = 0; w < kNumThreads; ++w) {
    threads.emplace_back([&] {
      for (int t = 0; t < 8; ++t) {
        for (int64_t s = 0; s < 4; ++s) {
          store_.Store(def(t), SlabRegion(s), SlabRows(s), /*epoch=*/0);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(store_.TotalViews(), static_cast<size_t>(kNumThreads * 8 * 4));
  // Views are append-only (raw rows accumulate); the deduplicated pool
  // must hold each tuple exactly once.
  size_t pooled = 0;
  for (const StoreTableStats& stats : store_.SnapshotStats()) {
    pooled += stats.pooled_rows;
  }
  EXPECT_EQ(pooled, static_cast<size_t>(8 * 4 * 32));
  for (int t = 0; t < 8; ++t) {
    for (int64_t s = 0; s < 4; ++s) {
      EXPECT_EQ(store_.RowsInRegion(def(t), SlabRegion(s), kWeak).size(),
                32u);
    }
  }
}

TEST_F(ShardStressTest, EvictionUnderConcurrentHarvest) {
  // Clear racing Store must neither crash, corrupt a snapshot, nor break
  // the accounting identity; afterwards a quiescent re-harvest fully
  // restores coverage.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kNumThreads - 1; ++w) {
    threads.emplace_back([&, w] {
      uint64_t rng = 0xc1ea7 + static_cast<uint64_t>(w);
      for (int i = 0; i < 400; ++i) {
        rng = Mix(rng);
        const int t = static_cast<int>(rng % kNumTables);
        const int64_t s = static_cast<int64_t>((rng >> 8) % 16);
        store_.Store(def(t), SlabRegion(s), SlabRows(s), /*epoch=*/0);
        (void)store_.Covers(def(t), SlabRegion(s), kWeak);
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store_.Clear();
      std::this_thread::yield();
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(store_.TotalHits() + store_.TotalMisses(), store_.TotalProbes());

  store_.Clear();
  EXPECT_EQ(store_.TotalViews(), 0u);
  for (int64_t s = 0; s < 16; ++s) {
    store_.Store(def(0), SlabRegion(s), SlabRows(s), /*epoch=*/0);
  }
  EXPECT_EQ(store_.NumViews(TableName(0)), 16u);
  EXPECT_EQ(store_.TotalStoredRows(), static_cast<size_t>(16 * 32));
  for (int64_t s = 0; s < 16; ++s) {
    EXPECT_TRUE(store_.Covers(def(0), SlabRegion(s), kWeak));
  }
}

TEST_F(ShardStressTest, ConcurrentFeedbackAndEstimates) {
  stats::StatsRegistry stats(stats::StatsKind::kFeedbackHistogram);
  for (int t = 0; t < kNumTables; ++t) stats.RegisterTable(def(t));

  std::atomic<int64_t> feedbacks{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kNumThreads / 2; ++w) {
    threads.emplace_back([&, w] {
      for (int t = 0; t < kNumTables; ++t) {
        for (int64_t s = w; s < 16; s += kNumThreads / 2) {
          stats.Feedback(TableName(t), SlabRegion(s), /*actual_rows=*/32);
          feedbacks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < kNumThreads / 2; ++r) {
    threads.emplace_back([&, r] {
      uint64_t rng = 0xe571 + static_cast<uint64_t>(r);
      for (int i = 0; i < 4000; ++i) {
        rng = Mix(rng);
        const int t = static_cast<int>(rng % kNumTables);
        const int64_t s = static_cast<int64_t>((rng >> 8) % 16);
        const double est = stats.EstimateRows(TableName(t), SlabRegion(s));
        // Estimates from a half-warm histogram vary; they must never be
        // negative, NaN, or read torn state (TSan enforces the latter).
        EXPECT_GE(est, 0.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(static_cast<int64_t>(stats.TotalFeedbacks()), feedbacks.load());
  // Fully fed back: every slab's estimate is exact.
  for (int t = 0; t < kNumTables; ++t) {
    for (int64_t s = 0; s < 16; ++s) {
      EXPECT_NEAR(stats.EstimateRows(TableName(t), SlabRegion(s)), 32.0,
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace payless::semstore
