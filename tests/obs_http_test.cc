// The embedded HTTP exposition server, exercised over real loopback
// sockets: /metrics serves valid Prometheus text and /ledger valid JSON
// while eight client threads are running queries; /explain renders plans
// for URL-encoded SQL without spending; unknown paths, bad methods and
// malformed requests answer clean HTTP errors.
#include "obs/http_exposition.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"
#include "market/data_market.h"
#include "obs/observability.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// A minimal HTTP/1.1 client: one request, read to EOF (the server closes
/// after each response). `raw` overrides the request line verbatim.
HttpReply Fetch(uint16_t port, const std::string& target,
                const std::string& raw = "") {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return reply;
  }
  const std::string request =
      raw.empty() ? "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n"
                  : raw;
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) return reply;
  std::istringstream status_line(response.substr(0, line_end));
  std::string http;
  status_line >> http >> reply.status;
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  const std::string headers = response.substr(0, header_end);
  const size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    reply.content_type =
        headers.substr(ct + 14, headers.find("\r\n", ct) - ct - 14);
  }
  reply.body = response.substr(header_end + 4);
  return reply;
}

/// Prometheus text format: every line is a comment (# HELP / # TYPE) or
/// `name[{labels}] value` with a numeric value.
void ExpectValidPrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value in: " << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric value in: " << line;
  }
}

TEST(UrlDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("SELECT+%2A+FROM%20T"), "SELECT * FROM T");
  EXPECT_EQ(UrlDecode("a%3D%27x%27"), "a='x'");
  // Bad escapes pass through verbatim instead of corrupting the query.
  EXPECT_EQ(UrlDecode("100%"), "100%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

class HttpExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"EHR", 1.0, 100}).ok());
    TableDef pollution;
    pollution.name = "Pollution";
    pollution.dataset = "EHR";
    pollution.columns = {
        ColumnDef::Free("Rank", ValueType::kInt64,
                        AttrDomain::Numeric(1, 2000)),
        ColumnDef::Output("Score", ValueType::kDouble)};
    pollution.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(pollution).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 2000; ++rank) {
      rows.push_back(Row{Value(rank), Value(static_cast<double>(rank) / 10)});
    }
    ASSERT_TRUE(market_->HostTable("Pollution", std::move(rows)).ok());
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(HttpExpositionTest, ServesMetricsAndLedgerUnderConcurrentQueries) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);

  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  server.SetExplainHandler([&client](const std::string& sql) {
    return client.ExplainText(sql);
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  // Eight query threads spend against the market while the admin port is
  // being scraped — the acceptance scenario for the live endpoint.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const int64_t lo = 1 + ((t * kQueriesPerThread + i) * 97) % 1500;
        if (!client
                 .Query("SELECT * FROM Pollution WHERE Rank >= ? AND "
                        "Rank <= ?",
                        {Value(lo), Value(lo + 99)})
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }

  int metrics_ok = 0;
  int ledger_ok = 0;
  for (int i = 0; i < 20; ++i) {
    const HttpReply metrics = Fetch(server.port(), "/metrics");
    if (metrics.status == 200) {
      ++metrics_ok;
      EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
      ExpectValidPrometheusText(metrics.body);
      EXPECT_NE(metrics.body.find("payless_queries_total"),
                std::string::npos);
    }
    const HttpReply ledger = Fetch(server.port(), "/ledger");
    if (ledger.status == 200) {
      ++ledger_ok;
      EXPECT_NE(ledger.content_type.find("application/json"),
                std::string::npos);
      EXPECT_EQ(ledger.body.front(), '{');
    }
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(metrics_ok, 20);
  EXPECT_EQ(ledger_ok, 20);

  // After the storm: the scrape reflects the spend the queries caused.
  const HttpReply after = Fetch(server.port(), "/metrics");
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("payless_transactions_total"),
            std::string::npos);
  const HttpReply ledger_after = Fetch(server.port(), "/ledger");
  ASSERT_EQ(ledger_after.status, 200);
  EXPECT_NE(ledger_after.body.find("EHR"), std::string::npos);

  const HttpReply json = Fetch(server.port(), "/metrics.json");
  ASSERT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("payless_queries_total"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST_F(HttpExpositionTest, ExplainEndpointRendersWithoutSpending) {
  Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);

  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  server.SetExplainHandler([&client](const std::string& sql) {
    return client.ExplainText(sql);
  });
  ASSERT_TRUE(server.Start().ok());

  const HttpReply ok = Fetch(
      server.port(),
      "/explain?q=SELECT+%2A+FROM+Pollution+WHERE+Rank+%3E%3D+1+AND+"
      "Rank+%3C%3D+50");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("Plan[cost="), std::string::npos) << ok.body;
  EXPECT_EQ(client.meter().total_transactions(), 0);

  // Malformed SQL is a client error, not a crash or a 500.
  const HttpReply bad = Fetch(server.port(), "/explain?q=SELEC+nope");
  EXPECT_EQ(bad.status, 400);
  const HttpReply missing = Fetch(server.port(), "/explain?other=1");
  EXPECT_EQ(missing.status, 400);
}

TEST_F(HttpExpositionTest, ErrorPathsAnswerCleanHttp) {
  Observability obs;
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(Fetch(server.port(), "/nope").status, 404);
  // No handler installed: /explain is 404, not a null-deref.
  EXPECT_EQ(Fetch(server.port(), "/explain?q=SELECT").status, 404);
  const HttpReply post =
      Fetch(server.port(), "/",
            "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(post.status, 405);
  const HttpReply garbage =
      Fetch(server.port(), "/", "garbage-without-spaces\r\n\r\n");
  EXPECT_EQ(garbage.status, 400);

  // Starting twice is refused; a second server gets its own port.
  EXPECT_FALSE(server.Start().ok());
  HttpExpositionServer other(&obs.metrics, &obs.ledger);
  ASSERT_TRUE(other.Start().ok());
  EXPECT_NE(other.port(), server.port());
}

TEST_F(HttpExpositionTest, NullRegistriesAnswer404) {
  HttpExpositionServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Fetch(server.port(), "/metrics").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/metrics.json").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/ledger").status, 404);
  // Optional routes not wired: 404, not a crash.
  EXPECT_EQ(Fetch(server.port(), "/savings").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/store").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/timeseries").status, 404);
}

TEST_F(HttpExpositionTest, ContentTypesMatchEachRoute) {
  Observability obs;
  TimeSeriesSampler sampler(&obs.metrics, {1'000'000, 8});
  obs.metrics.GetCounter("payless_queries_total")->Add(1);
  sampler.SampleOnce();
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  server.SetSavingsLedger(&obs.savings);
  server.SetStoreStatsProvider([] { return std::string("{\"tables\":[]}"); });
  server.SetTimeSeriesSampler(&sampler);
  ASSERT_TRUE(server.Start().ok());

  const auto expect_type = [&](const std::string& target,
                               const std::string& type) {
    const HttpReply reply = Fetch(server.port(), target);
    EXPECT_EQ(reply.status, 200) << target;
    EXPECT_NE(reply.content_type.find(type), std::string::npos)
        << target << " served " << reply.content_type;
  };
  expect_type("/metrics", "text/plain");
  expect_type("/metrics.json", "application/json");
  expect_type("/ledger", "application/json");
  expect_type("/savings", "application/json");
  expect_type("/store", "application/json");
  expect_type("/timeseries", "application/json");
  expect_type("/timeseries?name=payless_queries_total", "application/json");
  expect_type("/dashboard", "text/html");
  // Errors are plain text.
  const HttpReply nope = Fetch(server.port(), "/nope");
  EXPECT_EQ(nope.status, 404);
  EXPECT_NE(nope.content_type.find("text/plain"), std::string::npos);
}

TEST_F(HttpExpositionTest, HeadAnswersHeadersWithGetContentLength) {
  Observability obs;
  obs.metrics.GetCounter("payless_queries_total")->Add(1);
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  ASSERT_TRUE(server.Start().ok());

  const HttpReply get = Fetch(server.port(), "/metrics");
  ASSERT_EQ(get.status, 200);
  ASSERT_FALSE(get.body.empty());

  const HttpReply head = Fetch(server.port(), "/",
                               "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty()) << "HEAD must not carry a body";
  // HEAD on an unknown path mirrors the GET status.
  const HttpReply head404 = Fetch(server.port(), "/",
                                  "HEAD /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(head404.status, 404);
  EXPECT_TRUE(head404.body.empty());
}

TEST_F(HttpExpositionTest, OversizedRequestLinesAnswer414) {
  Observability obs;
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  ASSERT_TRUE(server.Start().ok());

  // Request line longer than the 4 KiB cap (but with a CRLF in reach).
  const std::string long_line =
      "GET /metrics?pad=" + std::string(5000, 'x') +
      " HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(Fetch(server.port(), "/", long_line).status, 414);

  // No CRLF within the 8 KiB read cap at all: still a clean 414, and the
  // accept thread keeps serving afterwards.
  EXPECT_EQ(Fetch(server.port(), "/", std::string(9000, 'a')).status, 414);
  EXPECT_EQ(Fetch(server.port(), "/metrics").status, 200);
}

TEST_F(HttpExpositionTest, TimeSeriesRouteValidatesItsQuery) {
  Observability obs;
  TimeSeriesSampler sampler(&obs.metrics, {1'000'000, 8});
  obs.metrics.GetCounter("payless_queries_total")->Add(2);
  sampler.SampleOnce();
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  server.SetTimeSeriesSampler(&sampler);
  ASSERT_TRUE(server.Start().ok());

  // No query: the index of known names.
  const HttpReply index = Fetch(server.port(), "/timeseries");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("payless_queries_total"), std::string::npos);
  // A known series: its samples.
  const HttpReply ok =
      Fetch(server.port(), "/timeseries?name=payless_queries_total");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"samples\":[2]"), std::string::npos) << ok.body;
  // Empty / oversized / unknown names: 4xx, never a crash.
  EXPECT_EQ(Fetch(server.port(), "/timeseries?name=").status, 400);
  EXPECT_EQ(Fetch(server.port(), "/timeseries?other=1").status, 400);
  EXPECT_EQ(Fetch(server.port(),
                  "/timeseries?name=" + std::string(300, 'a'))
                .status,
            400);
  EXPECT_EQ(Fetch(server.port(), "/timeseries?name=no_such").status, 404);
}

TEST_F(HttpExpositionTest, MalformedQueryStringsNeverCrashOrBlock) {
  Observability obs;
  TimeSeriesSampler sampler(&obs.metrics, {1'000'000, 8});
  sampler.SampleOnce();
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  client.RegisterIntrospection(&server, &sampler);
  ASSERT_TRUE(server.Start().ok());

  // Adversarial query strings on the parameterized routes: bad URL
  // encoding, stray separators, nul-ish escapes, nonsense SQL. Every
  // answer is a clean 4xx; none may wedge the accept thread.
  const std::vector<std::string> nasty = {
      "/explain?q=",
      "/explain?q=%",
      "/explain?q=%zz%%%",
      "/explain?q=SELECT%20%00%01",
      "/explain?=&&&=",
      "/explain?q=" + std::string(5000, 'Z'),
      "/timeseries?name=%",
      "/timeseries?name=%2",
      "/timeseries?name=&name=",
      "/timeseries?&&&",
      "/timeseries?name=%zz",
  };
  for (const std::string& target : nasty) {
    const HttpReply reply = Fetch(server.port(), target);
    EXPECT_GE(reply.status, 400) << target;
    EXPECT_LT(reply.status, 500) << target;
  }
  // The accept thread survived the ordeal.
  EXPECT_EQ(Fetch(server.port(), "/metrics").status, 200);
}

TEST_F(HttpExpositionTest, LatencyAndFlightRecorderRoutesServeJson) {
  Observability obs;
  TimeSeriesSampler sampler(&obs.metrics, {1'000'000, 8});
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  client.RegisterIntrospection(&server, &sampler);
  ASSERT_TRUE(server.Start().ok());

  // A query so both payloads have content: histograms record stages and
  // the flight recorder holds the query's entry.
  ASSERT_TRUE(client
                  .Query("SELECT * FROM Pollution WHERE Rank >= ? AND "
                         "Rank <= ?",
                         {Value(int64_t{1}), Value(int64_t{50})})
                  .ok());

  const HttpReply latency = Fetch(server.port(), "/latency");
  ASSERT_EQ(latency.status, 200);
  EXPECT_NE(latency.content_type.find("application/json"),
            std::string::npos);
  EXPECT_EQ(latency.body.front(), '{');
  EXPECT_EQ(latency.body.back(), '}');
  EXPECT_NE(latency.body.find("payless_latency_e2e_micros"),
            std::string::npos)
      << latency.body;
  EXPECT_NE(latency.body.find("\"p99\""), std::string::npos);

  const HttpReply recorder = Fetch(server.port(), "/flightrecorder");
  ASSERT_EQ(recorder.status, 200);
  EXPECT_NE(recorder.content_type.find("application/json"),
            std::string::npos);
  EXPECT_EQ(recorder.body.front(), '{');
  EXPECT_EQ(recorder.body.back(), '}');
  EXPECT_NE(recorder.body.find("\"kind\":\"query\""), std::string::npos)
      << recorder.body;
  EXPECT_NE(recorder.body.find("\"stages\":{"), std::string::npos);

  // HTTP hygiene: HEAD mirrors GET without a body; oversized request
  // lines answer 414; query-string noise never wedges the routes.
  for (const char* route : {"/latency", "/flightrecorder"}) {
    const HttpReply head =
        Fetch(server.port(), "/",
              "HEAD " + std::string(route) + " HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(head.status, 200) << route;
    EXPECT_TRUE(head.body.empty()) << route;
    const std::string long_line = "GET " + std::string(route) + "?pad=" +
                                  std::string(5000, 'x') +
                                  " HTTP/1.1\r\nHost: x\r\n\r\n";
    EXPECT_EQ(Fetch(server.port(), "/", long_line).status, 414) << route;
    for (const char* noise : {"?q=%zz%%%", "?=&&&=", "?name=%00"}) {
      const HttpReply fuzzed = Fetch(server.port(), route + std::string(noise));
      EXPECT_GE(fuzzed.status, 200) << route << noise;
      EXPECT_LT(fuzzed.status, 500) << route << noise;
    }
  }
  // The accept thread survived.
  EXPECT_EQ(Fetch(server.port(), "/latency").status, 200);
}

TEST_F(HttpExpositionTest, DashboardServesWiredPayloadsUnderLoad) {
  Observability obs;
  TimeSeriesSampler sampler(&obs.metrics, {1'000, 64});
  PayLessConfig config;
  config.observability = &obs;
  PayLess client(&cat_, market_.get(), config);
  HttpExpositionServer server(&obs.metrics, &obs.ledger);
  client.RegisterIntrospection(&server, &sampler);
  ASSERT_TRUE(server.Start().ok());
  sampler.Start();

  // Eight query threads spend while the dashboard and every payload route
  // it polls are fetched — the acceptance scenario for /dashboard.
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const int64_t lo = 1 + ((t * 8 + i) * 113) % 1600;
        if (!client
                 .Query("SELECT * FROM Pollution WHERE Rank >= ? AND "
                        "Rank <= ?",
                        {Value(lo), Value(lo + 79)})
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }

  for (int i = 0; i < 10; ++i) {
    const HttpReply page = Fetch(server.port(), "/dashboard");
    ASSERT_EQ(page.status, 200);
    EXPECT_NE(page.content_type.find("text/html"), std::string::npos);
    // Self-contained: one document, inline script, no external fetches.
    EXPECT_NE(page.body.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(page.body.find("</html>"), std::string::npos);
    EXPECT_NE(page.body.find("<script>"), std::string::npos);
    EXPECT_EQ(page.body.find("http://"), std::string::npos);
    EXPECT_EQ(page.body.find("https://"), std::string::npos);
    // The payload routes the inline JS polls are all wired and well-formed.
    for (const char* target :
         {"/metrics.json", "/savings", "/store", "/timeseries"}) {
      const HttpReply payload = Fetch(server.port(), target);
      ASSERT_EQ(payload.status, 200) << target;
      ASSERT_FALSE(payload.body.empty()) << target;
      EXPECT_EQ(payload.body.front(), '{') << target;
      EXPECT_EQ(payload.body.back(), '}') << target;
    }
  }
  for (std::thread& w : workers) w.join();
  sampler.Stop();
  EXPECT_EQ(failures.load(), 0);

  // After the storm, the store and savings payloads reflect the activity.
  const HttpReply store = Fetch(server.port(), "/store");
  EXPECT_NE(store.body.find("Pollution"), std::string::npos) << store.body;
  const HttpReply savings = Fetch(server.port(), "/savings");
  EXPECT_NE(savings.body.find("counterfactual"), std::string::npos)
      << savings.body;
  EXPECT_TRUE(obs.savings.Reconciles());
}

}  // namespace
}  // namespace payless::obs
