// Concurrent query serving: N client threads against one PayLess must
// produce exactly the rows, billing totals and store contents of serial
// execution. The fixture's per-thread query footprints are pairwise
// disjoint (distinct station ranges), so every billed transaction is
// attributable to exactly one thread and the serial baseline is the
// ground truth for totals, not just a bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

constexpr int kNumStations = 64;
constexpr int kNumDates = 10;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small pages (5 tuples/transaction) keep billing non-trivial.
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());

    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        // Bound binding pattern (Fig. 4): point probes only. Forces the
        // bind-join path and keeps per-thread footprints disjoint at the
        // call level — a free StationID would admit whole-domain plain
        // calls whose SQR remainder sees every thread's coverage, making
        // billed totals depend on the interleaving.
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kNumStations * kNumDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations))};
    citymap.cardinality = kNumStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());

    city_rows_.clear();
    for (int64_t i = 1; i <= kNumStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("CityMap", city_rows_).ok());
    return client;
  }

  // A bind join: the CityId range binds StationID values, each of which
  // becomes one point call against Weather.
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= ?";

  static std::vector<Row> SortedRows(const storage::Table& table) {
    std::vector<Row> rows = table.rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

// Parallel per-binding-value dispatch must be bit-identical to serial:
// same rows in the same order, same per-query spend, same meter totals,
// same store contents.
TEST_F(ConcurrencyStressTest, ParallelBindJoinMatchesSerialExactly) {
  PayLessConfig serial_config;
  serial_config.max_parallel_calls = 1;
  PayLessConfig parallel_config;
  parallel_config.max_parallel_calls = 8;

  auto serial = NewClient(serial_config);
  auto parallel = NewClient(parallel_config);

  const std::vector<std::vector<Value>> param_sets = {
      {Value(int64_t{1}), Value(int64_t{12}), Value(int64_t{kNumDates})},
      {Value(int64_t{5}), Value(int64_t{20}), Value(int64_t{7})},
      {Value(int64_t{1}), Value(int64_t{12}), Value(int64_t{kNumDates})},
      {Value(int64_t{40}), Value(int64_t{64}), Value(int64_t{3})},
  };
  for (const auto& params : param_sets) {
    Result<QueryReport> a = serial->QueryWithReport(kBindSql, params);
    Result<QueryReport> b = parallel->QueryWithReport(kBindSql, params);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    // Bit-identical: row order included, not just the multiset.
    EXPECT_EQ(a->result.rows(), b->result.rows());
    EXPECT_EQ(a->transactions_spent, b->transactions_spent);
    EXPECT_EQ(a->exec.calls, b->exec.calls);
    EXPECT_EQ(a->exec.rows_from_market, b->exec.rows_from_market);
    EXPECT_EQ(a->exec.rows_from_cache, b->exec.rows_from_cache);
  }
  EXPECT_EQ(serial->meter().total_transactions(),
            parallel->meter().total_transactions());
  EXPECT_EQ(serial->store().TotalStoredRows(),
            parallel->store().TotalStoredRows());
}

// N threads x M queries with pairwise-disjoint footprints against ONE
// shared PayLess: final billing totals, store row counts and every
// per-query result must match the serial baseline exactly.
TEST_F(ConcurrencyStressTest, DisjointThreadsMatchSerialBaseline) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 6;
  const int64_t span = kNumStations / kThreads;  // stations per thread

  // Each thread's query sequence walks sub-ranges of its own station span;
  // repeats exercise the semantic-store free-reuse path concurrently.
  const auto params_for = [&](int t, int q) -> std::vector<Value> {
    const int64_t lo = t * span + 1;
    const int64_t hi = lo + span - 1;
    switch (q % 3) {
      case 0:
        return {Value(lo), Value(hi), Value(int64_t{kNumDates})};
      case 1:
        return {Value(lo), Value((lo + hi) / 2), Value(int64_t{5})};
      default:
        return {Value(lo), Value(hi), Value(int64_t{kNumDates})};  // repeat
    }
  };

  // Serial baseline, thread-major order.
  auto baseline = NewClient();
  std::vector<std::vector<Row>> expected(kThreads * kQueriesPerThread);
  std::vector<int64_t> expected_spend(kThreads * kQueriesPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      Result<QueryReport> r =
          baseline->QueryWithReport(kBindSql, params_for(t, q));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected[t * kQueriesPerThread + q] = SortedRows(r->result);
      expected_spend[t * kQueriesPerThread + q] = r->transactions_spent;
    }
  }

  auto shared = NewClient();
  std::vector<std::vector<Row>> got(kThreads * kQueriesPerThread);
  std::vector<int64_t> got_spend(kThreads * kQueriesPerThread);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        Result<QueryReport> r =
            shared->QueryWithReport(kBindSql, params_for(t, q));
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        got[t * kQueriesPerThread + q] = SortedRows(r->result);
        got_spend[t * kQueriesPerThread + q] = r->transactions_spent;
      }
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads * kQueriesPerThread; ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
    EXPECT_EQ(got_spend[i], expected_spend[i]) << "query " << i;
  }
  EXPECT_EQ(shared->meter().total_transactions(),
            baseline->meter().total_transactions());
  EXPECT_EQ(shared->store().TotalStoredRows(),
            baseline->store().TotalStoredRows());
  EXPECT_EQ(shared->store().TotalViews(), baseline->store().TotalViews());

  // Store probe accounting stays exact under contention: every probe is
  // either a hit or a miss, and the bound registry counters agree with the
  // store's own atomics.
  const semstore::SemanticStore& store = shared->store();
  EXPECT_GT(store.TotalProbes(), 0);
  EXPECT_EQ(store.TotalHits() + store.TotalMisses(), store.TotalProbes());
  obs::MetricsRegistry& m = shared->observability()->metrics;
  EXPECT_EQ(m.GetCounter("payless_store_hits_total")->value(),
            store.TotalHits());
  EXPECT_EQ(m.GetCounter("payless_store_misses_total")->value(),
            store.TotalMisses());
}

// Threads with OVERLAPPING footprints: interleavings may legitimately
// shift who pays for shared regions, so billing is bounded, not exact —
// but every thread must still see exactly the correct rows.
TEST_F(ConcurrencyStressTest, OverlappingThreadsStayCorrect) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 4;

  // Reference results from a throwaway serial client.
  auto reference = NewClient();
  std::vector<std::vector<Row>> expected(kThreads);
  const auto params_for = [](int t) -> std::vector<Value> {
    // Ranges straddle each other: [1+2t, 17+2t] x dates [1, 10].
    return {Value(int64_t{1 + 2 * t}), Value(int64_t{17 + 2 * t}),
            Value(int64_t{kNumDates})};
  };
  for (int t = 0; t < kThreads; ++t) {
    Result<storage::Table> r = reference->Query(kBindSql, params_for(t));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected[t] = SortedRows(*r);
  }
  // Lower bound: a serial client pays every distinct station slab exactly
  // once (repeats are covered), and the shared client cannot pay less.
  const int64_t serial_once = reference->meter().total_transactions();
  // Upper bound: every query re-fetching its full footprint every round,
  // i.e. zero reuse ever.
  int64_t no_reuse_total = 0;
  for (int t = 0; t < kThreads; ++t) {
    auto standalone = NewClient();
    Result<QueryReport> r =
        standalone->QueryWithReport(kBindSql, params_for(t));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    no_reuse_total += r->transactions_spent;
  }

  auto shared = NewClient();
  std::atomic<int> mismatches{0};
  std::mutex diag_mutex;
  std::string diag;  // what the first failing thread actually saw
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        Result<storage::Table> r = shared->Query(kBindSql, params_for(t));
        if (!r.ok() || SortedRows(*r) != expected[t]) {
          std::lock_guard<std::mutex> lock(diag_mutex);
          if (diag.empty()) {
            diag = "thread " + std::to_string(t) + " round " +
                   std::to_string(round) +
                   (r.ok() ? ": got " + std::to_string(SortedRows(*r).size()) +
                                 " rows, want " +
                                 std::to_string(expected[t].size())
                           : ": " + r.status().ToString());
          }
          mismatches.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(mismatches.load(), 0) << diag;
  // Interleavings may double-fetch a slab that is in flight on another
  // thread (legitimate), so billing is bounded rather than exact: at least
  // one fetch per distinct slab, at most zero-reuse across all rounds.
  EXPECT_GE(shared->meter().total_transactions(), serial_once);
  EXPECT_LE(shared->meter().total_transactions(), kRounds * no_reuse_total);
}

// Disjoint threads under a seeded fault storm (transient drops, lost
// responses, rate limits, latency spikes): every query must still succeed
// after retries, rows and store contents must equal the fault-free serial
// baseline, and billing must equal the baseline PLUS exactly the
// post-evaluation losses the injector charged (surfaced as waste).
TEST_F(ConcurrencyStressTest, SeededChaosMatchesFaultFreeBaseline) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;
  const int64_t span = kNumStations / kThreads;

  const auto params_for = [&](int t, int q) -> std::vector<Value> {
    const int64_t lo = t * span + 1;
    const int64_t hi = lo + span - 1;
    switch (q % 3) {
      case 0:
        return {Value(lo), Value(hi), Value(int64_t{kNumDates})};
      case 1:
        return {Value(lo), Value((lo + hi) / 2), Value(int64_t{5})};
      default:
        return {Value(lo), Value(hi), Value(int64_t{kNumDates})};  // repeat
    }
  };

  auto baseline = NewClient();
  std::vector<std::vector<Row>> expected(kThreads * kQueriesPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      Result<QueryReport> r =
          baseline->QueryWithReport(kBindSql, params_for(t, q));
      ASSERT_TRUE(r.ok() && r->error.ok()) << r.status().ToString();
      expected[t * kQueriesPerThread + q] = SortedRows(r->result);
    }
  }

  PayLessConfig config;
  config.retry.max_attempts = 12;
  config.retry.initial_backoff_micros = 10;
  config.retry.max_backoff_micros = 100;
  auto chaos = NewClient(config);
  market::FaultProfile profile;
  profile.transient_rate = 0.05;
  profile.rate_limit_rate = 0.03;
  profile.lost_response_rate = 0.04;
  profile.latency_spike_rate = 0.02;
  profile.latency_spike_micros = 300;
  profile.retry_after_micros = 50;
  profile.seed = 20'260'806;
  market::FaultInjector injector(profile);
  chaos->connector()->SetFaultInjector(&injector);

  std::atomic<int> failures{0};
  std::vector<std::vector<Row>> got(kThreads * kQueriesPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        Result<QueryReport> r =
            chaos->QueryWithReport(kBindSql, params_for(t, q));
        if (!r.ok() || !r->error.ok()) {
          failures.fetch_add(1);
          return;
        }
        got[t * kQueriesPerThread + q] = SortedRows(r->result);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  chaos->connector()->SetFaultInjector(nullptr);

  ASSERT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads * kQueriesPerThread; ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
  const market::RetryStats stats = chaos->connector()->retry_stats();
  EXPECT_GT(stats.retries, 0) << "fault storm never fired — raise the rates";
  // Non-wasted spend is exactly the fault-free total: retries and rate
  // limits cost nothing, and every extra billed transaction is accounted
  // for as a post-evaluation loss.
  EXPECT_EQ(chaos->meter().total_transactions() - stats.wasted_transactions,
            baseline->meter().total_transactions());
  EXPECT_EQ(chaos->store().TotalStoredRows(),
            baseline->store().TotalStoredRows());
  EXPECT_EQ(chaos->store().TotalViews(), baseline->store().TotalViews());
}

}  // namespace
}  // namespace payless::exec
