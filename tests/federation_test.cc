// Federation tests: multi-market registry, buy-site-aware optimization,
// routed execution and slab placement.
//
// The invariants under test:
//   1. endpoint fault streams are sub-seeded deterministically from the
//      federation base seed + endpoint id (SplitMix64) — distinct per
//      endpoint, reproducible per (seed, id);
//   2. the optimizer prices every market access against each endpoint's
//      menu and the chosen buy-site is visible in EXPLAIN;
//   3. a cross-dataset query whose datasets are cheapest at DIFFERENT
//      endpoints beats every single-market plan — the edge is attributed
//      to the federation_routing savings cause and the savings ledger
//      still reconciles, with per-market actuals matching the cost
//      ledger and every endpoint's own billing meter;
//   4. the placement policy evicts the cheapest-to-re-buy slabs first
//      under a capacity budget, and the decision (not the pre-eviction
//      state) is what a durable restart recovers — re-reading evicted
//      data re-buys it, re-reading retained data stays free;
//   5. /markets serves the live federation state over HTTP.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"
#include "federation/market_endpoint.h"
#include "federation/placement.h"
#include "obs/http_exposition.h"
#include "obs/observability.h"
#include "workload/bundle.h"

namespace payless::federation {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

constexpr int64_t kKeys = 2000;

/// Two market datasets with OPPOSITE terms across two endpoints: "east"
/// sells ALPHA at half price on double pages, "west" does the same for
/// BETA. A query joining both therefore has no single cheapest market —
/// the federated plan must split its buys to win.
class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"ALPHA", 1.0, 5}).ok());
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"BETA", 1.0, 5}).ok());

    TableDef alpha;
    alpha.name = "Alpha";
    alpha.dataset = "ALPHA";
    alpha.columns = {ColumnDef::Free("Key", ValueType::kInt64,
                                     AttrDomain::Numeric(1, kKeys)),
                     ColumnDef::Output("Val", ValueType::kDouble)};
    alpha.cardinality = kKeys;
    ASSERT_TRUE(cat_.RegisterTable(alpha).ok());

    TableDef beta;
    beta.name = "Beta";
    beta.dataset = "BETA";
    beta.columns = {ColumnDef::Free("Key", ValueType::kInt64,
                                    AttrDomain::Numeric(1, kKeys)),
                    ColumnDef::Output("Cost", ValueType::kDouble)};
    beta.cardinality = kKeys;
    ASSERT_TRUE(cat_.RegisterTable(beta).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> alpha_rows, beta_rows;
    for (int64_t k = 1; k <= kKeys; ++k) {
      alpha_rows.push_back(Row{Value(k), Value(static_cast<double>(k) * 2.0)});
      beta_rows.push_back(Row{Value(k), Value(static_cast<double>(k) + 0.5)});
    }
    ASSERT_TRUE(market_->HostTable("Alpha", alpha_rows).ok());
    ASSERT_TRUE(market_->HostTable("Beta", beta_rows).ok());

    federation_ = std::make_unique<FederatedMarket>(&cat_, /*base_seed=*/42);
    EndpointConfig east;
    east.id = "east";
    east.menu["ALPHA"] = DatasetTerms{0.5, 10};  // discounted, bigger pages
    east.menu["BETA"] = DatasetTerms{1.0, 5};
    ASSERT_TRUE(federation_->AddEndpoint(east).ok());
    EndpointConfig west;
    west.id = "west";
    west.menu["ALPHA"] = DatasetTerms{1.0, 5};
    west.menu["BETA"] = DatasetTerms{1.0, 10};
    ASSERT_TRUE(federation_->AddEndpoint(west).ok());
    ASSERT_TRUE(federation_->HostTable("Alpha", std::move(alpha_rows)).ok());
    ASSERT_TRUE(federation_->HostTable("Beta", std::move(beta_rows)).ok());
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    config.federation = federation_.get();
    return std::make_unique<PayLess>(&cat_, market_.get(), config);
  }

  // Both tables plain-scanned (Key is Free: no bind join exists) and
  // joined locally — each access picks its own buy-site.
  static constexpr const char* kJoinSql =
      "SELECT Val, Cost FROM Alpha, Beta WHERE Alpha.Key = Beta.Key AND "
      "Alpha.Key >= ? AND Alpha.Key <= ? AND Beta.Key >= ? AND Beta.Key <= ?";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::unique_ptr<FederatedMarket> federation_;
};

TEST_F(FederationTest, SubSeedIsDeterministicAndPerEndpoint) {
  MarketEndpoint* east = federation_->endpoint("east");
  MarketEndpoint* west = federation_->endpoint("west");
  ASSERT_NE(east, nullptr);
  ASSERT_NE(west, nullptr);
  EXPECT_EQ(east->sub_seed(), FederatedMarket::SubSeed(42, "east"));
  EXPECT_EQ(west->sub_seed(), FederatedMarket::SubSeed(42, "west"));
  EXPECT_NE(east->sub_seed(), west->sub_seed());
  // A different base seed moves every endpoint's stream.
  EXPECT_NE(FederatedMarket::SubSeed(43, "east"),
            FederatedMarket::SubSeed(42, "east"));
  // Faults were not requested, so no injector is attached.
  EXPECT_EQ(east->injector(), nullptr);
}

TEST_F(FederationTest, DuplicateAndUnknownEndpointsAreRejected) {
  EndpointConfig dup;
  dup.id = "east";
  dup.menu["ALPHA"] = DatasetTerms{1.0, 5};
  EXPECT_FALSE(federation_->AddEndpoint(dup).ok());
  EndpointConfig unknown;
  unknown.id = "north";
  unknown.menu["GAMMA"] = DatasetTerms{1.0, 5};
  EXPECT_FALSE(federation_->AddEndpoint(unknown).ok());
}

TEST_F(FederationTest, ExplainRendersTheChosenBuySites) {
  auto client = NewClient();
  const auto text = client->ExplainText(
      kJoinSql, {Value(int64_t{1}), Value(kKeys), Value(int64_t{1}),
                 Value(kKeys)});
  ASSERT_TRUE(text.ok()) << text.status().message();
  EXPECT_NE(text->find("Alpha @east"), std::string::npos) << *text;
  EXPECT_NE(text->find("Beta @west"), std::string::npos) << *text;
}

TEST_F(FederationTest, FederatedPlanBeatsEverySingleMarketAndReconciles) {
  obs::Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  auto client = NewClient(config);

  const auto r = client->QueryWithReport(
      kJoinSql, {Value(int64_t{1}), Value(kKeys), Value(int64_t{1}),
                 Value(kKeys)});
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_TRUE(r->error.ok()) << r->error.message();
  EXPECT_EQ(r->result.rows().size(), static_cast<size_t>(kKeys));

  // ALPHA pages at 10 on east (200 base pages -> 100), BETA pages at 10 on
  // west: the split plan spends 200 transactions where the best single
  // market bills 300.
  EXPECT_GT(r->savings_transactions, 0);
  EXPECT_TRUE(obs.savings.Reconciles());
  EXPECT_GT(obs.savings.total_by_cause(obs::SavingsCause::kFederationRouting),
            0);

  // Billing closes end to end: savings "actual" == cost ledger == the sum
  // of both endpoints' own meters, and both endpoints were actually paid.
  auto* router = client->router();
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  EXPECT_EQ(obs.ledger.total_transactions(),
            router->TotalMeteredTransactions());
  int64_t east_txn = 0, west_txn = 0;
  for (size_t i = 0; i < federation_->num_endpoints(); ++i) {
    const int64_t txn = router->connector(i)->meter().total_transactions();
    if (router->endpoint_id(i) == "east") east_txn = txn;
    if (router->endpoint_id(i) == "west") west_txn = txn;
  }
  EXPECT_GT(east_txn, 0);
  EXPECT_GT(west_txn, 0);

  // Per-market actuals in the savings cells split exactly along the
  // endpoint meters.
  int64_t cell_east = 0, cell_west = 0;
  for (const auto& [dataset, cell] : obs.savings.TenantByDataset("default")) {
    for (const auto& [site, txn] : cell.actual_by_market) {
      if (site == "east") cell_east += txn;
      if (site == "west") cell_west += txn;
    }
  }
  EXPECT_EQ(cell_east, east_txn);
  EXPECT_EQ(cell_west, west_txn);
}

TEST_F(FederationTest, RouterRoutesCheapestAndTracksPerEndpointCalls) {
  auto client = NewClient();
  auto* router = client->router();
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(router->NextCheapestLive("ALPHA", {}), "east");
  EXPECT_EQ(router->NextCheapestLive("ALPHA", {"east"}), "west");
  EXPECT_EQ(router->NextCheapestLive("BETA", {}), "west");
  EXPECT_EQ(router->NextCheapestLive("BETA", {"east", "west"}), "");

  const auto r = client->Query(
      kJoinSql, {Value(int64_t{1}), Value(int64_t{200}), Value(int64_t{1}),
                 Value(int64_t{200})});
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_GT(router->routed_calls(0), 0);  // east bought ALPHA
  EXPECT_GT(router->routed_calls(1), 0);  // west bought BETA
  EXPECT_EQ(router->failovers(), 0);      // nothing failed
}

TEST_F(FederationTest, PlacementEvictsCheapestRebuyDensityFirst) {
  // Learn the two tables' footprints with an unbounded client first.
  int64_t alpha_bytes = 0, beta_bytes = 0;
  {
    auto probe = NewClient();
    ASSERT_TRUE(probe
                    ->Query(kJoinSql, {Value(int64_t{1}), Value(kKeys),
                                       Value(int64_t{1}), Value(kKeys)})
                    .ok());
    for (const auto& t : probe->store().SnapshotStats()) {
      if (t.table == "Alpha") alpha_bytes = t.approx_bytes;
      if (t.table == "Beta") beta_bytes = t.approx_bytes;
    }
    ASSERT_GT(alpha_bytes, 0);
    ASSERT_GT(beta_bytes, 0);
  }

  // Budget fits one table but not both. Alpha re-buys at half price on
  // east, so it is the lower re-buy-density slab and must go first.
  PayLessConfig config;
  config.placement_capacity_bytes = std::max(alpha_bytes, beta_bytes) +
                                    std::min(alpha_bytes, beta_bytes) / 2;
  auto client = NewClient(config);
  ASSERT_TRUE(client
                  ->Query(kJoinSql, {Value(int64_t{1}), Value(kKeys),
                                     Value(int64_t{1}), Value(kKeys)})
                  .ok());
  auto* placement = client->placement();
  ASSERT_NE(placement, nullptr);
  placement->Tick();
  EXPECT_EQ(placement->evicted_tables(), 1);

  // The dropped table's cell survives but holds nothing reusable.
  for (const auto& t : client->store().SnapshotStats()) {
    if (t.table == "Alpha") {
      EXPECT_EQ(t.pooled_rows, 0u);
      EXPECT_EQ(t.views, 0u);
    }
    if (t.table == "Beta") {
      EXPECT_GT(t.pooled_rows, 0u);
    }
  }
  const auto decision = placement->LastDecision();
  for (const auto& t : decision) {
    if (t.table == "Alpha") {
      EXPECT_FALSE(t.retained);
    }
    if (t.table == "Beta") {
      EXPECT_TRUE(t.retained);
    }
  }
}

TEST_F(FederationTest, PlacementDecisionSurvivesRestartBillingCorrect) {
  char tmpl[] = "/tmp/payless_fed_place_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  PayLessConfig config;
  config.durability.dir = dir;
  config.placement_capacity_bytes = 1;  // evict every market slab
  {
    auto client = NewClient(config);
    ASSERT_TRUE(client
                    ->Query(kJoinSql, {Value(int64_t{1}), Value(kKeys),
                                       Value(int64_t{1}), Value(kKeys)})
                    .ok());
    client->placement()->Tick();
    EXPECT_EQ(client->placement()->evicted_tables(), 2);
    for (const auto& t : client->store().SnapshotStats()) {
      EXPECT_EQ(t.pooled_rows, 0u) << t.table;
    }
  }

  // The restart recovers the POST-eviction store: nothing to reuse, so a
  // re-read re-buys (no phantom free rows), and billing starts from zero
  // on this client's meters.
  auto restarted = NewClient(config);
  for (const auto& t : restarted->store().SnapshotStats()) {
    EXPECT_EQ(t.pooled_rows, 0u) << t.table;
  }
  const auto r = restarted->QueryWithReport(
      kJoinSql, {Value(int64_t{1}), Value(int64_t{500}), Value(int64_t{1}),
                 Value(int64_t{500})});
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_TRUE(r->error.ok()) << r->error.message();
  EXPECT_GT(r->transactions_spent, 0);
  EXPECT_EQ(restarted->router()->TotalMeteredTransactions(),
            r->transactions_spent);

  // Re-reading the (now re-bought and retained-in-memory) slabs is free.
  const auto again = restarted->QueryWithReport(
      kJoinSql, {Value(int64_t{1}), Value(int64_t{500}), Value(int64_t{1}),
                 Value(int64_t{500})});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->transactions_spent, 0);
  std::remove((dir + "/harvest.wal").c_str());
  std::remove((dir + "/store.snap").c_str());
  ::rmdir(dir.c_str());
}

/// Minimal loopback GET (the server closes after each reply).
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(FederationTest, MarketsRouteServesFederationStateOverHttp) {
  obs::Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.placement_capacity_bytes = 1 << 30;  // observe-and-report mode
  auto client = NewClient(config);
  ASSERT_TRUE(client
                  ->Query(kJoinSql, {Value(int64_t{1}), Value(int64_t{300}),
                                     Value(int64_t{1}), Value(int64_t{300})})
                  .ok());

  obs::HttpExpositionServer server(&obs.metrics, &obs.ledger);
  client->RegisterIntrospection(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = HttpGet(server.port(), "/markets");
  ASSERT_FALSE(reply.empty());
  EXPECT_NE(reply.find("200"), std::string::npos);
  EXPECT_NE(reply.find("\"federated\":true"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"east\""), std::string::npos);
  EXPECT_NE(reply.find("\"west\""), std::string::npos);
  EXPECT_NE(reply.find("\"failovers\""), std::string::npos);
  EXPECT_NE(reply.find("\"placement\""), std::string::npos);
  server.Stop();
}

TEST(FederatedBundleTest, WorkloadHelperBuildsARunnableFederation) {
  workload::RealDataOptions options;
  auto bundle = workload::MakeRealBundle(options, /*per_template=*/1,
                                         /*query_seed=*/7);
  std::vector<workload::FederatedEndpointSpec> specs(2);
  specs[0].id = "east";
  specs[1].id = "west";
  auto federation = workload::MakeFederatedMarket(*bundle, specs, 42);
  EXPECT_EQ(federation->num_endpoints(), 2u);

  obs::Observability obs;
  PayLessConfig config = workload::PayLessFullConfig();
  config.observability = &obs;
  auto client =
      workload::NewFederatedPayLessClient(*bundle, federation.get(), config);
  for (const auto& q : bundle->queries) {
    const auto r = client->QueryWithReport(q.sql, q.params);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_TRUE(r->error.ok()) << r->error.message();
  }
  EXPECT_TRUE(obs.savings.Reconciles());
  EXPECT_EQ(obs.savings.total_actual(), obs.ledger.total_transactions());
  EXPECT_EQ(obs.ledger.total_transactions(),
            client->router()->TotalMeteredTransactions());
}

}  // namespace
}  // namespace payless::federation
