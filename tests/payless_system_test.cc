// The PayLess facade: end-to-end behaviour of the full system object —
// learning across queries, consistency levels, reports, error paths.
#include "exec/payless.h"

#include <gtest/gtest.h>

#include "exec/download_all.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class PayLessSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"EHR", 1.0, 100}).ok());
    TableDef pollution;
    pollution.name = "Pollution";
    pollution.dataset = "EHR";
    pollution.columns = {
        ColumnDef::Free("ZipCode", ValueType::kInt64,
                        AttrDomain::Numeric(10000, 10199)),
        ColumnDef::Free("Rank", ValueType::kInt64,
                        AttrDomain::Numeric(1, 2000)),
        ColumnDef::Output("Score", ValueType::kDouble)};
    pollution.cardinality = 2000;
    ASSERT_TRUE(cat_.RegisterTable(pollution).ok());

    TableDef zipmap;
    zipmap.name = "ZipMap";
    zipmap.is_local = true;
    zipmap.columns = {
        ColumnDef::Free("ZipCode", ValueType::kInt64,
                        AttrDomain::Numeric(10000, 10199)),
        ColumnDef::Output("City", ValueType::kString)};
    zipmap.cardinality = 200;
    ASSERT_TRUE(cat_.RegisterTable(zipmap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t rank = 1; rank <= 2000; ++rank) {
      rows.push_back(Row{Value(10000 + rank % 200), Value(rank),
                         Value(static_cast<double>(rank) / 10)});
    }
    ASSERT_TRUE(market_->HostTable("Pollution", std::move(rows)).ok());

    zip_rows_.clear();
    for (int64_t zip = 10000; zip < 10200; ++zip) {
      zip_rows_.push_back(Row{Value(zip), Value("city" + std::to_string(zip % 7))});
    }
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("ZipMap", zip_rows_).ok());
    return client;
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> zip_rows_;
};

TEST_F(PayLessSystemTest, BasicQueryReturnsRowsAndBills) {
  auto client = NewClient();
  Result<QueryReport> report = client->QueryWithReport(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 250");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.num_rows(), 250u);
  EXPECT_EQ(report->transactions_spent, 3);  // ceil(250/100)
  EXPECT_EQ(client->meter().total_transactions(), 3);
}

TEST_F(PayLessSystemTest, RepeatedQueryIsFree) {
  auto client = NewClient();
  const std::string sql =
      "SELECT * FROM Pollution WHERE Rank >= 100 AND Rank <= 300";
  ASSERT_TRUE(client->Query(sql).ok());
  const int64_t spent = client->meter().total_transactions();
  Result<QueryReport> second = client->QueryWithReport(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->transactions_spent, 0);
  EXPECT_EQ(second->result.num_rows(), 201u);
  EXPECT_EQ(client->meter().total_transactions(), spent);
}

TEST_F(PayLessSystemTest, SubsetQueryIsFreeSupersetPaysRemainder) {
  auto client = NewClient();
  ASSERT_TRUE(client->Query(
      "SELECT * FROM Pollution WHERE Rank >= 100 AND Rank <= 500").ok());
  const int64_t spent = client->meter().total_transactions();
  // Subset: free.
  Result<QueryReport> subset = client->QueryWithReport(
      "SELECT * FROM Pollution WHERE Rank >= 200 AND Rank <= 300");
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->transactions_spent, 0);
  // Superset: pays only for [501, 600].
  Result<QueryReport> superset = client->QueryWithReport(
      "SELECT * FROM Pollution WHERE Rank >= 100 AND Rank <= 600");
  ASSERT_TRUE(superset.ok());
  EXPECT_EQ(superset->result.num_rows(), 501u);
  EXPECT_LE(superset->transactions_spent, 1);
  EXPECT_EQ(client->meter().total_transactions(),
            spent + superset->transactions_spent);
}

TEST_F(PayLessSystemTest, StatisticsLearnFromFeedback) {
  auto client = NewClient();
  ASSERT_TRUE(client->Query(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 1000").ok());
  // The stored feedback makes the estimate for a sub-range exact.
  const Box region({Interval(10000, 10199), Interval(1, 1000)});
  EXPECT_NEAR(client->stats().EstimateRows("Pollution", region), 1000.0, 1.0);
}

TEST_F(PayLessSystemTest, ParameterizedQueries) {
  auto client = NewClient();
  Result<storage::Table> result = client->Query(
      "SELECT COUNT(ZipCode) FROM Pollution WHERE Rank >= ? AND Rank <= ?",
      {Value(int64_t{50}), Value(int64_t{149})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0][0], Value(int64_t{100}));
}

TEST_F(PayLessSystemTest, ParseAndBindErrorsPropagate) {
  auto client = NewClient();
  EXPECT_EQ(client->Query("SELEC nonsense").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(client->Query("SELECT * FROM Missing").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(client
                ->Query("SELECT * FROM Pollution WHERE Rank >= ?",
                        {})  // missing parameter
                .status()
                .code(),
            Status::Code::kInvalidArgument);
}

TEST_F(PayLessSystemTest, LoadLocalTableValidation) {
  auto client = NewClient();
  EXPECT_EQ(client->LoadLocalTable("Missing", {}).code(),
            Status::Code::kNotFound);
  EXPECT_EQ(client->LoadLocalTable("Pollution", {}).code(),
            Status::Code::kInvalidArgument);
}

TEST_F(PayLessSystemTest, LocalJoinCostsNothingExtra) {
  auto client = NewClient();
  Result<QueryReport> report = client->QueryWithReport(
      "SELECT City, COUNT(*) FROM Pollution, ZipMap "
      "WHERE Pollution.ZipCode = ZipMap.ZipCode AND Rank >= 1 AND "
      "Rank <= 100 GROUP BY City");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->transactions_spent, 1);
  EXPECT_EQ(report->result.num_rows(), 7u);  // 7 cities
}

TEST_F(PayLessSystemTest, FullConsistencyDisablesReuse) {
  PayLessConfig config;
  config.consistency = ConsistencyLevel::kFull;
  auto client = NewClient(config);
  const std::string sql =
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 100";
  ASSERT_TRUE(client->Query(sql).ok());
  const int64_t first = client->meter().total_transactions();
  ASSERT_TRUE(client->Query(sql).ok());
  EXPECT_EQ(client->meter().total_transactions(), 2 * first);
}

TEST_F(PayLessSystemTest, XWeekConsistencyExpiresOldViews) {
  PayLessConfig config;
  config.consistency = ConsistencyLevel::kXWeek;
  config.consistency_weeks = 2;
  auto client = NewClient(config);
  const std::string sql =
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 100";
  client->SetCurrentWeek(0);
  ASSERT_TRUE(client->Query(sql).ok());
  const int64_t first = client->meter().total_transactions();
  // Within the horizon: free.
  client->SetCurrentWeek(2);
  ASSERT_TRUE(client->Query(sql).ok());
  EXPECT_EQ(client->meter().total_transactions(), first);
  // Beyond the horizon: re-bought.
  client->SetCurrentWeek(5);
  ASSERT_TRUE(client->Query(sql).ok());
  EXPECT_EQ(client->meter().total_transactions(), 2 * first);
}

TEST_F(PayLessSystemTest, WeakConsistencySeesAppendOnlyGrowth) {
  auto client = NewClient();
  const std::string sql =
      "SELECT COUNT(ZipCode) FROM Pollution WHERE Rank >= 1 AND Rank <= 2500";
  Result<storage::Table> before = client->Query(sql);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows()[0][0], Value(int64_t{2000}));
  // A new release appends rows with fresh ranks; the weak-consistency
  // client's cached coverage hides them (the §4.3 trade-off).
  ASSERT_TRUE(market_
                  ->AppendRows("Pollution", {{Value(int64_t{10001}),
                                              Value(int64_t{2400}),
                                              Value(1.0)}})
                  .ok());
  Result<storage::Table> after = client->Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows()[0][0], Value(int64_t{2000}));  // stale, free
  // A fresh full-consistency client sees the new row.
  PayLessConfig full;
  full.consistency = ConsistencyLevel::kFull;
  auto fresh = NewClient(full);
  Result<storage::Table> fresh_result = fresh->Query(sql);
  ASSERT_TRUE(fresh_result.ok());
  EXPECT_EQ(fresh_result->rows()[0][0], Value(int64_t{2001}));
}

TEST_F(PayLessSystemTest, ReportContainsPlanAndCounters) {
  auto client = NewClient();
  Result<QueryReport> report = client->QueryWithReport(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 100");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->plan.accesses.size(), 1u);
  EXPECT_GT(report->counters.evaluated_plans, 0u);
  EXPECT_EQ(report->exec.calls, 1);
  EXPECT_EQ(report->exec.transactions, report->transactions_spent);
}

TEST_F(PayLessSystemTest, DownloadAllClientDownloadsOnce) {
  DownloadAllClient client(&cat_, market_.get());
  ASSERT_TRUE(client.LoadLocalTable("ZipMap", zip_rows_).ok());
  Result<storage::Table> r1 = client.Query(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 10");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->num_rows(), 10u);
  EXPECT_EQ(client.meter().total_transactions(), 20);  // 2000 rows / 100
  Result<storage::Table> r2 = client.Query(
      "SELECT * FROM Pollution WHERE Rank >= 11 AND Rank <= 30");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(client.meter().total_transactions(), 20);  // no further spend
}

TEST_F(PayLessSystemTest, ExplainPlansWithoutSpending) {
  auto client = NewClient();
  Result<QueryReport> plan = client->Explain(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 250");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->plan.est_cost, 3);  // would cost ceil(250/100)
  EXPECT_EQ(plan->transactions_spent, 0);
  EXPECT_EQ(client->meter().total_transactions(), 0);  // nothing billed
  EXPECT_EQ(client->store().TotalViews(), 0u);         // nothing cached
  // Estimated cost matches what execution then actually bills.
  Result<QueryReport> run = client->QueryWithReport(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 250");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->transactions_spent, plan->plan.est_cost);
}

TEST_F(PayLessSystemTest, ExplainPropagatesErrors) {
  auto client = NewClient();
  EXPECT_FALSE(client->Explain("SELECT nothing FROM nowhere").ok());
}

TEST_F(PayLessSystemTest, SemanticStoreGrowsWithQueries) {
  auto client = NewClient();
  EXPECT_EQ(client->store().TotalViews(), 0u);
  ASSERT_TRUE(client->Query(
      "SELECT * FROM Pollution WHERE Rank >= 1 AND Rank <= 50").ok());
  EXPECT_EQ(client->store().TotalViews(), 1u);
  EXPECT_EQ(client->store().TotalStoredRows(), 50u);
}

}  // namespace
}  // namespace payless::exec
