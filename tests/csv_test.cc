#include "storage/csv.h"

#include <gtest/gtest.h>

#include <fstream>

namespace payless::storage {
namespace {

Schema ZipSchema() {
  return Schema({SchemaColumn{"ZipMap", "ZipCode", ValueType::kInt64},
                 SchemaColumn{"ZipMap", "City", ValueType::kString},
                 SchemaColumn{"ZipMap", "Share", ValueType::kDouble}});
}

TEST(CsvTest, BasicParseWithHeader) {
  Result<std::vector<Row>> rows = ParseCsv(
      "zip,city,share\n10001,Seattle,0.5\n10002,Portland,0.25\n",
      ZipSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], Value(int64_t{10001}));
  EXPECT_EQ((*rows)[0][1], Value("Seattle"));
  EXPECT_EQ((*rows)[1][2], Value(0.25));
}

TEST(CsvTest, NoHeaderOption) {
  CsvOptions options;
  options.has_header = false;
  Result<std::vector<Row>> rows =
      ParseCsv("1,a,0.1\n", ZipSchema(), options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  Result<std::vector<Row>> rows = ParseCsv(
      "h,h,h\n7,\"New York, NY\",1.5\n8,\"say \"\"hi\"\"\",2\n",
      ZipSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][1], Value("New York, NY"));
  EXPECT_EQ((*rows)[1][1], Value("say \"hi\""));
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  Result<std::vector<Row>> rows = ParseCsv("h,h,h\n5,,\n", ZipSchema());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE((*rows)[0][1].is_null());
  EXPECT_TRUE((*rows)[0][2].is_null());
}

TEST(CsvTest, CrlfAndBlankLinesTolerated) {
  Result<std::vector<Row>> rows =
      ParseCsv("h,h,h\r\n1,a,2\r\n\r\n2,b,3\r\n", ZipSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvTest, ArityMismatchNamesLine) {
  Result<std::vector<Row>> rows = ParseCsv("h,h,h\n1,two\n", ZipSchema());
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, BadNumberNamesLineAndColumn) {
  Result<std::vector<Row>> rows =
      ParseCsv("h,h,h\nnope,a,1\n", ZipSchema());
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), Status::Code::kParseError);
  EXPECT_NE(rows.status().message().find("not an integer"),
            std::string::npos);
}

TEST(CsvTest, UnbalancedQuoteFails) {
  EXPECT_FALSE(ParseCsv("h,h,h\n1,\"oops,2\n", ZipSchema()).ok());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadCsvFile("/no/such/file.csv", ZipSchema()).status().code(),
            Status::Code::kNotFound);
}

TEST(CsvTest, RoundTripThroughToCsv) {
  Table table(ZipSchema());
  table.Append({Value(int64_t{1}), Value("a,b"), Value(0.5)});
  table.Append({Value(int64_t{2}), Value::Null(), Value(1.0)});
  const std::string csv = ToCsv(table);
  Result<std::vector<Row>> rows = ParseCsv(csv, ZipSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], Value("a,b"));
  EXPECT_TRUE((*rows)[1][1].is_null());
}

TEST(CsvTest, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/payless_csv_test.csv";
  {
    std::ofstream out(path);
    out << "zip,city,share\n42,Rome,0.75\n";
  }
  Result<std::vector<Row>> rows = LoadCsvFile(path, ZipSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], Value("Rome"));
}

}  // namespace
}  // namespace payless::storage
