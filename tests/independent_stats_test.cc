// IndependentDimEstimator (§3 alternative statistic): per-dimension 1-D
// feedback histograms under attribute-value independence.
#include <gtest/gtest.h>

#include "stats/estimator.h"

namespace payless::stats {
namespace {

Box Grid(int64_t w, int64_t h) {
  return Box({Interval(0, w - 1), Interval(0, h - 1)});
}

TEST(IndependentDimEstimatorTest, StartsUniform) {
  IndependentDimEstimator est(Grid(10, 10), 100);
  EXPECT_NEAR(est.EstimateRows(Grid(10, 10)), 100.0, 1e-6);
  EXPECT_NEAR(est.EstimateRows(Box({Interval(0, 4), Interval(0, 9)})), 50.0,
              1e-6);
  EXPECT_NEAR(est.EstimateRows(Box({Interval(0, 4), Interval(0, 4)})), 25.0,
              1e-6);
}

TEST(IndependentDimEstimatorTest, EmptyRegionIsZero) {
  IndependentDimEstimator est(Grid(10, 10), 100);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box({Interval::Empty(), Interval(0, 9)})),
                   0.0);
  EXPECT_DOUBLE_EQ(
      est.EstimateRows(Box({Interval(50, 60), Interval(0, 9)})), 0.0);
}

TEST(IndependentDimEstimatorTest, WholeTableFeedbackRecalibrates) {
  IndependentDimEstimator est(Grid(10, 10), 100);
  est.Feedback(Grid(10, 10), 400);
  EXPECT_NEAR(est.EstimateRows(Grid(10, 10)), 400.0, 1e-6);
}

TEST(IndependentDimEstimatorTest, MarginalFeedbackLearnsOneDimension) {
  IndependentDimEstimator est(Grid(10, 10), 100);
  // Full second dimension: the observation is an exact dim-0 marginal.
  est.Feedback(Box({Interval(0, 4), Interval(0, 9)}), 90);
  EXPECT_NEAR(est.EstimateRows(Box({Interval(0, 4), Interval(0, 9)})), 90.0,
              1.0);
  // Independence splits the mass evenly on the untouched dimension.
  EXPECT_NEAR(est.EstimateRows(Box({Interval(0, 4), Interval(0, 4)})), 45.0,
              1.5);
}

TEST(IndependentDimEstimatorTest, CannotRepresentCorrelation) {
  // Ground truth: 50/50 rows on the diagonal quadrants, 0 off-diagonal. No
  // product of marginals can reproduce that (a*b = 0.5 and a*(1-b) = 0 are
  // contradictory), so after identical feedback the independent model must
  // be wrong on at least one quadrant while the multidimensional histogram
  // is exact on all of them — the documented blind spot.
  IndependentDimEstimator indep(Grid(10, 10), 100);
  FeedbackHistogram multi(Grid(10, 10), 100);
  const Box q1({Interval(0, 4), Interval(0, 4)});
  const Box q2({Interval(5, 9), Interval(5, 9)});
  const Box off1({Interval(0, 4), Interval(5, 9)});
  const Box off2({Interval(5, 9), Interval(0, 4)});
  const std::vector<std::pair<const Box*, int64_t>> truth = {
      {&q1, 50}, {&q2, 50}, {&off1, 0}, {&off2, 0}};
  for (Estimator* est : {static_cast<Estimator*>(&indep),
                         static_cast<Estimator*>(&multi)}) {
    for (const auto& [box, count] : truth) est->Feedback(*box, count);
  }
  double multi_error = 0.0;
  double indep_error = 0.0;
  for (const auto& [box, count] : truth) {
    multi_error += std::abs(multi.EstimateRows(*box) -
                            static_cast<double>(count));
    indep_error += std::abs(indep.EstimateRows(*box) -
                            static_cast<double>(count));
  }
  EXPECT_LT(multi_error, 1.0);
  EXPECT_GT(indep_error, 10.0);
}

TEST(IndependentDimEstimatorTest, ZeroDimensionalSpace) {
  IndependentDimEstimator est(Box{}, 42);
  EXPECT_DOUBLE_EQ(est.EstimateRows(Box{}), 42.0);
}

TEST(StatsRegistryKindTest, InstantiatesSelectedBackend) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(catalog::DatasetDef{"D", 1.0, 100}).ok());
  catalog::TableDef def;
  def.name = "T";
  def.dataset = "D";
  def.columns = {catalog::ColumnDef::Free(
      "a", ValueType::kInt64, catalog::AttrDomain::Numeric(0, 99))};
  def.cardinality = 1000;
  ASSERT_TRUE(cat.RegisterTable(def).ok());

  for (const StatsKind kind :
       {StatsKind::kUniform, StatsKind::kFeedbackHistogram,
        StatsKind::kIndependentHistograms}) {
    StatsRegistry registry(kind);
    registry.RegisterTable(*cat.FindTable("T"));
    EXPECT_EQ(registry.kind(), kind);
    const Box half({Interval(0, 49)});
    EXPECT_NEAR(registry.EstimateRows("T", half), 500.0, 1e-6);
    registry.Feedback("T", half, 100);
    if (kind == StatsKind::kUniform) {
      EXPECT_NEAR(registry.EstimateRows("T", half), 500.0, 1e-6);
    } else {
      EXPECT_NEAR(registry.EstimateRows("T", half), 100.0, 2.0);
    }
  }
}

}  // namespace
}  // namespace payless::stats
