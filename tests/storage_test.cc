#include "storage/ops.h"

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/table.h"

namespace payless::storage {
namespace {

Schema TwoColSchema() {
  return Schema({SchemaColumn{"T", "id", ValueType::kInt64},
                 SchemaColumn{"T", "name", ValueType::kString}});
}

Table SampleTable() {
  Table t(TwoColSchema());
  t.Append({Value(int64_t{1}), Value("a")});
  t.Append({Value(int64_t{2}), Value("b")});
  t.Append({Value(int64_t{3}), Value("a")});
  t.Append({Value(int64_t{2}), Value("c")});
  return t;
}

TEST(SchemaTest, FindQualifiedAndUnqualified) {
  const Schema s = TwoColSchema();
  EXPECT_EQ(s.Find("T", "id"), 0u);
  EXPECT_EQ(s.Find("name"), 1u);
  EXPECT_FALSE(s.Find("U", "id").has_value());
  EXPECT_FALSE(s.Find("missing").has_value());
}

TEST(SchemaTest, AmbiguousUnqualifiedLookupFails) {
  Schema s({SchemaColumn{"A", "k", ValueType::kInt64},
            SchemaColumn{"B", "k", ValueType::kInt64}});
  EXPECT_FALSE(s.Find("k").has_value());
  EXPECT_EQ(s.Find("A", "k"), 0u);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  const Schema c = Schema::Concat(TwoColSchema(), TwoColSchema());
  EXPECT_EQ(c.num_columns(), 4u);
  EXPECT_EQ(c.column(2).name, "id");
}

TEST(TableTest, AppendCheckedValidatesArity) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.AppendChecked({Value(int64_t{1})}).ok());
  EXPECT_TRUE(t.AppendChecked({Value(int64_t{1}), Value("x")}).ok());
}

TEST(TableTest, AppendCheckedValidatesTypes) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.AppendChecked({Value("no"), Value("x")}).ok());
  EXPECT_TRUE(t.AppendChecked({Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, AppendCheckedCoercesIntToDoubleColumn) {
  Table t(Schema({SchemaColumn{"T", "v", ValueType::kDouble}}));
  EXPECT_TRUE(t.AppendChecked({Value(int64_t{3})}).ok());
}

TEST(TableTest, ColumnValues) {
  const Table t = SampleTable();
  const std::vector<Value> names = t.ColumnValues(1);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], Value("a"));
  EXPECT_EQ(names[3], Value("c"));
}

TEST(FilterTest, ConjunctionOfPredicates) {
  const Table t = SampleTable();
  const Table out = Filter(
      t, {ColumnPredicate{0, CompareOp::kGe, Value(int64_t{2})},
          ColumnPredicate{1, CompareOp::kEq, Value("a")}});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows()[0][0], Value(int64_t{3}));
}

TEST(FilterTest, EmptyPredicateListKeepsAll) {
  EXPECT_EQ(Filter(SampleTable(), {}).num_rows(), 4u);
}

TEST(FilterFnTest, ArbitraryPredicate) {
  const Table out = FilterFn(SampleTable(), [](const Row& r) {
    return r[0].AsInt64() % 2 == 1;
  });
  EXPECT_EQ(out.num_rows(), 2u);
}

TEST(ProjectTest, ReordersColumns) {
  const Table out = Project(SampleTable(), {1, 0});
  EXPECT_EQ(out.schema().column(0).name, "name");
  EXPECT_EQ(out.rows()[0][0], Value("a"));
  EXPECT_EQ(out.rows()[0][1], Value(int64_t{1}));
}

TEST(ProjectTest, DuplicateColumnAllowed) {
  const Table out = Project(SampleTable(), {0, 0});
  EXPECT_EQ(out.schema().num_columns(), 2u);
  EXPECT_EQ(out.rows()[2][0], out.rows()[2][1]);
}

Table KeyedTable(const std::string& name,
                 std::vector<std::pair<int64_t, std::string>> rows) {
  Table t(Schema({SchemaColumn{name, "k", ValueType::kInt64},
                  SchemaColumn{name, "v", ValueType::kString}}));
  for (auto& [k, v] : rows) t.Append({Value(k), Value(v)});
  return t;
}

TEST(HashJoinTest, BasicEquiJoin) {
  const Table l = KeyedTable("L", {{1, "a"}, {2, "b"}, {3, "c"}});
  const Table r = KeyedTable("R", {{2, "x"}, {3, "y"}, {4, "z"}});
  const Table out = HashJoin(l, r, {{0, 0}});
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema().num_columns(), 4u);
}

TEST(HashJoinTest, DuplicateKeysMultiply) {
  const Table l = KeyedTable("L", {{1, "a"}, {1, "b"}});
  const Table r = KeyedTable("R", {{1, "x"}, {1, "y"}, {1, "z"}});
  EXPECT_EQ(HashJoin(l, r, {{0, 0}}).num_rows(), 6u);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table l(TwoColSchema());
  l.Append({Value::Null(), Value("a")});
  Table r(TwoColSchema());
  r.Append({Value::Null(), Value("b")});
  EXPECT_EQ(HashJoin(l, r, {{0, 0}}).num_rows(), 0u);
}

TEST(HashJoinTest, MultiKeyJoin) {
  const Table l = KeyedTable("L", {{1, "a"}, {1, "b"}});
  const Table r = KeyedTable("R", {{1, "a"}, {1, "z"}});
  // Join on (k, v): only the (1, "a") rows pair up.
  EXPECT_EQ(HashJoin(l, r, {{0, 0}, {1, 1}}).num_rows(), 1u);
}

TEST(HashJoinTest, LeftColumnsAlwaysComeFirst) {
  // Build side selection must not leak into the output layout.
  const Table small = KeyedTable("S", {{1, "s"}});
  const Table big = KeyedTable("B", {{1, "b1"}, {1, "b2"}, {2, "b3"}});
  const Table out = HashJoin(big, small, {{0, 0}});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema().column(0).table, "B");
  EXPECT_EQ(out.rows()[0][3], Value("s"));
}

TEST(HashJoinTest, EmptyKeyListIsCartesian) {
  const Table l = KeyedTable("L", {{1, "a"}, {2, "b"}});
  const Table r = KeyedTable("R", {{9, "x"}});
  EXPECT_EQ(HashJoin(l, r, {}).num_rows(), 2u);
}

TEST(CartesianTest, Sizes) {
  const Table l = KeyedTable("L", {{1, "a"}, {2, "b"}});
  const Table r = KeyedTable("R", {{3, "x"}, {4, "y"}, {5, "z"}});
  EXPECT_EQ(Cartesian(l, r).num_rows(), 6u);
  EXPECT_EQ(Cartesian(l, Table(TwoColSchema())).num_rows(), 0u);
}

TEST(ThetaJoinTest, InequalityJoin) {
  const Table l = KeyedTable("L", {{1, "a"}, {5, "b"}});
  const Table r = KeyedTable("R", {{3, "x"}});
  const Table out = ThetaJoin(
      l, r, [](const Row& joined) { return joined[0] < joined[2]; });
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows()[0][1], Value("a"));
}

TEST(DistinctTest, RemovesDuplicateRows) {
  Table t(TwoColSchema());
  t.Append({Value(int64_t{1}), Value("a")});
  t.Append({Value(int64_t{1}), Value("a")});
  t.Append({Value(int64_t{1}), Value("b")});
  EXPECT_EQ(Distinct(t).num_rows(), 2u);
}

TEST(UnionAllTest, AppendsAndChecksArity) {
  Table a = SampleTable();
  const Table b = SampleTable();
  ASSERT_TRUE(UnionAll(&a, b).ok());
  EXPECT_EQ(a.num_rows(), 8u);
  Table narrow(Schema({SchemaColumn{"T", "x", ValueType::kInt64}}));
  EXPECT_FALSE(UnionAll(&a, narrow).ok());
}

TEST(SortByTest, MultiColumnAscending) {
  const Table out = SortBy(SampleTable(), {1, 0});
  EXPECT_EQ(out.rows()[0][1], Value("a"));
  EXPECT_EQ(out.rows()[0][0], Value(int64_t{1}));
  EXPECT_EQ(out.rows()[1][0], Value(int64_t{3}));
  EXPECT_EQ(out.rows()[3][1], Value("c"));
}

TEST(SortByTest, NullsFirst) {
  Table t(TwoColSchema());
  t.Append({Value(int64_t{5}), Value("a")});
  t.Append({Value::Null(), Value("b")});
  const Table out = SortBy(t, {0});
  EXPECT_TRUE(out.rows()[0][0].is_null());
}

TEST(DistinctValuesTest, SortedAndNullFree) {
  Table t(TwoColSchema());
  t.Append({Value(int64_t{3}), Value("x")});
  t.Append({Value(int64_t{1}), Value("x")});
  t.Append({Value::Null(), Value("x")});
  t.Append({Value(int64_t{3}), Value("x")});
  const std::vector<Value> vals = DistinctValues(t, 0);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], Value(int64_t{1}));
  EXPECT_EQ(vals[1], Value(int64_t{3}));
}

Table NumbersTable(std::vector<std::pair<std::string, double>> rows) {
  Table t(Schema({SchemaColumn{"T", "g", ValueType::kString},
                  SchemaColumn{"T", "v", ValueType::kDouble}}));
  for (auto& [g, v] : rows) t.Append({Value(g), Value(v)});
  return t;
}

TEST(GroupAggregateTest, GroupedCountSumAvgMinMax) {
  const Table t = NumbersTable({{"a", 1.0}, {"a", 3.0}, {"b", 10.0}});
  const Table out = GroupAggregate(
      t, {0},
      {AggSpec{AggFunc::kCount, 0, true, "cnt"},
       AggSpec{AggFunc::kSum, 1, false, "sum"},
       AggSpec{AggFunc::kAvg, 1, false, "avg"},
       AggSpec{AggFunc::kMin, 1, false, "min"},
       AggSpec{AggFunc::kMax, 1, false, "max"}});
  ASSERT_EQ(out.num_rows(), 2u);
  // First-seen group order: "a" then "b".
  EXPECT_EQ(out.rows()[0][1], Value(int64_t{2}));
  EXPECT_EQ(out.rows()[0][2], Value(4.0));
  EXPECT_EQ(out.rows()[0][3], Value(2.0));
  EXPECT_EQ(out.rows()[0][4], Value(1.0));
  EXPECT_EQ(out.rows()[0][5], Value(3.0));
  EXPECT_EQ(out.rows()[1][1], Value(int64_t{1}));
}

TEST(GroupAggregateTest, GlobalAggregateOverEmptyInput) {
  Table t = NumbersTable({});
  const Table out = GroupAggregate(
      t, {},
      {AggSpec{AggFunc::kCount, 0, true, "cnt"},
       AggSpec{AggFunc::kAvg, 1, false, "avg"}});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows()[0][0], Value(int64_t{0}));
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST(GroupAggregateTest, GroupedAggregateOverEmptyInputHasNoRows) {
  Table t = NumbersTable({});
  EXPECT_EQ(GroupAggregate(t, {0}, {AggSpec{AggFunc::kCount, 0, true, "c"}})
                .num_rows(),
            0u);
}

TEST(GroupAggregateTest, CountColumnIgnoresNulls) {
  Table t(Schema({SchemaColumn{"T", "v", ValueType::kInt64}}));
  t.Append({Value(int64_t{1})});
  t.Append({Value::Null()});
  const Table out =
      GroupAggregate(t, {}, {AggSpec{AggFunc::kCount, 0, false, "c"},
                             AggSpec{AggFunc::kCount, 0, true, "star"}});
  EXPECT_EQ(out.rows()[0][0], Value(int64_t{1}));  // COUNT(v)
  EXPECT_EQ(out.rows()[0][1], Value(int64_t{2}));  // COUNT(*)
}

TEST(GroupAggregateTest, MinMaxOnStrings) {
  Table t(Schema({SchemaColumn{"T", "s", ValueType::kString}}));
  t.Append({Value("pear")});
  t.Append({Value("apple")});
  const Table out =
      GroupAggregate(t, {}, {AggSpec{AggFunc::kMin, 0, false, "min"},
                             AggSpec{AggFunc::kMax, 0, false, "max"}});
  EXPECT_EQ(out.rows()[0][0], Value("apple"));
  EXPECT_EQ(out.rows()[0][1], Value("pear"));
}

TEST(GroupAggregateTest, DefaultOutputNames) {
  const Table t = NumbersTable({{"a", 1.0}});
  const Table out =
      GroupAggregate(t, {0}, {AggSpec{AggFunc::kAvg, 1, false, ""}});
  EXPECT_EQ(out.schema().column(1).name, "AVG(v)");
}

TEST(DatabaseTest, CreateInsertTruncate) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(catalog::DatasetDef{"D", 1.0, 100}).ok());
  catalog::TableDef def;
  def.name = "T";
  def.is_local = true;
  def.columns = {catalog::ColumnDef::Free(
      "k", ValueType::kInt64, catalog::AttrDomain::Numeric(0, 9))};
  Database db;
  ASSERT_TRUE(db.CreateTable(def).ok());
  EXPECT_TRUE(db.HasTable("T"));
  ASSERT_TRUE(db.InsertRows("T", {{Value(int64_t{1})}, {Value(int64_t{2})}}).ok());
  EXPECT_EQ(db.FindTable("T")->num_rows(), 2u);
  ASSERT_TRUE(db.Truncate("T").ok());
  EXPECT_EQ(db.FindTable("T")->num_rows(), 0u);
  EXPECT_EQ(db.InsertRows("U", {}).code(), Status::Code::kNotFound);
}

TEST(DatabaseTest, CreateTableIdempotent) {
  catalog::TableDef def;
  def.name = "T";
  def.is_local = true;
  def.columns = {catalog::ColumnDef::Output("x", ValueType::kInt64)};
  Database db;
  ASSERT_TRUE(db.CreateTable(def).ok());
  EXPECT_TRUE(db.CreateTable(def).ok());
  def.columns.push_back(catalog::ColumnDef::Output("y", ValueType::kInt64));
  EXPECT_FALSE(db.CreateTable(def).ok());
}

TEST(DatabaseTest, InsertValidatesTypes) {
  catalog::TableDef def;
  def.name = "T";
  def.is_local = true;
  def.columns = {catalog::ColumnDef::Output("x", ValueType::kInt64)};
  Database db;
  ASSERT_TRUE(db.CreateTable(def).ok());
  EXPECT_FALSE(db.InsertRows("T", {{Value("wrong")}}).ok());
}

}  // namespace
}  // namespace payless::storage
