// Latency observability: the HDR latency histogram (exact-decodable
// log-scale buckets), the per-stage wall decomposition, the latency SLO
// burn rate, and the crash-safe flight recorder ring.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"
#include "obs/flight_recorder.h"
#include "obs/latency.h"

namespace payless::obs {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: bucket geometry and percentile decoding.

TEST(LatencyHistogramTest, SmallValuesDecodeExactly) {
  // The first 32 values are their own buckets: a recorded value below
  // 2^kSubBits comes back exactly from any quantile that selects it.
  for (int64_t v = 0; v < 32; ++v) {
    LatencyHistogram h;
    h.Record(v);
    EXPECT_EQ(h.ValueAtQuantile(0.5), v) << "value " << v;
    EXPECT_EQ(h.ValueAtQuantile(1.0), v) << "value " << v;
  }
}

TEST(LatencyHistogramTest, LargeValuesDecodeWithinRelativeError) {
  // Sub-logarithmic buckets: 32 sub-buckets per octave bound the relative
  // decode error by 2^-5 ~ 3.125%. BucketHigh is an upper bound, so the
  // decoded value is >= the recorded one and within one sub-bucket above.
  for (const int64_t v :
       {int64_t{33}, int64_t{100}, int64_t{999}, int64_t{12'345},
        int64_t{1'000'000}, int64_t{123'456'789}}) {
    LatencyHistogram h;
    h.Record(v);
    const int64_t decoded = h.ValueAtQuantile(0.99);
    EXPECT_GE(decoded, v);
    EXPECT_LE(static_cast<double>(decoded - v), 0.04 * static_cast<double>(v))
        << "value " << v << " decoded " << decoded;
  }
}

TEST(LatencyHistogramTest, BucketIndexRoundTrips) {
  // Every value lands in a bucket whose [low, high] range contains it.
  for (int64_t v = 0; v < 100'000; v = v < 64 ? v + 1 : v + v / 7) {
    const int index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(v, LatencyHistogram::BucketLow(index)) << "value " << v;
    EXPECT_LE(v, LatencyHistogram::BucketHigh(index)) << "value " << v;
  }
}

TEST(LatencyHistogramTest, PercentilesOfUniformRange) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.sum(), 1000 * 1001 / 2);
  // Each percentile must decode within the bucket error of its rank value.
  const auto expect_near = [&](double q, int64_t expected) {
    const int64_t got = h.ValueAtQuantile(q);
    EXPECT_GE(got, expected) << "q=" << q;
    EXPECT_LE(static_cast<double>(got),
              1.05 * static_cast<double>(expected) + 1.0)
        << "q=" << q;
  };
  expect_near(0.50, 500);
  expect_near(0.95, 950);
  expect_near(0.99, 990);
  expect_near(0.999, 999);
  // Quantiles are monotone in q.
  EXPECT_LE(h.ValueAtQuantile(0.50), h.ValueAtQuantile(0.95));
  EXPECT_LE(h.ValueAtQuantile(0.95), h.ValueAtQuantile(0.99));
  EXPECT_LE(h.ValueAtQuantile(0.99), h.ValueAtQuantile(0.999));
}

TEST(LatencyHistogramTest, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(LatencyHistogramTest, EmptyHistogramAnswersZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  // Lock-free recording: N threads, disjoint value ranges, exact count and
  // sum afterwards. Run under TSan in CI.
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const int64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// Stage names and the wall partition contract.

TEST(LatencyHistogramTest, StageNamesAreStableAndComplete) {
  EXPECT_STREQ(QueryStageName(kStageParsePlan), "parse_plan");
  EXPECT_STREQ(QueryStageName(kStagePlanCacheProbe), "plan_cache_probe");
  EXPECT_STREQ(QueryStageName(kStageFetch), "fetch");
  EXPECT_STREQ(QueryStageName(kStageLocalEval), "local_eval");
  EXPECT_STREQ(QueryStageName(kStageMerge), "merge");
  EXPECT_STREQ(QueryStageName(kStageAdmissionWait), "sched_admission");
  EXPECT_STREQ(QueryStageName(kStageMarketRtt), "market_rtt");
  EXPECT_STREQ(QueryStageName(kStageBackoffWait), "retry_backoff");
  // The wall stages are a prefix: everything below kNumWallStages
  // partitions the end-to-end latency; the rest are overlapping detail.
  EXPECT_EQ(kNumWallStages, kStageMerge + 1);
  EXPECT_LT(kNumWallStages, kNumQueryStages);
}

TEST(LatencyHistogramTest, AccumulatorIgnoresOutOfRangeAndNonPositive) {
  QueryStageAccumulator acc;
  acc.Add(kStageFetch, 100);
  acc.Add(kStageFetch, 50);
  acc.Add(kStageFetch, 0);      // ignored
  acc.Add(kStageFetch, -7);     // ignored
  acc.Add(-1, 100);             // ignored
  acc.Add(kNumQueryStages, 5);  // ignored
  EXPECT_EQ(acc.micros(kStageFetch), 150);
  EXPECT_EQ(acc.micros(kStageMerge), 0);
}

// ---------------------------------------------------------------------------
// LatencySlo burn rate.

TEST(LatencySloTest, BurnRateIsBreachRateOverErrorBudget) {
  LatencySlo::Options options;
  options.target_micros = 1000;
  options.objective = 0.90;  // error budget: 10% may breach
  LatencySlo slo(options);
  for (int i = 0; i < 90; ++i) slo.Record(500);   // under target
  for (int i = 0; i < 10; ++i) slo.Record(2000);  // breach
  // 10% breaches against a 10% budget: burning exactly at rate 1.
  EXPECT_NEAR(slo.BurnRate(), 1.0, 1e-9);
  EXPECT_EQ(slo.window_total(), 100);
  EXPECT_EQ(slo.window_breaches(), 10);
}

TEST(LatencySloTest, CleanWindowBurnsNothing) {
  LatencySlo slo(LatencySlo::Options{});
  for (int i = 0; i < 50; ++i) slo.Record(10);
  EXPECT_EQ(slo.BurnRate(), 0.0);
  EXPECT_EQ(slo.window_breaches(), 0);
}

TEST(LatencySloTest, EmptyWindowAnswersZero) {
  LatencySlo slo(LatencySlo::Options{});
  EXPECT_EQ(slo.BurnRate(), 0.0);
  EXPECT_EQ(slo.window_total(), 0);
}

// ---------------------------------------------------------------------------
// FlightRecorder ring.

TEST(FlightRecorderTest, KeepsLastNInOrder) {
  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 6; ++i) {
    recorder.Record("{\"n\":" + std::to_string(i) + "}");
  }
  const std::string json = recorder.ToJson();
  // Lapped twice: 0 and 1 are gone, 2..5 present oldest to newest.
  EXPECT_EQ(json.find("{\"n\":0}"), std::string::npos);
  EXPECT_EQ(json.find("{\"n\":1}"), std::string::npos);
  size_t last = 0;
  for (int i = 2; i < 6; ++i) {
    const size_t pos = json.find("{\"n\":" + std::to_string(i) + "}");
    ASSERT_NE(pos, std::string::npos) << json;
    EXPECT_GT(pos, last);
    last = pos;
  }
  EXPECT_EQ(recorder.recorded(), 6);
  EXPECT_NE(json.find("\"recorded\":6"), std::string::npos);
}

TEST(FlightRecorderTest, OversizedEntryIsDropped) {
  FlightRecorder::Options options;
  options.capacity = 2;
  options.entry_bytes = 64;
  FlightRecorder recorder(options);
  recorder.Record(std::string(1000, 'x'));
  EXPECT_EQ(recorder.recorded(), 0);
  EXPECT_EQ(recorder.dropped(), 1);
  recorder.Record("{\"ok\":1}");
  EXPECT_EQ(recorder.recorded(), 1);
}

TEST(FlightRecorderTest, DumpToWritesWellFormedDocument) {
  FlightRecorder recorder;
  recorder.Record("{\"kind\":\"query\",\"query_id\":7}");
  const std::string path =
      (std::filesystem::temp_directory_path() / "payless_fr_dump_test.json")
          .string();
  ASSERT_TRUE(recorder.DumpTo(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("\"entries\":["), std::string::npos);
  EXPECT_NE(dump.find("\"query_id\":7"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(FlightRecorderTest, RepeatedDumpsGetMonotonicSuffixesNotOverwrites) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "payless_fr_dump_seq_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "dump.json").string();

  FlightRecorder recorder;
  recorder.Record("{\"kind\":\"first\"}");
  ASSERT_TRUE(recorder.DumpTo(path));
  recorder.Record("{\"kind\":\"second\"}");
  ASSERT_TRUE(recorder.DumpTo(path));
  recorder.Record("{\"kind\":\"third\"}");
  ASSERT_TRUE(recorder.DumpTo(path));

  // First dump keeps the exact path (crash-path consumers glob for it);
  // later dumps land beside it instead of destroying the earlier evidence.
  EXPECT_TRUE(std::filesystem::exists(dir / "dump.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "dump-1.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "dump-2.json"));

  // Each file is the snapshot taken at its dump, not a rewrite: the first
  // dump cannot mention entries recorded after it.
  std::ifstream first(dir / "dump.json");
  std::stringstream first_content;
  first_content << first.rdbuf();
  EXPECT_EQ(first_content.str().find("\"kind\":\"second\""),
            std::string::npos);
  std::ifstream third(dir / "dump-2.json");
  std::stringstream third_content;
  third_content << third.rdbuf();
  EXPECT_NE(third_content.str().find("\"kind\":\"third\""),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, ArmedRecorderDumpsOnCrashPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "payless_fr_armed_test.json")
          .string();
  std::filesystem::remove(path);
  {
    FlightRecorder recorder;
    recorder.Record("{\"kind\":\"query\",\"query_id\":42}");
    recorder.ArmCrashDump(path);
    // What the durability crash points call right before _Exit.
    FlightRecorder::DumpArmedRecorder();
    ASSERT_TRUE(std::filesystem::exists(path));
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("\"query_id\":42"), std::string::npos);
    // Destruction disarms: a later crash must not touch a dead recorder.
  }
  std::filesystem::remove(path);
  FlightRecorder::DumpArmedRecorder();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FlightRecorderTest, ConcurrentRecordingStaysReadable) {
  // Writers race each other and a reader; every attempt is either recorded
  // or counted dropped, and concurrent ToJson never tears. Run under TSan.
  FlightRecorder::Options options;
  options.capacity = 8;
  FlightRecorder recorder(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = recorder.ToJson();
      EXPECT_NE(json.find("\"entries\""), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record("{\"t\":" + std::to_string(t) +
                        ",\"i\":" + std::to_string(i) + "}");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded() + recorder.dropped(), kThreads * kPerThread);
  EXPECT_GT(recorder.recorded(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: a real query's stage decomposition, report fields, EXPLAIN
// ANALYZE footer and flight-recorder entry.

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;
using exec::QueryReport;

constexpr int64_t kNumStations = 16;
constexpr int64_t kNumDates = 5;

class StageDecompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kNumStations * kNumDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations))};
    citymap.cardinality = kNumStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      for (int64_t d = 1; d <= kNumDates; ++d) {
        rows.push_back(
            Row{Value(s), Value(d), Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kNumStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND Date >= 1 AND Date <= 5";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(StageDecompositionTest, WallStagesSumToEndToEndWithinSlack) {
  PayLessConfig config;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  // Simulated round trip makes fetch dominate, so the partition's residue
  // (loop bookkeeping, report assembly) is far below the slack.
  client.connector()->SetSimulatedLatencyMicros(2000);

  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{8})};
  const Result<QueryReport> report = client.QueryWithReport(kBindSql, params);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());

  EXPECT_GT(report->latency_us, 0);
  int64_t wall_sum = 0;
  for (int i = 0; i < kNumWallStages; ++i) {
    wall_sum += report->stage_micros[i];
  }
  EXPECT_GT(report->stage_micros[kStageFetch], 0);
  EXPECT_GT(report->stage_micros[kStageParsePlan], 0);
  // The wall stages partition the end-to-end latency: never above it, and
  // the untimed residue is small (25% unit-test slack; the bench gates the
  // steady-state gap at 5% with a dominant fetch).
  EXPECT_LE(wall_sum, report->latency_us);
  EXPECT_GE(static_cast<double>(wall_sum),
            0.75 * static_cast<double>(report->latency_us));
  // Detail stages: the RTT of every attempt was seen.
  EXPECT_GT(report->stage_micros[kStageMarketRtt], 0);
}

TEST_F(StageDecompositionTest, ExplainAnalyzeRendersLatencyFooter) {
  PayLess client(&cat_, market_.get(), PayLessConfig{});
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  const Result<QueryReport> report = client.QueryWithReport(
      std::string("EXPLAIN ANALYZE ") + kBindSql, params);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_NE(report->plan_text.find("latency: "), std::string::npos)
      << report->plan_text;
  EXPECT_NE(report->plan_text.find("plan "), std::string::npos);
  EXPECT_NE(report->plan_text.find("market "), std::string::npos);
  EXPECT_NE(report->plan_text.find("eval "), std::string::npos);
}

TEST_F(StageDecompositionTest, TracingOffStillDecomposes) {
  PayLessConfig config;
  config.enable_tracing = false;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  const Result<QueryReport> report = client.QueryWithReport(kBindSql, params);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->ok());
  EXPECT_TRUE(report->trace.empty());
  EXPECT_GT(report->latency_us, 0);
  EXPECT_GT(report->stage_micros[kStageFetch], 0);
  // And the registry's HDR histograms saw the query.
  const std::string latency_json =
      client.observability()->metrics.LatencyJson();
  EXPECT_NE(latency_json.find("payless_latency_e2e_micros"),
            std::string::npos);
  EXPECT_NE(latency_json.find("payless_stage_fetch_micros"),
            std::string::npos);
}

TEST_F(StageDecompositionTest, CompletedQueriesLandInFlightRecorder) {
  PayLess client(&cat_, market_.get(), PayLessConfig{});
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  ASSERT_TRUE(client.Query(kBindSql, params).ok());
  const FlightRecorder& recorder = client.observability()->flight_recorder;
  EXPECT_GT(recorder.recorded(), 0);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"kind\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stages\":{"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
}

TEST_F(StageDecompositionTest, RecorderOffRecordsNothing) {
  PayLessConfig config;
  config.enable_flight_recorder = false;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  ASSERT_TRUE(client.Query(kBindSql, params).ok());
  EXPECT_EQ(client.observability()->flight_recorder.recorded(), 0);
}

TEST_F(StageDecompositionTest, FailedQueryDumpsRingToConfiguredPath) {
  const std::string dump_path =
      (std::filesystem::temp_directory_path() / "payless_fr_error_dump.json")
          .string();
  std::filesystem::remove(dump_path);

  PayLessConfig config;
  config.flight_recorder_dump_path = dump_path;
  config.retry.max_attempts = 2;
  config.retry.initial_backoff_micros = 100;
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());

  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{4})};
  ASSERT_TRUE(client.Query(kBindSql, params).ok());  // a healthy query first

  market::FaultProfile all_fail;
  all_fail.transient_rate = 1.0;  // every call drops until retries exhaust
  market::FaultInjector injector(all_fail);
  client.connector()->SetFaultInjector(&injector);
  const Result<QueryReport> failed = client.QueryWithReport(kBindSql, {
      Value(int64_t{9}), Value(int64_t{12})});
  ASSERT_TRUE(failed.ok());
  ASSERT_FALSE(failed->ok());
  client.connector()->SetFaultInjector(nullptr);

  // The dump exists, is well-formed, and contains BOTH the failing query's
  // entry and the healthy history before it.
  ASSERT_TRUE(std::filesystem::exists(dump_path));
  std::ifstream in(dump_path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("\"entries\":["), std::string::npos);
  EXPECT_NE(dump.find("\"status\":\"Unavailable\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"status\":\"OK\""), std::string::npos);
  std::filesystem::remove(dump_path);
}

TEST_F(StageDecompositionTest, InstrumentationLeavesBillingUnchanged) {
  // The acceptance invariant: recording latency must not move the billing
  // point. Same query stream with the recorder + HDR histograms on and
  // off — byte-identical transaction totals.
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{8})};
  int64_t tx_on = 0, tx_off = 0;
  {
    PayLessConfig config;  // recorder on (default)
    PayLess client(&cat_, market_.get(), config);
    ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(client.Query(kBindSql, params).ok());
    tx_on = client.meter().total_transactions();
  }
  {
    PayLessConfig config;
    config.enable_flight_recorder = false;
    config.enable_tracing = false;
    PayLess client(&cat_, market_.get(), config);
    ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(client.Query(kBindSql, params).ok());
    tx_off = client.meter().total_transactions();
  }
  EXPECT_EQ(tx_on, tx_off);
}

TEST_F(StageDecompositionTest, ConcurrentIdenticalQueriesMeterCoalescing) {
  // Several threads race the SAME footprint through one client: their
  // point calls are byte-identical and overlap inside the scheduler's
  // in-flight window, so the coalescing-opportunity meter must fire.
  // (Billing still charges each delivered call — the meter only reports
  // what a dedup layer WOULD have saved; that is ROADMAP item 1's
  // baseline.)
  PayLessConfig config;
  config.stats_kind = stats::StatsKind::kUniform;
  config.enable_plan_cache = false;  // every thread re-plans and re-fetches
  config.optimizer.use_sqr = false;  // no store reuse: all calls hit market
  PayLess client(&cat_, market_.get(), config);
  ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
  client.connector()->SetSimulatedLatencyMicros(5000);

  const std::vector<Value> params = {Value(int64_t{1}),
                                     Value(kNumStations)};
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      if (!client.Query(kBindSql, params).ok()) failed.store(true);
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_FALSE(failed.load());

  int64_t coalescable_calls = 0;
  int64_t coalescable_transactions = 0;
  for (const auto& [name, value] :
       client.observability()->metrics.SnapshotScalars()) {
    if (name == "payless_coalescable_calls_total") coalescable_calls = value;
    if (name == "payless_coalescable_transactions_total") {
      coalescable_transactions = value;
    }
  }
  EXPECT_GT(coalescable_calls, 0);
  EXPECT_GT(coalescable_transactions, 0);
}

}  // namespace
}  // namespace payless::obs
