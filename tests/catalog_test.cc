#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace payless::catalog {
namespace {

TableDef SampleMarketTable() {
  TableDef def;
  def.name = "Weather";
  def.dataset = "WHW";
  def.columns = {
      ColumnDef::Free("Country", ValueType::kString,
                      AttrDomain::Categorical({"Canada", "US"})),
      ColumnDef::Bound("StationID", ValueType::kInt64,
                       AttrDomain::Numeric(1, 100)),
      ColumnDef::Free("Date", ValueType::kInt64,
                      AttrDomain::Numeric(20140101, 20141231)),
      ColumnDef::Output("Temperature", ValueType::kDouble)};
  def.cardinality = 1000;
  return def;
}

TEST(AttrDomainTest, NumericEncodeIsIdentityWithinRange) {
  const AttrDomain d = AttrDomain::Numeric(10, 20);
  EXPECT_EQ(d.Encode(Value(int64_t{15})), 15);
  EXPECT_EQ(d.Encode(Value(int64_t{10})), 10);
  EXPECT_EQ(d.Encode(Value(int64_t{20})), 20);
  EXPECT_FALSE(d.Encode(Value(int64_t{21})).has_value());
  EXPECT_FALSE(d.Encode(Value(int64_t{9})).has_value());
}

TEST(AttrDomainTest, NumericRejectsNonInt) {
  const AttrDomain d = AttrDomain::Numeric(0, 5);
  EXPECT_FALSE(d.Encode(Value("x")).has_value());
  EXPECT_FALSE(d.Encode(Value(2.0)).has_value());
  EXPECT_FALSE(d.Encode(Value::Null()).has_value());
}

TEST(AttrDomainTest, CategoricalEncodesByDictionaryOrder) {
  const AttrDomain d = AttrDomain::Categorical({"a", "b", "c"});
  EXPECT_EQ(d.Encode(Value("a")), 0);
  EXPECT_EQ(d.Encode(Value("c")), 2);
  EXPECT_FALSE(d.Encode(Value("d")).has_value());
  EXPECT_FALSE(d.Encode(Value(int64_t{0})).has_value());
}

TEST(AttrDomainTest, DecodeInvertsEncode) {
  const AttrDomain num = AttrDomain::Numeric(5, 9);
  EXPECT_EQ(num.Decode(7), Value(int64_t{7}));
  const AttrDomain cat = AttrDomain::Categorical({"x", "y"});
  EXPECT_EQ(cat.Decode(1), Value("y"));
}

TEST(AttrDomainTest, SizeAndInterval) {
  EXPECT_EQ(AttrDomain::Numeric(0, 9).size(), 10);
  EXPECT_EQ(AttrDomain::Categorical({"a", "b", "c"}).size(), 3);
  EXPECT_EQ(AttrDomain::Categorical({"a", "b"}).ToInterval(), Interval(0, 1));
  EXPECT_TRUE(AttrDomain().ToInterval().empty());
  EXPECT_EQ(AttrDomain().size(), 0);
}

TEST(TableDefTest, ColumnIndexLookup) {
  const TableDef def = SampleMarketTable();
  EXPECT_EQ(def.ColumnIndex("Country"), 0u);
  EXPECT_EQ(def.ColumnIndex("Temperature"), 3u);
  EXPECT_FALSE(def.ColumnIndex("Nope").has_value());
}

TEST(TableDefTest, ConstrainableAndBoundColumns) {
  const TableDef def = SampleMarketTable();
  EXPECT_EQ(def.ConstrainableColumns(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(def.BoundColumns(), (std::vector<size_t>{1}));
  EXPECT_FALSE(def.FullyDownloadable());
}

TEST(TableDefTest, FullyDownloadableWithoutBoundAttrs) {
  TableDef def = SampleMarketTable();
  def.columns[1].binding = BindingKind::kFree;
  EXPECT_TRUE(def.FullyDownloadable());
}

TEST(TableDefTest, FullRegionSpansDomains) {
  const TableDef def = SampleMarketTable();
  const Box region = def.FullRegion();
  ASSERT_EQ(region.num_dims(), 3u);
  EXPECT_EQ(region.dim(0), Interval(0, 1));           // 2 countries
  EXPECT_EQ(region.dim(1), Interval(1, 100));         // station ids
  EXPECT_EQ(region.dim(2), Interval(20140101, 20141231));
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
  ASSERT_TRUE(cat.RegisterTable(SampleMarketTable()).ok());
  ASSERT_NE(cat.FindTable("Weather"), nullptr);
  EXPECT_EQ(cat.FindTable("Weather")->cardinality, 1000);
  EXPECT_NE(cat.FindDataset("WHW"), nullptr);
  EXPECT_EQ(cat.FindTable("Nope"), nullptr);
}

TEST(CatalogTest, DuplicateDatasetRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
  EXPECT_EQ(cat.RegisterDataset(DatasetDef{"WHW", 2.0, 50}).code(),
            Status::Code::kInvalidArgument);
}

TEST(CatalogTest, TableNeedsKnownDataset) {
  Catalog cat;
  EXPECT_EQ(cat.RegisterTable(SampleMarketTable()).code(),
            Status::Code::kInvalidArgument);
}

TEST(CatalogTest, LocalTableNeedsNoDataset) {
  Catalog cat;
  TableDef def;
  def.name = "ZipMap";
  def.is_local = true;
  def.columns = {ColumnDef::Free("ZipCode", ValueType::kInt64,
                                 AttrDomain::Numeric(0, 9))};
  EXPECT_TRUE(cat.RegisterTable(def).ok());
  EXPECT_EQ(cat.DatasetOf(*cat.FindTable("ZipMap")), nullptr);
}

TEST(CatalogTest, ConstrainableColumnRequiresDomain) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
  TableDef def;
  def.name = "T";
  def.dataset = "D";
  def.columns = {ColumnDef{"A", ValueType::kInt64, BindingKind::kFree,
                           AttrDomain()}};
  EXPECT_EQ(cat.RegisterTable(def).code(), Status::Code::kInvalidArgument);
}

TEST(CatalogTest, InvalidPricingRejected) {
  Catalog cat;
  EXPECT_FALSE(cat.RegisterDataset(DatasetDef{"A", 1.0, 0}).ok());
  EXPECT_FALSE(cat.RegisterDataset(DatasetDef{"B", -1.0, 100}).ok());
}

TEST(CatalogTest, DatasetOfResolvesPricing) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 2.5, 50}).ok());
  ASSERT_TRUE(cat.RegisterTable(SampleMarketTable()).ok());
  const DatasetDef* ds = cat.DatasetOf(*cat.FindTable("Weather"));
  ASSERT_NE(ds, nullptr);
  EXPECT_DOUBLE_EQ(ds->price_per_transaction, 2.5);
  EXPECT_EQ(ds->tuples_per_transaction, 50);
}

TEST(CatalogTest, SetCardinality) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
  ASSERT_TRUE(cat.RegisterTable(SampleMarketTable()).ok());
  ASSERT_TRUE(cat.SetCardinality("Weather", 5000).ok());
  EXPECT_EQ(cat.FindTable("Weather")->cardinality, 5000);
  EXPECT_EQ(cat.SetCardinality("Nope", 1).code(), Status::Code::kNotFound);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
  TableDef a = SampleMarketTable();
  a.name = "B";
  TableDef b = SampleMarketTable();
  b.name = "A";
  ASSERT_TRUE(cat.RegisterTable(a).ok());
  ASSERT_TRUE(cat.RegisterTable(b).ok());
  EXPECT_EQ(cat.TableNames(), (std::vector<std::string>{"A", "B"}));
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::NotFound("missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace payless::catalog
