// The trace JSONL sink as a system property: after the PayLess client is
// destroyed, the sink file is flushed and holds one well-formed JSON line
// per traced query — including queries that failed mid-flight against a
// flaky market, whose (partial) trace must still be emitted with the
// error status and the spend-so-far attributes intact.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/payless.h"
#include "market/data_market.h"
#include "market/fault_injector.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;
using exec::QueryReport;
using market::FaultInjector;
using market::FaultKind;
using market::FaultProfile;
using market::RetryPolicy;

class TraceSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kStations * kDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations))};
    citymap.cardinality = kStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kStations; ++s) {
      for (int64_t d = 1; d <= kDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  static std::vector<std::string> ReadLines(const std::string& path) {
    std::vector<std::string> lines;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return lines;
    char buf[65536];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      lines.push_back(std::move(line));
    }
    std::fclose(f);
    return lines;
  }

  /// Structural JSONL sanity without a JSON parser: one object per line,
  /// balanced braces/brackets outside strings, all spans closed.
  static void ExpectWellFormedJsonLine(const std::string& line) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      switch (c) {
        case '"': in_string = true; break;
        case '{': ++braces; break;
        case '}': --braces; break;
        case '[': ++brackets; break;
        case ']': --brackets; break;
        default: break;
      }
      EXPECT_GE(braces, 0) << line;
      EXPECT_GE(brackets, 0) << line;
    }
    EXPECT_FALSE(in_string) << line;
    EXPECT_EQ(braces, 0) << line;
    EXPECT_EQ(brackets, 0) << line;
    // Spans in an emitted trace are all closed (duration -1 marks an open
    // span and must never reach the sink).
    EXPECT_EQ(line.find("\"duration_us\":-1"), std::string::npos) << line;
  }

  static constexpr int64_t kStations = 16;
  static constexpr int64_t kDates = 4;
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 4";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(TraceSinkTest, FlushedAndWellFormedAfterClientDestruction) {
  const std::string path =
      ::testing::TempDir() + "/payless_trace_sink_system.jsonl";
  Result<std::unique_ptr<JsonlTraceSink>> sink = JsonlTraceSink::Open(path);
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();

  Observability obs;
  obs.trace_sink = sink->get();

  {
    PayLessConfig config;
    config.observability = &obs;
    config.tenant = "acme";
    config.retry = RetryPolicy{};
    config.retry.max_attempts = 3;
    config.retry.initial_backoff_micros = 20;
    config.retry.max_backoff_micros = 200;
    PayLess client(&cat_, market_.get(), config);
    ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());

    // Query 1: clean run over four stations.
    Result<QueryReport> good = client.QueryWithReport(
        kBindSql, {Value(int64_t{1}), Value(int64_t{4})});
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    ASSERT_TRUE(good->error.ok()) << good->error.ToString();

    // Query 2: the first market call succeeds, every later one drops until
    // retries exhaust — a mid-flight failure with real spend behind it.
    FaultProfile all_fail;
    all_fail.transient_rate = 1.0;
    FaultInjector injector(all_fail);
    injector.Script(FaultKind::kNone);
    client.connector()->SetFaultInjector(&injector);
    Result<QueryReport> failed = client.QueryWithReport(
        kBindSql, {Value(int64_t{5}), Value(int64_t{8})});
    ASSERT_TRUE(failed.ok()) << failed.status().ToString();
    EXPECT_EQ(failed->error.code(), Status::Code::kUnavailable)
        << failed->error.ToString();
    EXPECT_GT(failed->transactions_spent, 0);
    client.connector()->SetFaultInjector(nullptr);
  }  // client destroyed with the failed trace already emitted

  EXPECT_EQ((*sink)->lines_written(), 2);
  sink->reset();  // flush + close

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) ExpectWellFormedJsonLine(line);

  // Both lines carry the tenant and the expected span skeleton.
  EXPECT_NE(lines[0].find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(lines[0].find("market.get"), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"OK\""), std::string::npos)
      << lines[0];

  // The failed query's trace records the error outcome, the access that
  // was in flight, and the retries that were burned.
  EXPECT_NE(lines[1].find("\"status\":\"Unavailable\""), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("access:Weather"), std::string::npos);
  EXPECT_NE(lines[1].find("\"retries\""), std::string::npos);
}

TEST_F(TraceSinkTest, DisabledTracingEmitsNothing) {
  const std::string path =
      ::testing::TempDir() + "/payless_trace_sink_disabled.jsonl";
  Result<std::unique_ptr<JsonlTraceSink>> sink = JsonlTraceSink::Open(path);
  ASSERT_TRUE(sink.ok());

  Observability obs;
  obs.trace_sink = sink->get();
  {
    PayLessConfig config;
    config.observability = &obs;
    config.enable_tracing = false;
    PayLess client(&cat_, market_.get(), config);
    ASSERT_TRUE(client.LoadLocalTable("CityMap", city_rows_).ok());
    ASSERT_TRUE(
        client.Query(kBindSql, {Value(int64_t{1}), Value(int64_t{2})}).ok());
  }
  EXPECT_EQ((*sink)->lines_written(), 0);
}

}  // namespace
}  // namespace payless::obs
