#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

namespace payless {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1 << 30) == b.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(9, 9), 9);
}

TEST(RngTest, IndexCoversAllSlots) {
  Rng rng(11);
  std::map<size_t, int> seen;
  for (int i = 0; i < 1000; ++i) ++seen[rng.Index(4)];
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  const ZipfDistribution zipf(100, 1.0);
  Rng rng(17);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
  // Zipf(1): rank 1 draws about 1/H(100) ~ 19% of the mass.
  EXPECT_GT(counts[1], 20000 / 8);
}

TEST(ZipfTest, SamplesStayInRange) {
  const ZipfDistribution zipf(10, 1.0);
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const int64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 10);
  }
}

TEST(ZipfTest, ZipfZeroIsNearUniform) {
  const ZipfDistribution zipf(4, 0.0);
  Rng rng(23);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int64_t r = 1; r <= 4; ++r) {
    EXPECT_GT(counts[r], 8000);
    EXPECT_LT(counts[r], 12000);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  const ZipfDistribution zipf(1, 1.0);
  Rng rng(29);
  EXPECT_EQ(zipf.Sample(&rng), 1);
}

}  // namespace
}  // namespace payless
