// PayLess's optimizer (§4, Algorithm 2): plan choice, the three theorems,
// cost models, feasibility under binding patterns, counters, and
// equivalence between the reduced and exhaustive search strategies.
#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "obs/explain.h"
#include "sql/parser.h"

namespace payless::core {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());

    // The motivating-example shape: one station per city, June coverage.
    TableDef station;
    station.name = "Station";
    station.dataset = "WHW";
    std::vector<std::string> cities;
    for (int i = 0; i < 200; ++i) cities.push_back("C" + std::to_string(100 + i));
    station.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 200)),
        ColumnDef::Free("City", ValueType::kString,
                        AttrDomain::Categorical(cities))};
    station.cardinality = 200;
    ASSERT_TRUE(cat_.RegisterTable(station).ok());

    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 200)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, 30)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = 200 * 30;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    // A bind-only table: R(y^b, z^f) of Fig. 4.
    TableDef restricted;
    restricted.name = "Restricted";
    restricted.dataset = "WHW";
    restricted.columns = {
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, 200)),
        ColumnDef::Output("Payload", ValueType::kDouble)};
    restricted.cardinality = 1000;
    ASSERT_TRUE(cat_.RegisterTable(restricted).ok());

    // Local table.
    TableDef zipmap;
    zipmap.name = "ZipMap";
    zipmap.is_local = true;
    zipmap.columns = {
        ColumnDef::Free("ZipCode", ValueType::kInt64,
                        AttrDomain::Numeric(1, 100)),
        ColumnDef::Free("City", ValueType::kString,
                        AttrDomain::Categorical(cities))};
    zipmap.cardinality = 100;
    ASSERT_TRUE(cat_.RegisterTable(zipmap).ok());

    // An unjoinable extra market table for the Theorem 3 case.
    TableDef island;
    island.name = "Island";
    island.dataset = "WHW";
    island.columns = {ColumnDef::Free("K", ValueType::kInt64,
                                      AttrDomain::Numeric(1, 1000))};
    island.cardinality = 500;
    ASSERT_TRUE(cat_.RegisterTable(island).ok());

    for (const std::string& name : cat_.TableNames()) {
      stats_.RegisterTable(*cat_.FindTable(name));
    }
  }

  sql::BoundQuery BindSql(const std::string& sql,
                          std::vector<Value> params = {}) {
    Result<sql::SelectStmt> stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat_, params);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(*bound);
  }

  Optimizer MakeOptimizer(OptimizerOptions options = {}) {
    return Optimizer(&cat_, &stats_, &store_, options);
  }

  catalog::Catalog cat_;
  stats::StatsRegistry stats_;
  semstore::SemanticStore store_;
};

TEST_F(OptimizerTest, SingleRelationPlainCall) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 1 AND "
      "Date <= 30");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->plan.accesses.size(), 1u);
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kPlain);
  // 6000 rows / 100 per page = 60 transactions.
  EXPECT_EQ(r->plan.est_cost, 60);
}

TEST_F(OptimizerTest, BindJoinWinsWhenSelective) {
  // Fig. 1: one Seattle-like city => bind join at ~2 transactions beats the
  // 60-transaction range call.
  const sql::BoundQuery q = BindSql(
      "SELECT Temperature FROM Station, Weather "
      "WHERE City = 'C100' AND Station.Country = 'US' AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 30 AND "
      "Station.StationID = Weather.StationID");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->plan.accesses.size(), 2u);
  EXPECT_EQ(r->plan.accesses[0].rel, 0u);  // Station first
  EXPECT_EQ(r->plan.accesses[1].kind, AccessSpec::Kind::kBind);
  EXPECT_LE(r->plan.est_cost, 3);
}

TEST_F(OptimizerTest, PlainWinsWhenBindingIsWide) {
  // No city filter: all 200 stations would bind; the range call wins
  // (the paper's 20-stations-15-in-Seattle counterexample, scaled).
  const sql::BoundQuery q = BindSql(
      "SELECT Temperature FROM Station, Weather "
      "WHERE Station.Country = 'US' AND Weather.Country = 'US' AND "
      "Date >= 1 AND Date <= 30 AND Station.StationID = Weather.StationID");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  const AccessSpec& weather_access = r->plan.accesses.back();
  EXPECT_EQ(weather_access.kind, AccessSpec::Kind::kPlain);
}

TEST_F(OptimizerTest, MinimizingCallsPrefersOneBigCall) {
  // Under the call-count model even a selective bind join loses to a single
  // range call once it needs more than one call.
  OptimizerOptions options;
  options.cost_model = CostModelKind::kCalls;
  options.use_sqr = false;
  const sql::BoundQuery q = BindSql(
      "SELECT Temperature FROM Station, Weather "
      "WHERE City = 'C100' AND Station.Country = 'US' AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 30 AND "
      "Station.StationID = Weather.StationID");
  Result<OptimizeResult> r = MakeOptimizer(options).Optimize(q);
  ASSERT_TRUE(r.ok());
  // Station (1 call) + Weather (1 call): cost 2 calls.
  EXPECT_EQ(r->plan.est_cost, 2);
  EXPECT_EQ(r->plan.accesses.back().kind, AccessSpec::Kind::kPlain);
}

TEST_F(OptimizerTest, BindOnlyTableForcesBindJoin) {
  const sql::BoundQuery q = BindSql(
      "SELECT Payload FROM Station, Restricted "
      "WHERE City = 'C101' AND Country = 'US' AND "
      "Station.StationID = Restricted.StationID");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses.back().kind, AccessSpec::Kind::kBind);
}

TEST_F(OptimizerTest, BindOnlyTableWithoutJoinIsInfeasible) {
  const sql::BoundQuery q = BindSql("SELECT Payload FROM Restricted");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

TEST_F(OptimizerTest, LocalRelationsAreFreeAndFirst) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM ZipMap, Station "
      "WHERE ZipMap.City = Station.City AND ZipMap.ZipCode = 7");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kLocal);
  EXPECT_EQ(q.relations[r->plan.accesses[0].rel].def->name, "ZipMap");
}

TEST_F(OptimizerTest, AlwaysEmptyRelationIsFree) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Date = 5 AND Date = 6");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kEmpty);
  EXPECT_EQ(r->plan.est_cost, 0);
}

TEST_F(OptimizerTest, CachedRelationIsZeroPrice) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 5 AND "
      "Date <= 10");
  store_.Store(*cat_.FindTable("Weather"),
               q.relations[0].QueryRegion(), {}, 0);
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kCached);
  EXPECT_EQ(r->plan.est_cost, 0);
}

TEST_F(OptimizerTest, WithoutSqrCacheIsIgnored) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 5 AND "
      "Date <= 10");
  store_.Store(*cat_.FindTable("Weather"), q.relations[0].QueryRegion(), {},
               0);
  OptimizerOptions options;
  options.use_sqr = false;
  Result<OptimizeResult> r = MakeOptimizer(options).Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kPlain);
  EXPECT_GT(r->plan.est_cost, 0);
}

TEST_F(OptimizerTest, PartialCoverageReducesPlainCost) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 1 AND "
      "Date <= 30");
  Result<OptimizeResult> cold = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(cold.ok());
  // Cache the first half of the month.
  Box half = q.relations[0].QueryRegion();
  half.dim(2) = Interval(1, 15);
  store_.Store(*cat_.FindTable("Weather"), half, {}, 0);
  Result<OptimizeResult> warm = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->plan.est_cost, cold->plan.est_cost);
  EXPECT_GT(warm->plan.est_cost, 0);
}

TEST_F(OptimizerTest, Theorem3DisconnectedSubsetsUseCartesian) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather, Island WHERE Country = 'US' AND Date >= 1 "
      "AND Date <= 2 AND Island.K >= 1 AND Island.K <= 10");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->plan.accesses.size(), 2u);
  // Cost is the sum of the two independent accesses.
  int64_t sum = 0;
  for (const AccessSpec& a : r->plan.accesses) sum += a.est_transactions;
  EXPECT_EQ(r->plan.est_cost, sum);
}

TEST_F(OptimizerTest, CountersGrowWithRelations) {
  const sql::BoundQuery q1 = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 1 AND "
      "Date <= 2");
  const sql::BoundQuery q3 = BindSql(
      "SELECT Temperature FROM Station, Weather, ZipMap "
      "WHERE ZipMap.City = Station.City AND Station.StationID = "
      "Weather.StationID AND Weather.Country = 'US' AND Date >= 1 AND "
      "Date <= 2");
  Result<OptimizeResult> r1 = MakeOptimizer().Optimize(q1);
  Result<OptimizeResult> r3 = MakeOptimizer().Optimize(q3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r3->counters.evaluated_plans, r1->counters.evaluated_plans);
}

TEST_F(OptimizerTest, ExhaustiveCountsMorePlans) {
  const sql::BoundQuery q = BindSql(
      "SELECT Temperature FROM Station, Weather, ZipMap "
      "WHERE ZipMap.City = Station.City AND Station.StationID = "
      "Weather.StationID AND Weather.Country = 'US' AND Date >= 1 AND "
      "Date <= 2");
  OptimizerOptions exhaustive;
  exhaustive.use_search_reduction = false;
  exhaustive.use_sqr = false;
  OptimizerOptions reduced;
  reduced.use_sqr = false;
  Result<OptimizeResult> a = MakeOptimizer(reduced).Optimize(q);
  Result<OptimizeResult> b = MakeOptimizer(exhaustive).Optimize(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->counters.evaluated_plans, a->counters.evaluated_plans);
  // Theorem 1: the reduced search must find a plan at least as cheap.
  EXPECT_LE(a->plan.est_cost, b->plan.est_cost);
}

TEST_F(OptimizerTest, ExhaustiveFindsSameCostAsLeftDeep) {
  // Theorem 1 end-to-end: on several query shapes the two strategies agree
  // on the optimal cost.
  const std::vector<std::string> queries = {
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 1 AND Date <= 9",
      "SELECT Temperature FROM Station, Weather WHERE City = 'C105' AND "
      "Station.Country = 'US' AND Weather.Country = 'US' AND Date >= 1 AND "
      "Date <= 30 AND Station.StationID = Weather.StationID",
      "SELECT Payload FROM Station, Restricted WHERE City = 'C101' AND "
      "Country = 'US' AND Station.StationID = Restricted.StationID",
  };
  for (const std::string& sql : queries) {
    SCOPED_TRACE(sql);
    const sql::BoundQuery q = BindSql(sql);
    OptimizerOptions reduced;
    reduced.use_sqr = false;
    OptimizerOptions exhaustive;
    exhaustive.use_search_reduction = false;
    exhaustive.use_sqr = false;
    Result<OptimizeResult> a = MakeOptimizer(reduced).Optimize(q);
    Result<OptimizeResult> b = MakeOptimizer(exhaustive).Optimize(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->plan.est_cost, b->plan.est_cost);
  }
}

TEST_F(OptimizerTest, SqrCountsBoundingBoxes) {
  // A partially covered region forces remainder generation.
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 1 AND "
      "Date <= 30");
  Box half = q.relations[0].QueryRegion();
  half.dim(2) = Interval(10, 20);
  store_.Store(*cat_.FindTable("Weather"), half, {}, 0);
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->counters.enumerated_bboxes, 0u);
  EXPECT_GT(r->counters.kept_bboxes, 0u);
  EXPECT_LE(r->counters.kept_bboxes, r->counters.enumerated_bboxes);
}

TEST_F(OptimizerTest, ConsistencyHorizonHidesOldViews) {
  const sql::BoundQuery q = BindSql(
      "SELECT * FROM Weather WHERE Country = 'US' AND Date >= 5 AND "
      "Date <= 10");
  store_.Store(*cat_.FindTable("Weather"), q.relations[0].QueryRegion(), {},
               /*epoch=*/1);
  OptimizerOptions options;
  options.min_epoch = 5;  // view from epoch 1 is too old
  Result<OptimizeResult> r = MakeOptimizer(options).Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plan.accesses[0].kind, AccessSpec::Kind::kPlain);
}

TEST_F(OptimizerTest, EmptyQueryRejected) {
  sql::BoundQuery q;
  EXPECT_FALSE(MakeOptimizer().Optimize(q).ok());
}

TEST_F(OptimizerTest, PlanDescribeMentionsAccessKinds) {
  const sql::BoundQuery q = BindSql(
      "SELECT Temperature FROM Station, Weather "
      "WHERE City = 'C100' AND Station.Country = 'US' AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 30 AND "
      "Station.StationID = Weather.StationID");
  Result<OptimizeResult> r = MakeOptimizer().Optimize(q);
  ASSERT_TRUE(r.ok());
  const std::string desc = obs::RenderPlan(r->plan, q);
  EXPECT_NE(desc.find("Station"), std::string::npos);
  EXPECT_NE(desc.find("bind-join"), std::string::npos);
}

TEST_F(OptimizerTest, AccessKindNames) {
  EXPECT_STREQ(AccessKindName(AccessSpec::Kind::kLocal), "local");
  EXPECT_STREQ(AccessKindName(AccessSpec::Kind::kEmpty), "empty");
  EXPECT_STREQ(AccessKindName(AccessSpec::Kind::kCached), "cached");
  EXPECT_STREQ(AccessKindName(AccessSpec::Kind::kPlain), "call");
  EXPECT_STREQ(AccessKindName(AccessSpec::Kind::kBind), "bind-join");
}

}  // namespace
}  // namespace payless::core
