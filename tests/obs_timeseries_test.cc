// The metric time-series sampler: deterministic sampling via SampleOnce,
// ring-buffer wraparound semantics, JSON payload shapes, and the
// background thread's start/stop lifecycle.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace payless::obs {
namespace {

TEST(TimeSeriesSamplerTest, SampleOnceCapturesCountersAndGauges) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total");
  Gauge* g = registry.GetGauge("inflight");

  TimeSeriesSampler sampler(&registry, {1'000'000, 8});
  c->Add(3);
  g->Set(7);
  sampler.SampleOnce();
  c->Add(2);
  g->Set(-1);  // gauges may go negative (net savings does)
  sampler.SampleOnce();

  EXPECT_EQ(sampler.Series("requests_total"),
            (std::vector<int64_t>{3, 5}));
  EXPECT_EQ(sampler.Series("inflight"), (std::vector<int64_t>{7, -1}));
  EXPECT_TRUE(sampler.Series("no_such_metric").empty());

  const std::vector<std::string> names = sampler.Names();
  ASSERT_EQ(names.size(), 2u);  // sorted map order
  EXPECT_EQ(names[0], "inflight");
  EXPECT_EQ(names[1], "requests_total");
}

TEST(TimeSeriesSamplerTest, RingOverwritesOldestAndReadsOldestFirst) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ticks");
  TimeSeriesSampler sampler(&registry, {1'000'000, 3});
  ASSERT_EQ(sampler.capacity(), 3u);

  for (int i = 1; i <= 5; ++i) {
    c->Add(1);
    sampler.SampleOnce();
  }
  // Five samples 1..5 through a capacity-3 ring: the oldest two fell off.
  EXPECT_EQ(sampler.Series("ticks"), (std::vector<int64_t>{3, 4, 5}));
}

TEST(TimeSeriesSamplerTest, HistogramsAppearAsCountAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", {10, 100});
  TimeSeriesSampler sampler(&registry, {1'000'000, 4});
  h->Observe(5);
  h->Observe(50);
  sampler.SampleOnce();

  EXPECT_EQ(sampler.Series("latency_count"), (std::vector<int64_t>{2}));
  EXPECT_EQ(sampler.Series("latency_sum"), (std::vector<int64_t>{55}));
}

TEST(TimeSeriesSamplerTest, SeriesLateToTheRegistryStartShort) {
  MetricsRegistry registry;
  Counter* early = registry.GetCounter("early");
  TimeSeriesSampler sampler(&registry, {1'000'000, 8});
  early->Add(1);
  sampler.SampleOnce();
  // A metric born after the first snapshot simply has a shorter series.
  registry.GetCounter("late")->Add(9);
  sampler.SampleOnce();

  EXPECT_EQ(sampler.Series("early").size(), 2u);
  EXPECT_EQ(sampler.Series("late"), (std::vector<int64_t>{9}));
}

TEST(TimeSeriesSamplerTest, JsonShapes) {
  MetricsRegistry registry;
  registry.GetCounter("ticks")->Add(4);
  TimeSeriesSampler sampler(&registry, {250'000, 16});
  sampler.SampleOnce();
  sampler.SampleOnce();

  const std::string series = sampler.SeriesJson("ticks");
  EXPECT_NE(series.find("\"name\":\"ticks\""), std::string::npos) << series;
  EXPECT_NE(series.find("\"period_micros\":250000"), std::string::npos)
      << series;
  EXPECT_NE(series.find("\"samples\":[4,4]"), std::string::npos) << series;

  const std::string index = sampler.IndexJson();
  EXPECT_NE(index.find("\"capacity\":16"), std::string::npos) << index;
  EXPECT_NE(index.find("\"ticks\""), std::string::npos) << index;
}

TEST(TimeSeriesSamplerTest, BackgroundThreadSamplesAndStopsCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("beat")->Add(1);
  TimeSeriesSampler sampler(&registry, {1'000, 64});  // 1ms period

  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent
  // The thread samples immediately, then every period; wait for a few.
  for (int i = 0; i < 200 && sampler.Series("beat").size() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sampler.Series("beat").size(), 3u);

  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent
  const size_t frozen = sampler.Series("beat").size();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.Series("beat").size(), frozen);  // really stopped
}

}  // namespace
}  // namespace payless::obs
