// Cost attribution ledger: unit semantics plus THE invariant of the
// subsystem — for a connector wired to one ledger, the ledger total equals
// the billing meter total under serial execution, under 8-thread
// concurrent execution, and under a 20%-fault-rate storm where lost
// responses are billed to nobody's benefit.
#include "obs/cost_ledger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"
#include "market/fault_injector.h"

namespace payless::obs {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using exec::PayLess;
using exec::PayLessConfig;

TEST(CostLedgerTest, RecordsAndAggregates) {
  CostLedger ledger;
  ledger.Record("acme", 1, "WHW", 3, 3.0);
  ledger.Record("acme", 1, "GEO", 2, 4.0);
  ledger.Record("acme", 2, "WHW", 5, 5.0);
  ledger.Record("initech", 7, "WHW", 1, 1.0);

  EXPECT_EQ(ledger.total_transactions(), 11);
  EXPECT_DOUBLE_EQ(ledger.total_price(), 13.0);
  EXPECT_EQ(ledger.total_calls(), 4);
  EXPECT_EQ(ledger.TenantTransactions("acme"), 10);
  EXPECT_DOUBLE_EQ(ledger.TenantPrice("acme"), 12.0);
  EXPECT_EQ(ledger.TenantTransactions("initech"), 1);
  EXPECT_EQ(ledger.TenantTransactions("ghost"), 0);

  const auto q1 = ledger.DatasetBreakdown("acme", 1);
  ASSERT_EQ(q1.size(), 2u);
  EXPECT_EQ(q1.at("WHW"), 3);
  EXPECT_EQ(q1.at("GEO"), 2);
  EXPECT_TRUE(ledger.DatasetBreakdown("acme", 99).empty());

  const auto by_dataset = ledger.TenantByDataset("acme");
  ASSERT_EQ(by_dataset.size(), 2u);
  EXPECT_EQ(by_dataset.at("WHW").transactions, 8);
  EXPECT_EQ(by_dataset.at("WHW").calls, 2);

  const std::string json = ledger.ToJson();
  EXPECT_NE(json.find("\"acme\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_transactions\":11"), std::string::npos) << json;

  ledger.Reset();
  EXPECT_EQ(ledger.total_transactions(), 0);
  EXPECT_EQ(ledger.TenantTransactions("acme"), 0);
}

class LedgerInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kStations * kDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kStations))};
    citymap.cardinality = kStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t s = 1; s <= kStations; ++s) {
      for (int64_t d = 1; d <= kDates; ++d) {
        rows.push_back(Row{Value("US"), Value(s), Value(d),
                           Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    for (int64_t i = 1; i <= kStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("CityMap", city_rows_).ok());
    return client;
  }

  static constexpr int64_t kStations = 32;
  static constexpr int64_t kDates = 4;
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= 4";

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(LedgerInvariantTest, SerialQueriesMatchMeterExactly) {
  auto client = NewClient();
  int64_t reported = 0;
  for (int64_t lo = 1; lo <= kStations; lo += 4) {
    const auto report = client->QueryWithReport(
        kBindSql, {Value(lo), Value(lo + 3)});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->ok());
    reported += report->transactions_spent;
    // The per-dataset breakdown partitions this query's spend.
    int64_t by_dataset = 0;
    for (const auto& [dataset, tx] : report->transactions_by_dataset) {
      by_dataset += tx;
    }
    EXPECT_EQ(by_dataset, report->transactions_spent);
  }
  const CostLedger& ledger = client->observability()->ledger;
  EXPECT_GT(client->meter().total_transactions(), 0);
  EXPECT_EQ(ledger.total_transactions(),
            client->meter().total_transactions());
  EXPECT_DOUBLE_EQ(ledger.TenantPrice("default"),
                   client->meter().total_price());
  EXPECT_EQ(ledger.TenantTransactions("default"), reported);
}

// Runs in the TSan preset: 8 client threads on disjoint footprints against
// ONE shared client; attribution must lose nothing to races.
TEST_F(LedgerInvariantTest, LedgerMatchesMeterUnderEightThreads) {
  auto client = NewClient();
  constexpr int kThreads = 8;
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int64_t f = next.fetch_add(1); f < kStations / 4;
           f = next.fetch_add(1)) {
        const int64_t lo = f * 4 + 1;
        const auto result =
            client->Query(kBindSql, {Value(lo), Value(lo + 3)});
        if (!result.ok()) failed.store(true);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ASSERT_FALSE(failed.load());

  const CostLedger& ledger = client->observability()->ledger;
  EXPECT_GT(client->meter().total_transactions(), 0);
  EXPECT_EQ(ledger.total_transactions(),
            client->meter().total_transactions());
  EXPECT_DOUBLE_EQ(ledger.total_price(), client->meter().total_price());
}

// 20% injected faults, including post-evaluation lost responses that are
// billed but never delivered: the ledger must mirror the meter EXACTLY —
// waste is attributed to the tenant who caused the call.
TEST_F(LedgerInvariantTest, LedgerMatchesMeterUnderFaultStorm) {
  PayLessConfig config;
  config.retry.max_attempts = 12;
  config.retry.initial_backoff_micros = 20;
  config.retry.max_backoff_micros = 500;
  auto client = NewClient(config);

  market::FaultProfile profile;
  profile.transient_rate = 0.20 / 3.0;
  profile.lost_response_rate = 0.20 / 3.0;
  profile.rate_limit_rate = 0.20 / 3.0;
  profile.retry_after_micros = 100;
  profile.seed = 42;
  market::FaultInjector injector(profile);
  client->connector()->SetFaultInjector(&injector);

  for (int64_t lo = 1; lo <= kStations; lo += 4) {
    const auto report = client->QueryWithReport(
        kBindSql, {Value(lo), Value(lo + 3)});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->ok()) << report->error.ToString();
  }
  client->connector()->SetFaultInjector(nullptr);

  const market::RetryStats stats = client->connector()->retry_stats();
  EXPECT_GT(stats.wasted_transactions, 0)
      << "fault storm injected no lost responses; raise kStations";
  const CostLedger& ledger = client->observability()->ledger;
  EXPECT_EQ(ledger.total_transactions(),
            client->meter().total_transactions());
  EXPECT_DOUBLE_EQ(ledger.total_price(), client->meter().total_price());
}

}  // namespace
}  // namespace payless::obs
