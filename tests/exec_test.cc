// Execution engine + local evaluation: every access kind fetches exactly
// the right tuples, residuals apply, aggregates compute, and all of it is
// cross-checked against the reference oracle.
#include "exec/execution_engine.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/local_eval.h"
#include "exec/reference.h"
#include "sql/parser.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 10}).ok());

    TableDef users;
    users.name = "Users";
    users.dataset = "D";
    users.columns = {
        ColumnDef::Free("UserID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 20)),
        ColumnDef::Free("Segment", ValueType::kString,
                        AttrDomain::Categorical({"gold", "silver"})),
        ColumnDef::Output("Spend", ValueType::kDouble)};
    users.cardinality = 20;
    ASSERT_TRUE(cat_.RegisterTable(users).ok());

    TableDef events;
    events.name = "Events";
    events.dataset = "D";
    events.columns = {
        ColumnDef::Bound("UserID", ValueType::kInt64,
                         AttrDomain::Numeric(1, 20)),
        ColumnDef::Free("Day", ValueType::kInt64, AttrDomain::Numeric(1, 10)),
        ColumnDef::Output("Clicks", ValueType::kDouble)};
    events.cardinality = 200;
    ASSERT_TRUE(cat_.RegisterTable(events).ok());

    TableDef names;
    names.name = "Names";
    names.is_local = true;
    names.columns = {
        ColumnDef::Free("UserID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 20)),
        ColumnDef::Output("Name", ValueType::kString)};
    names.cardinality = 20;
    ASSERT_TRUE(cat_.RegisterTable(names).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> user_rows, event_rows, name_rows;
    for (int64_t u = 1; u <= 20; ++u) {
      user_rows.push_back(Row{Value(u), Value(u % 3 == 0 ? "gold" : "silver"),
                              Value(static_cast<double>(u) * 10)});
      name_rows.push_back(Row{Value(u), Value("user" + std::to_string(u))});
      for (int64_t day = 1; day <= 10; ++day) {
        event_rows.push_back(
            Row{Value(u), Value(day), Value(static_cast<double>(u + day))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Users", std::move(user_rows)).ok());
    ASSERT_TRUE(market_->HostTable("Events", std::move(event_rows)).ok());
    ASSERT_TRUE(db_.CreateTable(*cat_.FindTable("Names")).ok());
    ASSERT_TRUE(db_.InsertRows("Names", name_rows).ok());

    connector_ = std::make_unique<market::MarketConnector>(market_.get());
    for (const std::string& name : cat_.TableNames()) {
      stats_.RegisterTable(*cat_.FindTable(name));
    }
    connector_->AddListener([this](const market::RestCall& call,
                                   const market::CallResult& result) {
      const TableDef* def = cat_.FindTable(call.table);
      store_.Store(*def, market::CallRegion(*def, call), result.rows, 0);
      stats_.Feedback(call.table, market::CallRegion(*def, call),
                      result.num_records);
    });
  }

  sql::BoundQuery BindSql(const std::string& sql) {
    Result<sql::SelectStmt> stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat_, {});
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(*bound);
  }

  Result<storage::Table> Run(const std::string& sql, ExecStats* stats = nullptr) {
    const sql::BoundQuery q = BindSql(sql);
    const core::Optimizer optimizer(&cat_, &stats_, &store_, {});
    Result<core::OptimizeResult> plan = optimizer.Optimize(q);
    if (!plan.ok()) return plan.status();
    ExecutionEngine engine(&cat_, &db_, connector_.get(), &store_, &stats_);
    return engine.Execute(q, plan->plan, ExecConfig{}, stats);
  }

  void ExpectMatchesOracle(const std::string& sql) {
    Result<storage::Table> got = Run(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want =
        ReferenceEvaluate(cat_, *market_, db_, sql);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_TRUE(SameResult(*got, *want))
        << "got " << got->num_rows() << " rows, want " << want->num_rows();
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::unique_ptr<market::MarketConnector> connector_;
  storage::Database db_;
  semstore::SemanticStore store_;
  stats::StatsRegistry stats_;
};

TEST_F(ExecTest, PlainAccessSelectStar) {
  ExpectMatchesOracle("SELECT * FROM Users WHERE Segment = 'gold'");
}

TEST_F(ExecTest, ResidualOnOutputAttribute) {
  ExpectMatchesOracle("SELECT * FROM Users WHERE Spend >= 100.0");
}

TEST_F(ExecTest, LocalJoinWithMarketTable) {
  ExpectMatchesOracle(
      "SELECT Name, Spend FROM Names, Users "
      "WHERE Names.UserID = Users.UserID AND Segment = 'gold'");
}

TEST_F(ExecTest, BindJoinIntoBoundTable) {
  ExecStats stats;
  Result<storage::Table> got = Run(
      "SELECT Clicks FROM Users, Events "
      "WHERE Segment = 'gold' AND Users.UserID = Events.UserID AND "
      "Day >= 2 AND Day <= 4",
      &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // 6 gold users (3,6,9,12,15,18) x 3 days.
  EXPECT_EQ(got->num_rows(), 18u);
  EXPECT_GT(stats.calls, 0);
}

TEST_F(ExecTest, BindJoinMatchesOracle) {
  ExpectMatchesOracle(
      "SELECT Clicks FROM Users, Events "
      "WHERE Segment = 'gold' AND Users.UserID = Events.UserID AND "
      "Day >= 2 AND Day <= 4");
}

TEST_F(ExecTest, SecondRunServedFromCache) {
  const std::string sql = "SELECT * FROM Users WHERE Segment = 'silver'";
  ASSERT_TRUE(Run(sql).ok());
  const int64_t after_first = connector_->meter().total_transactions();
  ExecStats stats;
  Result<storage::Table> again = Run(sql, &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(connector_->meter().total_transactions(), after_first);
  EXPECT_EQ(stats.calls, 0);
  EXPECT_GT(stats.rows_from_cache, 0);
  ExpectMatchesOracle(sql);
}

TEST_F(ExecTest, OverlappingQueryBuysOnlyRemainder) {
  ASSERT_TRUE(
      Run("SELECT * FROM Events, Users WHERE Users.UserID = Events.UserID "
          "AND Users.UserID >= 5 AND Users.UserID <= 8 AND Day >= 1 AND "
          "Day <= 5")
          .ok());
  const int64_t after_first = connector_->meter().total_transactions();
  // Extends the day range: only days 6..7 of those users are new.
  ExecStats stats;
  ASSERT_TRUE(
      Run("SELECT * FROM Events, Users WHERE Users.UserID = Events.UserID "
          "AND Users.UserID >= 5 AND Users.UserID <= 8 AND Day >= 1 AND "
          "Day <= 7",
          &stats)
          .ok());
  const int64_t delta = connector_->meter().total_transactions() - after_first;
  EXPECT_GT(stats.rows_from_cache, 0);
  EXPECT_LE(delta, 2);  // far less than re-buying the whole range
  ExpectMatchesOracle(
      "SELECT * FROM Events, Users WHERE Users.UserID = Events.UserID "
      "AND Users.UserID >= 5 AND Users.UserID <= 8 AND Day >= 1 AND "
      "Day <= 7");
}

TEST_F(ExecTest, GroupByAggregate) {
  ExpectMatchesOracle(
      "SELECT Segment, COUNT(*), AVG(Spend) FROM Users GROUP BY Segment");
}

TEST_F(ExecTest, GlobalAggregateOverEmptySelection) {
  Result<storage::Table> got =
      Run("SELECT COUNT(*) FROM Users WHERE Segment = 'gold' AND "
          "Segment = 'silver'");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->num_rows(), 1u);
  EXPECT_EQ(got->rows()[0][0], Value(int64_t{0}));
}

TEST_F(ExecTest, EmptyRelationShortCircuits) {
  ExecStats stats;
  Result<storage::Table> got = Run(
      "SELECT * FROM Users WHERE UserID = 3 AND UserID = 4", &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_rows(), 0u);
  EXPECT_EQ(stats.calls, 0);
}

TEST_F(ExecTest, SelectListProjectionAndAliases) {
  Result<storage::Table> got =
      Run("SELECT Spend AS money, UserID FROM Users WHERE UserID = 7");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->num_rows(), 1u);
  EXPECT_EQ(got->schema().column(0).name, "money");
  EXPECT_EQ(got->rows()[0][0], Value(70.0));
  EXPECT_EQ(got->rows()[0][1], Value(int64_t{7}));
}

TEST_F(ExecTest, ThreeWayJoinMatchesOracle) {
  ExpectMatchesOracle(
      "SELECT Name, Clicks FROM Names, Users, Events "
      "WHERE Names.UserID = Users.UserID AND Users.UserID = Events.UserID "
      "AND Segment = 'gold' AND Day >= 9 AND Day <= 10");
}

TEST_F(ExecTest, PlanMustCoverAllRelations) {
  const sql::BoundQuery q = BindSql("SELECT * FROM Users");
  ExecutionEngine engine(&cat_, &db_, connector_.get(), &store_, &stats_);
  core::Plan empty_plan;
  EXPECT_FALSE(engine.Execute(q, empty_plan, ExecConfig{}).ok());
}

TEST_F(ExecTest, LocalEvalRejectsArityMismatch) {
  const sql::BoundQuery q = BindSql("SELECT * FROM Users");
  EXPECT_FALSE(EvaluateLocally(q, {}).ok());
}

TEST_F(ExecTest, WithoutSqrEveryRunPaysAgain) {
  const sql::BoundQuery q =
      BindSql("SELECT * FROM Users WHERE Segment = 'gold'");
  core::OptimizerOptions opt;
  opt.use_sqr = false;
  const core::Optimizer optimizer(&cat_, &stats_, &store_, opt);
  Result<core::OptimizeResult> plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok());
  ExecutionEngine engine(&cat_, &db_, connector_.get(), &store_, &stats_);
  ExecConfig config;
  config.use_sqr = false;
  ASSERT_TRUE(engine.Execute(q, plan->plan, config).ok());
  const int64_t first = connector_->meter().total_transactions();
  ASSERT_TRUE(engine.Execute(q, plan->plan, config).ok());
  EXPECT_EQ(connector_->meter().total_transactions(), 2 * first);
}

}  // namespace
}  // namespace payless::exec
