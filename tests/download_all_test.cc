// Download All baseline: whole-table purchase semantics, including tables
// whose binding pattern forbids a single unconstrained download.
#include "exec/download_all.h"

#include <gtest/gtest.h>

#include "exec/reference.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class DownloadAllTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 10}).ok());

    TableDef open;
    open.name = "Open";
    open.dataset = "D";
    open.columns = {
        ColumnDef::Free("K", ValueType::kInt64, AttrDomain::Numeric(1, 30)),
        ColumnDef::Output("V", ValueType::kDouble)};
    open.cardinality = 30;
    ASSERT_TRUE(cat_.RegisterTable(open).ok());

    // Numeric bound attribute: downloadable through one explicit
    // whole-domain range call.
    TableDef gated;
    gated.name = "Gated";
    gated.dataset = "D";
    gated.columns = {
        ColumnDef::Bound("K", ValueType::kInt64, AttrDomain::Numeric(1, 30)),
        ColumnDef::Output("V", ValueType::kDouble)};
    gated.cardinality = 30;
    ASSERT_TRUE(cat_.RegisterTable(gated).ok());

    // Categorical bound attribute: needs one call per category.
    TableDef fenced;
    fenced.name = "Fenced";
    fenced.dataset = "D";
    fenced.columns = {
        ColumnDef::Bound("C", ValueType::kString,
                         AttrDomain::Categorical({"a", "b", "c"})),
        ColumnDef::Output("V", ValueType::kDouble)};
    fenced.cardinality = 30;
    ASSERT_TRUE(cat_.RegisterTable(fenced).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> open_rows, gated_rows, fenced_rows;
    const char* cats[] = {"a", "b", "c"};
    for (int64_t k = 1; k <= 30; ++k) {
      open_rows.push_back(Row{Value(k), Value(k * 1.0)});
      gated_rows.push_back(Row{Value(k), Value(k * 2.0)});
      fenced_rows.push_back(Row{Value(cats[k % 3]), Value(k * 3.0)});
    }
    ASSERT_TRUE(market_->HostTable("Open", std::move(open_rows)).ok());
    ASSERT_TRUE(market_->HostTable("Gated", std::move(gated_rows)).ok());
    ASSERT_TRUE(market_->HostTable("Fenced", std::move(fenced_rows)).ok());
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
};

TEST_F(DownloadAllTest, OpenTableOneUnconstrainedCall) {
  DownloadAllClient client(&cat_, market_.get());
  ASSERT_TRUE(client.EnsureDownloaded("Open").ok());
  EXPECT_EQ(client.meter().total_calls(), 1);
  EXPECT_EQ(client.meter().total_transactions(), 3);  // 30 rows / 10
}

TEST_F(DownloadAllTest, NumericBoundAttrUsesWholeDomainRange) {
  DownloadAllClient client(&cat_, market_.get());
  ASSERT_TRUE(client.EnsureDownloaded("Gated").ok());
  EXPECT_EQ(client.meter().total_calls(), 1);
  EXPECT_EQ(client.local_db()->FindTable("Gated")->num_rows(), 30u);
}

TEST_F(DownloadAllTest, CategoricalBoundAttrIteratesValues) {
  DownloadAllClient client(&cat_, market_.get());
  ASSERT_TRUE(client.EnsureDownloaded("Fenced").ok());
  EXPECT_EQ(client.meter().total_calls(), 3);  // one per category
  EXPECT_EQ(client.local_db()->FindTable("Fenced")->num_rows(), 30u);
}

TEST_F(DownloadAllTest, EnsureDownloadedIdempotent) {
  DownloadAllClient client(&cat_, market_.get());
  ASSERT_TRUE(client.EnsureDownloaded("Open").ok());
  const int64_t spent = client.meter().total_transactions();
  ASSERT_TRUE(client.EnsureDownloaded("Open").ok());
  EXPECT_EQ(client.meter().total_transactions(), spent);
}

TEST_F(DownloadAllTest, MidDownloadFailureResumesWithoutDuplicates) {
  // "Fenced" downloads via three calls (one per category). Script the
  // second call to drop with retries disabled: the first category's rows
  // land, the download fails. The retried download must dedupe what is
  // already mirrored and end with the exact row count — and the rows that
  // DID land before the failure were paid for once, not twice.
  DownloadAllClient client(&cat_, market_.get());
  market::RetryPolicy policy;
  policy.max_attempts = 1;
  client.connector()->SetRetryPolicy(policy);
  market::FaultInjector injector(market::FaultProfile{});
  injector.Script(market::FaultKind::kNone);
  injector.Script(market::FaultKind::kTransientDrop);
  client.connector()->SetFaultInjector(&injector);

  Status failed = client.EnsureDownloaded("Fenced");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), Status::Code::kUnavailable);
  const storage::Table* partial = client.local_db()->FindTable("Fenced");
  ASSERT_NE(partial, nullptr);
  EXPECT_EQ(partial->num_rows(), 10u);  // first category only
  EXPECT_EQ(client.meter().total_calls(), 1);

  client.connector()->SetFaultInjector(nullptr);
  ASSERT_TRUE(client.EnsureDownloaded("Fenced").ok());
  EXPECT_EQ(client.local_db()->FindTable("Fenced")->num_rows(), 30u);
  // The resume re-buys the already-owned first category (the market has no
  // memory of the buyer), so 4 calls total — but no duplicate rows.
  EXPECT_EQ(client.meter().total_calls(), 4);

  // Fully downloaded now: further calls are free no-ops.
  const int64_t spent = client.meter().total_transactions();
  ASSERT_TRUE(client.EnsureDownloaded("Fenced").ok());
  EXPECT_EQ(client.meter().total_transactions(), spent);
}

TEST_F(DownloadAllTest, QueriesOnBoundTablesMatchOracle) {
  DownloadAllClient client(&cat_, market_.get());
  const storage::Database empty_db;
  const std::vector<std::string> queries = {
      "SELECT * FROM Gated WHERE K >= 5 AND K <= 9",
      "SELECT COUNT(*) FROM Fenced WHERE C = 'b'",
      "SELECT V FROM Open WHERE V >= 20.0"};
  for (const std::string& sql : queries) {
    SCOPED_TRACE(sql);
    Result<storage::Table> got = client.Query(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want =
        ReferenceEvaluate(cat_, *market_, empty_db, sql);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(SameResult(*got, *want));
  }
}

TEST_F(DownloadAllTest, UnknownTableErrors) {
  DownloadAllClient client(&cat_, market_.get());
  EXPECT_EQ(client.EnsureDownloaded("Nope").code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace payless::exec
