// EvaluateLocally / FilterRelation: the final local processing step shared
// by the engine, the baselines and the oracle.
#include "exec/local_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "storage/database.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class LocalEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
    TableDef left;
    left.name = "L";
    left.dataset = "D";
    left.columns = {
        ColumnDef::Free("K", ValueType::kInt64, AttrDomain::Numeric(1, 9)),
        ColumnDef::Output("A", ValueType::kString)};
    left.cardinality = 9;
    ASSERT_TRUE(cat_.RegisterTable(left).ok());
    TableDef right;
    right.name = "R";
    right.dataset = "D";
    right.columns = {
        ColumnDef::Free("K", ValueType::kInt64, AttrDomain::Numeric(1, 9)),
        ColumnDef::Output("B", ValueType::kDouble)};
    right.cardinality = 9;
    ASSERT_TRUE(cat_.RegisterTable(right).ok());
    TableDef island;
    island.name = "I";
    island.dataset = "D";
    island.columns = {
        ColumnDef::Free("X", ValueType::kInt64, AttrDomain::Numeric(1, 3))};
    island.cardinality = 3;
    ASSERT_TRUE(cat_.RegisterTable(island).ok());
  }

  sql::BoundQuery BindSql(const std::string& sql) {
    Result<sql::SelectStmt> stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok());
    Result<sql::BoundQuery> bound = sql::Bind(*stmt, cat_, {});
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(*bound);
  }

  storage::Table LTable(std::vector<std::pair<int64_t, std::string>> rows) {
    storage::Table t(storage::SchemaFromTableDef(*cat_.FindTable("L")));
    for (auto& [k, a] : rows) t.Append({Value(k), Value(a)});
    return t;
  }
  storage::Table RTable(std::vector<std::pair<int64_t, double>> rows) {
    storage::Table t(storage::SchemaFromTableDef(*cat_.FindTable("R")));
    for (auto& [k, b] : rows) t.Append({Value(k), Value(b)});
    return t;
  }
  storage::Table ITable(std::vector<int64_t> xs) {
    storage::Table t(storage::SchemaFromTableDef(*cat_.FindTable("I")));
    for (int64_t x : xs) t.Append({Value(x)});
    return t;
  }

  catalog::Catalog cat_;
};

TEST_F(LocalEvalTest, EquiJoinInFromOrder) {
  const sql::BoundQuery q =
      BindSql("SELECT A, B FROM L, R WHERE L.K = R.K");
  Result<storage::Table> out = EvaluateLocally(
      q, {LTable({{1, "x"}, {2, "y"}}), RTable({{2, 20.0}, {3, 30.0}})});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][0], Value("y"));
  EXPECT_EQ(out->rows()[0][1], Value(20.0));
}

TEST_F(LocalEvalTest, DisconnectedRelationsCartesian) {
  const sql::BoundQuery q = BindSql("SELECT * FROM L, I");
  Result<storage::Table> out =
      EvaluateLocally(q, {LTable({{1, "x"}, {2, "y"}}), ITable({1, 2, 3})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 6u);
  EXPECT_EQ(out->schema().num_columns(), 3u);
}

TEST_F(LocalEvalTest, FilterRelationAppliesConditionsAndResiduals) {
  const sql::BoundQuery q =
      BindSql("SELECT * FROM L WHERE K >= 2 AND A = 'keep'");
  const storage::Table filtered = FilterRelation(
      q, 0, LTable({{1, "keep"}, {2, "keep"}, {3, "drop"}}));
  ASSERT_EQ(filtered.num_rows(), 1u);
  EXPECT_EQ(filtered.rows()[0][0], Value(int64_t{2}));
}

TEST_F(LocalEvalTest, AlwaysEmptyRelationYieldsNoRows) {
  const sql::BoundQuery q = BindSql("SELECT * FROM L WHERE K = 2 AND K = 3");
  Result<storage::Table> out = EvaluateLocally(q, {LTable({{2, "x"}})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST_F(LocalEvalTest, StarExpandsInFromOrderRegardlessOfJoinOrder) {
  // I has no join edge, L-R join: placement order may differ from FROM
  // order, but the star expansion must follow FROM order (I, L, R).
  const sql::BoundQuery q = BindSql("SELECT * FROM I, L, R WHERE L.K = R.K");
  Result<storage::Table> out = EvaluateLocally(
      q, {ITable({7}), LTable({{1, "x"}}), RTable({{1, 10.0}})});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][0], Value(int64_t{7}));   // I.X
  EXPECT_EQ(out->rows()[0][1], Value(int64_t{1}));   // L.K
  EXPECT_EQ(out->rows()[0][2], Value("x"));          // L.A
  EXPECT_EQ(out->rows()[0][4], Value(10.0));         // R.B
}

TEST_F(LocalEvalTest, OutputColumnsCarrySelectNames) {
  const sql::BoundQuery q =
      BindSql("SELECT A AS label, K FROM L WHERE K = 1");
  Result<storage::Table> out = EvaluateLocally(q, {LTable({{1, "x"}})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).name, "label");
  EXPECT_EQ(out->schema().column(1).name, "K");
}

TEST_F(LocalEvalTest, AggregateWithJoin) {
  const sql::BoundQuery q = BindSql(
      "SELECT COUNT(*), AVG(B) FROM L, R WHERE L.K = R.K");
  Result<storage::Table> out = EvaluateLocally(
      q, {LTable({{1, "x"}, {2, "y"}, {3, "z"}}),
          RTable({{1, 10.0}, {2, 20.0}, {9, 90.0}})});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][0], Value(int64_t{2}));
  EXPECT_EQ(out->rows()[0][1], Value(15.0));
}

TEST_F(LocalEvalTest, DuplicateJoinKeysMultiplyRows) {
  const sql::BoundQuery q = BindSql("SELECT B FROM L, R WHERE L.K = R.K");
  Result<storage::Table> out = EvaluateLocally(
      q, {LTable({{1, "a"}, {1, "b"}}), RTable({{1, 10.0}, {1, 11.0}})});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 4u);
}

TEST_F(LocalEvalTest, SupersetInputRowsAreRefiltered) {
  // Callers may pass more rows than the conditions allow (e.g. a cached
  // superset); EvaluateLocally must re-apply the conditions.
  const sql::BoundQuery q = BindSql("SELECT * FROM L WHERE K = 5");
  Result<storage::Table> out =
      EvaluateLocally(q, {LTable({{4, "no"}, {5, "yes"}, {6, "no"}})});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][1], Value("yes"));
}

}  // namespace
}  // namespace payless::exec
