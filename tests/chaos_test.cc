// Chaos tests: the resilient connector against an injected-fault market.
//
// The invariants under test are the billing contract of the failure model:
//   1. transient faults and rate limits cost time, never money — after
//      retries, rows, billing and store contents equal the fault-free run;
//   2. a lost response (failure AFTER market evaluation) is billed by the
//      seller exactly once, surfaced as wasted spend, and listeners never
//      see it — the meter total is fault-free total + injected losses;
//   3. the per-dataset circuit breaker trips after consecutive failures,
//      rejects while open, half-opens after its cooldown and recovers;
//   4. deadlines fail fast (no sleeping past the budget) and surface
//      kDeadlineExceeded with the spend-so-far;
//   5. a query that dies mid-flight keeps everything it already delivered
//      in the semantic store, so re-issuing it never re-buys those rows.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/payless.h"
#include "market/call_scheduler.h"
#include "federation/market_endpoint.h"
#include "market/fault_injector.h"
#include "obs/observability.h"

namespace payless::exec {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;
using market::CircuitBreakerSet;
using market::FaultInjector;
using market::FaultKind;
using market::FaultProfile;
using market::RetryPolicy;
using market::RetryStats;

constexpr int kNumStations = 16;
constexpr int kNumDates = 4;

/// Retry policy tuned for tests: quick backoff, plenty of attempts.
RetryPolicy TestPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_micros = 20;
  policy.max_backoff_micros = 200;
  return policy;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 5}).ok());

    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumDates)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = kNumStations * kNumDates;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef station;
    station.name = "Station";
    station.dataset = "WHW";
    station.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations))};
    station.cardinality = kNumStations;
    ASSERT_TRUE(cat_.RegisterTable(station).ok());

    TableDef citymap;
    citymap.name = "CityMap";
    citymap.is_local = true;
    citymap.columns = {
        ColumnDef::Free("CityId", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations)),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, kNumStations))};
    citymap.cardinality = kNumStations;
    ASSERT_TRUE(cat_.RegisterTable(citymap).ok());

    market_ = std::make_unique<market::DataMarket>(&cat_);
    std::vector<Row> weather_rows, station_rows;
    for (int64_t s = 1; s <= kNumStations; ++s) {
      station_rows.push_back(Row{Value("US"), Value(s)});
      for (int64_t d = 1; d <= kNumDates; ++d) {
        weather_rows.push_back(Row{Value("US"), Value(s), Value(d),
                                   Value(static_cast<double>(s * 100 + d))});
      }
    }
    ASSERT_TRUE(market_->HostTable("Weather", std::move(weather_rows)).ok());
    ASSERT_TRUE(market_->HostTable("Station", std::move(station_rows)).ok());

    city_rows_.clear();
    for (int64_t i = 1; i <= kNumStations; ++i) {
      city_rows_.push_back(Row{Value(i), Value(i)});
    }
  }

  std::unique_ptr<PayLess> NewClient(PayLessConfig config = {}) {
    auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
    EXPECT_TRUE(client->LoadLocalTable("CityMap", city_rows_).ok());
    return client;
  }

  static std::vector<Row> SortedRows(const storage::Table& table) {
    std::vector<Row> rows = table.rows();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  // Bind join driven by the local CityMap: CityId range -> StationID values.
  static constexpr const char* kBindSql =
      "SELECT Temperature FROM CityMap, Weather "
      "WHERE CityId >= ? AND CityId <= ? AND "
      "CityMap.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= ?";

  // Two PRICED market accesses: Station is fetched first (and absorbed by
  // the store), then Weather via bind join — the shape for testing
  // mid-query failure with money already spent.
  static constexpr const char* kTwoMarketSql =
      "SELECT Temperature FROM Station, Weather "
      "WHERE Station.Country = 'US' AND "
      "Station.StationID = Weather.StationID AND "
      "Weather.Country = 'US' AND Date >= 1 AND Date <= ?";

  // The query mix used by the equivalence tests below.
  static std::vector<std::vector<Value>> ParamMix() {
    std::vector<std::vector<Value>> mix;
    mix.push_back({Value(int64_t{1}), Value(int64_t{6}),
                   Value(int64_t{kNumDates})});
    mix.push_back({Value(int64_t{4}), Value(int64_t{12}), Value(int64_t{2})});
    mix.push_back({Value(int64_t{1}), Value(int64_t{6}),
                   Value(int64_t{kNumDates})});  // repeat: store-reuse path
    mix.push_back({Value(int64_t{10}), Value(int64_t{16}),
                   Value(int64_t{kNumDates})});
    return mix;
  }

  /// Runs the mix on a fresh client with `profile` injected, and asserts
  /// rows / store contents / non-wasted billing match the fault-free
  /// baseline. Returns the chaos client's retry stats.
  RetryStats RunMixAndExpectBaselineEquivalence(const FaultProfile& profile) {
    auto baseline = NewClient();
    std::vector<std::vector<Row>> expected;
    for (const auto& params : ParamMix()) {
      Result<QueryReport> r = baseline->QueryWithReport(kBindSql, params);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->error.ok()) << r->error.ToString();
      expected.push_back(SortedRows(r->result));
    }

    PayLessConfig config;
    config.retry = TestPolicy();
    auto chaos = NewClient(config);
    FaultInjector injector(profile);
    chaos->connector()->SetFaultInjector(&injector);
    size_t i = 0;
    for (const auto& params : ParamMix()) {
      Result<QueryReport> r = chaos->QueryWithReport(kBindSql, params);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r->error.ok()) << r->error.ToString();
      EXPECT_EQ(SortedRows(r->result), expected[i]) << "query " << i;
      ++i;
    }
    chaos->connector()->SetFaultInjector(nullptr);

    const RetryStats stats = chaos->connector()->retry_stats();
    // Non-wasted billing identical to the fault-free run; waste is exactly
    // the injected post-evaluation losses.
    EXPECT_EQ(chaos->meter().total_transactions() - stats.wasted_transactions,
              baseline->meter().total_transactions());
    EXPECT_EQ(chaos->store().TotalStoredRows(),
              baseline->store().TotalStoredRows());
    return stats;
  }

  catalog::Catalog cat_;
  std::unique_ptr<market::DataMarket> market_;
  std::vector<Row> city_rows_;
};

TEST_F(ChaosTest, TransientFaultsRetryToIdenticalResults) {
  FaultProfile profile;
  profile.transient_rate = 0.3;
  profile.latency_spike_rate = 0.1;
  profile.latency_spike_micros = 200;
  profile.seed = 11;
  const RetryStats stats = RunMixAndExpectBaselineEquivalence(profile);
  EXPECT_GT(stats.transient_faults, 0);
  EXPECT_GT(stats.retries, 0);
  // Pre-evaluation faults never cost money.
  EXPECT_EQ(stats.wasted_calls, 0);
  EXPECT_EQ(stats.wasted_transactions, 0);
}

TEST_F(ChaosTest, RateLimitsHonorRetryAfterAndCostNothing) {
  FaultProfile profile;
  profile.rate_limit_rate = 0.4;
  profile.retry_after_micros = 100;
  profile.seed = 12;
  const RetryStats stats = RunMixAndExpectBaselineEquivalence(profile);
  EXPECT_GT(stats.rate_limited, 0);
  EXPECT_EQ(stats.wasted_transactions, 0);
}

TEST_F(ChaosTest, LostResponsesAreBilledOnceAndDeliveredOnce) {
  // Listener-visible events == delivered results, never lost responses.
  auto baseline = NewClient();
  std::atomic<int64_t> baseline_deliveries{0};
  baseline->connector()->AddListener(
      [&](const market::RestCall&, const market::CallResult&) {
        baseline_deliveries.fetch_add(1);
      });
  std::vector<std::vector<Row>> expected;
  for (const auto& params : ParamMix()) {
    Result<QueryReport> r = baseline->QueryWithReport(kBindSql, params);
    ASSERT_TRUE(r.ok() && r->error.ok());
    expected.push_back(SortedRows(r->result));
  }

  PayLessConfig config;
  config.retry = TestPolicy();
  auto chaos = NewClient(config);
  std::atomic<int64_t> chaos_deliveries{0};
  chaos->connector()->AddListener(
      [&](const market::RestCall&, const market::CallResult&) {
        chaos_deliveries.fetch_add(1);
      });
  FaultProfile profile;
  profile.lost_response_rate = 0.3;
  profile.seed = 13;
  FaultInjector injector(profile);
  chaos->connector()->SetFaultInjector(&injector);
  size_t i = 0;
  for (const auto& params : ParamMix()) {
    Result<QueryReport> r = chaos->QueryWithReport(kBindSql, params);
    ASSERT_TRUE(r.ok() && r->error.ok()) << r.status().ToString();
    EXPECT_EQ(SortedRows(r->result), expected[i++]);
  }

  const RetryStats stats = chaos->connector()->retry_stats();
  EXPECT_GT(stats.wasted_calls, 0);
  EXPECT_EQ(stats.wasted_calls, injector.stats().lost_responses);
  // The serial chaos run delivers exactly the baseline's call sequence:
  // every loss was retried until its result actually arrived.
  EXPECT_EQ(chaos_deliveries.load(), baseline_deliveries.load());
  // Meter = delivered + wasted; the meter's call count confirms listeners
  // saw every billed call except the lost ones.
  EXPECT_EQ(chaos->meter().total_calls() - stats.wasted_calls,
            chaos_deliveries.load());
  EXPECT_EQ(chaos->meter().total_transactions(),
            baseline->meter().total_transactions() +
                stats.wasted_transactions);
  EXPECT_EQ(chaos->store().TotalStoredRows(),
            baseline->store().TotalStoredRows());
}

TEST_F(ChaosTest, MixedChaosStillConvergesToBaseline) {
  FaultProfile profile;
  profile.transient_rate = 0.1;
  profile.lost_response_rate = 0.1;
  profile.rate_limit_rate = 0.1;
  profile.latency_spike_rate = 0.05;
  profile.latency_spike_micros = 150;
  profile.seed = 14;
  const RetryStats stats = RunMixAndExpectBaselineEquivalence(profile);
  EXPECT_GT(stats.retries, 0);
}

TEST_F(ChaosTest, RetriesExhaustedSurfaceSpendSoFarAndStoreIsReused) {
  // Fault-free twin for the expected totals.
  auto baseline = NewClient();
  Result<QueryReport> want = baseline->QueryWithReport(
      kTwoMarketSql, {Value(int64_t{kNumDates})});
  ASSERT_TRUE(want.ok() && want->error.ok());
  ASSERT_GT(want->exec.calls, 1) << "need >= 2 market calls for this test";

  PayLessConfig config;
  config.retry = TestPolicy();
  config.retry.max_attempts = 3;
  auto chaos = NewClient(config);
  // First call (the Station fetch) succeeds and is absorbed; every later
  // call drops until retries exhaust.
  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  injector.Script(FaultKind::kNone);
  chaos->connector()->SetFaultInjector(&injector);

  Result<QueryReport> failed = chaos->QueryWithReport(
      kTwoMarketSql, {Value(int64_t{kNumDates})});
  ASSERT_TRUE(failed.ok()) << failed.status().ToString();
  EXPECT_EQ(failed->error.code(), Status::Code::kUnavailable)
      << failed->error.ToString();
  // Spend-so-far: the delivered Station call is real money, visible in the
  // failed report.
  EXPECT_GT(failed->transactions_spent, 0);
  EXPECT_EQ(failed->transactions_spent,
            chaos->meter().total_transactions());
  EXPECT_GT(chaos->store().TotalStoredRows(), 0);

  // Market recovers; the re-issued query reuses the absorbed Station rows
  // and only pays for what is still missing — total spend across failure +
  // retry equals the fault-free total.
  chaos->connector()->SetFaultInjector(nullptr);
  Result<QueryReport> retried = chaos->QueryWithReport(
      kTwoMarketSql, {Value(int64_t{kNumDates})});
  ASSERT_TRUE(retried.ok() && retried->error.ok());
  EXPECT_EQ(SortedRows(retried->result), SortedRows(want->result));
  EXPECT_EQ(chaos->meter().total_transactions(),
            baseline->meter().total_transactions());
}

TEST_F(ChaosTest, FailedBindJoinCancelsSiblingCalls) {
  PayLessConfig config;
  config.retry.max_attempts = 1;  // fail immediately, no retries
  // Disable SQR so every binding value issues its own point call (the
  // value-set remainder path would merge them into one range call).
  config.optimizer.use_sqr = false;
  config.max_parallel_calls = 1;  // serial: cancellation is deterministic
  auto client = NewClient(config);
  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  client->connector()->SetFaultInjector(&injector);

  Result<QueryReport> r = client->QueryWithReport(
      kBindSql,
      {Value(int64_t{1}), Value(int64_t{8}), Value(int64_t{kNumDates})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->error.code(), Status::Code::kUnavailable);
  // 8 binding values: the first call fails, the remaining 7 are cancelled
  // unissued — a doomed access stops spending.
  EXPECT_EQ(r->exec.calls_cancelled, 7);
  EXPECT_EQ(client->meter().total_calls(), 0);
  EXPECT_EQ(injector.stats().decisions, 1);
}

TEST_F(ChaosTest, CircuitBreakerTripsRejectsAndRecovers) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.breaker_failure_threshold = 3;
  policy.breaker_cooldown_micros = 30'000;
  market::MarketConnector connector(market_.get());
  connector.SetRetryPolicy(policy);

  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  connector.SetFaultInjector(&injector);

  market::RestCall call;
  call.table = "Weather";
  call.conditions.resize(4);
  call.conditions[1] = market::AttrCondition::Point(Value(int64_t{3}));

  // Three consecutive failures trip the breaker on the dataset.
  for (int i = 0; i < 3; ++i) {
    Result<market::CallResult> r = connector.Get(call);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
  }
  EXPECT_EQ(connector.breaker_state("WHW"), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(connector.retry_stats().breaker_trips, 1);

  // While open: fail fast — the market (and the injector) is never reached.
  const int64_t decisions_before = injector.stats().decisions;
  Result<market::CallResult> rejected = connector.Get(call);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(injector.stats().decisions, decisions_before);
  EXPECT_EQ(connector.retry_stats().breaker_rejections, 1);

  // A failed half-open trial re-opens the breaker for another cooldown.
  std::this_thread::sleep_for(std::chrono::microseconds(40'000));
  Result<market::CallResult> trial = connector.Get(call);
  ASSERT_FALSE(trial.ok());
  EXPECT_EQ(connector.breaker_state("WHW"), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(connector.retry_stats().breaker_trips, 2);

  // Market recovers; after the cooldown the next trial closes the breaker.
  connector.SetFaultInjector(nullptr);
  std::this_thread::sleep_for(std::chrono::microseconds(40'000));
  Result<market::CallResult> recovered = connector.Get(call);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(connector.breaker_state("WHW"),
            CircuitBreakerSet::State::kClosed);
  Result<market::CallResult> after = connector.Get(call);
  EXPECT_TRUE(after.ok());
  // Nothing was billed while the breaker rejected or calls dropped: only
  // the two delivered calls are on the meter.
  EXPECT_EQ(connector.meter().total_calls(), 2);
}

TEST_F(ChaosTest, SchedulerHalfOpenWindowAdmitsExactlyOneProbe) {
  // The event-loop CallScheduler admits a whole window of calls at once;
  // when the dataset's breaker is half-open, that window must collapse to
  // a single probe — siblings are rejected without touching the market.
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.breaker_failure_threshold = 3;
  policy.breaker_cooldown_micros = 30'000;
  market::MarketConnector connector(market_.get());
  connector.SetRetryPolicy(policy);
  // Long enough that the probe is still in flight while its window
  // siblings hit admission.
  connector.SetSimulatedLatencyMicros(20'000);

  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  connector.SetFaultInjector(&injector);

  std::vector<market::RestCall> calls(3);
  for (size_t i = 0; i < calls.size(); ++i) {
    calls[i].table = "Weather";
    calls[i].conditions.resize(4);
    calls[i].conditions[1] =
        market::AttrCondition::Point(Value(static_cast<int64_t>(i + 1)));
  }
  std::vector<market::CallScheduler::Item> items(calls.size());
  for (size_t i = 0; i < calls.size(); ++i) items[i].call = &calls[i];

  // A full window of concurrent failures trips the breaker.
  auto outcomes = connector.scheduler()->ExecuteBatch(
      items, items.size(), /*cancel_on_error=*/false);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->status().code(), Status::Code::kUnavailable);
  }
  EXPECT_EQ(connector.breaker_state("WHW"), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(connector.retry_stats().breaker_trips, 1);

  // While open: the whole batch is rejected at admission; the market (and
  // the injector) is never reached.
  int64_t decisions_before = injector.stats().decisions;
  outcomes = connector.scheduler()->ExecuteBatch(items, items.size(),
                                                 /*cancel_on_error=*/false);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->status().code(), Status::Code::kUnavailable);
  }
  EXPECT_EQ(injector.stats().decisions, decisions_before);
  EXPECT_EQ(connector.retry_stats().breaker_rejections,
            static_cast<int64_t>(items.size()));

  // Cooldown elapses but the market is still down: the window admits ONE
  // half-open probe; everything else is rejected without a market decision.
  std::this_thread::sleep_for(std::chrono::microseconds(40'000));
  decisions_before = injector.stats().decisions;
  outcomes = connector.scheduler()->ExecuteBatch(items, items.size(),
                                                 /*cancel_on_error=*/false);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->status().code(), Status::Code::kUnavailable);
  }
  EXPECT_EQ(injector.stats().decisions, decisions_before + 1);
  EXPECT_EQ(connector.breaker_state("WHW"), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(connector.retry_stats().breaker_trips, 2);

  // Market recovers: after another cooldown a successful probe closes the
  // breaker and the next full window flows. Only delivered calls billed.
  connector.SetFaultInjector(nullptr);
  connector.SetSimulatedLatencyMicros(0);
  std::this_thread::sleep_for(std::chrono::microseconds(40'000));
  const std::vector<market::CallScheduler::Item> probe{items[0]};
  outcomes = connector.scheduler()->ExecuteBatch(probe, 1,
                                                 /*cancel_on_error=*/false);
  ASSERT_TRUE(outcomes[0].has_value());
  EXPECT_TRUE(outcomes[0]->ok()) << outcomes[0]->status().ToString();
  EXPECT_EQ(connector.breaker_state("WHW"),
            CircuitBreakerSet::State::kClosed);
  outcomes = connector.scheduler()->ExecuteBatch(items, items.size(),
                                                 /*cancel_on_error=*/false);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->ok()) << outcome->status().ToString();
  }
  EXPECT_EQ(connector.meter().total_calls(),
            1 + static_cast<int64_t>(items.size()));
}

TEST_F(ChaosTest, HalfOpenProbeUnderSchedulerWindowIsBillingCorrect) {
  // End-to-end variant through PayLess with the event-loop scheduler. A
  // seeding query stores the middle of the Weather region, so the wide
  // follow-up's SQR remainder fans multiple cover-box calls into one
  // admission window. After the breaker trips and the market heals, the
  // first re-issue gets exactly one half-open probe through (its cover box
  // is bought once and absorbed); the next re-issue buys only what is
  // still missing and the TOTAL spend across every attempt equals the
  // fault-free bill.
  PayLessConfig base;
  base.enable_call_scheduler = true;
  base.max_parallel_calls = 4;
  base.retry.max_attempts = 1;
  base.retry.breaker_failure_threshold = 2;
  base.retry.breaker_cooldown_micros = 30'000;
  const std::vector<Value> seed_params{Value(int64_t{4}), Value(int64_t{12}),
                                       Value(int64_t{2})};
  const std::vector<Value> wide_params{Value(int64_t{1}), Value(int64_t{16}),
                                       Value(int64_t{kNumDates})};

  auto baseline = NewClient(base);
  ASSERT_TRUE(baseline->Query(kBindSql, seed_params).ok());
  Result<QueryReport> want = baseline->QueryWithReport(kBindSql, wide_params);
  ASSERT_TRUE(want.ok() && want->error.ok());
  ASSERT_GT(want->exec.calls, 1)
      << "need a multi-call remainder to exercise the admission window";

  auto chaos = NewClient(base);
  ASSERT_TRUE(chaos->Query(kBindSql, seed_params).ok());
  const int64_t seeded_tx = chaos->meter().total_transactions();
  const int64_t seeded_calls = chaos->meter().total_calls();
  chaos->connector()->SetSimulatedLatencyMicros(20'000);
  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  chaos->connector()->SetFaultInjector(&injector);

  // The remainder window's concurrent failures trip the breaker; nothing
  // new is billed (transient drops never reach the market).
  Result<QueryReport> tripped = chaos->QueryWithReport(kBindSql, wide_params);
  ASSERT_TRUE(tripped.ok()) << tripped.status().ToString();
  EXPECT_EQ(tripped->error.code(), Status::Code::kUnavailable);
  EXPECT_EQ(chaos->connector()->breaker_state("WHW"),
            CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(chaos->meter().total_calls(), seeded_calls);

  // While open the query fails fast: no market decision, no billing.
  const int64_t decisions_before = injector.stats().decisions;
  Result<QueryReport> rejected = chaos->QueryWithReport(kBindSql, wide_params);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->error.code(), Status::Code::kUnavailable);
  EXPECT_EQ(injector.stats().decisions, decisions_before);
  EXPECT_EQ(chaos->meter().total_calls(), seeded_calls);

  // Market heals; cooldown elapses. The re-issue admits one probe into the
  // window; its siblings are rejected while the probe is in flight, so the
  // query still fails — but the probe's cover box is delivered, billed
  // once and absorbed, and its success closes the breaker.
  chaos->connector()->SetFaultInjector(nullptr);
  std::this_thread::sleep_for(std::chrono::microseconds(40'000));
  Result<QueryReport> probe_round =
      chaos->QueryWithReport(kBindSql, wide_params);
  ASSERT_TRUE(probe_round.ok());
  EXPECT_EQ(probe_round->error.code(), Status::Code::kUnavailable);
  EXPECT_EQ(chaos->meter().total_calls(), seeded_calls + 1);
  EXPECT_EQ(probe_round->transactions_spent,
            chaos->meter().total_transactions() - seeded_tx);
  EXPECT_EQ(chaos->connector()->breaker_state("WHW"),
            CircuitBreakerSet::State::kClosed);

  // Closed breaker: the final re-issue buys only the still-missing boxes,
  // and the all-in bill equals the fault-free twin's.
  chaos->connector()->SetSimulatedLatencyMicros(0);
  Result<QueryReport> final_round =
      chaos->QueryWithReport(kBindSql, wide_params);
  ASSERT_TRUE(final_round.ok() && final_round->error.ok())
      << final_round.status().ToString();
  EXPECT_EQ(SortedRows(final_round->result), SortedRows(want->result));
  EXPECT_EQ(chaos->meter().total_transactions(),
            baseline->meter().total_transactions());
  EXPECT_EQ(chaos->store().TotalStoredRows(),
            baseline->store().TotalStoredRows());
}

TEST_F(ChaosTest, PastDeadlineFailsBeforeSpendingAnything) {
  market::MarketConnector connector(market_.get());
  connector.SetRetryPolicy(TestPolicy());
  market::RestCall call;
  call.table = "Weather";
  call.conditions.resize(4);
  call.conditions[1] = market::AttrCondition::Point(Value(int64_t{3}));
  Result<market::CallResult> r =
      connector.Get(call, market::Clock::now() - std::chrono::microseconds(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(connector.meter().total_calls(), 0);
  EXPECT_EQ(connector.retry_stats().deadline_exceeded, 1);
}

TEST_F(ChaosTest, DeadlineRefusesToSleepThroughRetryAfter) {
  // A rate-limited market hints "retry after 80ms" but the query budget is
  // 5ms: the connector must give up with kDeadlineExceeded immediately
  // instead of sleeping past the deadline.
  PayLessConfig config;
  config.retry = TestPolicy();
  config.query_deadline_micros = 5'000;
  auto client = NewClient(config);
  FaultProfile throttle;
  throttle.rate_limit_rate = 1.0;
  throttle.retry_after_micros = 80'000;
  FaultInjector injector(throttle);
  client->connector()->SetFaultInjector(&injector);

  const auto start = market::Clock::now();
  Result<QueryReport> r = client->QueryWithReport(
      kBindSql,
      {Value(int64_t{1}), Value(int64_t{4}), Value(int64_t{kNumDates})});
  const auto elapsed = market::Clock::now() - start;
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->error.code(), Status::Code::kDeadlineExceeded)
      << r->error.ToString();
  EXPECT_EQ(r->transactions_spent, 0);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            60'000);
}

TEST_F(ChaosTest, PerCallTimeoutBoundsEachCall) {
  RetryPolicy policy = TestPolicy();
  policy.call_timeout_micros = 2'000;
  policy.initial_backoff_micros = 5'000;  // one backoff blows the budget
  market::MarketConnector connector(market_.get());
  connector.SetRetryPolicy(policy);
  FaultProfile all_fail;
  all_fail.transient_rate = 1.0;
  FaultInjector injector(all_fail);
  connector.SetFaultInjector(&injector);

  market::RestCall call;
  call.table = "Weather";
  call.conditions.resize(4);
  call.conditions[1] = market::AttrCondition::Point(Value(int64_t{5}));
  Result<market::CallResult> r = connector.Get(call);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded);
}

TEST_F(ChaosTest, ScriptedFaultsReplayExactly) {
  // The scripted FIFO gives call-level determinism: fail, fail, succeed
  // consumes exactly three attempts.
  PayLessConfig config;
  config.retry = TestPolicy();
  auto client = NewClient(config);
  FaultInjector injector(FaultProfile{});  // all-quiet fallback
  injector.Script(FaultKind::kTransientDrop);
  injector.Script(FaultKind::kTransientDrop);
  injector.Script(FaultKind::kNone);
  client->connector()->SetFaultInjector(&injector);

  Result<QueryReport> r = client->QueryWithReport(
      kBindSql,
      {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{kNumDates})});
  ASSERT_TRUE(r.ok() && r->error.ok()) << r.status().ToString();
  const RetryStats stats = client->connector()->retry_stats();
  EXPECT_EQ(stats.transient_faults, 2);
  EXPECT_GE(stats.retries, 2);
}

// Cross-market failover: the optimizer buys at the cheap primary endpoint,
// the primary's breaker opens mid-bind-join, the remaining sibling calls
// complete on the secondary — and the billed transactions reconcile
// EXACTLY: ledger total == primary meter + secondary meter, the delivered
// primary rows are never re-bought, and the per-market ledger cells match
// each endpoint's own meter.
TEST_F(ChaosTest, CrossMarketFailoverMidBindJoinReconcilesExactly) {
  const std::vector<Value> params = {Value(int64_t{1}), Value(int64_t{8}),
                                     Value(int64_t{kNumDates})};
  // Fault-free single-market baseline: the rows the failover run must match.
  std::vector<Row> expected;
  int64_t baseline_txn = 0;
  {
    auto baseline = NewClient();
    Result<QueryReport> r = baseline->QueryWithReport(kBindSql, params);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->error.ok()) << r->error.ToString();
    expected = SortedRows(r->result);
    baseline_txn = baseline->meter().total_transactions();
  }

  federation::FederatedMarket federation(&cat_, /*base_seed=*/7);
  federation::EndpointConfig primary;
  primary.id = "primary";
  primary.menu["WHW"] = federation::DatasetTerms{0.5, 5};  // the cheap site
  primary.inject_faults = true;
  primary.fault_profile.transient_rate = 1.0;  // dead after the script runs
  ASSERT_TRUE(federation.AddEndpoint(primary).ok());
  federation::EndpointConfig secondary;
  secondary.id = "secondary";
  secondary.menu["WHW"] = federation::DatasetTerms{1.0, 5};
  ASSERT_TRUE(federation.AddEndpoint(secondary).ok());
  std::vector<Row> weather_rows;
  for (int64_t s = 1; s <= kNumStations; ++s) {
    for (int64_t d = 1; d <= kNumDates; ++d) {
      weather_rows.push_back(Row{Value("US"), Value(s), Value(d),
                                 Value(static_cast<double>(s * 100 + d))});
    }
  }
  ASSERT_TRUE(federation.HostTable("Weather", std::move(weather_rows)).ok());

  obs::Observability obs;
  PayLessConfig config;
  config.observability = &obs;
  config.federation = &federation;
  config.retry = TestPolicy();
  config.retry.max_attempts = 2;
  config.retry.breaker_failure_threshold = 2;   // opens mid-query
  config.retry.breaker_cooldown_micros = 10'000'000;  // stays open
  config.max_parallel_calls = 1;  // deterministic serial binding order
  auto client = std::make_unique<PayLess>(&cat_, market_.get(), config);
  ASSERT_TRUE(client->LoadLocalTable("CityMap", city_rows_).ok());

  // Exactly the first primary call delivers (and is billed there); every
  // later primary call faults until retries exhaust and the breaker trips.
  federation.endpoint("primary")->injector()->Script(FaultKind::kNone);

  Result<QueryReport> r = client->QueryWithReport(kBindSql, params);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->error.ok()) << r->error.ToString();
  EXPECT_EQ(SortedRows(r->result), expected);

  auto* router = client->router();
  ASSERT_NE(router, nullptr);
  EXPECT_GE(router->failovers(), 1);

  int64_t primary_txn = 0, secondary_txn = 0;
  for (size_t i = 0; i < federation.num_endpoints(); ++i) {
    const int64_t txn = router->connector(i)->meter().total_transactions();
    if (router->endpoint_id(i) == "primary") primary_txn = txn;
    if (router->endpoint_id(i) == "secondary") secondary_txn = txn;
  }
  // Money reached BOTH sellers: the delivered primary call stayed billed
  // at the primary, the rescued siblings were bought at the secondary, and
  // nothing was bought twice (total == the fault-free single-market bill).
  EXPECT_GT(primary_txn, 0);
  EXPECT_GT(secondary_txn, 0);
  EXPECT_EQ(primary_txn + secondary_txn, baseline_txn);
  EXPECT_EQ(obs.ledger.total_transactions(), primary_txn + secondary_txn);
  EXPECT_EQ(obs.ledger.total_transactions(),
            router->TotalMeteredTransactions());

  // The ledger's per-market split reconciles with each endpoint's meter.
  int64_t cell_primary = 0, cell_secondary = 0;
  for (const auto& [dataset, cell] : obs.ledger.TenantByDataset("default")) {
    for (const auto& [site, txn] : cell.by_market) {
      if (site == "primary") cell_primary += txn;
      if (site == "secondary") cell_secondary += txn;
    }
  }
  EXPECT_EQ(cell_primary, primary_txn);
  EXPECT_EQ(cell_secondary, secondary_txn);

  // A re-run reuses the store: every row is already owned, nobody bills.
  Result<QueryReport> again = client->QueryWithReport(kBindSql, params);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again->error.ok());
  EXPECT_EQ(SortedRows(again->result), expected);
  EXPECT_EQ(router->TotalMeteredTransactions(), primary_txn + secondary_txn);
}

}  // namespace
}  // namespace payless::exec
