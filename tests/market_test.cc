#include "market/data_market.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "market/rest_call.h"

namespace payless::market {
namespace {

using catalog::AttrDomain;
using catalog::BindingKind;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

class MarketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterDataset(DatasetDef{"WHW", 1.0, 100}).ok());
    TableDef weather;
    weather.name = "Weather";
    weather.dataset = "WHW";
    weather.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"Canada", "US"})),
        ColumnDef::Bound("StationID", ValueType::kInt64,
                         AttrDomain::Numeric(1, 50)),
        ColumnDef::Free("Date", ValueType::kInt64,
                        AttrDomain::Numeric(100, 400)),
        ColumnDef::Output("Temperature", ValueType::kDouble)};
    weather.cardinality = 0;
    ASSERT_TRUE(cat_.RegisterTable(weather).ok());

    TableDef station;
    station.name = "Station";
    station.dataset = "WHW";
    station.columns = {
        ColumnDef::Free("Country", ValueType::kString,
                        AttrDomain::Categorical({"Canada", "US"})),
        ColumnDef::Free("StationID", ValueType::kInt64,
                        AttrDomain::Numeric(1, 50))};
    station.cardinality = 0;
    ASSERT_TRUE(cat_.RegisterTable(station).ok());

    market_ = std::make_unique<DataMarket>(&cat_);
    std::vector<Row> rows;
    for (int64_t station_id = 1; station_id <= 50; ++station_id) {
      for (int64_t date = 100; date <= 400; date += 10) {
        rows.push_back(Row{Value(station_id % 2 == 0 ? "US" : "Canada"),
                           Value(station_id), Value(date), Value(20.5)});
      }
    }
    total_rows_ = static_cast<int64_t>(rows.size());
    ASSERT_TRUE(market_->HostTable("Weather", std::move(rows)).ok());
    std::vector<Row> stations;
    for (int64_t station_id = 1; station_id <= 50; ++station_id) {
      stations.push_back(Row{Value(station_id % 2 == 0 ? "US" : "Canada"),
                             Value(station_id)});
    }
    ASSERT_TRUE(market_->HostTable("Station", std::move(stations)).ok());
  }

  const TableDef& weather() const { return *cat_.FindTable("Weather"); }
  const TableDef& station() const { return *cat_.FindTable("Station"); }

  catalog::Catalog cat_;
  std::unique_ptr<DataMarket> market_;
  int64_t total_rows_ = 0;
};

TEST(TransactionsForTest, Equation1) {
  EXPECT_EQ(TransactionsFor(0, 100), 0);
  EXPECT_EQ(TransactionsFor(1, 100), 1);
  EXPECT_EQ(TransactionsFor(100, 100), 1);
  EXPECT_EQ(TransactionsFor(101, 100), 2);
  EXPECT_EQ(TransactionsFor(4400, 100), 44);  // the paper's WHW example
  EXPECT_EQ(TransactionsFor(23640, 100), 237);  // Fig. 1b call C2
}

TEST(AttrConditionTest, MatchesSemantics) {
  EXPECT_TRUE(AttrCondition::None().Matches(Value("anything")));
  EXPECT_TRUE(AttrCondition::Point(Value("US")).Matches(Value("US")));
  EXPECT_FALSE(AttrCondition::Point(Value("US")).Matches(Value("Canada")));
  EXPECT_FALSE(AttrCondition::Point(Value("US")).Matches(Value::Null()));
  EXPECT_TRUE(AttrCondition::Range(5, 10).Matches(Value(int64_t{5})));
  EXPECT_TRUE(AttrCondition::Range(5, 10).Matches(Value(7.5)));
  EXPECT_FALSE(AttrCondition::Range(5, 10).Matches(Value(int64_t{11})));
  EXPECT_FALSE(AttrCondition::Range(5, 10).Matches(Value("7")));
}

TEST_F(MarketTest, ValidateRejectsMissingBoundAttr) {
  RestCall call = RestCall::Unconstrained(weather());
  EXPECT_EQ(call.Validate(weather()).code(),
            Status::Code::kBindingViolation);
  call.conditions[1] = AttrCondition::Point(Value(int64_t{3}));
  EXPECT_TRUE(call.Validate(weather()).ok());
}

TEST_F(MarketTest, ValidateRejectsConstrainedOutputAttr) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[1] = AttrCondition::Point(Value(int64_t{3}));
  call.conditions[3] = AttrCondition::Range(0, 10);
  EXPECT_EQ(call.Validate(weather()).code(),
            Status::Code::kBindingViolation);
}

TEST_F(MarketTest, ValidateRejectsRangeOnCategorical) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[1] = AttrCondition::Point(Value(int64_t{3}));
  call.conditions[0] = AttrCondition::Range(0, 1);
  EXPECT_EQ(call.Validate(weather()).code(),
            Status::Code::kBindingViolation);
}

TEST_F(MarketTest, ValidateRejectsArityMismatch) {
  RestCall call;
  call.table = "Weather";
  call.conditions.resize(2);
  EXPECT_FALSE(call.Validate(weather()).ok());
}

TEST_F(MarketTest, ValidateRejectsWrongTable) {
  RestCall call = RestCall::Unconstrained(weather());
  EXPECT_FALSE(call.Validate(station()).ok());
}

TEST_F(MarketTest, ExecutePricesByEquation1) {
  RestCall call = RestCall::Unconstrained(station());
  Result<CallResult> result = market_->Execute(call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 50);
  EXPECT_EQ(result->transactions, 1);
  EXPECT_DOUBLE_EQ(result->price, 1.0);
}

TEST_F(MarketTest, ExecuteFiltersByPointAndRange) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[0] = AttrCondition::Point(Value("US"));
  call.conditions[1] = AttrCondition::Point(Value(int64_t{2}));
  call.conditions[2] = AttrCondition::Range(100, 200);
  Result<CallResult> result = market_->Execute(call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 11);  // dates 100..200 step 10
  for (const Row& row : result->rows) {
    EXPECT_EQ(row[0], Value("US"));
    EXPECT_EQ(row[1], Value(int64_t{2}));
  }
}

TEST_F(MarketTest, ExecuteEmptyResultIsFree) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[1] = AttrCondition::Point(Value(int64_t{49}));
  call.conditions[0] = AttrCondition::Point(Value("US"));  // 49 is Canada
  Result<CallResult> result = market_->Execute(call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 0);
  EXPECT_EQ(result->transactions, 0);
}

TEST_F(MarketTest, ExecuteUnknownTableFails) {
  RestCall call;
  call.table = "Nope";
  EXPECT_EQ(market_->Execute(call).status().code(), Status::Code::kNotFound);
}

TEST_F(MarketTest, IndexedExecutionMatchesFullScan) {
  // Property: every call answered via indexes returns exactly the rows a
  // brute-force scan of the hosted data returns.
  Rng rng(99);
  const std::vector<Row>* hosted = market_->HostedRowsForTesting("Weather");
  ASSERT_NE(hosted, nullptr);
  for (int trial = 0; trial < 30; ++trial) {
    RestCall call = RestCall::Unconstrained(weather());
    call.conditions[1] =
        AttrCondition::Point(Value(rng.Uniform(1, 55)));  // may miss
    if (rng.Chance(0.5)) {
      call.conditions[0] =
          AttrCondition::Point(Value(rng.Chance(0.5) ? "US" : "Canada"));
    }
    if (rng.Chance(0.7)) {
      const int64_t lo = rng.Uniform(100, 400);
      call.conditions[2] = AttrCondition::Range(lo, rng.Uniform(lo, 400));
    }
    Result<CallResult> result = market_->Execute(call);
    ASSERT_TRUE(result.ok());
    int64_t expected = 0;
    for (const Row& row : *hosted) {
      if (call.MatchesRow(row)) ++expected;
    }
    EXPECT_EQ(result->num_records, expected);
  }
}

TEST_F(MarketTest, AppendRowsVisibleAndPriced) {
  ASSERT_TRUE(market_
                  ->AppendRows("Station", {{Value("US"), Value(int64_t{7})}})
                  .ok());
  RestCall call = RestCall::Unconstrained(station());
  call.conditions[1] = AttrCondition::Point(Value(int64_t{7}));
  Result<CallResult> result = market_->Execute(call);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_records, 2);  // original + appended
}

TEST_F(MarketTest, HostRejectsLocalAndUnknownTables) {
  EXPECT_EQ(market_->HostTable("Nope", {}).code(), Status::Code::kNotFound);
}

TEST_F(MarketTest, TableSize) {
  Result<int64_t> size = market_->TableSize("Weather");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, total_rows_);
}

TEST_F(MarketTest, ConnectorBillsAndNotifies) {
  MarketConnector connector(market_.get());
  int notified = 0;
  connector.AddListener([&notified](const RestCall&, const CallResult& r) {
    ++notified;
    EXPECT_GT(r.num_records, 0);
  });
  RestCall call = RestCall::Unconstrained(station());
  ASSERT_TRUE(connector.Get(call).ok());
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(connector.meter().total_calls(), 1);
  EXPECT_EQ(connector.meter().total_transactions(), 1);
  EXPECT_EQ(connector.meter().TransactionsFor("WHW"), 1);
  // Failed calls do not bill or notify.
  RestCall bad = RestCall::Unconstrained(weather());
  EXPECT_FALSE(connector.Get(bad).ok());
  EXPECT_EQ(connector.meter().total_calls(), 1);
  EXPECT_EQ(notified, 1);
}

TEST_F(MarketTest, MeterResetAndReport) {
  MarketConnector connector(market_.get());
  ASSERT_TRUE(connector.Get(RestCall::Unconstrained(station())).ok());
  EXPECT_NE(connector.meter().Report().find("WHW"), std::string::npos);
  connector.mutable_meter()->Reset();
  EXPECT_EQ(connector.meter().total_transactions(), 0);
}

TEST_F(MarketTest, CallRegionEncodesConditions) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[0] = AttrCondition::Point(Value("US"));
  call.conditions[1] = AttrCondition::Point(Value(int64_t{7}));
  call.conditions[2] = AttrCondition::Range(150, 500);  // clipped to 400
  const Box region = CallRegion(weather(), call);
  ASSERT_EQ(region.num_dims(), 3u);
  EXPECT_EQ(region.dim(0), Interval::Point(1));  // "US" is code 1
  EXPECT_EQ(region.dim(1), Interval::Point(7));
  EXPECT_EQ(region.dim(2), Interval(150, 400));
}

TEST_F(MarketTest, CallRegionOutOfDomainPointIsEmpty) {
  RestCall call = RestCall::Unconstrained(station());
  call.conditions[0] = AttrCondition::Point(Value("Atlantis"));
  EXPECT_TRUE(CallRegion(station(), call).empty());
}

TEST_F(MarketTest, CallFromRegionRoundTrips) {
  RestCall call = RestCall::Unconstrained(weather());
  call.conditions[0] = AttrCondition::Point(Value("Canada"));
  call.conditions[1] = AttrCondition::Point(Value(int64_t{9}));
  call.conditions[2] = AttrCondition::Range(110, 120);
  const Box region = CallRegion(weather(), call);
  Result<RestCall> rebuilt = CallFromRegion(weather(), region);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->Validate(weather()).ok());
  EXPECT_EQ(CallRegion(weather(), *rebuilt), region);
}

TEST_F(MarketTest, CallFromRegionFullDomainBecomesUnconstrained) {
  const Box region = station().FullRegion();
  Result<RestCall> call = CallFromRegion(station(), region);
  ASSERT_TRUE(call.ok());
  EXPECT_TRUE(call->conditions[0].is_none());
  EXPECT_TRUE(call->conditions[1].is_none());
}

TEST_F(MarketTest, CallFromRegionBoundNumericFullDomainGetsExplicitRange) {
  Box region = weather().FullRegion();
  region.dim(0) = Interval::Point(0);  // Canada
  Result<RestCall> call = CallFromRegion(weather(), region);
  ASSERT_TRUE(call.ok());
  // StationID is bound: the full domain must be passed as an explicit range.
  EXPECT_EQ(call->conditions[1].kind, AttrCondition::Kind::kRange);
  EXPECT_TRUE(call->Validate(weather()).ok());
}

TEST_F(MarketTest, CallFromRegionRejectsCategoricalSubRange) {
  TableDef def = station();
  Box region = def.FullRegion();
  // Two-country domain: a strict sub-range of width 2 equals the domain, so
  // widen the catalog first.
  catalog::Catalog cat2;
  ASSERT_TRUE(cat2.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
  TableDef wide;
  wide.name = "T";
  wide.dataset = "D";
  wide.columns = {ColumnDef::Free(
      "c", ValueType::kString,
      AttrDomain::Categorical({"a", "b", "c", "d"}))};
  wide.cardinality = 0;
  ASSERT_TRUE(cat2.RegisterTable(wide).ok());
  const Box sub({Interval(1, 2)});
  EXPECT_EQ(CallFromRegion(*cat2.FindTable("T"), sub).status().code(),
            Status::Code::kBindingViolation);
  (void)region;
}

TEST_F(MarketTest, CallFromRegionRejectsEmptyAndMismatched) {
  EXPECT_FALSE(CallFromRegion(station(), Box({Interval::Empty(),
                                              Interval(1, 2)}))
                   .ok());
  EXPECT_FALSE(CallFromRegion(station(), Box({Interval(0, 1)})).ok());
}

}  // namespace
}  // namespace payless::market
