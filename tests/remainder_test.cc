// Remainder-query generation (§4.2, Algorithm 1): the paper's running
// examples of Figures 6-9 plus coverage-completeness property sweeps.
#include "semstore/remainder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace payless::semstore {
namespace {

DimSpec NumericDim(int64_t lo, int64_t hi) {
  DimSpec d;
  d.mode = DimSpec::Mode::kNumeric;
  d.domain = Interval(lo, hi);
  return d;
}

DimSpec CategoricalDim(int64_t n) {
  DimSpec d;
  d.mode = DimSpec::Mode::kCategorical;
  d.domain = Interval(0, n - 1);
  return d;
}

DimSpec ValueSetDim(int64_t lo, int64_t hi, std::vector<int64_t> values,
                    bool whole_domain) {
  DimSpec d;
  d.mode = DimSpec::Mode::kValueSet;
  d.domain = Interval(lo, hi);
  d.known_values = std::move(values);
  d.whole_domain_allowed = whole_domain;
  return d;
}

/// Piecewise-constant 1-d estimator from (interval, count) segments.
BoxEstimator SegmentEstimator(
    std::vector<std::pair<Interval, double>> segments) {
  return [segments](const Box& box) {
    double total = 0.0;
    for (const auto& [range, count] : segments) {
      const Interval overlap = box.dim(0).Intersect(range);
      if (overlap.empty()) continue;
      total += count * static_cast<double>(overlap.Width()) /
               static_cast<double>(range.Width());
    }
    return total;
  };
}

TEST(EstimatedTransactionsTest, NeverZero) {
  EXPECT_EQ(EstimatedTransactions(0.0, 100), 1);
  EXPECT_EQ(EstimatedTransactions(-5.0, 100), 1);
  EXPECT_EQ(EstimatedTransactions(1.0, 100), 1);
  EXPECT_EQ(EstimatedTransactions(100.0, 100), 1);
  EXPECT_EQ(EstimatedTransactions(100.5, 100), 2);
  EXPECT_EQ(EstimatedTransactions(123.0, 100), 2);
}

TEST(RemainderTest, EmptyQueryIsFullyCovered) {
  const RemainderResult r = GenerateRemainder(
      Box({Interval::Empty()}), {}, {NumericDim(0, 100)},
      [](const Box&) { return 0.0; }, RemainderOptions{});
  EXPECT_TRUE(r.fully_covered);
}

TEST(RemainderTest, NoViewsYieldsTheQueryItself) {
  const Box query({Interval(10, 50)});
  const RemainderResult r = GenerateRemainder(
      query, {}, {NumericDim(0, 100)},
      [](const Box& b) { return static_cast<double>(b.Volume()); },
      RemainderOptions{});
  ASSERT_EQ(r.remainder_boxes.size(), 1u);
  EXPECT_EQ(r.remainder_boxes[0], query);
  EXPECT_EQ(r.estimated_transactions, 1);
}

TEST(RemainderTest, FullCoverageNeedsNoCalls) {
  const Box query({Interval(10, 50)});
  const RemainderResult r = GenerateRemainder(
      query, {Box({Interval(0, 30)}), Box({Interval(31, 60)})},
      {NumericDim(0, 100)}, [](const Box&) { return 1.0; },
      RemainderOptions{});
  EXPECT_TRUE(r.fully_covered);
  EXPECT_TRUE(r.remainder_boxes.empty());
}

// ---------------------------------------------------------------------------
// Figure 6: Q = R(A[0,100]), V1 = [10,20) (28 tuples), V2 = [30,60)
// (91 tuples); elementary estimates 21 / 34 / 123. The vanilla remainder
// set Rem1 = {[0,10), [20,30), [60,100]} costs 4 transactions; the optimal
// Rem2 = {[0,30) overlapping V1, [60,100]} costs 3.
// ---------------------------------------------------------------------------
TEST(RemainderTest, Figure6MergedRemainderBeatsVanilla) {
  const Box query({Interval(0, 100)});
  const std::vector<Box> stored = {Box({Interval(10, 19)}),
                                   Box({Interval(30, 59)})};
  const BoxEstimator estimate = SegmentEstimator({
      {Interval(0, 9), 21.0},
      {Interval(10, 19), 28.0},
      {Interval(20, 29), 34.0},
      {Interval(30, 59), 91.0},
      {Interval(60, 100), 123.0},
  });
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 100)}, estimate, RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  EXPECT_EQ(r.counters.elementary_boxes, 3u);
  // The paper's Rem2: 3 transactions, not the vanilla 4.
  EXPECT_EQ(r.estimated_transactions, 3);
  ASSERT_EQ(r.remainder_boxes.size(), 2u);
  // One remainder box must overlap stored V1 (the [0,30) merge).
  bool overlaps_stored = false;
  for (const Box& box : r.remainder_boxes) {
    if (box.Overlaps(stored[0])) overlaps_stored = true;
  }
  EXPECT_TRUE(overlaps_stored);
  // Together with the stored views the remainder covers the whole query.
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
}

TEST(RemainderTest, Figure6VanillaWhenMergeDoesNotPay) {
  // Same geometry but the merged box would cost MORE than its members:
  // crank up V1's tuple count so re-downloading it wastes a page.
  const Box query({Interval(0, 100)});
  const std::vector<Box> stored = {Box({Interval(10, 19)}),
                                   Box({Interval(30, 59)})};
  const BoxEstimator estimate = SegmentEstimator({
      {Interval(0, 9), 21.0},
      {Interval(10, 19), 280.0},  // merging now costs an extra page
      {Interval(20, 29), 34.0},
      {Interval(30, 59), 91.0},
      {Interval(60, 100), 123.0},
  });
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 100)}, estimate, RemainderOptions{});
  // [0,30) would hold 335 tuples = 4 transactions >= 1+1: pruned; the
  // vanilla decomposition (1 + 1 + 2 = 4) is optimal.
  EXPECT_EQ(r.estimated_transactions, 4);
  EXPECT_EQ(r.remainder_boxes.size(), 3u);
}

// ---------------------------------------------------------------------------
// Figure 7-style 2-d example.
// ---------------------------------------------------------------------------
TEST(RemainderTest, TwoDimensionalCoverIsComplete) {
  const Box query({Interval(30, 80), Interval(0, 50)});
  const std::vector<Box> stored = {
      Box({Interval(0, 50), Interval(0, 30)}),
      Box({Interval(60, 70), Interval(10, 40)}),
      Box({Interval(20, 40), Interval(40, 60)}),
  };
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 90), NumericDim(0, 60)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 20.0; },
      RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
  EXPECT_GT(r.counters.enumerated_boxes, r.counters.kept_boxes);
}

TEST(RemainderTest, PruningRulesReduceKeptBoxes) {
  const Box query({Interval(0, 60), Interval(0, 60)});
  const std::vector<Box> stored = {
      Box({Interval(10, 20), Interval(10, 20)}),
      Box({Interval(35, 45), Interval(30, 50)}),
  };
  const BoxEstimator estimate = [](const Box& b) {
    return static_cast<double>(b.Volume()) / 10.0;
  };
  RemainderOptions with_pruning;
  RemainderOptions without_pruning;
  without_pruning.prune_minimal = false;
  without_pruning.prune_price = false;
  const RemainderResult pruned = GenerateRemainder(
      query, stored, {NumericDim(0, 100), NumericDim(0, 100)}, estimate,
      with_pruning);
  const RemainderResult unpruned = GenerateRemainder(
      query, stored, {NumericDim(0, 100), NumericDim(0, 100)}, estimate,
      without_pruning);
  EXPECT_LT(pruned.counters.kept_boxes, unpruned.counters.kept_boxes);
  // Both still cover everything.
  for (const RemainderResult* r : {&pruned, &unpruned}) {
    std::vector<Box> all = stored;
    all.insert(all.end(), r->remainder_boxes.begin(),
               r->remainder_boxes.end());
    EXPECT_TRUE(IsCovered(query, all));
  }
  // Pruning never worsens the chosen cover's estimated price.
  EXPECT_LE(pruned.estimated_transactions,
            unpruned.estimated_transactions + 1);
}

// ---------------------------------------------------------------------------
// Figure 8: categorical dimension — remainder boxes span one value or the
// whole domain, never a multi-value sub-range.
// ---------------------------------------------------------------------------
TEST(RemainderTest, CategoricalBoxesAreSingleValueOrWholeDomain) {
  const int64_t kValues = 6;
  const Box query({Interval(0, 90), Interval(0, kValues - 1)});
  const std::vector<Box> stored = {
      Box({Interval(0, 40), Interval::Point(0)}),
      Box({Interval(20, 60), Interval::Point(3)}),
      Box({Interval(50, 90), Interval::Point(5)}),
  };
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 90), CategoricalDim(kValues)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 15.0; },
      RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  for (const Box& box : r.remainder_boxes) {
    const Interval cat = box.dim(1);
    EXPECT_TRUE(cat.Width() == 1 || cat == Interval(0, kValues - 1))
        << box.ToString();
  }
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
}

TEST(RemainderTest, WideCategoricalDomainFallsBackToWholeDomain) {
  // 500 categories exceed max_categorical_values: candidates on that dim
  // are whole-domain only, but the cover must still be complete and legal.
  const Box query({Interval(0, 9), Interval(0, 499)});
  const std::vector<Box> stored = {Box({Interval(0, 4), Interval(0, 499)})};
  RemainderOptions options;
  options.max_categorical_values = 64;
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 9), CategoricalDim(500)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 100.0; },
      options);
  ASSERT_FALSE(r.fully_covered);
  for (const Box& box : r.remainder_boxes) {
    EXPECT_TRUE(box.dim(1).Width() == 1 || box.dim(1) == Interval(0, 499));
  }
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
}

// ---------------------------------------------------------------------------
// Figure 9: bind-join dimension with known binding values.
// ---------------------------------------------------------------------------
TEST(RemainderTest, ValueSetOnlyRequestsKnownSlabs) {
  // Bind values {2, 5, 9, 10} on dim 0; dim 1 is the A3 range.
  const Box query({Interval(2, 10), Interval(8, 18)});
  const std::vector<Box> stored;  // nothing cached
  const RemainderResult r = GenerateRemainder(
      query, stored,
      {ValueSetDim(0, 20, {2, 5, 9, 10}, /*whole_domain=*/false),
       NumericDim(0, 30)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 8.0; },
      RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  // Every remainder box's dim-0 extent starts and ends at known values.
  const std::vector<int64_t> known = {2, 5, 9, 10};
  for (const Box& box : r.remainder_boxes) {
    EXPECT_TRUE(std::count(known.begin(), known.end(), box.dim(0).lo) == 1);
    EXPECT_TRUE(std::count(known.begin(), known.end(), box.dim(0).hi) == 1);
  }
  // All requested slabs are covered.
  std::vector<Box> all = r.remainder_boxes;
  for (const int64_t v : known) {
    EXPECT_TRUE(IsCovered(Box({Interval::Point(v), Interval(8, 18)}), all))
        << "value " << v;
  }
}

TEST(RemainderTest, ValueSetReusesCoveredSlabs) {
  // The stored query V of Fig. 9 covered values {2, 5} on A3 [10, 15].
  const Box query({Interval(2, 10), Interval(10, 15)});
  const std::vector<Box> stored = {Box({Interval(2, 2), Interval(10, 15)}),
                                   Box({Interval(5, 5), Interval(10, 15)})};
  const RemainderResult r = GenerateRemainder(
      query, stored,
      {ValueSetDim(0, 20, {2, 5, 9, 10}, false), NumericDim(0, 30)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 8.0; },
      RemainderOptions{});
  ASSERT_FALSE(r.fully_covered);
  // Only the {9, 10} slabs still need buying; a single [9,10] range call
  // covers both.
  for (const Box& box : r.remainder_boxes) {
    EXPECT_GE(box.dim(0).lo, 9);
  }
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  for (const int64_t v : {9, 10}) {
    EXPECT_TRUE(IsCovered(Box({Interval::Point(v), Interval(10, 15)}), all));
  }
}

TEST(RemainderTest, ValueSetFullyCoveredWithNoValues) {
  const Box query({Interval(0, 10), Interval(0, 10)});
  const RemainderResult r = GenerateRemainder(
      query, {}, {ValueSetDim(0, 20, {}, false), NumericDim(0, 30)},
      [](const Box&) { return 1.0; }, RemainderOptions{});
  EXPECT_TRUE(r.fully_covered);
}

TEST(RemainderTest, ValueSetRangeCallMayCoverIntermediateValues) {
  // A range over known values {3, 7} includes unknown rows at 4..6 — they
  // cost money but the call is legal; pruning decides if it pays.
  const Box query({Interval(3, 7), Interval(0, 0)});
  const RemainderResult r = GenerateRemainder(
      query, {}, {ValueSetDim(0, 10, {3, 7}, false), NumericDim(0, 0)},
      // Cheap data: the merged range costs 1 page, two point calls cost 2.
      [](const Box& b) { return static_cast<double>(b.Volume()); },
      RemainderOptions{});
  EXPECT_EQ(r.estimated_transactions, 1);
  ASSERT_EQ(r.remainder_boxes.size(), 1u);
  EXPECT_EQ(r.remainder_boxes[0].dim(0), Interval(3, 7));
}

// ---------------------------------------------------------------------------
// Property sweep: on random inputs the chosen remainder always completes
// the cover, never returns empty boxes, and the counters are consistent.
// ---------------------------------------------------------------------------
class RemainderProperty : public ::testing::TestWithParam<int> {};

TEST_P(RemainderProperty, CoverIsAlwaysComplete) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 17);
  const auto random_box = [&rng](int64_t max) {
    const int64_t a = rng.Uniform(0, max);
    const int64_t b = rng.Uniform(0, max);
    const int64_t c = rng.Uniform(0, max);
    const int64_t d = rng.Uniform(0, max);
    return Box({Interval(std::min(a, b), std::max(a, b)),
                Interval(std::min(c, d), std::max(c, d))});
  };
  const Box query = random_box(40);
  std::vector<Box> stored;
  for (int64_t i = rng.Uniform(0, 6); i > 0; --i) {
    stored.push_back(random_box(40));
  }
  const RemainderResult r = GenerateRemainder(
      query, stored, {NumericDim(0, 40), NumericDim(0, 40)},
      [](const Box& b) { return static_cast<double>(b.Volume()) / 3.0; },
      RemainderOptions{});
  if (r.fully_covered) {
    EXPECT_TRUE(IsCovered(query, stored));
    return;
  }
  std::vector<Box> all = stored;
  all.insert(all.end(), r.remainder_boxes.begin(), r.remainder_boxes.end());
  EXPECT_TRUE(IsCovered(query, all));
  for (const Box& box : r.remainder_boxes) {
    EXPECT_FALSE(box.empty());
  }
  EXPECT_EQ(r.counters.cover_boxes, r.remainder_boxes.size());
  EXPECT_GT(r.counters.elementary_boxes, 0u);
  EXPECT_GT(r.estimated_transactions, 0);
}

INSTANTIATE_TEST_SUITE_P(Random, RemainderProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace payless::semstore
