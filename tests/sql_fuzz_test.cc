// Robustness sweep: randomly mutated SQL must never crash the front end —
// every outcome is either a parsed statement or a clean error Status.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/http_exposition.h"
#include "sql/bound_query.h"
#include "sql/parser.h"

namespace payless::sql {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

catalog::Catalog FuzzCatalog() {
  catalog::Catalog cat;
  EXPECT_TRUE(cat.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
  TableDef t;
  t.name = "T";
  t.dataset = "D";
  t.columns = {
      ColumnDef::Free("a", ValueType::kInt64, AttrDomain::Numeric(0, 99)),
      ColumnDef::Free("b", ValueType::kString,
                      AttrDomain::Categorical({"x", "y"})),
      ColumnDef::Output("c", ValueType::kDouble)};
  t.cardinality = 100;
  EXPECT_TRUE(cat.RegisterTable(t).ok());
  TableDef u;
  u.name = "U";
  u.dataset = "D";
  u.columns = {
      ColumnDef::Free("a", ValueType::kInt64, AttrDomain::Numeric(0, 99)),
      ColumnDef::Output("d", ValueType::kString)};
  u.cardinality = 50;
  EXPECT_TRUE(cat.RegisterTable(u).ok());
  return cat;
}

class SqlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SqlFuzz, MutatedQueriesNeverCrash) {
  const catalog::Catalog cat = FuzzCatalog();
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL + 1);
  const std::vector<std::string> fragments = {
      "SELECT", "FROM",  "WHERE", "AND",   "GROUP", "BY",   "ORDER",
      "DESC",   "COUNT", "AVG",   "(",     ")",     "*",    ",",
      ".",      "=",     "<>",    ">=",    "<",     "?",    "T",
      "U",      "a",     "b",     "c",     "d",     "'x'",  "42",
      "3.5",    "AS",    "alias", "T.a",   "U.a",   "nope",
      "EXPLAIN", "ANALYZE",
  };
  const std::string base =
      "SELECT a, COUNT(*) FROM T, U WHERE T.a = U.a AND b = 'x' AND "
      "a >= 10 GROUP BY a ORDER BY a DESC";

  for (int trial = 0; trial < 60; ++trial) {
    std::string sql;
    // Statements are fuzzed in all three forms: bare, EXPLAIN and
    // EXPLAIN ANALYZE (the prefix must never change crash behaviour).
    if (rng.Chance(0.3)) {
      sql = rng.Chance(0.5) ? "EXPLAIN " : "EXPLAIN ANALYZE ";
    }
    if (rng.Chance(0.5)) {
      // Random token soup.
      const size_t len = rng.Index(20) + 1;
      for (size_t i = 0; i < len; ++i) {
        sql += fragments[rng.Index(fragments.size())];
        sql += " ";
      }
    } else {
      // Mutated valid query: delete/duplicate/replace a token.
      sql += base;
      const size_t pos = rng.Index(sql.size());
      switch (rng.Index(3)) {
        case 0:
          sql.erase(pos, rng.Index(5) + 1);
          break;
        case 1:
          sql.insert(pos, fragments[rng.Index(fragments.size())]);
          break;
        case 2:
          sql[pos] = static_cast<char>('A' + rng.Index(26));
          break;
      }
    }
    // Must not crash; errors must carry a message.
    Result<SelectStmt> stmt = Parse(sql);
    if (!stmt.ok()) {
      EXPECT_FALSE(stmt.status().message().empty()) << sql;
      continue;
    }
    std::vector<Value> params(stmt->num_params, Value(int64_t{1}));
    Result<BoundQuery> bound = Bind(*stmt, cat, params);
    if (!bound.ok()) {
      EXPECT_FALSE(bound.status().message().empty()) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzz, ::testing::Range(0, 8));

// The HTTP query-string decoders feed /explain and /timeseries: random
// byte soup (truncated escapes, stray separators, embedded controls) must
// decode to SOMETHING without crashing, and whatever SQL falls out must
// flow through the parser as cleanly as hand-written garbage.
TEST(QueryStringFuzzTest, RandomQueryStringsDecodeAndParseCleanly) {
  const catalog::Catalog cat = FuzzCatalog();
  Rng rng(0xFACADE);
  const std::string charset =
      "abcdefgSELECT FROM%+&=?*<>'0123456789%%2%zz\x01\x7f";
  for (int trial = 0; trial < 200; ++trial) {
    std::string query;
    const size_t len = rng.Index(64);
    for (size_t i = 0; i < len; ++i) {
      query += charset[rng.Index(charset.size())];
    }
    // Decoding never throws and never grows the input.
    const std::string decoded = obs::UrlDecode(query);
    EXPECT_LE(decoded.size(), query.size());
    const std::string q = obs::QueryParam(query, "q");
    const std::string name = obs::QueryParam(query, "name");
    EXPECT_LE(q.size(), query.size());
    EXPECT_LE(name.size(), query.size());
    // Whatever came out of q= is fed to the SQL front end, as the
    // /explain route does: a parse, a bind, or a clean error.
    Result<SelectStmt> stmt = Parse(q.empty() ? decoded : q);
    if (stmt.ok()) {
      std::vector<Value> params(stmt->num_params, Value(int64_t{1}));
      (void)Bind(*stmt, cat, params);
    } else {
      EXPECT_FALSE(stmt.status().message().empty());
    }
  }
}

TEST(ExplainPrefixTest, MalformedPrefixesErrorCleanly) {
  // Every truncated or misplaced prefix is a clean parse error.
  for (const char* sql :
       {"EXPLAIN", "EXPLAIN ANALYZE", "ANALYZE SELECT a FROM T",
        "EXPLAIN EXPLAIN SELECT a FROM T", "EXPLAIN 42",
        "EXPLAIN ANALYZE ANALYZE SELECT a FROM T", "SELECT EXPLAIN FROM T"}) {
    Result<SelectStmt> stmt = Parse(sql);
    EXPECT_FALSE(stmt.ok()) << sql;
    EXPECT_FALSE(stmt.status().message().empty()) << sql;
  }
}

TEST(ExplainPrefixTest, ValidPrefixesParseWithTheRightMode) {
  Result<SelectStmt> plain = Parse("EXPLAIN SELECT a FROM T");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->explain, ExplainMode::kPlain);

  Result<SelectStmt> analyze =
      Parse("explain analyze select a from T where a >= ?");
  ASSERT_TRUE(analyze.ok()) << analyze.status().ToString();
  EXPECT_EQ(analyze->explain, ExplainMode::kAnalyze);

  Result<SelectStmt> bare = Parse("SELECT a FROM T");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->explain, ExplainMode::kNone);
  // The prefix round-trips through ToString().
  Result<SelectStmt> roundtrip =
      Parse(Parse("EXPLAIN ANALYZE SELECT a FROM T")->ToString());
  ASSERT_TRUE(roundtrip.ok()) << roundtrip.status().ToString();
  EXPECT_EQ(roundtrip->explain, ExplainMode::kAnalyze);
}

}  // namespace
}  // namespace payless::sql
