// Robustness sweep: randomly mutated SQL must never crash the front end —
// every outcome is either a parsed statement or a clean error Status.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/bound_query.h"
#include "sql/parser.h"

namespace payless::sql {
namespace {

using catalog::AttrDomain;
using catalog::ColumnDef;
using catalog::DatasetDef;
using catalog::TableDef;

catalog::Catalog FuzzCatalog() {
  catalog::Catalog cat;
  EXPECT_TRUE(cat.RegisterDataset(DatasetDef{"D", 1.0, 100}).ok());
  TableDef t;
  t.name = "T";
  t.dataset = "D";
  t.columns = {
      ColumnDef::Free("a", ValueType::kInt64, AttrDomain::Numeric(0, 99)),
      ColumnDef::Free("b", ValueType::kString,
                      AttrDomain::Categorical({"x", "y"})),
      ColumnDef::Output("c", ValueType::kDouble)};
  t.cardinality = 100;
  EXPECT_TRUE(cat.RegisterTable(t).ok());
  TableDef u;
  u.name = "U";
  u.dataset = "D";
  u.columns = {
      ColumnDef::Free("a", ValueType::kInt64, AttrDomain::Numeric(0, 99)),
      ColumnDef::Output("d", ValueType::kString)};
  u.cardinality = 50;
  EXPECT_TRUE(cat.RegisterTable(u).ok());
  return cat;
}

class SqlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SqlFuzz, MutatedQueriesNeverCrash) {
  const catalog::Catalog cat = FuzzCatalog();
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761ULL + 1);
  const std::vector<std::string> fragments = {
      "SELECT", "FROM",  "WHERE", "AND",   "GROUP", "BY",   "ORDER",
      "DESC",   "COUNT", "AVG",   "(",     ")",     "*",    ",",
      ".",      "=",     "<>",    ">=",    "<",     "?",    "T",
      "U",      "a",     "b",     "c",     "d",     "'x'",  "42",
      "3.5",    "AS",    "alias", "T.a",   "U.a",   "nope",
  };
  const std::string base =
      "SELECT a, COUNT(*) FROM T, U WHERE T.a = U.a AND b = 'x' AND "
      "a >= 10 GROUP BY a ORDER BY a DESC";

  for (int trial = 0; trial < 60; ++trial) {
    std::string sql;
    if (rng.Chance(0.5)) {
      // Random token soup.
      const size_t len = rng.Index(20) + 1;
      for (size_t i = 0; i < len; ++i) {
        sql += fragments[rng.Index(fragments.size())];
        sql += " ";
      }
    } else {
      // Mutated valid query: delete/duplicate/replace a token.
      sql = base;
      const size_t pos = rng.Index(sql.size());
      switch (rng.Index(3)) {
        case 0:
          sql.erase(pos, rng.Index(5) + 1);
          break;
        case 1:
          sql.insert(pos, fragments[rng.Index(fragments.size())]);
          break;
        case 2:
          sql[pos] = static_cast<char>('A' + rng.Index(26));
          break;
      }
    }
    // Must not crash; errors must carry a message.
    Result<SelectStmt> stmt = Parse(sql);
    if (!stmt.ok()) {
      EXPECT_FALSE(stmt.status().message().empty()) << sql;
      continue;
    }
    std::vector<Value> params(stmt->num_params, Value(int64_t{1}));
    Result<BoundQuery> bound = Bind(*stmt, cat, params);
    if (!bound.ok()) {
      EXPECT_FALSE(bound.status().message().empty()) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace payless::sql
