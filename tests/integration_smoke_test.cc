// End-to-end smoke test: the real (WHW/EHR) workload through all four
// systems the paper compares, with every PayLess result checked against the
// reference oracle.
#include <gtest/gtest.h>

#include "exec/reference.h"
#include "workload/bundle.h"

namespace payless {
namespace {

using workload::Bundle;

class IntegrationSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::RealDataOptions options;
    options.scale = 0.05;
    options.num_countries = 8;
    options.days = 120;
    options.seed = 11;
    bundle_ = workload::MakeRealBundle(options, /*per_template=*/6,
                                       /*query_seed=*/23).release();
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static Bundle* bundle_;
};

Bundle* IntegrationSmokeTest::bundle_ = nullptr;

storage::Database LocalDbOf(const Bundle& bundle) {
  storage::Database db;
  for (const auto& [name, rows] : bundle.local_tables) {
    EXPECT_TRUE(db.CreateTable(*bundle.catalog.FindTable(name)).ok());
    EXPECT_TRUE(db.InsertRows(name, rows).ok());
  }
  return db;
}

TEST_F(IntegrationSmokeTest, PayLessMatchesOracleOnEveryQuery) {
  auto client =
      workload::NewPayLessClient(*bundle_, workload::PayLessFullConfig());
  const storage::Database oracle_db = LocalDbOf(*bundle_);
  for (const auto& query : bundle_->queries) {
    SCOPED_TRACE("template " + std::to_string(query.template_id) + ": " +
                 query.sql);
    Result<storage::Table> got = client->Query(query.sql, query.params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want = exec::ReferenceEvaluate(
        bundle_->catalog, *bundle_->market, oracle_db, query.sql,
        query.params);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_TRUE(exec::SameResult(*got, *want))
        << "got " << got->num_rows() << " rows, want " << want->num_rows();
  }
}

TEST_F(IntegrationSmokeTest, NoSqrVariantMatchesOracle) {
  auto client =
      workload::NewPayLessClient(*bundle_, workload::PayLessNoSqrConfig());
  const storage::Database oracle_db = LocalDbOf(*bundle_);
  for (const auto& query : bundle_->queries) {
    SCOPED_TRACE(query.sql);
    Result<storage::Table> got = client->Query(query.sql, query.params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want = exec::ReferenceEvaluate(
        bundle_->catalog, *bundle_->market, oracle_db, query.sql,
        query.params);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(exec::SameResult(*got, *want));
  }
}

TEST_F(IntegrationSmokeTest, MinCallsVariantMatchesOracle) {
  auto client =
      workload::NewPayLessClient(*bundle_, workload::MinimizingCallsConfig());
  const storage::Database oracle_db = LocalDbOf(*bundle_);
  for (const auto& query : bundle_->queries) {
    SCOPED_TRACE(query.sql);
    Result<storage::Table> got = client->Query(query.sql, query.params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want = exec::ReferenceEvaluate(
        bundle_->catalog, *bundle_->market, oracle_db, query.sql,
        query.params);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(exec::SameResult(*got, *want));
  }
}

TEST_F(IntegrationSmokeTest, DownloadAllMatchesOracle) {
  auto client = workload::NewDownloadAllClient(*bundle_);
  const storage::Database oracle_db = LocalDbOf(*bundle_);
  for (const auto& query : bundle_->queries) {
    SCOPED_TRACE(query.sql);
    Result<storage::Table> got = client->Query(query.sql, query.params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<storage::Table> want = exec::ReferenceEvaluate(
        bundle_->catalog, *bundle_->market, oracle_db, query.sql,
        query.params);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(exec::SameResult(*got, *want));
  }
}

TEST_F(IntegrationSmokeTest, PayLessSpendsLessThanAlternatives) {
  auto payless =
      workload::NewPayLessClient(*bundle_, workload::PayLessFullConfig());
  auto no_sqr =
      workload::NewPayLessClient(*bundle_, workload::PayLessNoSqrConfig());
  auto download_all = workload::NewDownloadAllClient(*bundle_);
  for (const auto& query : bundle_->queries) {
    ASSERT_TRUE(payless->Query(query.sql, query.params).ok());
    ASSERT_TRUE(no_sqr->Query(query.sql, query.params).ok());
    ASSERT_TRUE(download_all->Query(query.sql, query.params).ok());
  }
  // The headline result of Fig. 10a, as (loose) invariants.
  EXPECT_LT(payless->meter().total_transactions(),
            no_sqr->meter().total_transactions());
  EXPECT_LT(payless->meter().total_transactions(),
            download_all->meter().total_transactions());
}

}  // namespace
}  // namespace payless
