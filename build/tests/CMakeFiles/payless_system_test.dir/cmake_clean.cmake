file(REMOVE_RECURSE
  "CMakeFiles/payless_system_test.dir/payless_system_test.cc.o"
  "CMakeFiles/payless_system_test.dir/payless_system_test.cc.o.d"
  "payless_system_test"
  "payless_system_test.pdb"
  "payless_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
