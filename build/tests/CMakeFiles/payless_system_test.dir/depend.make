# Empty dependencies file for payless_system_test.
# This may be replaced when dependencies are built.
