file(REMOVE_RECURSE
  "CMakeFiles/semstore_test.dir/semstore_test.cc.o"
  "CMakeFiles/semstore_test.dir/semstore_test.cc.o.d"
  "semstore_test"
  "semstore_test.pdb"
  "semstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
