# Empty compiler generated dependencies file for semstore_test.
# This may be replaced when dependencies are built.
