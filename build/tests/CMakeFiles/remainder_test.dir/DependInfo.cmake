
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/remainder_test.cc" "tests/CMakeFiles/remainder_test.dir/remainder_test.cc.o" "gcc" "tests/CMakeFiles/remainder_test.dir/remainder_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/payless_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/payless_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/payless_core.dir/DependInfo.cmake"
  "/root/repo/build/src/semstore/CMakeFiles/payless_semstore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/payless_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/payless_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/payless_market.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payless_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/payless_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/payless_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
