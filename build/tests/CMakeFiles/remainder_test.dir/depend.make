# Empty dependencies file for remainder_test.
# This may be replaced when dependencies are built.
