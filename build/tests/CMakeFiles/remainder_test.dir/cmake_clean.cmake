file(REMOVE_RECURSE
  "CMakeFiles/remainder_test.dir/remainder_test.cc.o"
  "CMakeFiles/remainder_test.dir/remainder_test.cc.o.d"
  "remainder_test"
  "remainder_test.pdb"
  "remainder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remainder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
