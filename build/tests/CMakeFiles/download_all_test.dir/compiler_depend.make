# Empty compiler generated dependencies file for download_all_test.
# This may be replaced when dependencies are built.
