file(REMOVE_RECURSE
  "CMakeFiles/download_all_test.dir/download_all_test.cc.o"
  "CMakeFiles/download_all_test.dir/download_all_test.cc.o.d"
  "download_all_test"
  "download_all_test.pdb"
  "download_all_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
