file(REMOVE_RECURSE
  "CMakeFiles/independent_stats_test.dir/independent_stats_test.cc.o"
  "CMakeFiles/independent_stats_test.dir/independent_stats_test.cc.o.d"
  "independent_stats_test"
  "independent_stats_test.pdb"
  "independent_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independent_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
