# Empty dependencies file for independent_stats_test.
# This may be replaced when dependencies are built.
