file(REMOVE_RECURSE
  "CMakeFiles/remainder_edge_test.dir/remainder_edge_test.cc.o"
  "CMakeFiles/remainder_edge_test.dir/remainder_edge_test.cc.o.d"
  "remainder_edge_test"
  "remainder_edge_test.pdb"
  "remainder_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remainder_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
