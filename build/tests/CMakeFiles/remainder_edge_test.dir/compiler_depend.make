# Empty compiler generated dependencies file for remainder_edge_test.
# This may be replaced when dependencies are built.
