file(REMOVE_RECURSE
  "CMakeFiles/orderby_test.dir/orderby_test.cc.o"
  "CMakeFiles/orderby_test.dir/orderby_test.cc.o.d"
  "orderby_test"
  "orderby_test.pdb"
  "orderby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
