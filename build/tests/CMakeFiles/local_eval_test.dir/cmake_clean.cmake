file(REMOVE_RECURSE
  "CMakeFiles/local_eval_test.dir/local_eval_test.cc.o"
  "CMakeFiles/local_eval_test.dir/local_eval_test.cc.o.d"
  "local_eval_test"
  "local_eval_test.pdb"
  "local_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
