# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/market_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/semstore_test[1]_include.cmake")
include("/root/repo/build/tests/remainder_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/payless_system_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/orderby_test[1]_include.cmake")
include("/root/repo/build/tests/local_eval_test[1]_include.cmake")
include("/root/repo/build/tests/independent_stats_test[1]_include.cmake")
include("/root/repo/build/tests/download_all_test[1]_include.cmake")
include("/root/repo/build/tests/paper_scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/sql_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/remainder_edge_test[1]_include.cmake")
include("/root/repo/build/tests/integration_smoke_test[1]_include.cmake")
