file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_latency.dir/bench_optimizer_latency.cc.o"
  "CMakeFiles/bench_optimizer_latency.dir/bench_optimizer_latency.cc.o.d"
  "bench_optimizer_latency"
  "bench_optimizer_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
