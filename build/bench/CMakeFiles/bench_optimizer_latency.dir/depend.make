# Empty dependencies file for bench_optimizer_latency.
# This may be replaced when dependencies are built.
