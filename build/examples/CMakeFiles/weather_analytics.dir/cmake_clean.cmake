file(REMOVE_RECURSE
  "CMakeFiles/weather_analytics.dir/weather_analytics.cpp.o"
  "CMakeFiles/weather_analytics.dir/weather_analytics.cpp.o.d"
  "weather_analytics"
  "weather_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
