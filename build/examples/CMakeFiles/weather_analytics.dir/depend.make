# Empty dependencies file for weather_analytics.
# This may be replaced when dependencies are built.
