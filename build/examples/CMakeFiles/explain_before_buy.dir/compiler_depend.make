# Empty compiler generated dependencies file for explain_before_buy.
# This may be replaced when dependencies are built.
