file(REMOVE_RECURSE
  "CMakeFiles/explain_before_buy.dir/explain_before_buy.cpp.o"
  "CMakeFiles/explain_before_buy.dir/explain_before_buy.cpp.o.d"
  "explain_before_buy"
  "explain_before_buy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_before_buy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
