file(REMOVE_RECURSE
  "CMakeFiles/tpch_federation.dir/tpch_federation.cpp.o"
  "CMakeFiles/tpch_federation.dir/tpch_federation.cpp.o.d"
  "tpch_federation"
  "tpch_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
