# Empty compiler generated dependencies file for tpch_federation.
# This may be replaced when dependencies are built.
