file(REMOVE_RECURSE
  "CMakeFiles/consistency_levels.dir/consistency_levels.cpp.o"
  "CMakeFiles/consistency_levels.dir/consistency_levels.cpp.o.d"
  "consistency_levels"
  "consistency_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
