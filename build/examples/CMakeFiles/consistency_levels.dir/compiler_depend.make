# Empty compiler generated dependencies file for consistency_levels.
# This may be replaced when dependencies are built.
