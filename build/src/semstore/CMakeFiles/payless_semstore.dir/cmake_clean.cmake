file(REMOVE_RECURSE
  "CMakeFiles/payless_semstore.dir/remainder.cc.o"
  "CMakeFiles/payless_semstore.dir/remainder.cc.o.d"
  "CMakeFiles/payless_semstore.dir/semantic_store.cc.o"
  "CMakeFiles/payless_semstore.dir/semantic_store.cc.o.d"
  "libpayless_semstore.a"
  "libpayless_semstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_semstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
