# Empty compiler generated dependencies file for payless_semstore.
# This may be replaced when dependencies are built.
