file(REMOVE_RECURSE
  "libpayless_semstore.a"
)
