# Empty dependencies file for payless_catalog.
# This may be replaced when dependencies are built.
