file(REMOVE_RECURSE
  "libpayless_catalog.a"
)
