file(REMOVE_RECURSE
  "CMakeFiles/payless_catalog.dir/catalog.cc.o"
  "CMakeFiles/payless_catalog.dir/catalog.cc.o.d"
  "libpayless_catalog.a"
  "libpayless_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
