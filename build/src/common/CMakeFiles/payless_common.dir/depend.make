# Empty dependencies file for payless_common.
# This may be replaced when dependencies are built.
