file(REMOVE_RECURSE
  "libpayless_common.a"
)
