file(REMOVE_RECURSE
  "CMakeFiles/payless_common.dir/geometry.cc.o"
  "CMakeFiles/payless_common.dir/geometry.cc.o.d"
  "CMakeFiles/payless_common.dir/rng.cc.o"
  "CMakeFiles/payless_common.dir/rng.cc.o.d"
  "CMakeFiles/payless_common.dir/value.cc.o"
  "CMakeFiles/payless_common.dir/value.cc.o.d"
  "libpayless_common.a"
  "libpayless_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
