# Empty compiler generated dependencies file for payless_common.
# This may be replaced when dependencies are built.
