
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/data_market.cc" "src/market/CMakeFiles/payless_market.dir/data_market.cc.o" "gcc" "src/market/CMakeFiles/payless_market.dir/data_market.cc.o.d"
  "/root/repo/src/market/rest_call.cc" "src/market/CMakeFiles/payless_market.dir/rest_call.cc.o" "gcc" "src/market/CMakeFiles/payless_market.dir/rest_call.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/payless_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/payless_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payless_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
