file(REMOVE_RECURSE
  "CMakeFiles/payless_market.dir/data_market.cc.o"
  "CMakeFiles/payless_market.dir/data_market.cc.o.d"
  "CMakeFiles/payless_market.dir/rest_call.cc.o"
  "CMakeFiles/payless_market.dir/rest_call.cc.o.d"
  "libpayless_market.a"
  "libpayless_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
