file(REMOVE_RECURSE
  "libpayless_market.a"
)
