# Empty compiler generated dependencies file for payless_market.
# This may be replaced when dependencies are built.
