file(REMOVE_RECURSE
  "libpayless_workload.a"
)
