# Empty compiler generated dependencies file for payless_workload.
# This may be replaced when dependencies are built.
