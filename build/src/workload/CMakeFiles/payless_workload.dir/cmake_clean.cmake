file(REMOVE_RECURSE
  "CMakeFiles/payless_workload.dir/bundle.cc.o"
  "CMakeFiles/payless_workload.dir/bundle.cc.o.d"
  "CMakeFiles/payless_workload.dir/queries.cc.o"
  "CMakeFiles/payless_workload.dir/queries.cc.o.d"
  "CMakeFiles/payless_workload.dir/tpch.cc.o"
  "CMakeFiles/payless_workload.dir/tpch.cc.o.d"
  "CMakeFiles/payless_workload.dir/whw.cc.o"
  "CMakeFiles/payless_workload.dir/whw.cc.o.d"
  "libpayless_workload.a"
  "libpayless_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
