file(REMOVE_RECURSE
  "CMakeFiles/payless_exec.dir/download_all.cc.o"
  "CMakeFiles/payless_exec.dir/download_all.cc.o.d"
  "CMakeFiles/payless_exec.dir/execution_engine.cc.o"
  "CMakeFiles/payless_exec.dir/execution_engine.cc.o.d"
  "CMakeFiles/payless_exec.dir/local_eval.cc.o"
  "CMakeFiles/payless_exec.dir/local_eval.cc.o.d"
  "CMakeFiles/payless_exec.dir/payless.cc.o"
  "CMakeFiles/payless_exec.dir/payless.cc.o.d"
  "CMakeFiles/payless_exec.dir/reference.cc.o"
  "CMakeFiles/payless_exec.dir/reference.cc.o.d"
  "libpayless_exec.a"
  "libpayless_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
