# Empty dependencies file for payless_exec.
# This may be replaced when dependencies are built.
