file(REMOVE_RECURSE
  "libpayless_exec.a"
)
