file(REMOVE_RECURSE
  "libpayless_stats.a"
)
