# Empty compiler generated dependencies file for payless_stats.
# This may be replaced when dependencies are built.
