file(REMOVE_RECURSE
  "CMakeFiles/payless_stats.dir/estimator.cc.o"
  "CMakeFiles/payless_stats.dir/estimator.cc.o.d"
  "libpayless_stats.a"
  "libpayless_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
