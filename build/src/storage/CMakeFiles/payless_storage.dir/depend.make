# Empty dependencies file for payless_storage.
# This may be replaced when dependencies are built.
