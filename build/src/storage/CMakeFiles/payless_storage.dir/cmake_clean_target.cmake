file(REMOVE_RECURSE
  "libpayless_storage.a"
)
