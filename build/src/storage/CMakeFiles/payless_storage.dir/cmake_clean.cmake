file(REMOVE_RECURSE
  "CMakeFiles/payless_storage.dir/csv.cc.o"
  "CMakeFiles/payless_storage.dir/csv.cc.o.d"
  "CMakeFiles/payless_storage.dir/database.cc.o"
  "CMakeFiles/payless_storage.dir/database.cc.o.d"
  "CMakeFiles/payless_storage.dir/ops.cc.o"
  "CMakeFiles/payless_storage.dir/ops.cc.o.d"
  "CMakeFiles/payless_storage.dir/table.cc.o"
  "CMakeFiles/payless_storage.dir/table.cc.o.d"
  "libpayless_storage.a"
  "libpayless_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
