# Empty compiler generated dependencies file for payless_storage.
# This may be replaced when dependencies are built.
