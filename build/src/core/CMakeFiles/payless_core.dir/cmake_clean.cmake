file(REMOVE_RECURSE
  "CMakeFiles/payless_core.dir/optimizer.cc.o"
  "CMakeFiles/payless_core.dir/optimizer.cc.o.d"
  "CMakeFiles/payless_core.dir/plan.cc.o"
  "CMakeFiles/payless_core.dir/plan.cc.o.d"
  "libpayless_core.a"
  "libpayless_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
