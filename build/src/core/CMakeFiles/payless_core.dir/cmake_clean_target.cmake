file(REMOVE_RECURSE
  "libpayless_core.a"
)
