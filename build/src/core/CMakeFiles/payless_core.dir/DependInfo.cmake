
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/payless_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/payless_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/payless_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/payless_core.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/payless_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/payless_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/payless_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/semstore/CMakeFiles/payless_semstore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/payless_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/payless_market.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payless_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
