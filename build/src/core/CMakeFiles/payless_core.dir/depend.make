# Empty dependencies file for payless_core.
# This may be replaced when dependencies are built.
