file(REMOVE_RECURSE
  "libpayless_sql.a"
)
