file(REMOVE_RECURSE
  "CMakeFiles/payless_sql.dir/ast.cc.o"
  "CMakeFiles/payless_sql.dir/ast.cc.o.d"
  "CMakeFiles/payless_sql.dir/binder.cc.o"
  "CMakeFiles/payless_sql.dir/binder.cc.o.d"
  "CMakeFiles/payless_sql.dir/lexer.cc.o"
  "CMakeFiles/payless_sql.dir/lexer.cc.o.d"
  "CMakeFiles/payless_sql.dir/parser.cc.o"
  "CMakeFiles/payless_sql.dir/parser.cc.o.d"
  "libpayless_sql.a"
  "libpayless_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payless_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
