# Empty compiler generated dependencies file for payless_sql.
# This may be replaced when dependencies are built.
