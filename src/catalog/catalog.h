// Catalog: the metadata PayLess obtains when registering with the data
// market (Fig. 2) plus the schemas of the buyer's local tables.
//
// For each market table the catalog records the binding pattern (which
// attributes MUST be bound in a REST call, which MAY be, and which are
// output-only), the published "basic statistics" — attribute domains and
// table cardinality (§2.1) — and the dataset's pricing terms (price per
// transaction `p`, tuples per transaction `t`).
#ifndef PAYLESS_CATALOG_CATALOG_H_
#define PAYLESS_CATALOG_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "common/value.h"

namespace payless::catalog {

/// Role of an attribute in a table's binding pattern (notation of [27],
/// extended in §1): kBound attributes must be given a value/range in every
/// REST call; kFree attributes may be constrained; kOutput attributes are
/// result-only and can never be constrained.
enum class BindingKind {
  kBound,
  kFree,
  kOutput,
};

const char* BindingKindName(BindingKind kind);

/// Published domain of a constrainable attribute. Numeric domains are int64
/// lattice ranges (dates in YYYYMMDD, ranks, keys); categorical domains are
/// explicit value lists, dictionary-encoded so region geometry can treat
/// every dimension as an integer interval.
class AttrDomain {
 public:
  enum class Kind { kNone, kNumeric, kCategorical };

  AttrDomain() : kind_(Kind::kNone) {}

  static AttrDomain Numeric(int64_t lo, int64_t hi);
  static AttrDomain Categorical(std::vector<std::string> categories);

  Kind kind() const { return kind_; }
  bool is_numeric() const { return kind_ == Kind::kNumeric; }
  bool is_categorical() const { return kind_ == Kind::kCategorical; }

  /// Full extent as a lattice interval: the numeric range, or [0, n-1] of
  /// category codes. Empty interval when kNone.
  Interval ToInterval() const;

  /// Number of distinct values in the domain (0 for kNone).
  int64_t size() const { return ToInterval().Width(); }

  const std::vector<std::string>& categories() const { return categories_; }

  /// Lattice coordinate of a value: identity for numerics, dictionary code
  /// for categoricals. nullopt if the value is outside the domain.
  std::optional<int64_t> Encode(const Value& v) const;

  /// Inverse of Encode (asserts the coordinate is in range).
  Value Decode(int64_t code) const;

 private:
  Kind kind_;
  Interval range_;
  std::vector<std::string> categories_;
  std::map<std::string, int64_t> category_codes_;
};

/// One column of a table: SQL name/type plus its binding-pattern role and
/// (for constrainable columns) the published domain.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  BindingKind binding = BindingKind::kOutput;
  AttrDomain domain;

  static ColumnDef Bound(std::string name, ValueType type, AttrDomain domain) {
    return ColumnDef{std::move(name), type, BindingKind::kBound,
                     std::move(domain)};
  }
  static ColumnDef Free(std::string name, ValueType type, AttrDomain domain) {
    return ColumnDef{std::move(name), type, BindingKind::kFree,
                     std::move(domain)};
  }
  static ColumnDef Output(std::string name, ValueType type) {
    return ColumnDef{std::move(name), type, BindingKind::kOutput,
                     AttrDomain()};
  }
};

/// A table visible to PayLess: either hosted in the data market (priced,
/// access restricted by the binding pattern) or local to the buyer (free).
struct TableDef {
  std::string name;
  std::string dataset;  // empty for local tables
  bool is_local = false;
  std::vector<ColumnDef> columns;
  int64_t cardinality = 0;  // published basic statistic (§2.1)

  std::optional<size_t> ColumnIndex(const std::string& column_name) const;
  const ColumnDef& column(size_t i) const { return columns[i]; }
  size_t num_columns() const { return columns.size(); }

  /// Indices of constrainable columns (kBound or kFree), in column order.
  /// These are the dimensions of the table's query-region space.
  std::vector<size_t> ConstrainableColumns() const;

  /// Indices of kBound columns — every REST call must bind these.
  std::vector<size_t> BoundColumns() const;

  /// True iff the table can be downloaded wholesale with one unconstrained
  /// call, i.e. the binding pattern has no kBound attribute (§1).
  bool FullyDownloadable() const { return BoundColumns().empty(); }

  /// The full region of the table's query space: one interval per
  /// constrainable column, spanning the whole domain.
  Box FullRegion() const;
};

/// Pricing terms of one dataset (§2.1): a transaction is a page of
/// `tuples_per_transaction` tuples and costs `price_per_transaction`.
struct DatasetDef {
  std::string name;
  double price_per_transaction = 1.0;
  int64_t tuples_per_transaction = 100;
};

/// Name-keyed registry of datasets and tables.
class Catalog {
 public:
  Status RegisterDataset(DatasetDef dataset);
  Status RegisterTable(TableDef table);

  const TableDef* FindTable(const std::string& name) const;
  const DatasetDef* FindDataset(const std::string& name) const;

  /// Dataset pricing for a market table; nullptr for local tables.
  const DatasetDef* DatasetOf(const TableDef& table) const;

  std::vector<std::string> TableNames() const;

  /// Replaces the published cardinality (used when generators resize data).
  Status SetCardinality(const std::string& table, int64_t cardinality);

  /// Replaces an already-registered dataset's pricing terms. Used by
  /// federation endpoints: an endpoint's catalog is a copy of the base
  /// catalog with its own menu (price / page size) for shared datasets.
  Status OverrideDataset(DatasetDef dataset);

 private:
  std::map<std::string, TableDef> tables_;
  std::map<std::string, DatasetDef> datasets_;
};

}  // namespace payless::catalog

#endif  // PAYLESS_CATALOG_CATALOG_H_
