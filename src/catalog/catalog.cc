#include "catalog/catalog.h"

#include <cassert>

namespace payless::catalog {

const char* BindingKindName(BindingKind kind) {
  switch (kind) {
    case BindingKind::kBound:
      return "bound";
    case BindingKind::kFree:
      return "free";
    case BindingKind::kOutput:
      return "output";
  }
  return "unknown";
}

AttrDomain AttrDomain::Numeric(int64_t lo, int64_t hi) {
  AttrDomain d;
  d.kind_ = Kind::kNumeric;
  d.range_ = Interval(lo, hi);
  assert(!d.range_.empty());
  return d;
}

AttrDomain AttrDomain::Categorical(std::vector<std::string> categories) {
  AttrDomain d;
  d.kind_ = Kind::kCategorical;
  d.categories_ = std::move(categories);
  assert(!d.categories_.empty());
  for (size_t i = 0; i < d.categories_.size(); ++i) {
    d.category_codes_[d.categories_[i]] = static_cast<int64_t>(i);
  }
  assert(d.category_codes_.size() == d.categories_.size() &&
         "duplicate category");
  return d;
}

Interval AttrDomain::ToInterval() const {
  switch (kind_) {
    case Kind::kNone:
      return Interval::Empty();
    case Kind::kNumeric:
      return range_;
    case Kind::kCategorical:
      return Interval(0, static_cast<int64_t>(categories_.size()) - 1);
  }
  return Interval::Empty();
}

std::optional<int64_t> AttrDomain::Encode(const Value& v) const {
  if (kind_ == Kind::kNumeric) {
    if (!v.is_int64()) return std::nullopt;
    const int64_t code = v.AsInt64();
    if (!range_.Contains(code)) return std::nullopt;
    return code;
  }
  if (kind_ == Kind::kCategorical) {
    if (!v.is_string()) return std::nullopt;
    const auto it = category_codes_.find(v.AsString());
    if (it == category_codes_.end()) return std::nullopt;
    return it->second;
  }
  return std::nullopt;
}

Value AttrDomain::Decode(int64_t code) const {
  if (kind_ == Kind::kNumeric) {
    assert(range_.Contains(code));
    return Value(code);
  }
  assert(kind_ == Kind::kCategorical);
  assert(code >= 0 && code < static_cast<int64_t>(categories_.size()));
  return Value(categories_[static_cast<size_t>(code)]);
}

std::optional<size_t> TableDef::ColumnIndex(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return i;
  }
  return std::nullopt;
}

std::vector<size_t> TableDef::ConstrainableColumns() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].binding != BindingKind::kOutput) out.push_back(i);
  }
  return out;
}

std::vector<size_t> TableDef::BoundColumns() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].binding == BindingKind::kBound) out.push_back(i);
  }
  return out;
}

Box TableDef::FullRegion() const {
  std::vector<Interval> dims;
  for (size_t col : ConstrainableColumns()) {
    dims.push_back(columns[col].domain.ToInterval());
  }
  return Box(std::move(dims));
}

Status Catalog::RegisterDataset(DatasetDef dataset) {
  if (dataset.tuples_per_transaction <= 0) {
    return Status::InvalidArgument("dataset '" + dataset.name +
                                   "': tuples_per_transaction must be > 0");
  }
  if (dataset.price_per_transaction < 0) {
    return Status::InvalidArgument("dataset '" + dataset.name +
                                   "': negative price");
  }
  const std::string name = dataset.name;
  if (!datasets_.emplace(name, std::move(dataset)).second) {
    return Status::InvalidArgument("dataset '" + name +
                                   "' already registered");
  }
  return Status::OK();
}

Status Catalog::RegisterTable(TableDef table) {
  if (table.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name + "' has no columns");
  }
  if (!table.is_local && datasets_.find(table.dataset) == datasets_.end()) {
    return Status::InvalidArgument("table '" + table.name +
                                   "' references unknown dataset '" +
                                   table.dataset + "'");
  }
  for (const ColumnDef& col : table.columns) {
    if (col.binding != BindingKind::kOutput &&
        col.domain.kind() == AttrDomain::Kind::kNone) {
      return Status::InvalidArgument(
          "table '" + table.name + "': constrainable column '" + col.name +
          "' needs a published domain");
    }
  }
  const std::string name = table.name;
  if (!tables_.emplace(name, std::move(table)).second) {
    return Status::InvalidArgument("table '" + name + "' already registered");
  }
  return Status::OK();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const DatasetDef* Catalog::FindDataset(const std::string& name) const {
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

const DatasetDef* Catalog::DatasetOf(const TableDef& table) const {
  if (table.is_local) return nullptr;
  return FindDataset(table.dataset);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Catalog::OverrideDataset(DatasetDef dataset) {
  if (dataset.tuples_per_transaction <= 0) {
    return Status::InvalidArgument("dataset '" + dataset.name +
                                   "': tuples_per_transaction must be > 0");
  }
  if (dataset.price_per_transaction < 0) {
    return Status::InvalidArgument("dataset '" + dataset.name +
                                   "': negative price");
  }
  const auto it = datasets_.find(dataset.name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + dataset.name + "' not registered");
  }
  it->second = std::move(dataset);
  return Status::OK();
}

Status Catalog::SetCardinality(const std::string& table, int64_t cardinality) {
  const auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table + "' not registered");
  }
  it->second.cardinality = cardinality;
  return Status::OK();
}

}  // namespace payless::catalog
