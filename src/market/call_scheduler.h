// Event-loop dispatcher for market calls: keeps hundreds of simulated GETs
// in flight per worker thread instead of parking one thread per call.
//
// The synchronous MarketConnector::Get burns a thread for every in-flight
// call — each sleeps through its simulated network latency and its retry
// backoffs. That caps realistic concurrency at the thread count and, worse,
// makes high fan-out pay thread-creation and context-switch costs that a
// real async HTTP client would not. The CallScheduler drives the exact same
// CallTask phase machine (BeginCall -> BeginAttempt -> CompleteAttempt),
// but turns every delay the phases return into a timer on a min-heap. One
// loop thread pops due timers in batches — one lock hold drains everything
// due, then the phases run outside the lock — so a single worker overlaps
// arbitrarily many call latencies.
//
// Billing stays byte-identical to the synchronous path: every bill, retry
// statistic, breaker transition and listener notification happens inside
// the connector's phase methods, which both drivers share verbatim. The
// scheduler only decides WHEN a phase runs, never what it does.
//
// ExecuteBatch preserves the executor's merge contract: outcomes come back
// index-aligned with the submitted calls (completion order is irrelevant),
// and fail-fast cancellation is decided when a call would be ADMITTED into
// the in-flight window — exactly where the ParallelFor path checks its
// cancellation flag before issuing.
#ifndef PAYLESS_MARKET_CALL_SCHEDULER_H_
#define PAYLESS_MARKET_CALL_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "market/data_market.h"

namespace payless::market {

class CallScheduler {
 public:
  /// One call of a batch. The pointed-at objects must outlive ExecuteBatch.
  struct Item {
    const RestCall* call = nullptr;
    Clock::time_point deadline = kNoDeadline;
    const CallObs* call_obs = nullptr;
  };

  /// `hooks` (all members optional) instruments the scheduler's internals:
  /// queue-depth / in-flight / timer-heap gauges, admission-wait histogram,
  /// and the coalescing-opportunity meter.
  explicit CallScheduler(MarketConnector* connector,
                         const SchedulerHooks& hooks = SchedulerHooks{});

  CallScheduler(const CallScheduler&) = delete;
  CallScheduler& operator=(const CallScheduler&) = delete;

  /// Stops the loop thread. Callers must not be inside ExecuteBatch.
  ~CallScheduler();

  /// Drives every item through the connector's call phases with at most
  /// `max_in_flight` calls outstanding at once, admitting strictly in item
  /// order. Blocks until the whole batch settled. Returns one outcome per
  /// item, index-aligned; nullopt means the item was cancelled before being
  /// issued (`cancel_on_error` and an earlier item failed) — it spent no
  /// money and saw no market state.
  ///
  /// Thread-safe: any number of threads may run batches concurrently; they
  /// share the loop thread and the timer heap.
  std::vector<std::optional<Result<CallResult>>> ExecuteBatch(
      const std::vector<Item>& items, size_t max_in_flight,
      bool cancel_on_error);

 private:
  enum class Phase { kBegin, kAttempt, kComplete };

  /// One ExecuteBatch in flight; lives on the caller's stack.
  struct Batch {
    std::vector<MarketConnector::CallTask> tasks;
    std::vector<std::optional<Result<CallResult>>> outcomes;
    size_t next = 0;       // next item index to admit
    size_t remaining = 0;  // items not yet finished or cancelled
    size_t in_flight = 0;
    size_t max_in_flight = 1;
    bool cancel_on_error = false;
    bool failed = false;  // a finished item failed; cancel the unadmitted
    Clock::time_point submitted{};  // admission-wait reference point
    /// Per-item call signatures (RestCall::ToString: table + conditions)
    /// for the coalescing meter; empty when the meter is off.
    std::vector<std::string> sigs;
    /// Item was admitted while an identical call was already in flight.
    std::vector<uint8_t> coalescable;
    std::condition_variable done;
  };

  struct Timer {
    Clock::time_point due;
    Batch* batch = nullptr;
    size_t index = 0;
    Phase phase = Phase::kAttempt;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due > b.due;
    }
  };

  /// Runs phases for one task until it either arms a timer or finishes.
  void Drive(Batch* batch, size_t index, Phase phase);
  /// Claims admissible item indices under `mutex_` (cancelling instead of
  /// claiming once the batch failed); the caller starts them unlocked.
  void AdmitLocked(Batch* batch, std::vector<size_t>* to_start);
  void Arm(Batch* batch, size_t index, Phase phase, int64_t delay_micros);
  void FinishTask(Batch* batch, size_t index);
  void Loop();

  MarketConnector* const connector_;
  const SchedulerHooks hooks_;

  std::mutex mutex_;
  std::condition_variable loop_cv_;
  std::vector<Timer> timers_;  // min-heap on `due`
  /// Signature -> number of identical calls currently inside the in-flight
  /// window, across all batches (guarded by `mutex_`). Feeds the
  /// coalescing-opportunity meter; empty when the meter is off.
  std::map<std::string, int> inflight_sigs_;
  bool stop_ = false;
  std::thread loop_thread_;
};

}  // namespace payless::market

#endif  // PAYLESS_MARKET_CALL_SCHEDULER_H_
