// Fault injection for the market boundary.
//
// The in-process DataMarket can never fail on its own, so the middleware's
// failure paths would go untested. A FaultInjector sits between the
// connector and the market and decides, per call, whether this call is hit
// by a transient connection drop, a lost response, a rate-limit rejection
// or a latency spike — the failure modes of a real pay-per-call REST
// service (§2's Azure Marketplace model).
//
// The money-critical distinction is WHERE a fault strikes relative to
// evaluation:
//   - kTransientDrop happens before the market evaluates the call: the
//     seller never saw it, nothing is billed.
//   - kLostResponse happens after evaluation: the seller produced (and
//     bills, Eq. 1) the result, but the response never reaches the buyer.
//     The connector must meter it as WASTED spend and must NOT deliver it
//     to listeners.
//
// Decisions are drawn from a seeded Rng with a fixed number of draws per
// decision, so a serial run replays its fault sequence exactly; under
// concurrency the decision SEQUENCE is still deterministic but its
// assignment to calls follows arrival order. Scripted decisions (a FIFO
// consumed before the probabilistic draw) give tests exact call-level
// control.
#ifndef PAYLESS_MARKET_FAULT_INJECTOR_H_
#define PAYLESS_MARKET_FAULT_INJECTOR_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/rng.h"
#include "market/rest_call.h"

namespace payless::market {

enum class FaultKind {
  kNone = 0,
  kTransientDrop,  // dropped before evaluation: nothing billed
  kLostResponse,   // failed after evaluation: billed by the seller, undelivered
  kRateLimit,      // throttled with a retry-after hint: nothing billed
};

/// What happens to one call. A latency spike composes with any kind
/// (including kNone): the call is slow AND then succeeds/fails.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int64_t latency_spike_micros = 0;
  int64_t retry_after_micros = 0;  // hint carried by kRateLimit rejections
};

/// Probabilistic fault mix. Kind probabilities partition one uniform draw,
/// so they must sum to <= 1; the remainder is kNone.
struct FaultProfile {
  double transient_rate = 0.0;      // P(kTransientDrop)
  double lost_response_rate = 0.0;  // P(kLostResponse)
  double rate_limit_rate = 0.0;     // P(kRateLimit)
  double latency_spike_rate = 0.0;  // P(spike), independent of the kind
  int64_t latency_spike_micros = 2000;
  int64_t retry_after_micros = 200;
  uint64_t seed = 42;
};

struct FaultStats {
  int64_t decisions = 0;
  int64_t transient_drops = 0;
  int64_t lost_responses = 0;
  int64_t rate_limits = 0;
  int64_t latency_spikes = 0;
  int64_t crashes = 0;  // armed crash points that fired
};

/// Where, relative to the durability manager's harvest/snapshot pipeline, a
/// process death is injected. The money-critical distinction mirrors the
/// fault kinds above: a crash BEFORE the log append loses a billed-but-not-
/// durable harvest (legitimately re-bought on restart), a crash AFTER it
/// loses nothing.
enum class CrashPoint {
  kBeforeHarvestLog,         // billed, nothing on disk: the lost-slab case
  kMidHarvestLog,            // torn frame tail on disk
  kAfterHarvestLog,          // record durable; died before in-memory apply
  kMidSnapshot,              // partial snapshot tmp file, no rename
  kAfterSnapshotBeforeReset  // snapshot renamed, WAL not yet reset
};

/// One armed process death. `after_hits` arrivals at `point` pass through
/// before the crash fires (0 = the first arrival crashes). `hard` makes the
/// durability manager _Exit the process for the kill/restart harness;
/// otherwise the manager SIMULATES death: it freezes the on-disk state
/// exactly as a kill at that point would leave it and stops persisting,
/// while the in-memory instance keeps serving (tests then discard it and
/// recover a fresh instance from the frozen files).
struct CrashPlan {
  CrashPoint point = CrashPoint::kBeforeHarvestLog;
  int after_hits = 0;
  size_t torn_bytes = 8;  // kMidHarvestLog: frame bytes reaching the disk
  bool hard = false;
};

/// Thread-safe: Decide serializes on an internal mutex (the injector is a
/// test/bench instrument; its lock is never on a lock-free fast path).
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile)
      : profile_(profile), rng_(profile.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Queues a decision consumed (FIFO) before any probabilistic draw.
  void Script(FaultDecision decision);
  void Script(FaultKind kind);

  /// The fate of the next call. Consumes the scripted FIFO first; otherwise
  /// draws exactly two uniforms (kind, spike) so replay is exact.
  FaultDecision Decide(const RestCall& call);

  /// Arms one process death (replacing any previously armed plan).
  void ArmCrash(CrashPlan plan);

  /// The durability manager announces reaching `point`; returns the armed
  /// plan when this arrival is the one that crashes (disarming it), nullopt
  /// otherwise. Arrival counting is per armed plan.
  std::optional<CrashPlan> CrashAt(CrashPoint point);

  FaultStats stats() const;

 private:
  mutable std::mutex mutex_;
  FaultProfile profile_;
  Rng rng_;
  std::deque<FaultDecision> scripted_;
  std::optional<CrashPlan> armed_crash_;
  int crash_hits_ = 0;  // arrivals at the armed point so far
  FaultStats stats_;
};

}  // namespace payless::market

#endif  // PAYLESS_MARKET_FAULT_INJECTOR_H_
