#include "market/data_market.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/snapshot.h"
#include "market/call_scheduler.h"

namespace payless::market {

int64_t TransactionsFor(int64_t records, int64_t tuples_per_transaction) {
  if (records <= 0) return 0;
  return (records + tuples_per_transaction - 1) / tuples_per_transaction;
}

void BillingMeter::Record(const std::string& dataset, int64_t transactions,
                          double price) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerDataset& d = per_dataset_[dataset];
  d.transactions += transactions;
  d.price += price;
  d.calls += 1;
  total_transactions_ += transactions;
  total_price_ += price;
  total_calls_ += 1;
}

int64_t BillingMeter::TransactionsFor(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_dataset_.find(dataset);
  return it == per_dataset_.end() ? 0 : it->second.transactions;
}

void BillingMeter::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  per_dataset_.clear();
  total_transactions_ = 0;
  total_price_ = 0.0;
  total_calls_ = 0;
}

std::string BillingMeter::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "billing: " << total_calls_ << " calls, " << total_transactions_
     << " transactions, $" << total_price_ << "\n";
  for (const auto& [name, d] : per_dataset_) {
    os << "  " << name << ": " << d.calls << " calls, " << d.transactions
       << " transactions, $" << d.price << "\n";
  }
  return os.str();
}

void DataMarket::IndexRows(const catalog::TableDef& def, HostedTable* table,
                           size_t first_row) const {
  for (const size_t col : def.ConstrainableColumns()) {
    auto& postings = table->point_index[col];
    const bool numeric = def.columns[col].domain.is_numeric();
    auto* sorted = numeric ? &table->range_index[col] : nullptr;
    for (size_t i = first_row; i < table->rows.size(); ++i) {
      const Value& v = table->rows[i][col];
      if (v.is_null()) continue;
      postings[v].push_back(static_cast<uint32_t>(i));
      if (sorted != nullptr && v.is_int64()) {
        sorted->emplace_back(v.AsInt64(), static_cast<uint32_t>(i));
      }
    }
    if (sorted != nullptr) {
      std::sort(sorted->begin(), sorted->end());
    }
  }
}

Status DataMarket::HostTable(const std::string& name, std::vector<Row> rows) {
  const catalog::TableDef* def = catalog_->FindTable(name);
  if (def == nullptr) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  if (def->is_local) {
    return Status::InvalidArgument("table '" + name +
                                   "' is local; cannot host in the market");
  }
  for (const Row& row : rows) {
    if (row.size() != def->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + name + "'");
    }
  }
  HostedTable table;
  table.rows.reserve(rows.size());
  for (Row& row : rows) {
    if (table.seen.insert(row).second) table.rows.push_back(std::move(row));
  }
  IndexRows(*def, &table, 0);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  hosted_[name] = std::move(table);
  return Status::OK();
}

Status DataMarket::AppendRows(const std::string& name,
                              const std::vector<Row>& rows) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = hosted_.find(name);
  if (it == hosted_.end()) {
    return Status::NotFound("table '" + name + "' not hosted");
  }
  const catalog::TableDef* def = catalog_->FindTable(name);
  const size_t first_new = it->second.rows.size();
  for (const Row& row : rows) {
    if (row.size() != def->columns.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + name + "'");
    }
    if (it->second.seen.insert(row).second) it->second.rows.push_back(row);
  }
  // Rebuild range indexes incrementally is not worth it here: re-index the
  // appended suffix for postings and re-sort the range projections.
  IndexRows(*def, &it->second, first_new);
  return Status::OK();
}

Result<CallResult> DataMarket::Execute(const RestCall& call) const {
  const catalog::TableDef* def = catalog_->FindTable(call.table);
  if (def == nullptr) {
    return Status::NotFound("table '" + call.table + "' not in catalog");
  }
  PAYLESS_RETURN_IF_ERROR(call.Validate(*def));
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = hosted_.find(call.table);
  if (it == hosted_.end()) {
    return Status::NotFound("table '" + call.table + "' not hosted");
  }
  const catalog::DatasetDef* dataset = catalog_->DatasetOf(*def);
  if (dataset == nullptr) {
    return Status::Internal("market table '" + call.table +
                            "' has no dataset pricing");
  }

  const HostedTable& hosted = it->second;

  // Pick the most selective index among the call's conditions: the smallest
  // point-condition posting list, else the narrowest numeric range span,
  // else a full scan. All other conditions verify per row.
  CallResult result;
  const std::vector<uint32_t>* posting = nullptr;
  for (size_t col = 0; col < call.conditions.size(); ++col) {
    const AttrCondition& cond = call.conditions[col];
    if (cond.kind != AttrCondition::Kind::kPoint) continue;
    const auto idx_it = hosted.point_index.find(col);
    if (idx_it == hosted.point_index.end()) continue;
    const auto post_it = idx_it->second.find(cond.point);
    if (post_it == idx_it->second.end()) {
      result.num_records = 0;  // no row carries this value
      result.transactions = 0;
      result.price = 0.0;
      return result;
    }
    if (posting == nullptr || post_it->second.size() < posting->size()) {
      posting = &post_it->second;
    }
  }

  if (posting != nullptr) {
    for (const uint32_t i : *posting) {
      if (call.MatchesRow(hosted.rows[i])) result.rows.push_back(hosted.rows[i]);
    }
  } else {
    // Try a numeric range condition.
    const std::vector<std::pair<int64_t, uint32_t>>* span = nullptr;
    Interval span_range;
    size_t span_width = hosted.rows.size() + 1;
    for (size_t col = 0; col < call.conditions.size(); ++col) {
      const AttrCondition& cond = call.conditions[col];
      if (cond.kind != AttrCondition::Kind::kRange) continue;
      const auto idx_it = hosted.range_index.find(col);
      if (idx_it == hosted.range_index.end()) continue;
      const auto lo = std::lower_bound(
          idx_it->second.begin(), idx_it->second.end(),
          std::make_pair(cond.range.lo, static_cast<uint32_t>(0)));
      const auto hi = std::upper_bound(
          idx_it->second.begin(), idx_it->second.end(),
          std::make_pair(cond.range.hi, ~static_cast<uint32_t>(0)));
      const size_t width = static_cast<size_t>(hi - lo);
      if (width < span_width) {
        span = &idx_it->second;
        span_range = cond.range;
        span_width = width;
      }
    }
    if (span != nullptr) {
      const auto lo = std::lower_bound(
          span->begin(), span->end(),
          std::make_pair(span_range.lo, static_cast<uint32_t>(0)));
      const auto hi = std::upper_bound(
          span->begin(), span->end(),
          std::make_pair(span_range.hi, ~static_cast<uint32_t>(0)));
      for (auto entry = lo; entry != hi; ++entry) {
        const Row& row = hosted.rows[entry->second];
        if (call.MatchesRow(row)) result.rows.push_back(row);
      }
    } else {
      for (const Row& row : hosted.rows) {
        if (call.MatchesRow(row)) result.rows.push_back(row);
      }
    }
  }
  result.num_records = static_cast<int64_t>(result.rows.size());
  result.transactions =
      TransactionsFor(result.num_records, dataset->tuples_per_transaction);
  result.price =
      static_cast<double>(result.transactions) * dataset->price_per_transaction;
  return result;
}

const std::vector<Row>* DataMarket::HostedRowsForTesting(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = hosted_.find(name);
  return it == hosted_.end() ? nullptr : &it->second.rows;
}

Result<int64_t> DataMarket::TableSize(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = hosted_.find(name);
  if (it == hosted_.end()) {
    return Status::NotFound("table '" + name + "' not hosted");
  }
  return static_cast<int64_t>(it->second.rows.size());
}

namespace {

/// "Country=US, StationID=5, Date=[1, 30]" — the call's binding values and
/// ranges, for span annotation.
std::string DescribeConditions(const catalog::TableDef& def,
                               const RestCall& call) {
  std::string out;
  const size_t n = std::min(call.conditions.size(), def.columns.size());
  for (size_t i = 0; i < n; ++i) {
    const AttrCondition& cond = call.conditions[i];
    if (cond.is_none()) continue;
    if (!out.empty()) out += ", ";
    out += def.columns[i].name + "=" + cond.ToString();
  }
  return out;
}

}  // namespace

MarketConnector::MarketConnector(const DataMarket* market) : market_(market) {}

MarketConnector::~MarketConnector() = default;

CallScheduler* MarketConnector::scheduler() {
  std::call_once(scheduler_once_, [this] {
    scheduler_ = std::make_unique<CallScheduler>(this, scheduler_hooks_);
  });
  return scheduler_.get();
}

int64_t MarketConnector::NextDelayMicros(int64_t* backoff,
                                         int64_t retry_after_micros,
                                         uint64_t* jitter_state) {
  int64_t delay = *backoff;
  *backoff = std::min(
      static_cast<int64_t>(static_cast<double>(*backoff) *
                           policy_.backoff_multiplier),
      policy_.max_backoff_micros);
  // A rate-limit rejection's retry-after hint is a floor: retrying sooner
  // would just burn another attempt on a closed door.
  if (retry_after_micros > delay) delay = retry_after_micros;
  if (policy_.jitter > 0.0) {
    *jitter_state = common::SplitMix64(*jitter_state);
    const double factor = common::ToUnitRange(
        *jitter_state, 1.0 - policy_.jitter, 1.0 + policy_.jitter);
    delay = static_cast<int64_t>(static_cast<double>(delay) * factor);
  }
  return std::max<int64_t>(delay, 0);
}

void MarketConnector::Finish(CallTask* t, Result<CallResult> outcome,
                             const char* label) {
  t->outcome_label = label;
  t->outcome = std::move(outcome);
  t->done = true;
  if (t->trace != nullptr) {
    t->trace->AddAttr(t->span_id, "attempts", t->span_attempts);
    t->trace->AddAttr(t->span_id, "retries", t->span_retries);
    t->trace->AddAttr(t->span_id, "transactions", t->billed_transactions);
    t->trace->AddAttr(t->span_id, "wasted_transactions",
                      t->wasted_transactions);
    t->trace->AddAttr(t->span_id, "outcome", std::string(t->outcome_label));
    t->trace->EndSpan(t->span_id);
  }
}

void MarketConnector::BeginCall(CallTask* t) {
  t->def = market_->catalog().FindTable(t->call->table);
  if (t->def == nullptr) {
    // Before any span opens, matching the historical behaviour.
    t->outcome = Status::NotFound("table '" + t->call->table +
                                  "' not in catalog");
    t->done = true;
    return;
  }
  t->dataset = t->def->dataset;

  if (t->call_obs != nullptr && t->call_obs->trace != nullptr) {
    t->trace = t->call_obs->trace;
    t->span_id = t->trace->StartSpan("market.get", t->call_obs->parent_span);
    t->trace->AddAttr(t->span_id, "table", t->call->table);
    t->trace->AddAttr(t->span_id, "dataset", t->dataset);
    t->trace->AddAttr(t->span_id, "conditions",
                      DescribeConditions(*t->def, *t->call));
  }

  // Effective deadline: the caller's (per-query) budget capped by the
  // policy's per-call timeout.
  t->effective = t->deadline;
  if (policy_.call_timeout_micros > 0) {
    const Clock::time_point call_cap =
        Clock::now() + std::chrono::microseconds(policy_.call_timeout_micros);
    if (call_cap < t->effective) t->effective = call_cap;
  }

  // Circuit-breaker admission: an open breaker fails fast, spending neither
  // time nor money on a dataset that keeps failing.
  if (!breakers_.Admit(t->dataset, policy_, Clock::now())) {
    std::lock_guard<std::mutex> lock(retry_stats_mutex_);
    ++retry_stats_.breaker_rejections;
    ++retry_stats_.failed_calls;
    Finish(t,
           Status::Unavailable("circuit breaker open for dataset '" +
                               t->dataset + "'"),
           "breaker_rejected");
    return;
  }

  t->max_attempts = std::max(1, policy_.max_attempts);
  t->backoff = policy_.initial_backoff_micros;
  t->jitter_state =
      policy_.jitter_seed ^
      common::SplitMix64(jitter_sequence_.fetch_add(
          1, std::memory_order_relaxed));
}

int64_t MarketConnector::BeginAttempt(CallTask* t) {
  ++t->attempt;
  {
    std::lock_guard<std::mutex> lock(retry_stats_mutex_);
    ++retry_stats_.attempts;
    if (t->attempt > 1) ++retry_stats_.retries;
  }
  ++t->span_attempts;
  if (t->attempt > 1) ++t->span_retries;
  const Clock::time_point now = Clock::now();
  t->attempt_start = now;  // RTT clock: BeginAttempt -> CompleteAttempt
  if (now >= t->effective) {
    std::lock_guard<std::mutex> lock(retry_stats_mutex_);
    ++retry_stats_.deadline_exceeded;
    ++retry_stats_.failed_calls;
    Finish(t,
           Status::DeadlineExceeded("deadline elapsed before attempt " +
                                    std::to_string(t->attempt) + " on '" +
                                    t->call->table + "'"),
           "deadline");
    return 0;
  }

  // The network round trip (plus any injected latency spike), paid outside
  // every lock so concurrent calls overlap it — the whole point of the
  // concurrency layer. The driver elapses it: the synchronous Get sleeps,
  // the CallScheduler arms a timer and keeps the worker free.
  int64_t delay = simulated_latency_micros_.load(std::memory_order_relaxed);
  t->fault = FaultDecision{};
  if (FaultInjector* injector = injector_.load(std::memory_order_acquire)) {
    t->fault = injector->Decide(*t->call);
  }
  if (t->fault.latency_spike_micros > 0) {
    delay += t->fault.latency_spike_micros;
  }
  return delay;
}

int64_t MarketConnector::CompleteAttempt(CallTask* t) {
  // Per-attempt market RTT: everything between BeginAttempt and now — the
  // simulated round trip, injected spikes, and however long the driver let
  // the timer sit. Recorded for every attempt, successful or not, so the
  // tail reflects what callers actually waited.
  if (t->attempt_start != kNoDeadline) {
    const int64_t rtt_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t->attempt_start)
            .count();
    if (latency_.rtt != nullptr) latency_.rtt->Record(rtt_micros);
    if (latency_.slo != nullptr) latency_.slo->Record(rtt_micros);
    if (t->call_obs != nullptr && t->call_obs->stages != nullptr) {
      t->call_obs->stages->Add(obs::kStageMarketRtt, rtt_micros);
    }
  }
  switch (t->fault.kind) {
    case FaultKind::kTransientDrop:
      // Dropped before the market saw it: nothing evaluated, nothing
      // billed.
      t->last_error = Status::Unavailable("transient fault calling '" +
                                          t->call->table + "'");
      {
        std::lock_guard<std::mutex> lock(retry_stats_mutex_);
        ++retry_stats_.transient_faults;
      }
      break;
    case FaultKind::kRateLimit:
      t->last_error = Status::ResourceExhausted(
          "rate limited on '" + t->call->table + "'; retry after " +
          std::to_string(t->fault.retry_after_micros) + "us");
      {
        std::lock_guard<std::mutex> lock(retry_stats_mutex_);
        ++retry_stats_.rate_limited;
      }
      break;
    case FaultKind::kNone:
    case FaultKind::kLostResponse: {
      Result<CallResult> result = market_->Execute(*t->call);
      if (!result.ok()) {
        // A genuine market rejection (validation, unknown table, ...):
        // a property of the request, never retryable, not the breaker's
        // business.
        {
          std::lock_guard<std::mutex> lock(retry_stats_mutex_);
          ++retry_stats_.failed_calls;
        }
        Finish(t, std::move(result), "market_error");
        return 0;
      }
      // The market evaluated the call, so the seller bills it (Eq. 1) —
      // whether or not the response makes it back to us. The ledger
      // mirrors the meter HERE, at the single billing point, so per-tenant
      // attribution stays exact under retries and lost responses.
      meter_.Record(t->dataset, result->transactions, result->price);
      obs::CostLedger* ledger =
          t->call_obs != nullptr ? t->call_obs->ledger : nullptr;
      if (ledger != nullptr) {
        // Lost responses are flagged as waste in the same Record, so the
        // savings ledger can carve billed-but-undelivered transactions
        // out as negative savings with per-cell exactness.
        const int64_t wasted = t->fault.kind == FaultKind::kLostResponse
                                   ? result->transactions
                                   : 0;
        ledger->Record(t->call_obs->tenant, t->call_obs->query_id,
                       t->dataset, result->transactions, result->price,
                       wasted, market_label_);
      }
      t->billed_transactions += result->transactions;
      if (t->fault.kind == FaultKind::kLostResponse) {
        // Response lost in transit: paid-for work with nothing delivered.
        // Surface it as waste; listeners must NOT see it.
        std::lock_guard<std::mutex> lock(retry_stats_mutex_);
        ++retry_stats_.wasted_calls;
        retry_stats_.wasted_transactions += result->transactions;
        retry_stats_.wasted_price += result->price;
        t->wasted_transactions += result->transactions;
        t->last_error = Status::Unavailable(
            "response lost after evaluation on '" + t->call->table +
            "' (billed)");
        break;
      }
      breakers_.RecordSuccess(t->dataset);
      {
        std::shared_lock<std::shared_mutex> lock(listeners_mutex_);
        for (const Listener& listener : listeners_) {
          listener(*t->call, *result);
        }
      }
      Finish(t, std::move(result), "ok");
      return 0;
    }
  }

  // Retryable attempt failure.
  const bool tripped =
      breakers_.RecordFailure(t->dataset, policy_, Clock::now());
  if (tripped) {
    {
      std::lock_guard<std::mutex> lock(retry_stats_mutex_);
      ++retry_stats_.breaker_trips;
      ++retry_stats_.failed_calls;
    }
    // No point burning the remaining attempts: the breaker has decided
    // this dataset needs a cooldown.
    Finish(t,
           Status::Unavailable("circuit breaker tripped for dataset '" +
                               t->dataset + "': " +
                               t->last_error.message()),
           "breaker_tripped");
    return 0;
  }
  if (t->attempt == t->max_attempts) {
    {
      std::lock_guard<std::mutex> lock(retry_stats_mutex_);
      ++retry_stats_.failed_calls;
    }
    const std::string msg =
        "retries exhausted (" + std::to_string(t->max_attempts) +
        " attempts) on '" + t->call->table + "': " +
        t->last_error.message();
    Finish(t,
           t->last_error.code() == Status::Code::kResourceExhausted
               ? Status::ResourceExhausted(msg)
               : Status::Unavailable(msg),
           "retries_exhausted");
    return 0;
  }
  const int64_t delay = NextDelayMicros(&t->backoff,
                                        t->fault.retry_after_micros,
                                        &t->jitter_state);
  if (Clock::now() + std::chrono::microseconds(delay) >= t->effective) {
    std::lock_guard<std::mutex> lock(retry_stats_mutex_);
    ++retry_stats_.deadline_exceeded;
    ++retry_stats_.failed_calls;
    Finish(t,
           Status::DeadlineExceeded("deadline leaves no room for retry " +
                                    std::to_string(t->attempt + 1) +
                                    " on '" + t->call->table + "': " +
                                    t->last_error.message()),
           "deadline");
    return 0;
  }
  if (delay > 0) {
    if (latency_.backoff != nullptr) latency_.backoff->Record(delay);
    if (t->call_obs != nullptr && t->call_obs->stages != nullptr) {
      t->call_obs->stages->Add(obs::kStageBackoffWait, delay);
    }
  }
  return delay;
}

Result<CallResult> MarketConnector::Get(const RestCall& call,
                                        Clock::time_point deadline,
                                        const CallObs* call_obs) {
  CallTask task;
  task.call = &call;
  task.deadline = deadline;
  task.call_obs = call_obs;
  BeginCall(&task);
  while (!task.done) {
    const int64_t pre_delay = BeginAttempt(&task);
    if (task.done) break;
    if (pre_delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pre_delay));
    }
    const int64_t retry_delay = CompleteAttempt(&task);
    if (task.done) break;
    if (retry_delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(retry_delay));
    }
  }
  return std::move(task.outcome);
}

}  // namespace payless::market
