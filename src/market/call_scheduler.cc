#include "market/call_scheduler.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace payless::market {

namespace {

int64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

CallScheduler::CallScheduler(MarketConnector* connector,
                             const SchedulerHooks& hooks)
    : connector_(connector), hooks_(hooks), loop_thread_([this] { Loop(); }) {}

CallScheduler::~CallScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  loop_thread_.join();
}

std::vector<std::optional<Result<CallResult>>> CallScheduler::ExecuteBatch(
    const std::vector<Item>& items, size_t max_in_flight,
    bool cancel_on_error) {
  Batch batch;
  batch.tasks.resize(items.size());
  batch.outcomes.resize(items.size());
  batch.remaining = items.size();
  batch.max_in_flight = std::max<size_t>(1, max_in_flight);
  batch.cancel_on_error = cancel_on_error;
  batch.submitted = Clock::now();
  for (size_t i = 0; i < items.size(); ++i) {
    batch.tasks[i].call = items[i].call;
    batch.tasks[i].deadline = items[i].deadline;
    batch.tasks[i].call_obs = items[i].call_obs;
  }
  const bool meter_coalescing = hooks_.coalescable_calls != nullptr ||
                                hooks_.coalescable_transactions != nullptr ||
                                hooks_.recorder != nullptr;
  if (meter_coalescing) {
    // Signatures rendered outside the lock: RestCall::ToString is the full
    // (table, conditions) identity, so equal strings are byte-identical
    // calls against the same dataset.
    batch.sigs.reserve(items.size());
    for (const Item& item : items) batch.sigs.push_back(item.call->ToString());
    batch.coalescable.assign(items.size(), 0);
  }
  if (hooks_.queue_depth != nullptr) {
    hooks_.queue_depth->Add(static_cast<int64_t>(items.size()));
  }

  std::vector<size_t> to_start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdmitLocked(&batch, &to_start);
  }
  for (const size_t i : to_start) Drive(&batch, i, Phase::kBegin);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  }

  if (meter_coalescing) {
    int64_t coalescable_calls = 0;
    int64_t coalescable_transactions = 0;
    size_t cancelled = 0;
    for (size_t i = 0; i < batch.tasks.size(); ++i) {
      if (!batch.outcomes[i].has_value()) {
        ++cancelled;
        continue;
      }
      if (batch.coalescable[i] == 0 || !batch.outcomes[i]->ok()) continue;
      // This delivered call was byte-identical to one already in flight
      // when it was admitted: a dedup layer would have answered it from
      // the sibling's response and saved its transactions.
      ++coalescable_calls;
      coalescable_transactions += (*batch.outcomes[i])->transactions;
    }
    if (coalescable_calls > 0) {
      if (hooks_.coalescable_calls != nullptr) {
        hooks_.coalescable_calls->Add(coalescable_calls);
      }
      if (hooks_.coalescable_transactions != nullptr) {
        hooks_.coalescable_transactions->Add(coalescable_transactions);
      }
    }
    if (hooks_.recorder != nullptr && batch.tasks.size() > 1) {
      std::ostringstream os;
      os << "{\"kind\":\"scheduler_batch\",\"items\":" << batch.tasks.size()
         << ",\"window\":" << batch.max_in_flight
         << ",\"cancelled\":" << cancelled
         << ",\"coalescable_calls\":" << coalescable_calls
         << ",\"coalescable_transactions\":" << coalescable_transactions
         << ",\"wall_us\":" << MicrosBetween(batch.submitted, Clock::now())
         << "}";
      hooks_.recorder->Record(os.str());
    }
  }
  return std::move(batch.outcomes);
}

void CallScheduler::AdmitLocked(Batch* batch, std::vector<size_t>* to_start) {
  Clock::time_point now{};
  bool have_now = false;
  while (batch->next < batch->tasks.size() &&
         batch->in_flight < batch->max_in_flight) {
    const size_t i = batch->next++;
    if (batch->failed) {
      // Claim-time cancellation, mirroring the thread-per-call path: a
      // sibling's terminal failure stops money being spent on a batch that
      // can no longer deliver. outcomes[i] stays empty.
      --batch->remaining;
      if (hooks_.queue_depth != nullptr) hooks_.queue_depth->Add(-1);
      continue;
    }
    ++batch->in_flight;
    if (hooks_.queue_depth != nullptr) hooks_.queue_depth->Add(-1);
    if (hooks_.in_flight != nullptr) hooks_.in_flight->Add(1);
    const CallObs* call_obs = batch->tasks[i].call_obs;
    if (hooks_.admission_wait != nullptr ||
        (call_obs != nullptr && call_obs->stages != nullptr)) {
      if (!have_now) {
        now = Clock::now();
        have_now = true;
      }
      const int64_t wait_micros = MicrosBetween(batch->submitted, now);
      if (hooks_.admission_wait != nullptr) {
        hooks_.admission_wait->Record(wait_micros);
      }
      if (call_obs != nullptr && call_obs->stages != nullptr) {
        call_obs->stages->Add(obs::kStageAdmissionWait, wait_micros);
      }
    }
    if (!batch->sigs.empty()) {
      // Coalescing opportunity: is a byte-identical call already inside
      // the in-flight window (any batch, any thread) right now?
      int& identical = inflight_sigs_[batch->sigs[i]];
      batch->coalescable[i] = identical > 0 ? 1 : 0;
      ++identical;
    }
    to_start->push_back(i);
  }
}

void CallScheduler::Drive(Batch* batch, size_t index, Phase phase) {
  MarketConnector::CallTask* task = &batch->tasks[index];
  while (!task->done) {
    switch (phase) {
      case Phase::kBegin:
        connector_->BeginCall(task);
        phase = Phase::kAttempt;
        break;
      case Phase::kAttempt: {
        const int64_t delay = connector_->BeginAttempt(task);
        if (task->done) break;
        if (delay > 0) {
          Arm(batch, index, Phase::kComplete, delay);
          return;
        }
        phase = Phase::kComplete;
        break;
      }
      case Phase::kComplete: {
        const int64_t delay = connector_->CompleteAttempt(task);
        if (task->done) break;
        if (delay > 0) {
          Arm(batch, index, Phase::kAttempt, delay);
          return;
        }
        phase = Phase::kAttempt;
        break;
      }
    }
  }
  FinishTask(batch, index);
}

void CallScheduler::Arm(Batch* batch, size_t index, Phase phase,
                        int64_t delay_micros) {
  const Clock::time_point due =
      Clock::now() + std::chrono::microseconds(delay_micros);
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Waking the loop is only needed when this timer becomes the earliest;
    // otherwise its existing wait_until already covers us.
    wake = timers_.empty() || due < timers_.front().due;
    timers_.push_back(Timer{due, batch, index, phase});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
    if (hooks_.timer_heap != nullptr) {
      hooks_.timer_heap->Set(static_cast<int64_t>(timers_.size()));
    }
  }
  if (wake) loop_cv_.notify_one();
}

void CallScheduler::FinishTask(Batch* batch, size_t index) {
  std::vector<size_t> to_start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch->outcomes[index] = std::move(batch->tasks[index].outcome);
    if (batch->cancel_on_error && !batch->outcomes[index]->ok()) {
      batch->failed = true;
    }
    if (!batch->sigs.empty()) {
      const auto it = inflight_sigs_.find(batch->sigs[index]);
      if (it != inflight_sigs_.end() && --it->second <= 0) {
        inflight_sigs_.erase(it);
      }
    }
    if (hooks_.in_flight != nullptr) hooks_.in_flight->Add(-1);
    --batch->in_flight;
    --batch->remaining;
    AdmitLocked(batch, &to_start);
    if (batch->remaining == 0) {
      // Notify under the lock: the waiter owns `batch`'s storage and may
      // destroy it the instant it observes remaining == 0.
      batch->done.notify_all();
    }
  }
  for (const size_t i : to_start) Drive(batch, i, Phase::kBegin);
}

void CallScheduler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<Timer> due;
  while (true) {
    const Clock::time_point now = Clock::now();
    due.clear();
    while (!timers_.empty() && timers_.front().due <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      due.push_back(timers_.back());
      timers_.pop_back();
    }
    if (!due.empty() && hooks_.timer_heap != nullptr) {
      hooks_.timer_heap->Set(static_cast<int64_t>(timers_.size()));
    }
    if (!due.empty()) {
      // Batched completion: everything due under one lock hold, phases run
      // outside the lock so Arm/FinishTask can re-enter it.
      lock.unlock();
      for (const Timer& timer : due) {
        Drive(timer.batch, timer.index, timer.phase);
      }
      lock.lock();
      continue;
    }
    if (stop_) break;
    if (timers_.empty()) {
      loop_cv_.wait(lock);
    } else {
      loop_cv_.wait_until(lock, timers_.front().due);
    }
  }
}

}  // namespace payless::market
