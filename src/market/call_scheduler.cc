#include "market/call_scheduler.h"

#include <algorithm>
#include <chrono>

namespace payless::market {

CallScheduler::CallScheduler(MarketConnector* connector)
    : connector_(connector), loop_thread_([this] { Loop(); }) {}

CallScheduler::~CallScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  loop_thread_.join();
}

std::vector<std::optional<Result<CallResult>>> CallScheduler::ExecuteBatch(
    const std::vector<Item>& items, size_t max_in_flight,
    bool cancel_on_error) {
  Batch batch;
  batch.tasks.resize(items.size());
  batch.outcomes.resize(items.size());
  batch.remaining = items.size();
  batch.max_in_flight = std::max<size_t>(1, max_in_flight);
  batch.cancel_on_error = cancel_on_error;
  for (size_t i = 0; i < items.size(); ++i) {
    batch.tasks[i].call = items[i].call;
    batch.tasks[i].deadline = items[i].deadline;
    batch.tasks[i].call_obs = items[i].call_obs;
  }

  std::vector<size_t> to_start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AdmitLocked(&batch, &to_start);
  }
  for (const size_t i : to_start) Drive(&batch, i, Phase::kBegin);

  std::unique_lock<std::mutex> lock(mutex_);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  return std::move(batch.outcomes);
}

void CallScheduler::AdmitLocked(Batch* batch, std::vector<size_t>* to_start) {
  while (batch->next < batch->tasks.size() &&
         batch->in_flight < batch->max_in_flight) {
    const size_t i = batch->next++;
    if (batch->failed) {
      // Claim-time cancellation, mirroring the thread-per-call path: a
      // sibling's terminal failure stops money being spent on a batch that
      // can no longer deliver. outcomes[i] stays empty.
      --batch->remaining;
      continue;
    }
    ++batch->in_flight;
    to_start->push_back(i);
  }
}

void CallScheduler::Drive(Batch* batch, size_t index, Phase phase) {
  MarketConnector::CallTask* task = &batch->tasks[index];
  while (!task->done) {
    switch (phase) {
      case Phase::kBegin:
        connector_->BeginCall(task);
        phase = Phase::kAttempt;
        break;
      case Phase::kAttempt: {
        const int64_t delay = connector_->BeginAttempt(task);
        if (task->done) break;
        if (delay > 0) {
          Arm(batch, index, Phase::kComplete, delay);
          return;
        }
        phase = Phase::kComplete;
        break;
      }
      case Phase::kComplete: {
        const int64_t delay = connector_->CompleteAttempt(task);
        if (task->done) break;
        if (delay > 0) {
          Arm(batch, index, Phase::kAttempt, delay);
          return;
        }
        phase = Phase::kAttempt;
        break;
      }
    }
  }
  FinishTask(batch, index);
}

void CallScheduler::Arm(Batch* batch, size_t index, Phase phase,
                        int64_t delay_micros) {
  const Clock::time_point due =
      Clock::now() + std::chrono::microseconds(delay_micros);
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Waking the loop is only needed when this timer becomes the earliest;
    // otherwise its existing wait_until already covers us.
    wake = timers_.empty() || due < timers_.front().due;
    timers_.push_back(Timer{due, batch, index, phase});
    std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  }
  if (wake) loop_cv_.notify_one();
}

void CallScheduler::FinishTask(Batch* batch, size_t index) {
  std::vector<size_t> to_start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch->outcomes[index] = std::move(batch->tasks[index].outcome);
    if (batch->cancel_on_error && !batch->outcomes[index]->ok()) {
      batch->failed = true;
    }
    --batch->in_flight;
    --batch->remaining;
    AdmitLocked(batch, &to_start);
    if (batch->remaining == 0) {
      // Notify under the lock: the waiter owns `batch`'s storage and may
      // destroy it the instant it observes remaining == 0.
      batch->done.notify_all();
    }
  }
  for (const size_t i : to_start) Drive(batch, i, Phase::kBegin);
}

void CallScheduler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<Timer> due;
  while (true) {
    const Clock::time_point now = Clock::now();
    due.clear();
    while (!timers_.empty() && timers_.front().due <= now) {
      std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
      due.push_back(timers_.back());
      timers_.pop_back();
    }
    if (!due.empty()) {
      // Batched completion: everything due under one lock hold, phases run
      // outside the lock so Arm/FinishTask can re-enter it.
      lock.unlock();
      for (const Timer& timer : due) {
        Drive(timer.batch, timer.index, timer.phase);
      }
      lock.lock();
      continue;
    }
    if (stop_) break;
    if (timers_.empty()) {
      loop_cv_.wait(lock);
    } else {
      loop_cv_.wait_until(lock, timers_.front().due);
    }
  }
}

}  // namespace payless::market
