#include "market/fault_injector.h"

namespace payless::market {

void FaultInjector::Script(FaultDecision decision) {
  std::lock_guard<std::mutex> lock(mutex_);
  scripted_.push_back(decision);
}

void FaultInjector::Script(FaultKind kind) {
  FaultDecision decision;
  decision.kind = kind;
  if (kind == FaultKind::kRateLimit) {
    decision.retry_after_micros = profile_.retry_after_micros;
  }
  Script(decision);
}

FaultDecision FaultInjector::Decide(const RestCall& call) {
  (void)call;  // decisions are call-oblivious; the hook keeps the API honest
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.decisions;
  FaultDecision decision;
  if (!scripted_.empty()) {
    decision = scripted_.front();
    scripted_.pop_front();
  } else {
    // Exactly two draws per decision keeps serial replay exact regardless
    // of which branches are taken.
    const double kind_draw = rng_.UniformReal(0.0, 1.0);
    const double spike_draw = rng_.UniformReal(0.0, 1.0);
    if (kind_draw < profile_.transient_rate) {
      decision.kind = FaultKind::kTransientDrop;
    } else if (kind_draw < profile_.transient_rate +
                               profile_.lost_response_rate) {
      decision.kind = FaultKind::kLostResponse;
    } else if (kind_draw < profile_.transient_rate +
                               profile_.lost_response_rate +
                               profile_.rate_limit_rate) {
      decision.kind = FaultKind::kRateLimit;
      decision.retry_after_micros = profile_.retry_after_micros;
    }
    if (spike_draw < profile_.latency_spike_rate) {
      decision.latency_spike_micros = profile_.latency_spike_micros;
    }
  }
  switch (decision.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kTransientDrop:
      ++stats_.transient_drops;
      break;
    case FaultKind::kLostResponse:
      ++stats_.lost_responses;
      break;
    case FaultKind::kRateLimit:
      ++stats_.rate_limits;
      break;
  }
  if (decision.latency_spike_micros > 0) ++stats_.latency_spikes;
  return decision;
}

void FaultInjector::ArmCrash(CrashPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_crash_ = plan;
  crash_hits_ = 0;
}

std::optional<CrashPlan> FaultInjector::CrashAt(CrashPoint point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_crash_.has_value() || armed_crash_->point != point) {
    return std::nullopt;
  }
  if (crash_hits_++ < armed_crash_->after_hits) return std::nullopt;
  const CrashPlan fired = *armed_crash_;
  armed_crash_.reset();  // one death per arming
  crash_hits_ = 0;
  ++stats_.crashes;
  return fired;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace payless::market
