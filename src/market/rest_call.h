// RESTful GET calls against the data market.
//
// The market's access interface is function-call-like, X -> Y (§1): a call
// names a table and gives, per attribute, either nothing, a single value, or
// a numeric range [lo, hi]. The table's binding pattern constrains which of
// these are legal: kBound attributes MUST carry a condition, kFree ones MAY,
// kOutput ones MUST NOT. Disjunctions are not expressible — a query with an
// OR has to be decomposed into several calls (§1), which is exactly what the
// remainder-query machinery does.
#ifndef PAYLESS_MARKET_REST_CALL_H_
#define PAYLESS_MARKET_REST_CALL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/geometry.h"
#include "common/status.h"
#include "common/value.h"

namespace payless::market {

/// Condition on one attribute of a REST call.
struct AttrCondition {
  enum class Kind { kNone, kPoint, kRange };

  Kind kind = Kind::kNone;
  Value point;              // kPoint
  Interval range;           // kRange (numeric attributes only, closed)

  static AttrCondition None() { return AttrCondition{}; }
  static AttrCondition Point(Value v) {
    return AttrCondition{Kind::kPoint, std::move(v), Interval::Empty()};
  }
  static AttrCondition Range(int64_t lo, int64_t hi) {
    return AttrCondition{Kind::kRange, Value(), Interval(lo, hi)};
  }

  bool is_none() const { return kind == Kind::kNone; }

  /// True iff `v` satisfies this condition (kNone matches everything).
  bool Matches(const Value& v) const;

  std::string ToString() const;
};

/// One GET call: a table plus one condition per column (column order of the
/// catalog TableDef).
struct RestCall {
  std::string table;
  std::vector<AttrCondition> conditions;

  /// An unconstrained call (download request) for a table.
  static RestCall Unconstrained(const catalog::TableDef& def);

  /// Checks the call against the table's binding pattern and domains.
  Status Validate(const catalog::TableDef& def) const;

  bool MatchesRow(const Row& row) const;

  std::string ToString() const;
};

/// The call's footprint as a box over the table's constrainable-attribute
/// space (dictionary-encoded categorical dims). Unconstrained dims span the
/// full domain. A point outside a categorical domain yields an empty box.
Box CallRegion(const catalog::TableDef& def, const RestCall& call);

/// Inverse-ish of CallRegion: builds a call whose conditions select exactly
/// `region` (one interval per constrainable column; full-domain intervals
/// become kNone; single-point categorical intervals become kPoint).
/// Returns an error if a categorical dim spans a strict sub-range of more
/// than one value — such a region is not expressible as one call (§4.2).
Result<RestCall> CallFromRegion(const catalog::TableDef& def,
                                const Box& region);

}  // namespace payless::market

#endif  // PAYLESS_MARKET_REST_CALL_H_
