#include "market/resilience.h"

namespace payless::market {

bool CircuitBreakerSet::Admit(const std::string& dataset,
                              const RetryPolicy& policy,
                              Clock::time_point now) {
  if (policy.breaker_failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  Breaker& b = breakers_[dataset];
  switch (b.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < b.open_until) return false;
      // Cooldown elapsed: half-open, this caller is the trial.
      b.state = State::kHalfOpen;
      b.trial_in_flight = true;
      return true;
    case State::kHalfOpen:
      if (b.trial_in_flight) return false;  // one probe at a time
      b.trial_in_flight = true;
      return true;
  }
  return true;
}

void CircuitBreakerSet::RecordSuccess(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = breakers_.find(dataset);
  if (it == breakers_.end()) return;
  it->second.state = State::kClosed;
  it->second.consecutive_failures = 0;
  it->second.trial_in_flight = false;
}

bool CircuitBreakerSet::RecordFailure(const std::string& dataset,
                                      const RetryPolicy& policy,
                                      Clock::time_point now) {
  if (policy.breaker_failure_threshold <= 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Breaker& b = breakers_[dataset];
  if (b.state == State::kHalfOpen) {
    // The trial failed: straight back to open for another cooldown.
    b.state = State::kOpen;
    b.open_until = now + std::chrono::microseconds(
                             policy.breaker_cooldown_micros);
    b.trial_in_flight = false;
    b.consecutive_failures = policy.breaker_failure_threshold;
    return true;
  }
  if (b.state == State::kOpen) return false;  // already tripped
  if (++b.consecutive_failures >= policy.breaker_failure_threshold) {
    b.state = State::kOpen;
    b.open_until = now + std::chrono::microseconds(
                             policy.breaker_cooldown_micros);
    return true;
  }
  return false;
}

CircuitBreakerSet::State CircuitBreakerSet::StateOf(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = breakers_.find(dataset);
  return it == breakers_.end() ? State::kClosed : it->second.state;
}

}  // namespace payless::market
