// Per-call observability context threaded from the query down into the
// market connector. Everything is optional: a default-constructed CallObs
// makes the connector behave exactly as before (no attribution, no spans).
//
// The connector is the ONLY place transactions accrue, so it is also the
// only place attribution can be exact: every meter Record — delivered
// results AND billed-but-lost responses — is mirrored into the ledger under
// this context's (tenant, query_id), which is what keeps the
// ledger-total == meter-total invariant true under retries and faults.
#ifndef PAYLESS_MARKET_CALL_OBS_H_
#define PAYLESS_MARKET_CALL_OBS_H_

#include <cstdint>
#include <string>

#include "obs/cost_ledger.h"
#include "obs/latency.h"
#include "obs/trace.h"

namespace payless::market {

struct CallObs {
  std::string tenant = "default";
  /// 0 = spend outside any single query (batch prefetch, download-all).
  uint64_t query_id = 0;
  /// Attribution target; nullptr = no attribution.
  obs::CostLedger* ledger = nullptr;
  /// Span collector; nullptr = no call spans.
  obs::Trace* trace = nullptr;
  /// Parent span id for the call spans the connector opens (0 = root).
  uint64_t parent_span = 0;
  /// Per-query stage decomposition target; nullptr = no stage attribution.
  /// The scheduler adds admission waits, the connector adds per-attempt
  /// RTTs and backoff sleeps.
  obs::QueryStageAccumulator* stages = nullptr;
};

}  // namespace payless::market

#endif  // PAYLESS_MARKET_CALL_OBS_H_
