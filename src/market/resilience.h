// Resilience policy for the market connector: capped exponential backoff
// with jitter, per-call/per-query deadlines, and a per-dataset circuit
// breaker.
//
// Every market call costs money (Eq. 1), so the retry contract is written
// around billing, not latency:
//   - a call that fails BEFORE the market evaluates it costs nothing and
//     may be retried freely;
//   - a call that fails AFTER evaluation (lost response) is still billed by
//     the seller — the meter records it and RetryStats surfaces it
//     separately as wasted spend;
//   - listeners (semantic store, statistics feedback) observe exactly one
//     event per DELIVERED result, so the learning loop never double-counts
//     and everything absorbed before a failure is reused on re-issue.
#ifndef PAYLESS_MARKET_RESILIENCE_H_
#define PAYLESS_MARKET_RESILIENCE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace payless::market {

using Clock = std::chrono::steady_clock;

/// "No deadline": the sentinel used by every deadline-taking API.
inline constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/// Retry/deadline/breaker knobs of MarketConnector::Get. The defaults are
/// production-shaped but inert without a FaultInjector: a fault-free market
/// succeeds on the first attempt and never touches the breaker.
struct RetryPolicy {
  /// Attempts per Get (first try included). 1 disables retrying.
  int max_attempts = 4;
  int64_t initial_backoff_micros = 100;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 20'000;
  /// Backoff is scaled by a uniform factor in [1-jitter, 1+jitter] so
  /// synchronized clients do not retry in lockstep. Jitter affects timing
  /// only — never rows or billing.
  double jitter = 0.25;
  uint64_t jitter_seed = 7;
  /// Per-call budget across all attempts (0 = unbounded). Combines with a
  /// per-query deadline passed to Get; the earlier of the two wins.
  int64_t call_timeout_micros = 0;
  /// Consecutive retryable failures on one dataset that trip its breaker
  /// (0 disables circuit breaking).
  int breaker_failure_threshold = 0;
  /// How long a tripped breaker rejects calls before half-opening to let
  /// one trial call probe the dataset.
  int64_t breaker_cooldown_micros = 50'000;
};

/// Connector-lifetime counters for the resilient call path. Wasted spend is
/// billing for evaluated-but-undelivered results (lost responses): it is
/// part of the meter's totals but earned no rows, so cost accounting must
/// see it separately.
struct RetryStats {
  int64_t attempts = 0;       // all attempts, first tries included
  int64_t retries = 0;        // attempts beyond a call's first
  int64_t failed_calls = 0;   // Gets that ultimately returned an error
  int64_t transient_faults = 0;
  int64_t rate_limited = 0;
  int64_t deadline_exceeded = 0;
  int64_t wasted_calls = 0;         // lost responses (billed, undelivered)
  int64_t wasted_transactions = 0;  // their Eq. 1 transactions
  double wasted_price = 0.0;        // their price
  int64_t breaker_trips = 0;        // closed/half-open -> open transitions
  int64_t breaker_rejections = 0;   // Gets rejected while a breaker was open
};

/// Per-dataset circuit breakers (datasets are the billing/SLA unit — one
/// flaky seller must not take down calls to healthy ones).
///
/// States: closed (counting consecutive retryable failures) -> open
/// (rejecting everything until a cooldown elapses) -> half-open (admitting
/// exactly one trial call; success closes, failure re-opens).
///
/// Thread-safe; every member serializes on one internal mutex.
class CircuitBreakerSet {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Admission check at Get entry. False = the breaker is open (or a
  /// half-open trial is already in flight) and the call must be rejected
  /// without touching the market.
  bool Admit(const std::string& dataset, const RetryPolicy& policy,
             Clock::time_point now);

  /// A delivered result: closes the breaker and clears the failure run.
  void RecordSuccess(const std::string& dataset);

  /// A retryable attempt failure. Returns true iff this failure tripped the
  /// breaker (closed -> open on reaching the threshold, or a failed
  /// half-open trial re-opening it).
  bool RecordFailure(const std::string& dataset, const RetryPolicy& policy,
                     Clock::time_point now);

  State StateOf(const std::string& dataset) const;

 private:
  struct Breaker {
    State state = State::kClosed;
    int consecutive_failures = 0;
    Clock::time_point open_until{};
    bool trial_in_flight = false;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Breaker> breakers_;
};

}  // namespace payless::market

#endif  // PAYLESS_MARKET_RESILIENCE_H_
