// In-process simulator of a cloud data market (Windows Azure Data
// Marketplace model, §2): hosts datasets, answers validated REST calls, and
// prices every call by Eq. 1:
//
//     price = p * ceil(number_of_resulting_records / t)
//
// where `t` is the dataset's tuples-per-transaction page size and `p` its
// price per transaction. Joins can NOT be executed market-side (§1); the
// market only filters single tables.
#ifndef PAYLESS_MARKET_DATA_MARKET_H_
#define PAYLESS_MARKET_DATA_MARKET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "market/call_obs.h"
#include "market/fault_injector.h"
#include "market/resilience.h"
#include "market/rest_call.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "storage/table.h"

namespace payless::market {

/// Outcome of one GET call.
struct CallResult {
  std::vector<Row> rows;
  int64_t num_records = 0;
  int64_t transactions = 0;
  double price = 0.0;
};

/// Transactions for `records` result records under page size `t` (Eq. 1).
/// An empty result costs zero transactions — pricing is purely size-based.
int64_t TransactionsFor(int64_t records, int64_t tuples_per_transaction);

/// Cumulative seller-side billing, per dataset and total. This is the ground
/// truth the evaluation section plots ("total # of trans."); optimizer
/// estimates never touch it.
///
/// Thread-safe: concurrent queries all bill through one meter, so every
/// member serializes on an internal mutex. Totals are order-independent
/// sums — N concurrent queries bill exactly what they would serially.
class BillingMeter {
 public:
  BillingMeter() = default;
  BillingMeter(const BillingMeter&) = delete;
  BillingMeter& operator=(const BillingMeter&) = delete;

  void Record(const std::string& dataset, int64_t transactions, double price);

  int64_t total_transactions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_transactions_;
  }
  double total_price() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_price_;
  }
  int64_t total_calls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_calls_;
  }

  int64_t TransactionsFor(const std::string& dataset) const;

  void Reset();

  std::string Report() const;

 private:
  struct PerDataset {
    int64_t transactions = 0;
    double price = 0.0;
    int64_t calls = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, PerDataset> per_dataset_;
  int64_t total_transactions_ = 0;
  double total_price_ = 0.0;
  int64_t total_calls_ = 0;
};

/// The market itself: hosted table data + call evaluation. Datasets are
/// append-only (§2.1); AppendRows models a periodic data release.
///
/// Hosted datasets are SETS of records: duplicate rows are collapsed at
/// hosting/append time. This matches per-record-priced data products (a
/// record is the unit of sale) and makes buyer-side caching exact — a
/// tuple's content identifies it across the semantic store, the mirror
/// tables and fresh call results.
///
/// Hosted tables carry simple seller-side indexes (posting lists for point
/// conditions, a sorted projection for numeric ranges) so that the many
/// small calls a bind join issues do not scan whole tables; this changes
/// nothing observable — it is how a real market serves keyed GETs.
///
/// Thread-safe: Execute/TableSize are read-only and take a shared lock, so
/// concurrent GETs proceed in parallel; HostTable/AppendRows (the periodic
/// data release) take the lock exclusively.
class DataMarket {
 public:
  explicit DataMarket(const catalog::Catalog* catalog) : catalog_(catalog) {}

  /// Hosts `data` as the market-side contents of catalog table `name`.
  Status HostTable(const std::string& name, std::vector<Row> rows);

  /// Periodic data release (append-only).
  Status AppendRows(const std::string& name, const std::vector<Row>& rows);

  /// Validates and evaluates a call; prices it by Eq. 1. Does NOT bill —
  /// billing happens at the connector so tests can dry-run the market.
  Result<CallResult> Execute(const RestCall& call) const;

  /// Number of hosted records of one table (the seller-side truth).
  Result<int64_t> TableSize(const std::string& name) const;

  /// Raw seller-side rows — test/oracle backdoor that bypasses billing and
  /// binding patterns. Production paths must go through Execute().
  const std::vector<Row>* HostedRowsForTesting(const std::string& name) const;

  const catalog::Catalog& catalog() const { return *catalog_; }

 private:
  struct HostedTable {
    std::vector<Row> rows;
    std::unordered_set<Row, RowHasher> seen;  // set semantics
    /// column -> value -> row indices, for every constrainable column.
    std::map<size_t, std::unordered_map<Value, std::vector<uint32_t>,
                                        ValueHasher>>
        point_index;
    /// column -> (value, row index) sorted by value, for numeric
    /// constrainable columns.
    std::map<size_t, std::vector<std::pair<int64_t, uint32_t>>> range_index;
  };

  void IndexRows(const catalog::TableDef& def, HostedTable* table,
                 size_t first_row) const;

  const catalog::Catalog* catalog_;
  mutable std::shared_mutex mutex_;  // read-mostly: shared for Execute
  std::map<std::string, HostedTable> hosted_;
};

/// The REST boundary between PayLess and the market (step 5.1/5.2 of
/// Fig. 3): the ONLY place where transactions accrue. Listeners observe
/// every DELIVERED call result — exactly once per result that actually
/// reached the buyer (the semantic store and the statistics module
/// subscribe here, steps 5.3/5.4), never for lost responses, so the
/// learning loop cannot double-count across retries.
///
/// Get is resilient: it consults the attached FaultInjector (if any) to
/// model a flaky marketplace, and recovers per RetryPolicy — capped
/// exponential backoff with jitter, per-call/per-query deadlines, and a
/// per-dataset circuit breaker. The billing contract under faults:
///   - fault before evaluation (transient drop, rate limit, open breaker):
///     nothing billed;
///   - fault after evaluation (lost response): billed on the meter AND
///     counted as wasted spend in RetryStats — the seller evaluated it;
///   - delivered result: billed once, listeners notified once.
///
/// Thread-safe: Get may be called from any number of threads; the meter
/// locks internally and listener dispatch holds a shared lock (listeners
/// run concurrently with each other and must be thread-safe themselves —
/// the store and stats modules are). AddListener takes the lock
/// exclusively; registering listeners while calls are in flight is legal
/// but the new listener only sees subsequent calls. SetRetryPolicy and
/// SetFaultInjector are setup-time: call them before serving traffic.
class CallScheduler;

/// Observability handles for the event-loop CallScheduler. Every member is
/// optional (nullptr = not recorded); all are pre-resolved registry handles
/// so the scheduler's hot path never takes the registry mutex.
struct SchedulerHooks {
  obs::Gauge* queue_depth = nullptr;  // submitted items awaiting admission
  obs::Gauge* in_flight = nullptr;    // items inside the in-flight window
  obs::Gauge* timer_heap = nullptr;   // armed timers on the min-heap
  obs::LatencyHistogram* admission_wait = nullptr;
  /// Coalescing-opportunity meter: calls admitted while a byte-identical
  /// (table, conditions) call was already in flight, and the transactions
  /// a dedup layer would have saved on them.
  obs::Counter* coalescable_calls = nullptr;
  obs::Counter* coalescable_transactions = nullptr;
  obs::FlightRecorder* recorder = nullptr;  // batch-completion events
};

class MarketConnector {
 public:
  using Listener = std::function<void(const RestCall&, const CallResult&)>;

  explicit MarketConnector(const DataMarket* market);
  ~MarketConnector();

  /// One in-flight GET's retry state machine, shared verbatim between the
  /// synchronous Get (which sleeps the returned delays inline) and the
  /// event-loop CallScheduler (which turns them into timers). Drive it as:
  ///   BeginCall -> [BeginAttempt -> <delay> -> CompleteAttempt -> <delay>]*
  /// until `done`; each phase may finish the call early (deadline, breaker,
  /// terminal market error, delivery). Billing, listener dispatch, breaker
  /// and retry-stats updates all happen inside the phases, so the two
  /// drivers are bill-for-bill identical.
  struct CallTask {
    const RestCall* call = nullptr;  // not owned; must outlive the task
    Clock::time_point deadline = kNoDeadline;  // caller's budget
    const CallObs* call_obs = nullptr;

    bool done = false;
    Result<CallResult> outcome = Status::Internal("call not finished");

   private:
    friend class MarketConnector;
    const catalog::TableDef* def = nullptr;
    std::string dataset;
    Clock::time_point effective = kNoDeadline;
    int attempt = 0;
    int max_attempts = 1;
    Clock::time_point attempt_start = kNoDeadline;  // RTT measurement
    int64_t backoff = 0;
    uint64_t jitter_state = 0;  // per-call splitmix64 stream, lock-free
    FaultDecision fault;
    Status last_error = Status::OK();
    // Span bookkeeping, flushed when the call finishes.
    obs::Trace* trace = nullptr;
    uint64_t span_id = 0;
    int64_t span_attempts = 0;
    int64_t span_retries = 0;
    int64_t billed_transactions = 0;
    int64_t wasted_transactions = 0;
    const char* outcome_label = "ok";
  };

  /// Resolves the table, opens the span, applies the per-call timeout and
  /// breaker admission. May finish the task (unknown table, open breaker).
  void BeginCall(CallTask* task);

  /// Starts the next attempt: accounting plus the fault decision. Returns
  /// the simulated network delay (round trip + injected latency spike) the
  /// driver must let elapse before CompleteAttempt. May finish the task
  /// (deadline already elapsed).
  int64_t BeginAttempt(CallTask* task);

  /// Evaluates / bills / delivers the attempt, or arranges a retry:
  /// returns the backoff delay to elapse before the next BeginAttempt.
  /// Finishes the task on delivery and on every terminal failure.
  int64_t CompleteAttempt(CallTask* task);

  /// Issues a GET call: validates, evaluates, bills, notifies listeners,
  /// retrying per the policy. `deadline` (absolute) is the caller's budget
  /// — typically the enclosing query's; kNoDeadline means unbounded.
  /// `call_obs` (optional) attributes every billed transaction of this call
  /// — delivered or lost in transit — to its (tenant, query_id) in the
  /// ledger, and records one span per Get (attempts, retries, waste,
  /// billed transactions, outcome) under its parent span.
  Result<CallResult> Get(const RestCall& call,
                         Clock::time_point deadline = kNoDeadline,
                         const CallObs* call_obs = nullptr);

  void AddListener(Listener listener) {
    std::unique_lock<std::shared_mutex> lock(listeners_mutex_);
    listeners_.push_back(std::move(listener));
  }

  /// Installs the retry/deadline/breaker policy (setup-time).
  void SetRetryPolicy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Attaches a fault injector (nullptr detaches; caller keeps ownership).
  /// Setup-time relative to in-flight calls of the SAME test phase, but
  /// attach/detach between phases is the intended use.
  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  RetryStats retry_stats() const {
    std::lock_guard<std::mutex> lock(retry_stats_mutex_);
    return retry_stats_;
  }

  /// Breaker state of one dataset (tests / observability).
  CircuitBreakerSet::State breaker_state(const std::string& dataset) const {
    return breakers_.StateOf(dataset);
  }

  /// Sleeps this long inside every Get, modelling the network round trip a
  /// real marketplace call pays. Off (0) by default; the throughput bench
  /// turns it on to measure how well concurrent clients and parallel
  /// bind-join dispatch overlap call latency.
  void SetSimulatedLatencyMicros(int64_t micros) {
    simulated_latency_micros_.store(micros, std::memory_order_relaxed);
  }

  /// Federation: names the market endpoint this connector bills against,
  /// so every ledger record carries its buy-site. Setup-time; "" (default)
  /// = single-market deployment.
  void SetMarketLabel(std::string label) { market_label_ = std::move(label); }
  const std::string& market_label() const { return market_label_; }

  /// Latency instrumentation handles, all optional. Setup-time: bind
  /// before serving traffic. `rtt` and `slo` see every attempt's round
  /// trip (tagged per endpoint by giving each connector its own handles);
  /// `backoff` sees every retry sleep the connector schedules.
  struct LatencyHooks {
    obs::LatencyHistogram* rtt = nullptr;
    obs::LatencyHistogram* backoff = nullptr;
    obs::LatencySlo* slo = nullptr;
  };
  void BindLatency(const LatencyHooks& hooks) { latency_ = hooks; }

  /// Observability handles handed to the lazily-created CallScheduler.
  /// Setup-time: must be called before the first scheduler() use.
  void SetSchedulerHooks(const SchedulerHooks& hooks) {
    scheduler_hooks_ = hooks;
  }

  const BillingMeter& meter() const { return meter_; }
  BillingMeter* mutable_meter() { return &meter_; }

  const DataMarket& market() const { return *market_; }

  /// The connector's event-loop dispatcher, created lazily on first use
  /// (worker threads only exist once someone batches calls through it).
  /// Never null; owned by the connector and joined in its destructor.
  CallScheduler* scheduler();

 private:
  /// Jittered capped exponential backoff before the next attempt, honoring
  /// a rate-limit retry-after hint. `backoff` is the current unjittered
  /// step and is advanced in place; `jitter_state` is the call's private
  /// splitmix64 stream (no shared RNG, no lock).
  int64_t NextDelayMicros(int64_t* backoff, int64_t retry_after_micros,
                          uint64_t* jitter_state);

  /// Finishes a task: records the outcome, flushes and closes its span.
  static void Finish(CallTask* task, Result<CallResult> outcome,
                     const char* label);

  const DataMarket* market_;
  std::string market_label_;
  BillingMeter meter_;
  mutable std::shared_mutex listeners_mutex_;
  std::vector<Listener> listeners_;
  std::atomic<int64_t> simulated_latency_micros_{0};
  RetryPolicy policy_;
  std::atomic<FaultInjector*> injector_{nullptr};
  CircuitBreakerSet breakers_;
  mutable std::mutex retry_stats_mutex_;
  RetryStats retry_stats_;
  /// Distinguishes concurrent calls' jitter streams (seed ^ sequence).
  std::atomic<uint64_t> jitter_sequence_{0};
  LatencyHooks latency_;
  SchedulerHooks scheduler_hooks_;
  std::once_flag scheduler_once_;
  std::unique_ptr<CallScheduler> scheduler_;
};

}  // namespace payless::market

#endif  // PAYLESS_MARKET_DATA_MARKET_H_
