#include "market/rest_call.h"

#include <cassert>
#include <sstream>

namespace payless::market {

bool AttrCondition::Matches(const Value& v) const {
  switch (kind) {
    case Kind::kNone:
      return true;
    case Kind::kPoint:
      return !v.is_null() && v == point;
    case Kind::kRange:
      if (v.is_null()) return false;
      if (v.is_int64()) return range.Contains(v.AsInt64());
      if (v.is_double()) {
        const double d = v.AsDouble();
        return d >= static_cast<double>(range.lo) &&
               d <= static_cast<double>(range.hi);
      }
      return false;
  }
  return false;
}

std::string AttrCondition::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "-";
    case Kind::kPoint:
      return point.ToString();
    case Kind::kRange:
      return range.ToString();
  }
  return "?";
}

RestCall RestCall::Unconstrained(const catalog::TableDef& def) {
  RestCall call;
  call.table = def.name;
  call.conditions.assign(def.columns.size(), AttrCondition::None());
  return call;
}

Status RestCall::Validate(const catalog::TableDef& def) const {
  if (table != def.name) {
    return Status::InvalidArgument("call targets '" + table +
                                   "' but was validated against '" + def.name +
                                   "'");
  }
  if (conditions.size() != def.columns.size()) {
    return Status::InvalidArgument(
        "call on '" + table + "' has " + std::to_string(conditions.size()) +
        " conditions for " + std::to_string(def.columns.size()) + " columns");
  }
  for (size_t i = 0; i < conditions.size(); ++i) {
    const catalog::ColumnDef& col = def.columns[i];
    const AttrCondition& cond = conditions[i];
    switch (col.binding) {
      case catalog::BindingKind::kBound:
        if (cond.is_none()) {
          return Status::BindingViolation("attribute '" + col.name + "' of '" +
                                          table +
                                          "' is bound and must be given");
        }
        break;
      case catalog::BindingKind::kFree:
        break;
      case catalog::BindingKind::kOutput:
        if (!cond.is_none()) {
          return Status::BindingViolation(
              "attribute '" + col.name + "' of '" + table +
              "' is output-only and cannot be constrained");
        }
        break;
    }
    if (cond.kind == AttrCondition::Kind::kRange &&
        !col.domain.is_numeric()) {
      return Status::BindingViolation("attribute '" + col.name + "' of '" +
                                      table +
                                      "' is not numeric; ranges not allowed");
    }
    if (cond.kind == AttrCondition::Kind::kRange && cond.range.empty()) {
      return Status::InvalidArgument("empty range on attribute '" + col.name +
                                     "'");
    }
  }
  return Status::OK();
}

bool RestCall::MatchesRow(const Row& row) const {
  assert(row.size() == conditions.size());
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (!conditions[i].Matches(row[i])) return false;
  }
  return true;
}

std::string RestCall::ToString() const {
  std::ostringstream os;
  os << table << "(";
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) os << ", ";
    os << conditions[i].ToString();
  }
  os << ")";
  return os.str();
}

Box CallRegion(const catalog::TableDef& def, const RestCall& call) {
  assert(call.conditions.size() == def.columns.size());
  std::vector<Interval> dims;
  for (size_t col : def.ConstrainableColumns()) {
    const catalog::ColumnDef& column = def.columns[col];
    const AttrCondition& cond = call.conditions[col];
    const Interval domain = column.domain.ToInterval();
    switch (cond.kind) {
      case AttrCondition::Kind::kNone:
        dims.push_back(domain);
        break;
      case AttrCondition::Kind::kPoint: {
        const std::optional<int64_t> code = column.domain.Encode(cond.point);
        dims.push_back(code.has_value() ? Interval::Point(*code)
                                        : Interval::Empty());
        break;
      }
      case AttrCondition::Kind::kRange:
        dims.push_back(cond.range.Intersect(domain));
        break;
    }
  }
  return Box(std::move(dims));
}

Result<RestCall> CallFromRegion(const catalog::TableDef& def,
                                const Box& region) {
  const std::vector<size_t> constrainable = def.ConstrainableColumns();
  if (region.num_dims() != constrainable.size()) {
    return Status::InvalidArgument(
        "region dimensionality " + std::to_string(region.num_dims()) +
        " != constrainable columns " + std::to_string(constrainable.size()) +
        " of '" + def.name + "'");
  }
  if (region.empty()) {
    return Status::InvalidArgument("cannot build a call from an empty region");
  }
  RestCall call = RestCall::Unconstrained(def);
  for (size_t d = 0; d < constrainable.size(); ++d) {
    const size_t col = constrainable[d];
    const catalog::ColumnDef& column = def.columns[col];
    const Interval extent = region.dim(d);
    const Interval domain = column.domain.ToInterval();
    if (domain.Contains(extent) == false) {
      return Status::InvalidArgument("region dim " + std::to_string(d) +
                                     " exceeds domain of '" + column.name +
                                     "'");
    }
    if (extent == domain) {
      call.conditions[col] = AttrCondition::None();
    } else if (extent.Width() == 1) {
      call.conditions[col] =
          AttrCondition::Point(column.domain.Decode(extent.lo));
    } else if (column.domain.is_numeric()) {
      call.conditions[col] = AttrCondition::Range(extent.lo, extent.hi);
    } else {
      return Status::BindingViolation(
          "categorical attribute '" + column.name +
          "' cannot be constrained to a multi-value sub-range (§4.2)");
    }
  }
  // Bound attributes must end up constrained. A full-domain extent is still
  // issuable on a numeric bound attribute by passing the domain as an
  // explicit range; on a categorical bound attribute it is not.
  for (size_t col : def.BoundColumns()) {
    if (!call.conditions[col].is_none()) continue;
    const catalog::ColumnDef& column = def.columns[col];
    if (column.domain.is_numeric()) {
      const Interval domain = column.domain.ToInterval();
      call.conditions[col] = AttrCondition::Range(domain.lo, domain.hi);
    } else {
      return Status::BindingViolation("region leaves bound attribute '" +
                                      column.name + "' unconstrained");
    }
  }
  return call;
}

}  // namespace payless::market
