#include "core/plan_cache.h"

#include <mutex>
#include <shared_mutex>

#include "sql/lexer.h"

namespace payless::core {

std::string NormalizeSqlTemplate(const std::string& sql) {
  Result<std::vector<sql::Token>> tokens = sql::Tokenize(sql);
  if (!tokens.ok()) return sql;  // unlexable: raw string, parser will reject
  std::string out;
  out.reserve(sql.size());
  for (const sql::Token& token : *tokens) {
    if (token.type == sql::TokenType::kEnd) break;
    if (!out.empty()) out.push_back(' ');
    if (token.type == sql::TokenType::kString) {
      // Re-quote so 'abc' can never collide with the identifier abc.
      out.push_back('\'');
      out += token.text;
      out.push_back('\'');
    } else {
      out += token.text;  // keywords arrive upper-cased from the lexer
    }
  }
  return out;
}

namespace {

/// Unambiguous parameter encoding: type tag + length-prefixed payload, so
/// e.g. the string "1" and the integer 1 never collide.
void AppendValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "n0:";
    return;
  }
  char tag = 's';
  std::string payload;
  if (v.is_int64()) {
    tag = 'i';
    payload = std::to_string(v.AsInt64());
  } else if (v.is_double()) {
    tag = 'd';
    payload = std::to_string(v.AsDouble());
  } else {
    payload = v.AsString();
  }
  *out += tag;
  *out += std::to_string(payload.size());
  *out += ':';
  *out += payload;
}

}  // namespace

std::string PlanCache::MakeKey(const std::string& normalized_sql,
                               const std::vector<Value>& params,
                               uint64_t staleness_epoch, int64_t min_epoch) {
  std::string key = normalized_sql;
  key += '\x1f';
  for (const Value& param : params) AppendValue(param, &key);
  key += '\x1f';
  key += std::to_string(staleness_epoch);
  key += '/';
  key += std::to_string(min_epoch);
  return key;
}

std::optional<CachedPlan> PlanCache::Lookup(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void PlanCache::Insert(const std::string& key, CachedPlan entry) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (entries_.size() >= max_entries_ && entries_.count(key) == 0) {
    entries_.clear();  // epoch-stamped keys: most were dead already
  }
  entries_[key] = std::move(entry);
}

PlanCacheStats PlanCache::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return PlanCacheStats{hits_.load(std::memory_order_relaxed),
                        misses_.load(std::memory_order_relaxed),
                        entries_.size()};
}

void PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace payless::core
