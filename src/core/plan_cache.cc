#include "core/plan_cache.h"

#include <algorithm>
#include <mutex>

#include "sql/lexer.h"

namespace payless::core {

std::string NormalizeSqlTemplate(const std::string& sql) {
  Result<std::vector<sql::Token>> tokens = sql::Tokenize(sql);
  if (!tokens.ok()) return sql;  // unlexable: raw string, parser will reject
  std::string out;
  out.reserve(sql.size());
  for (const sql::Token& token : *tokens) {
    if (token.type == sql::TokenType::kEnd) break;
    if (!out.empty()) out.push_back(' ');
    if (token.type == sql::TokenType::kString) {
      // Re-quote so 'abc' can never collide with the identifier abc.
      out.push_back('\'');
      out += token.text;
      out.push_back('\'');
    } else {
      out += token.text;  // keywords arrive upper-cased from the lexer
    }
  }
  return out;
}

namespace {

/// Unambiguous parameter encoding: type tag + length-prefixed payload, so
/// e.g. the string "1" and the integer 1 never collide.
void AppendValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "n0:";
    return;
  }
  char tag = 's';
  std::string payload;
  if (v.is_int64()) {
    tag = 'i';
    payload = std::to_string(v.AsInt64());
  } else if (v.is_double()) {
    tag = 'd';
    payload = std::to_string(v.AsDouble());
  } else {
    payload = v.AsString();
  }
  *out += tag;
  *out += std::to_string(payload.size());
  *out += ':';
  *out += payload;
}

}  // namespace

std::string PlanCache::MakeKey(const std::string& normalized_sql,
                               const std::vector<Value>& params,
                               uint64_t staleness_epoch, int64_t min_epoch) {
  std::string key = normalized_sql;
  key += '\x1f';
  for (const Value& param : params) AppendValue(param, &key);
  key += '\x1f';
  key += std::to_string(staleness_epoch);
  key += '/';
  key += std::to_string(min_epoch);
  return key;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(
    const std::string& key) const {
  const Shard& shard = shards_[common::ShardOf(key, kShards)];
  const std::shared_ptr<const ShardMap> entries = shard.entries.Load();
  const auto it = entries->find(key);
  if (it == entries->end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void PlanCache::Insert(const std::string& key, CachedPlan entry) {
  Shard& shard = shards_[common::ShardOf(key, kShards)];
  // Per-shard slice of the global bound (hashing spreads keys evenly).
  const size_t shard_cap = std::max<size_t>(1, max_entries_ / kShards);
  std::lock_guard<std::mutex> lock(shard.write_mutex);
  const std::shared_ptr<const ShardMap> current = shard.entries.Load();
  std::shared_ptr<ShardMap> next;
  if (current->size() >= shard_cap && current->count(key) == 0) {
    next = std::make_shared<ShardMap>();  // epoch-stamped keys: mostly dead
  } else {
    next = std::make_shared<ShardMap>(*current);
  }
  (*next)[key] = std::make_shared<const CachedPlan>(std::move(entry));
  shard.entries.Store(std::move(next));
  version_.fetch_add(1, std::memory_order_release);
}

PlanCacheStats PlanCache::Stats() const {
  size_t entries = 0;
  for (const Shard& shard : shards_) entries += shard.entries.Load()->size();
  return PlanCacheStats{hits_.load(std::memory_order_relaxed),
                        misses_.load(std::memory_order_relaxed), entries};
}

std::vector<std::pair<std::string, std::shared_ptr<const CachedPlan>>>
PlanCache::Entries() const {
  std::vector<std::pair<std::string, std::shared_ptr<const CachedPlan>>> out;
  for (const Shard& shard : shards_) {
    const std::shared_ptr<const ShardMap> entries = shard.entries.Load();
    for (const auto& [key, entry] : *entries) out.emplace_back(key, entry);
  }
  return out;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    shard.entries.Store(std::make_shared<const ShardMap>());
  }
  version_.fetch_add(1, std::memory_order_release);
}

}  // namespace payless::core
