#include "core/optimizer.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>

namespace payless::core {

namespace {

/// Union-find over relation indices, for Theorem 3's connectivity test.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

double SafeVolume(const Box& box) { return static_cast<double>(box.Volume()); }

/// Fraction of `region`'s volume covered by `stored` (0 when region empty).
double CoveredVolumeFraction(const Box& region,
                             const std::vector<Box>& stored) {
  const double total = SafeVolume(region);
  if (total <= 0.0) return 1.0;
  double uncovered = 0.0;
  for (const Box& piece : SubtractAll(region, stored)) {
    uncovered += SafeVolume(piece);
  }
  const double f = 1.0 - uncovered / total;
  return std::clamp(f, 0.0, 1.0);
}

}  // namespace

std::vector<semstore::DimSpec> Optimizer::DimSpecsFor(
    const catalog::TableDef& def) {
  std::vector<semstore::DimSpec> dims;
  for (size_t col : def.ConstrainableColumns()) {
    semstore::DimSpec spec;
    spec.domain = def.columns[col].domain.ToInterval();
    spec.mode = def.columns[col].domain.is_numeric()
                    ? semstore::DimSpec::Mode::kNumeric
                    : semstore::DimSpec::Mode::kCategorical;
    dims.push_back(std::move(spec));
  }
  return dims;
}

int64_t Optimizer::AccessCost(const AccessSpec& access) const {
  if (access.IsZeroPrice()) return 0;
  if (access.est_transactions >= kInfeasible) return kInfeasible;
  return options_.cost_model == CostModelKind::kTransactions
             ? access.est_transactions
             : access.est_calls;
}

void Optimizer::ChooseBuySite(const catalog::DatasetDef& dataset,
                              AccessSpec* spec) const {
  if (options_.federation == nullptr) return;
  const std::vector<BuySiteMenu>* menu =
      options_.federation->MenuFor(dataset.name);
  if (menu == nullptr || menu->empty()) return;
  if (spec->IsZeroPrice() || spec->est_transactions >= kInfeasible) return;

  // Reprice the access under each endpoint's page size. The call count is
  // shape-determined (remainder boxes / binding values) and does not change
  // with the buy-site; only how many pages those calls bill does. The paid
  // row volume is approximated from the base estimate (est_transactions
  // pages of the catalog page size), so an endpoint with identical terms
  // reprices to exactly the base estimate.
  const double paid_rows = static_cast<double>(spec->est_transactions) *
                           static_cast<double>(dataset.tuples_per_transaction);
  const int64_t calls = std::max<int64_t>(spec->est_calls, 1);

  const BuySiteMenu* best = nullptr;
  int64_t best_txn = 0;
  double best_money = 0.0;
  for (const BuySiteMenu& site : *menu) {
    if (!site.live) continue;
    int64_t txn;
    if (site.tuples_per_transaction == dataset.tuples_per_transaction) {
      txn = spec->est_transactions;
    } else {
      const int64_t t = std::max<int64_t>(site.tuples_per_transaction, 1);
      txn = std::max(
          spec->est_calls,
          static_cast<int64_t>(std::ceil(paid_rows / static_cast<double>(t))));
      if (spec->est_transactions > 0) txn = std::max(txn, calls);
    }
    const double money = static_cast<double>(txn) * site.price_per_transaction;
    if (best == nullptr || money < best_money ||
        (money == best_money && txn < best_txn)) {
      best = &site;
      best_txn = txn;
      best_money = money;
    }
  }
  if (best == nullptr) return;  // every endpoint down: keep base pricing
  spec->buy_site = best->endpoint;
  spec->est_base_transactions = spec->est_transactions;
  spec->est_transactions = best_txn;
}

double Optimizer::EstimateDistinct(const catalog::TableDef& def, size_t col,
                                   double rows) const {
  if (rows < 0.0) rows = 0.0;
  const catalog::AttrDomain& domain = def.columns[col].domain;
  if (domain.kind() == catalog::AttrDomain::Kind::kNone) return rows;
  const double width = static_cast<double>(domain.size());
  return std::min(rows, width);
}

double Optimizer::JoinEstimate(const sql::BoundQuery& query, double left_rows,
                               double right_rows,
                               const std::vector<sql::JoinEdge>& edges) const {
  double result = left_rows * right_rows;
  for (const sql::JoinEdge& edge : edges) {
    const auto distinct_of = [&](const sql::BoundColumnRef& ref,
                                 double rows) {
      return EstimateDistinct(*query.relations[ref.rel].def, ref.col, rows);
    };
    // We do not track which side is "left" here; the containment direction
    // does not matter for the symmetric 1/max(d_l, d_r) formula.
    const double dl = distinct_of(edge.left, left_rows);
    const double dr = distinct_of(edge.right, right_rows);
    const double divisor = std::max({dl, dr, 1.0});
    result /= divisor;
  }
  return std::max(result, 0.0);
}

AccessSpec Optimizer::PlanPlainAccess(const sql::BoundQuery& query, size_t rel,
                                      PlanningCounters* counters) const {
  const sql::BoundRelation& r = query.relations[rel];
  const catalog::TableDef& def = *r.def;
  AccessSpec spec;
  spec.rel = rel;

  const Box region = r.QueryRegion();
  const double region_rows =
      r.always_empty ? 0.0 : stats_->EstimateRows(def.name, region);

  if (!r.is_market()) {
    spec.kind = AccessSpec::Kind::kLocal;
    spec.est_rows = region_rows;
    return spec;
  }
  if (r.always_empty) {
    spec.kind = AccessSpec::Kind::kEmpty;
    return spec;
  }

  const catalog::DatasetDef* dataset = catalog_->DatasetOf(def);
  assert(dataset != nullptr);
  const int64_t t = dataset->tuples_per_transaction;

  // A plain call must constrain every bound attribute through the query's
  // own conditions; otherwise the relation is only reachable via bind join
  // (the R(y^b, z^f) case of Fig. 4) or via the cache.
  bool bound_ok = true;
  for (size_t col : def.BoundColumns()) {
    if (r.conditions[col].is_none()) bound_ok = false;
  }

  if (options_.use_sqr) {
    const std::vector<Box> stored =
        store_->CoveredRegions(def.name, options_.min_epoch);
    semstore::RemainderOptions rem_options = options_.remainder;
    rem_options.tuples_per_transaction = t;
    const semstore::RemainderResult rem = semstore::GenerateRemainder(
        region, stored, DimSpecsFor(def),
        [&](const Box& box) { return stats_->EstimateRows(def.name, box); },
        rem_options);
    if (counters != nullptr) {
      counters->enumerated_bboxes += rem.counters.enumerated_boxes;
      counters->kept_bboxes += rem.counters.kept_boxes;
    }
    spec.used_sqr = true;
    spec.sqr_counters = rem.counters;
    spec.est_rows = region_rows;
    if (rem.fully_covered) {
      spec.kind = AccessSpec::Kind::kCached;
      return spec;
    }
    spec.kind = AccessSpec::Kind::kPlain;
    if (!bound_ok) {
      spec.est_transactions = kInfeasible;
      spec.est_calls = kInfeasible;
      return spec;
    }
    spec.est_transactions = rem.estimated_transactions;
    spec.est_calls = static_cast<int64_t>(rem.remainder_boxes.size());
    ChooseBuySite(*dataset, &spec);
    return spec;
  }

  spec.kind = AccessSpec::Kind::kPlain;
  spec.est_rows = region_rows;
  if (!bound_ok) {
    spec.est_transactions = kInfeasible;
    spec.est_calls = kInfeasible;
    return spec;
  }
  spec.est_transactions = semstore::EstimatedTransactions(region_rows, t);
  spec.est_calls = 1;
  ChooseBuySite(*dataset, &spec);
  return spec;
}

AccessSpec Optimizer::PlanBindAccess(const sql::BoundQuery& query, size_t rel,
                                     const std::vector<sql::JoinEdge>& edges,
                                     double left_rows,
                                     PlanningCounters* counters) const {
  (void)counters;
  const sql::BoundRelation& r = query.relations[rel];
  const catalog::TableDef& def = *r.def;
  AccessSpec spec;
  spec.rel = rel;
  spec.kind = AccessSpec::Kind::kBind;
  spec.est_transactions = kInfeasible;
  spec.est_calls = kInfeasible;

  if (!r.is_market()) return spec;  // never bind-join into a free table
  if (r.always_empty) {
    spec.kind = AccessSpec::Kind::kEmpty;
    spec.est_transactions = 0;
    spec.est_calls = 0;
    return spec;
  }

  // Usable edges: the side pointing at `rel` must be a constrainable column.
  std::vector<size_t> bind_cols;
  for (const sql::JoinEdge& edge : edges) {
    const sql::BoundColumnRef& own =
        edge.left.rel == rel ? edge.left : edge.right;
    if (own.rel != rel) continue;
    if (def.columns[own.col].binding == catalog::BindingKind::kOutput) {
      continue;
    }
    spec.bind_edges.push_back(edge);
    if (std::find(bind_cols.begin(), bind_cols.end(), own.col) ==
        bind_cols.end()) {
      bind_cols.push_back(own.col);
    }
  }
  if (bind_cols.empty()) return spec;  // no way to bind

  // Every bound attribute must be constrained by a condition or a binding.
  for (size_t col : def.BoundColumns()) {
    if (r.conditions[col].is_none() &&
        std::find(bind_cols.begin(), bind_cols.end(), col) ==
            bind_cols.end()) {
      return spec;
    }
  }

  const catalog::DatasetDef* dataset = catalog_->DatasetOf(def);
  assert(dataset != nullptr);
  const int64_t t = dataset->tuples_per_transaction;

  const Box region = r.QueryRegion();
  const double region_rows = stats_->EstimateRows(def.name, region);

  // Estimated distinct binding combinations: the left result cannot supply
  // more than its row count, and the combinations cannot exceed the bind
  // dimensions' joint extent within the region.
  const std::vector<size_t> constrainable = def.ConstrainableColumns();
  double joint_width = 1.0;
  for (size_t col : bind_cols) {
    const auto it =
        std::find(constrainable.begin(), constrainable.end(), col);
    assert(it != constrainable.end());
    const size_t dim = static_cast<size_t>(it - constrainable.begin());
    joint_width *= static_cast<double>(region.dim(dim).Width());
  }
  joint_width = std::max(joint_width, 1.0);
  const double v = std::clamp(left_rows, 0.0, joint_width);
  spec.est_bind_values = v;

  const double fetched = region_rows * (v / joint_width);
  const double per_value = v > 0.0 ? fetched / v : 0.0;
  spec.est_rows = fetched;

  double v_eff = v;
  if (options_.use_sqr) {
    spec.used_sqr = true;
    const std::vector<Box> stored =
        store_->CoveredRegions(def.name, options_.min_epoch);
    // Planning-time proxy for bind-join rewriting: binding values are not
    // known until the left side executes (the tx/ty/tz case of Fig. 9), so
    // the expected uncovered share of the region stands in for per-value
    // remainder generation. The executor re-runs exact remainder generation
    // (kValueSet dims) once the values are known.
    const double covered = CoveredVolumeFraction(region, stored);
    v_eff = v * (1.0 - covered);
  }

  const int64_t calls = static_cast<int64_t>(std::ceil(v_eff));
  spec.est_calls = calls;
  spec.est_transactions =
      calls == 0 ? 0 : calls * semstore::EstimatedTransactions(per_value, t);
  ChooseBuySite(*dataset, &spec);
  return spec;
}

// ---------------------------------------------------------------------------
// Left-deep DP with Theorems 1-3 (the PayLess search strategy).
// ---------------------------------------------------------------------------

namespace {

struct DpEntry {
  bool feasible = false;
  int64_t cost = 0;
  double rows = 0.0;
  std::vector<AccessSpec> accesses;
};

}  // namespace

Result<OptimizeResult> Optimizer::OptimizeLeftDeep(
    const sql::BoundQuery& query) const {
  OptimizeResult out;
  PlanningCounters& counters = out.counters;
  const size_t n = query.relations.size();

  // Size-1 best accesses (Algorithm 2 lines 3-4), via semantic rewriting.
  std::vector<AccessSpec> plain(n);
  for (size_t i = 0; i < n; ++i) {
    plain[i] = PlanPlainAccess(query, i, &counters);
    ++counters.evaluated_plans;
  }

  // Zero-price relations join first (Theorem 2; Algorithm 2 lines 1, 5).
  std::vector<size_t> prefix;     // relation indices, locals first
  std::vector<size_t> priced;     // DP relations
  for (size_t i = 0; i < n; ++i) {
    if (plain[i].kind == AccessSpec::Kind::kLocal) prefix.push_back(i);
  }
  for (size_t i = 0; i < n; ++i) {
    if (plain[i].IsZeroPrice() && plain[i].kind != AccessSpec::Kind::kLocal) {
      prefix.push_back(i);
    } else if (!plain[i].IsZeroPrice()) {
      priced.push_back(i);
    }
  }
  const size_t m = priced.size();
  if (m > options_.max_dp_relations) {
    return Status::NotSupported(
        "query joins " + std::to_string(m) +
        " priced market relations; the optimizer caps at " +
        std::to_string(options_.max_dp_relations));
  }

  // The zero-price prefix plan and its estimated cardinality.
  std::vector<AccessSpec> prefix_accesses;
  std::vector<bool> placed(n, false);
  double prefix_rows = 1.0;
  bool first = true;
  for (size_t rel : prefix) {
    prefix_accesses.push_back(plain[rel]);
    std::vector<sql::JoinEdge> edges;
    for (const sql::JoinEdge& e : query.joins) {
      const bool touches_new = e.left.rel == rel || e.right.rel == rel;
      const bool touches_placed = placed[e.left.rel] || placed[e.right.rel];
      if (touches_new && touches_placed) edges.push_back(e);
    }
    prefix_rows = first ? plain[rel].est_rows
                        : JoinEstimate(query, prefix_rows,
                                       plain[rel].est_rows, edges);
    placed[rel] = true;
    first = false;
  }
  if (first) prefix_rows = 1.0;  // empty prefix: neutral element

  if (m == 0) {
    out.plan.accesses = std::move(prefix_accesses);
    out.plan.est_cost = 0;
    out.plan.est_result_rows = prefix_rows;
    return out;
  }

  // Helper: join edges between priced relation `rel` and the placed set
  // (prefix + mask members).
  const auto edges_to_placed = [&](size_t rel, uint32_t mask) {
    std::vector<sql::JoinEdge> edges;
    const auto in_placed = [&](size_t other) {
      for (size_t p : prefix) {
        if (p == other) return true;
      }
      for (size_t b = 0; b < m; ++b) {
        if ((mask >> b & 1u) != 0 && priced[b] == other) return true;
      }
      return false;
    };
    for (const sql::JoinEdge& e : query.joins) {
      if (e.left.rel == rel && in_placed(e.right.rel)) edges.push_back(e);
      if (e.right.rel == rel && in_placed(e.left.rel)) edges.push_back(e);
    }
    return edges;
  };

  const uint32_t full = m == 32 ? ~0u : (1u << m) - 1;
  std::vector<DpEntry> dp(full + 1);
  dp[0].feasible = true;
  dp[0].cost = 0;
  dp[0].rows = prefix_rows;

  for (uint32_t mask = 1; mask <= full; ++mask) {
    DpEntry& best = dp[mask];
    const int k = std::popcount(mask);

    // Theorem 3: if the subset (together with the zero-price relations)
    // splits into join-disconnected components, the best plan is the
    // Cartesian combination of the component bests.
    if (k >= 2) {
      UnionFind uf(n);
      const auto active = [&](size_t rel) {
        if (placed[rel]) return true;  // prefix relation
        for (size_t b = 0; b < m; ++b) {
          if ((mask >> b & 1u) != 0 && priced[b] == rel) return true;
        }
        return false;
      };
      for (const sql::JoinEdge& e : query.joins) {
        if (active(e.left.rel) && active(e.right.rel)) {
          uf.Union(e.left.rel, e.right.rel);
        }
      }
      // Also glue all prefix relations together (they are joined already).
      for (size_t i = 1; i < prefix.size(); ++i) {
        uf.Union(prefix[0], prefix[i]);
      }
      const size_t anchor = prefix.empty() ? n : uf.Find(prefix[0]);
      // Group priced members of the mask by component.
      std::vector<std::pair<size_t, uint32_t>> groups;  // (root, submask)
      for (size_t b = 0; b < m; ++b) {
        if ((mask >> b & 1u) == 0) continue;
        size_t root = uf.Find(priced[b]);
        if (root == anchor && anchor != n) root = anchor;
        bool found = false;
        for (auto& [r, sub] : groups) {
          if (r == root) {
            sub |= 1u << b;
            found = true;
          }
        }
        if (!found) groups.emplace_back(root, 1u << b);
      }
      if (groups.size() > 1) {
        ++counters.evaluated_plans;
        bool feasible = true;
        int64_t cost = 0;
        double rows = std::max(prefix_rows, 1e-12);
        std::vector<AccessSpec> accesses;
        for (const auto& [_, sub] : groups) {
          const DpEntry& part = dp[sub];
          if (!part.feasible) {
            feasible = false;
            break;
          }
          cost += part.cost;
          rows *= part.rows / std::max(prefix_rows, 1e-12);
          accesses.insert(accesses.end(), part.accesses.begin(),
                          part.accesses.end());
        }
        if (feasible) {
          best.feasible = true;
          best.cost = cost;
          best.rows = rows;
          best.accesses = std::move(accesses);
        }
        continue;  // Theorem 3 short-circuits the general enumeration
      }
    }

    // General case (Theorem 1): extend every size-(k-1) left-deep plan with
    // one more call, as a regular join or as a bind join.
    for (size_t b = 0; b < m; ++b) {
      if ((mask >> b & 1u) == 0) continue;
      const uint32_t left_mask = mask & ~(1u << b);
      const DpEntry& left = dp[left_mask];
      if (!left.feasible) continue;
      const size_t rel = priced[b];
      const std::vector<sql::JoinEdge> edges = edges_to_placed(rel, left_mask);

      // Option A: regular (local) join with a plain, semantically rewritten
      // access (Algorithm 2 line 13).
      {
        ++counters.evaluated_plans;
        const int64_t access_cost = AccessCost(plain[rel]);
        if (access_cost < kInfeasible) {
          const int64_t cost = left.cost + access_cost;
          if (!best.feasible || cost < best.cost) {
            best.feasible = true;
            best.cost = cost;
            best.rows =
                JoinEstimate(query, left.rows, plain[rel].est_rows, edges);
            best.accesses = left.accesses;
            best.accesses.push_back(plain[rel]);
          }
        }
      }

      // Option B: bind join (Algorithm 2 lines 11-15).
      if (!edges.empty()) {
        ++counters.evaluated_plans;
        AccessSpec bind =
            PlanBindAccess(query, rel, edges, left.rows, &counters);
        const int64_t access_cost = AccessCost(bind);
        if (access_cost < kInfeasible &&
            access_cost <= AccessCost(plain[rel])) {
          const int64_t cost = left.cost + access_cost;
          if (!best.feasible || cost < best.cost) {
            best.feasible = true;
            best.cost = cost;
            best.rows = JoinEstimate(query, left.rows, bind.est_rows, edges);
            best.accesses = left.accesses;
            best.accesses.push_back(std::move(bind));
          }
        }
      }
    }
  }

  const DpEntry& final_entry = dp[full];
  if (!final_entry.feasible) {
    return Status::NotSupported(
        "no feasible plan: some bound attribute can be satisfied neither by "
        "the query's conditions nor by a bind join");
  }
  out.plan.accesses = prefix_accesses;
  out.plan.accesses.insert(out.plan.accesses.end(),
                           final_entry.accesses.begin(),
                           final_entry.accesses.end());
  out.plan.est_cost = final_entry.cost;
  out.plan.est_result_rows = final_entry.rows;
  return out;
}

// ---------------------------------------------------------------------------
// Exhaustive bushy enumeration ("Disable All", Fig. 14): no Theorem 1/2/3,
// no zero-price-first. Used to measure the search-space blowup; finds the
// same optimum (Theorem 1 guarantees left-deep plans contain one).
// ---------------------------------------------------------------------------

Result<OptimizeResult> Optimizer::OptimizeExhaustive(
    const sql::BoundQuery& query) const {
  OptimizeResult out;
  PlanningCounters& counters = out.counters;
  const size_t n = query.relations.size();
  if (n > 12) {
    return Status::NotSupported(
        "exhaustive enumeration caps at 12 relations");
  }

  std::vector<AccessSpec> plain(n);
  for (size_t i = 0; i < n; ++i) {
    plain[i] = PlanPlainAccess(query, i, &counters);
    ++counters.evaluated_plans;
  }

  const uint32_t full = (1u << n) - 1;
  std::vector<DpEntry> dp(full + 1);
  for (size_t i = 0; i < n; ++i) {
    DpEntry& e = dp[1u << i];
    const int64_t cost = AccessCost(plain[i]);
    if (cost >= kInfeasible) continue;
    e.feasible = true;
    e.cost = cost;
    e.rows = plain[i].est_rows;
    e.accesses = {plain[i]};
  }

  const auto crossing_edges = [&](uint32_t left_mask, uint32_t right_mask) {
    std::vector<sql::JoinEdge> edges;
    for (const sql::JoinEdge& e : query.joins) {
      const uint32_t lbit = 1u << e.left.rel;
      const uint32_t rbit = 1u << e.right.rel;
      if (((left_mask & lbit) && (right_mask & rbit)) ||
          ((left_mask & rbit) && (right_mask & lbit))) {
        edges.push_back(e);
      }
    }
    return edges;
  };

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    DpEntry& best = dp[mask];
    for (uint32_t left_mask = (mask - 1) & mask; left_mask != 0;
         left_mask = (left_mask - 1) & mask) {
      const uint32_t right_mask = mask & ~left_mask;
      const DpEntry& left = dp[left_mask];
      if (!left.feasible) continue;
      const std::vector<sql::JoinEdge> edges =
          crossing_edges(left_mask, right_mask);

      // Plain bushy combination.
      const DpEntry& right = dp[right_mask];
      if (right.feasible) {
        ++counters.evaluated_plans;
        const int64_t cost = left.cost + right.cost;
        if (!best.feasible || cost < best.cost) {
          best.feasible = true;
          best.cost = cost;
          best.rows = JoinEstimate(query, left.rows, right.rows, edges);
          best.accesses = left.accesses;
          best.accesses.insert(best.accesses.end(), right.accesses.begin(),
                               right.accesses.end());
        }
      }

      if (std::popcount(right_mask) == 1) {
        // Bind the single right relation from the left subtree.
        const size_t rel = static_cast<size_t>(std::countr_zero(right_mask));
        if (!edges.empty()) {
          ++counters.evaluated_plans;
          AccessSpec bind =
              PlanBindAccess(query, rel, edges, left.rows, &counters);
          const int64_t access_cost = AccessCost(bind);
          if (access_cost < kInfeasible) {
            const int64_t cost = left.cost + access_cost;
            if (!best.feasible || cost < best.cost) {
              best.feasible = true;
              best.cost = cost;
              best.rows =
                  JoinEstimate(query, left.rows, bind.est_rows, edges);
              best.accesses = left.accesses;
              best.accesses.push_back(std::move(bind));
            }
          }
        }
      } else {
        // Non-singleton right subtree: a full optimizer would re-plan each
        // right-subtree call with bindings from the left (up to 4^min{i,k-i}
        // variants, §4.1). Count those candidates; their cost cannot beat
        // the left-deep optimum (Theorem 1), so costing them is skipped.
        for (size_t j = 0; j < n; ++j) {
          if ((right_mask >> j & 1u) == 0) continue;
          const std::vector<sql::JoinEdge> bind_edges =
              crossing_edges(left_mask, 1u << j);
          if (!bind_edges.empty()) ++counters.evaluated_plans;
        }
      }
    }
  }

  const DpEntry& final_entry = dp[full];
  if (!final_entry.feasible) {
    return Status::NotSupported("no feasible plan (exhaustive mode)");
  }
  out.plan.accesses = final_entry.accesses;
  out.plan.est_cost = final_entry.cost;
  out.plan.est_result_rows = final_entry.rows;
  return out;
}

Result<OptimizeResult> Optimizer::Optimize(const sql::BoundQuery& query) const {
  if (query.relations.empty()) {
    return Status::InvalidArgument("query has no relations");
  }
  if (query.relations.size() > 32) {
    return Status::NotSupported("too many relations");
  }
  return options_.use_search_reduction ? OptimizeLeftDeep(query)
                                       : OptimizeExhaustive(query);
}

}  // namespace payless::core
