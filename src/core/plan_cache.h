// Plan-template cache: skip the DP when nothing the cost depends on moved.
//
// The paper's whole evaluation workload (Figs. 10-15) is a handful of
// parameterized templates instantiated thousands of times, and a serving
// middleware sees exactly that shape: the same SQL template, over and over,
// from many clients. The cache keys on the normalized template, the
// parameter values, the consistency horizon, and a STALENESS EPOCH supplied
// by the estimator-accuracy tracker: the epoch ticks only when a market
// call's true result size diverges from its estimate by more than the
// configured q-error threshold — i.e. when the statistics that priced the
// cached plans were materially wrong. Routine feedback that merely confirms
// the estimates leaves the epoch (and thus every cached template) intact,
// so steady-state serving stays on the cached-plan fast path.
//
// Cached plans can never be result-wrong, only cost-suboptimal: the
// execution engine re-runs the SQR rewrite against the live semantic store,
// and store coverage under a fixed consistency horizon only grows. When the
// epoch does tick, older keys become unreachable, which IS the invalidation
// — no explicit flush, stale entries just age out of the bounded map, and
// the forced re-optimization picks up the refined histogram (the paper's
// uniform-to-learned plan switch, Fig. 3 step 5.4).
//
// Thread-safe and lock-free on the hit path: entries live in hash-sharded
// copy-on-write maps (one atomic snapshot load + a find per lookup), and a
// hit hands back a shared_ptr to the immutable cached entry instead of a
// deep copy of the plan. Inserts copy-on-write one shard under its writer
// mutex; a monotonic version counter ticks on every insert and clear so
// introspection can cheaply detect churn. Hit/miss tallies are atomics so
// concurrent clients can read them cheaply.
#ifndef PAYLESS_CORE_PLAN_CACHE_H_
#define PAYLESS_CORE_PLAN_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/snapshot.h"
#include "common/value.h"
#include "core/plan.h"

namespace payless::core {

/// Canonical form of a SQL template for keying: the statement is re-lexed,
/// so whitespace and keyword case vanish while identifiers and string
/// literals (both case-sensitive in this dialect) survive verbatim —
/// formatting variants of one template share a cache line, distinct
/// identifiers never collide. Unlexable input falls back to the raw string
/// (it will miss, then fail in the parser like any other query).
std::string NormalizeSqlTemplate(const std::string& sql);

/// One cached optimization outcome: the plan plus the planning counters of
/// the optimization that produced it (so reports stay meaningful on hits).
/// The counterfactual fields are filled by the savings accountant at
/// insert time, so a template's hit path reprices nothing and both paths
/// report the identical counterfactual (the what-if baseline only depends
/// on the stats snapshot, which the epoch in the key pins).
struct CachedPlan {
  Plan plan;
  PlanningCounters counters;
  /// Estimated transactions of the counterfactual plan (empty store, no
  /// cached template); -1 = never priced (savings accounting off).
  int64_t cf_total = -1;
  std::map<std::string, int64_t> cf_by_dataset;
  /// Shape signature of the counterfactual plan, for detecting
  /// learned-stats plan switches (signature mismatch vs executed plan).
  std::string cf_signature;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;
};

class PlanCache {
 public:
  /// `max_entries` bounds memory; on overflow the whole map is dropped
  /// (entries are epoch-stamped, so most are already unreachable by the
  /// time the cache fills — wholesale eviction loses almost nothing).
  explicit PlanCache(size_t max_entries = 1024) : max_entries_(max_entries) {
    for (Shard& s : shards_) s.entries.Store(std::make_shared<const ShardMap>());
  }

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Builds the full cache key for one query instance. `staleness_epoch` is
  /// the accuracy tracker's drift epoch at optimization time (ticks only on
  /// estimate drift beyond the q-error threshold); `min_epoch` folds in the
  /// consistency horizon (it moves with the wall clock under kXWeek).
  static std::string MakeKey(const std::string& normalized_sql,
                             const std::vector<Value>& params,
                             uint64_t staleness_epoch, int64_t min_epoch);

  /// Lock-free: one shard-snapshot load plus a map find. The returned
  /// entry is immutable and shared — callers copy the fields they need
  /// instead of the whole plan. nullptr on miss.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key) const;
  void Insert(const std::string& key, CachedPlan entry);

  PlanCacheStats Stats() const;
  void Clear();

  /// Every cached entry (key -> immutable shared entry) for the durability
  /// snapshot. Per-shard order, not globally sorted.
  std::vector<std::pair<std::string, std::shared_ptr<const CachedPlan>>>
  Entries() const;

  /// Monotonic mutation counter: ticks on every Insert and Clear.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kShards = 8;
  using ShardMap =
      std::unordered_map<std::string, std::shared_ptr<const CachedPlan>>;

  struct Shard {
    std::mutex write_mutex;
    common::SnapshotCell<ShardMap> entries;
  };

  const size_t max_entries_;
  mutable std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> version_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace payless::core

#endif  // PAYLESS_CORE_PLAN_CACHE_H_
