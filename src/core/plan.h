// Execution plans for data-market queries.
//
// By Theorem 1, PayLess only needs LEFT-DEEP plans: a plan is an ordered
// sequence of relation accesses, joined left-to-right by the local engine.
// Only the accesses (REST calls) carry price; local joins are free. The
// zero-price relations — local tables, always-empty relations, and market
// relations whose footprint the semantic store already covers — form the
// leftmost prefix (Theorem 2).
#ifndef PAYLESS_CORE_PLAN_H_
#define PAYLESS_CORE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "semstore/remainder.h"
#include "sql/bound_query.h"

namespace payless::core {

/// How one relation of the query is accessed.
struct AccessSpec {
  enum class Kind {
    kLocal,   // buyer-side table: free
    kEmpty,   // contradictory conditions: no access at all
    kCached,  // market table fully covered by the semantic store: free
    kPlain,   // REST call(s) shaped by the query's own conditions
    kBind,    // bind join: one call (or remainder set) per left binding value
  };

  size_t rel = 0;  // index into BoundQuery::relations
  Kind kind = Kind::kLocal;

  /// kBind: the join edges supplying binding values. Each edge's side
  /// pointing at `rel` names a constrainable column of this relation; the
  /// other side must belong to a relation placed earlier in the plan.
  std::vector<sql::JoinEdge> bind_edges;

  bool used_sqr = false;            // remainder rewriting applied
  double est_rows = 0.0;            // estimated retrieved rows
  double est_bind_values = 0.0;     // kBind: estimated distinct binding values
  int64_t est_transactions = 0;     // estimated price (transactions)
  int64_t est_calls = 0;            // estimated number of REST calls
  /// Federation: the endpoint this access should buy from, chosen against
  /// the per-endpoint menu (empty = single-market deployment / primary).
  std::string buy_site;
  /// Federation: the base-catalog estimate this access carried BEFORE
  /// buy-site repricing (0 when no repricing happened). Savings
  /// attribution replays the repricing under the counterfactual
  /// endpoint's menu to isolate the routing edge from estimate noise.
  int64_t est_base_transactions = 0;
  semstore::RemainderCounters sqr_counters;

  bool IsZeroPrice() const {
    return kind == Kind::kLocal || kind == Kind::kEmpty ||
           kind == Kind::kCached;
  }
};

const char* AccessKindName(AccessSpec::Kind kind);

/// A complete left-deep plan: accesses in execution order. Rendering lives
/// in obs/explain.h (`obs::RenderPlan`) — the single plan-formatting path
/// shared by EXPLAIN, reports and benches.
struct Plan {
  std::vector<AccessSpec> accesses;
  int64_t est_cost = 0;         // φ(P) under the optimizer's cost model
  double est_result_rows = 0.0; // estimated final join cardinality
};

/// Optimizer instrumentation (Figs. 14 and 15).
struct PlanningCounters {
  size_t evaluated_plans = 0;    // candidate (sub)plans costed
  size_t enumerated_bboxes = 0;  // Algorithm-1 boxes constructed
  size_t kept_bboxes = 0;        // boxes surviving the pruning rules
  /// Plan-template cache outcome for this query: exactly one of the two is
  /// 1 when the cache is enabled (0/0 when bypassed, e.g. Explain).
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
};

}  // namespace payless::core

#endif  // PAYLESS_CORE_PLAN_H_
