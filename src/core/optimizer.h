// PayLess's cost-based optimizer (§4, Algorithm 2).
//
// Bottom-up dynamic programming in the style of System R, with three
// data-market-specific twists:
//   (i)  the cost of a plan is the MONEY it sends to data sellers — the sum
//        of estimated transactions of its REST calls (Eq. 1) — not time and
//        not call count;
//   (ii) bind joins are access paths: a relation whose bound attribute is
//        fed by an earlier relation's join values costs one (small) call per
//        distinct binding value instead of one big range scan;
//   (iii) every candidate access is first SEMANTICALLY REWRITTEN against the
//        stored views (§4.2): the optimizer prices only the remainder.
//
// Search-space reduction (all three provably lossless):
//   Theorem 1 — only left-deep plans are enumerated;
//   Theorem 2 — zero-price relations (local / cached / empty) are joined
//               first and excluded from the DP;
//   Theorem 3 — a join-disconnected relation set is planned per connected
//               component and combined with Cartesian products.
//
// Toggles reproduce the paper's ablations: `use_sqr=false` is "PayLess
// w/o SQR" / "Disable SQR"; additionally `use_search_reduction=false` is
// "Disable All" (bushy enumeration, no zero-price-first, no partition
// shortcut); `cost_model=kCalls` with SQR off approximates the
// "Minimizing Calls" baseline [27].
#ifndef PAYLESS_CORE_OPTIMIZER_H_
#define PAYLESS_CORE_OPTIMIZER_H_

#include <cstdint>
#include <limits>

#include "catalog/catalog.h"
#include "core/federation.h"
#include "core/plan.h"
#include "semstore/semantic_store.h"
#include "sql/bound_query.h"
#include "stats/estimator.h"

namespace payless::core {

enum class CostModelKind {
  kTransactions,  // PayLess: minimize money (transactions)
  kCalls,         // baseline [27]: minimize the number of REST calls
};

struct OptimizerOptions {
  bool use_sqr = true;
  bool use_search_reduction = true;  // Theorems 1-3 + zero-price-first
  CostModelKind cost_model = CostModelKind::kTransactions;
  /// Consistency horizon: only stored views with epoch >= min_epoch are
  /// usable (§4.3). INT64_MIN = weak consistency (use everything).
  int64_t min_epoch = std::numeric_limits<int64_t>::min();
  semstore::RemainderOptions remainder;
  /// Hard cap on the DP width; queries with more priced relations are
  /// rejected (far beyond every workload in the paper).
  size_t max_dp_relations = 16;
  /// Federation: per-dataset buy-site menus. When set, every priced access
  /// is repriced against the cheapest live endpoint and annotated with the
  /// chosen buy-site. nullptr = single-market pricing from the catalog.
  /// Not owned; must outlive the optimization call.
  const FederationPricing* federation = nullptr;
};

struct OptimizeResult {
  Plan plan;
  PlanningCounters counters;
};

class Optimizer {
 public:
  Optimizer(const catalog::Catalog* catalog, const stats::StatsRegistry* stats,
            const semstore::SemanticStore* store, OptimizerOptions options)
      : catalog_(catalog),
        stats_(stats),
        store_(store),
        options_(options) {}

  /// Derives the cheapest plan for `query`.
  Result<OptimizeResult> Optimize(const sql::BoundQuery& query) const;

  const OptimizerOptions& options() const { return options_; }

  /// Prices a single-relation access with semantic rewriting — exposed for
  /// the executor (which re-runs the rewrite against the live store) and
  /// for tests. `left_rows`/`edges` empty means plain access.
  AccessSpec PlanPlainAccess(const sql::BoundQuery& query, size_t rel,
                             PlanningCounters* counters) const;
  AccessSpec PlanBindAccess(const sql::BoundQuery& query, size_t rel,
                            const std::vector<sql::JoinEdge>& edges,
                            double left_rows,
                            PlanningCounters* counters) const;

  /// Per-dimension remainder specs for a table (numeric vs categorical).
  static std::vector<semstore::DimSpec> DimSpecsFor(
      const catalog::TableDef& def);

 private:
  static constexpr int64_t kInfeasible =
      std::numeric_limits<int64_t>::max() / 4;

  int64_t AccessCost(const AccessSpec& access) const;

  /// Federation: annotates a priced access with the cheapest live buy-site
  /// from the per-endpoint menu and rewrites its transaction estimate to
  /// that endpoint's page size. No-op when no menu covers the dataset.
  void ChooseBuySite(const catalog::DatasetDef& dataset,
                     AccessSpec* spec) const;

  /// Estimated distinct values count of a column within a relation's
  /// estimated result.
  double EstimateDistinct(const catalog::TableDef& def, size_t col,
                          double rows) const;

  /// Estimated cardinality of joining `left_rows` with `right_rows` via
  /// `edges` (textbook 1/max(d_l, d_r) per edge).
  double JoinEstimate(const sql::BoundQuery& query, double left_rows,
                      double right_rows,
                      const std::vector<sql::JoinEdge>& edges) const;

  Result<OptimizeResult> OptimizeLeftDeep(const sql::BoundQuery& query) const;
  Result<OptimizeResult> OptimizeExhaustive(const sql::BoundQuery& query) const;

  const catalog::Catalog* catalog_;
  const stats::StatsRegistry* stats_;
  const semstore::SemanticStore* store_;
  OptimizerOptions options_;
};

}  // namespace payless::core

#endif  // PAYLESS_CORE_OPTIMIZER_H_
