// Buy-site pricing menus for multi-market federation.
//
// In a federated deployment the same logical dataset is sold by several
// market endpoints under different terms: page size (tuples per
// transaction), price per transaction, and availability (an endpoint whose
// circuit breaker is open is not a viable buy-site). The optimizer stays
// free of any knowledge of connectors or endpoints — it only sees this
// pure-data menu, snapshotted per query, and annotates each priced access
// with the cheapest live buy-site (AccessSpec::buy_site).
//
// This header is deliberately std-only so core/ keeps no dependency on
// market/ or federation/ — the registry in src/federation builds the menu,
// the optimizer consumes it.
#ifndef PAYLESS_CORE_FEDERATION_H_
#define PAYLESS_CORE_FEDERATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace payless::core {

/// One endpoint's terms for one dataset.
struct BuySiteMenu {
  std::string endpoint;                 // endpoint id, e.g. "us-east"
  double price_per_transaction = 1.0;   // money per page at this endpoint
  int64_t tuples_per_transaction = 100; // page size at this endpoint
  bool live = true;                     // false while the breaker is open
};

/// Per-dataset menus across all registered endpoints. Built by the
/// federation router as a point-in-time snapshot (breaker states included)
/// just before each optimization; never mutated concurrently.
struct FederationPricing {
  std::map<std::string, std::vector<BuySiteMenu>> menus;

  const std::vector<BuySiteMenu>* MenuFor(const std::string& dataset) const {
    auto it = menus.find(dataset);
    return it == menus.end() ? nullptr : &it->second;
  }

  bool empty() const { return menus.empty(); }
};

}  // namespace payless::core

#endif  // PAYLESS_CORE_FEDERATION_H_
