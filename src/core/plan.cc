#include "core/plan.h"

#include <sstream>

namespace payless::core {

const char* AccessKindName(AccessSpec::Kind kind) {
  switch (kind) {
    case AccessSpec::Kind::kLocal:
      return "local";
    case AccessSpec::Kind::kEmpty:
      return "empty";
    case AccessSpec::Kind::kCached:
      return "cached";
    case AccessSpec::Kind::kPlain:
      return "call";
    case AccessSpec::Kind::kBind:
      return "bind-join";
  }
  return "?";
}

std::string Plan::Describe(const sql::BoundQuery& query) const {
  std::ostringstream os;
  os << "Plan[cost=" << est_cost << " txn, est_rows=" << est_result_rows
     << "]\n";
  for (const AccessSpec& access : accesses) {
    const sql::BoundRelation& rel = query.relations[access.rel];
    os << "  " << AccessKindName(access.kind) << " " << rel.def->name;
    if (access.kind == AccessSpec::Kind::kBind) {
      os << " on (";
      for (size_t i = 0; i < access.bind_edges.size(); ++i) {
        if (i > 0) os << ", ";
        const sql::JoinEdge& e = access.bind_edges[i];
        const sql::BoundColumnRef& own =
            e.left.rel == access.rel ? e.left : e.right;
        os << rel.def->columns[own.col].name;
      }
      os << ")";
    }
    if (!access.IsZeroPrice()) {
      os << " ~" << access.est_transactions << " txn, ~" << access.est_calls
         << " calls";
      if (access.used_sqr) os << " (SQR)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace payless::core
