#include "core/plan.h"

namespace payless::core {

const char* AccessKindName(AccessSpec::Kind kind) {
  switch (kind) {
    case AccessSpec::Kind::kLocal:
      return "local";
    case AccessSpec::Kind::kEmpty:
      return "empty";
    case AccessSpec::Kind::kCached:
      return "cached";
    case AccessSpec::Kind::kPlain:
      return "call";
    case AccessSpec::Kind::kBind:
      return "bind-join";
  }
  return "?";
}

}  // namespace payless::core
