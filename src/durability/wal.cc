#include "durability/wal.h"

namespace payless::durability {

std::string EncodeHarvest(const HarvestRecord& record) {
  std::string out;
  common::BinWriter w(&out);
  w.U64(record.seq);
  w.Str(record.table);
  w.Str(record.dataset);
  w.I64(record.epoch);
  w.I64(record.num_records);
  w.I64(record.transactions);
  w.F64(record.price);
  common::WriteBox(w, record.region);
  w.U32(static_cast<uint32_t>(record.rows.size()));
  for (const Row& row : record.rows) common::WriteRow(w, row);
  return out;
}

bool DecodeHarvest(const std::string& payload, HarvestRecord* out) {
  common::BinReader r(payload);
  uint32_t num_rows = 0;
  if (!r.U64(&out->seq) || !r.Str(&out->table) || !r.Str(&out->dataset) ||
      !r.I64(&out->epoch) || !r.I64(&out->num_records) ||
      !r.I64(&out->transactions) || !r.F64(&out->price) ||
      !common::ReadBox(r, &out->region) || !r.U32(&num_rows)) {
    return false;
  }
  out->rows.clear();
  out->rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    Row row;
    if (!common::ReadRow(r, &row)) return false;
    out->rows.push_back(std::move(row));
  }
  return r.ok() && r.remaining() == 0;
}

WalReadResult ReadWal(const std::string& path) {
  common::FrameReadResult frames = common::ReadFramedFile(path);
  WalReadResult result;
  result.payloads = std::move(frames.payloads);
  result.torn_tail = frames.torn_tail;
  result.valid_bytes = frames.valid_bytes;
  result.total_bytes = frames.total_bytes;
  return result;
}

}  // namespace payless::durability
