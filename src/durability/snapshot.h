// Compacted snapshots of the durable state: the semantic store's views,
// the per-table estimator states, the plan-template cache, and the small
// scalar state (last absorbed WAL sequence, drift epoch, current week).
//
// A snapshot bounds recovery work — log records with seq <= last_seq are
// already folded in and are skipped at replay — and bounds log growth: the
// manager resets the WAL after a successful snapshot. Files are written
// crash-atomically (tmp + fsync + rename), so a reader only ever sees the
// previous complete snapshot or the new complete snapshot, never a torn
// one; a crash BETWEEN the rename and the log reset is safe because the
// seq filter drops the now-redundant log prefix at replay.
#ifndef PAYLESS_DURABILITY_SNAPSHOT_H_
#define PAYLESS_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/plan_cache.h"
#include "semstore/semantic_store.h"

namespace payless::durability {

/// In-memory image of one snapshot file.
struct SnapshotData {
  uint64_t last_seq = 0;     // highest WAL seq folded into this snapshot
  uint64_t drift_epoch = 0;  // accuracy tracker's epoch at snapshot time
  int64_t current_week = 0;  // store clock at snapshot time

  struct TableViews {
    std::string table;
    std::vector<semstore::StoredView> views;
  };
  std::vector<TableViews> store_tables;

  /// table -> serialized estimator state (stats::SaveEstimator blobs).
  std::vector<std::pair<std::string, std::string>> stats_tables;

  /// Plan-template cache entries, key -> cached plan.
  std::vector<std::pair<std::string, core::CachedPlan>> plans;
};

/// Serializes `data` and writes it crash-atomically to `path`.
Status WriteSnapshotFile(const std::string& path, const SnapshotData& data);

/// Reads and validates the snapshot at `path`. NotFound when the file does
/// not exist (a cold start); Internal on magic/CRC/decode failure.
Status ReadSnapshotFile(const std::string& path, SnapshotData* out);

}  // namespace payless::durability

#endif  // PAYLESS_DURABILITY_SNAPSHOT_H_
