#include "durability/snapshot.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/binio.h"
#include "durability/wal.h"

namespace payless::durability {

namespace {

constexpr char kMagic[8] = {'P', 'L', 'S', 'S', 'N', 'A', 'P', '1'};
constexpr uint8_t kFormatVersion = 1;

void WritePlan(common::BinWriter& w, const core::Plan& plan) {
  w.I64(plan.est_cost);
  w.F64(plan.est_result_rows);
  w.U32(static_cast<uint32_t>(plan.accesses.size()));
  for (const core::AccessSpec& a : plan.accesses) {
    w.U64(a.rel);
    w.U8(static_cast<uint8_t>(a.kind));
    w.U32(static_cast<uint32_t>(a.bind_edges.size()));
    for (const sql::JoinEdge& e : a.bind_edges) {
      w.U64(e.left.rel);
      w.U64(e.left.col);
      w.U64(e.right.rel);
      w.U64(e.right.col);
    }
    w.U8(a.used_sqr ? 1 : 0);
    w.F64(a.est_rows);
    w.F64(a.est_bind_values);
    w.I64(a.est_transactions);
    w.I64(a.est_calls);
    w.U64(a.sqr_counters.elementary_boxes);
    w.U64(a.sqr_counters.enumerated_boxes);
    w.U64(a.sqr_counters.kept_boxes);
    w.U64(a.sqr_counters.cover_boxes);
  }
}

bool ReadPlan(common::BinReader& r, core::Plan* plan) {
  uint32_t num_accesses = 0;
  if (!r.I64(&plan->est_cost) || !r.F64(&plan->est_result_rows) ||
      !r.U32(&num_accesses)) {
    return false;
  }
  plan->accesses.clear();
  plan->accesses.reserve(num_accesses);
  for (uint32_t i = 0; i < num_accesses; ++i) {
    core::AccessSpec a;
    uint64_t rel = 0;
    uint8_t kind = 0;
    uint32_t num_edges = 0;
    if (!r.U64(&rel) || !r.U8(&kind) || !r.U32(&num_edges)) return false;
    a.rel = static_cast<size_t>(rel);
    a.kind = static_cast<core::AccessSpec::Kind>(kind);
    a.bind_edges.reserve(num_edges);
    for (uint32_t e = 0; e < num_edges; ++e) {
      sql::JoinEdge edge;
      uint64_t lr = 0, lc = 0, rr = 0, rc = 0;
      if (!r.U64(&lr) || !r.U64(&lc) || !r.U64(&rr) || !r.U64(&rc)) {
        return false;
      }
      edge.left = {static_cast<size_t>(lr), static_cast<size_t>(lc)};
      edge.right = {static_cast<size_t>(rr), static_cast<size_t>(rc)};
      a.bind_edges.push_back(edge);
    }
    uint8_t used_sqr = 0;
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    if (!r.U8(&used_sqr) || !r.F64(&a.est_rows) ||
        !r.F64(&a.est_bind_values) || !r.I64(&a.est_transactions) ||
        !r.I64(&a.est_calls) || !r.U64(&c0) || !r.U64(&c1) || !r.U64(&c2) ||
        !r.U64(&c3)) {
      return false;
    }
    a.used_sqr = used_sqr != 0;
    a.sqr_counters.elementary_boxes = static_cast<size_t>(c0);
    a.sqr_counters.enumerated_boxes = static_cast<size_t>(c1);
    a.sqr_counters.kept_boxes = static_cast<size_t>(c2);
    a.sqr_counters.cover_boxes = static_cast<size_t>(c3);
    plan->accesses.push_back(std::move(a));
  }
  return true;
}

void WriteCachedPlan(common::BinWriter& w, const core::CachedPlan& entry) {
  WritePlan(w, entry.plan);
  w.U64(entry.counters.evaluated_plans);
  w.U64(entry.counters.enumerated_bboxes);
  w.U64(entry.counters.kept_bboxes);
  w.U64(entry.counters.plan_cache_hits);
  w.U64(entry.counters.plan_cache_misses);
  w.I64(entry.cf_total);
  w.U32(static_cast<uint32_t>(entry.cf_by_dataset.size()));
  for (const auto& [dataset, transactions] : entry.cf_by_dataset) {
    w.Str(dataset);
    w.I64(transactions);
  }
  w.Str(entry.cf_signature);
}

bool ReadCachedPlan(common::BinReader& r, core::CachedPlan* entry) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0, c4 = 0;
  uint32_t num_datasets = 0;
  if (!ReadPlan(r, &entry->plan) || !r.U64(&c0) || !r.U64(&c1) ||
      !r.U64(&c2) || !r.U64(&c3) || !r.U64(&c4) || !r.I64(&entry->cf_total) ||
      !r.U32(&num_datasets)) {
    return false;
  }
  entry->counters.evaluated_plans = static_cast<size_t>(c0);
  entry->counters.enumerated_bboxes = static_cast<size_t>(c1);
  entry->counters.kept_bboxes = static_cast<size_t>(c2);
  entry->counters.plan_cache_hits = static_cast<size_t>(c3);
  entry->counters.plan_cache_misses = static_cast<size_t>(c4);
  for (uint32_t i = 0; i < num_datasets; ++i) {
    std::string dataset;
    int64_t transactions = 0;
    if (!r.Str(&dataset) || !r.I64(&transactions)) return false;
    entry->cf_by_dataset[std::move(dataset)] = transactions;
  }
  return r.Str(&entry->cf_signature);
}

std::string EncodeBody(const SnapshotData& data) {
  std::string body;
  common::BinWriter w(&body);
  w.U8(kFormatVersion);
  w.U64(data.last_seq);
  w.U64(data.drift_epoch);
  w.I64(data.current_week);

  w.U32(static_cast<uint32_t>(data.store_tables.size()));
  for (const SnapshotData::TableViews& t : data.store_tables) {
    w.Str(t.table);
    w.U32(static_cast<uint32_t>(t.views.size()));
    for (const semstore::StoredView& v : t.views) {
      common::WriteBox(w, v.region);
      w.I64(v.epoch);
      w.U32(static_cast<uint32_t>(v.rows.size()));
      for (const Row& row : v.rows) common::WriteRow(w, row);
    }
  }

  w.U32(static_cast<uint32_t>(data.stats_tables.size()));
  for (const auto& [table, blob] : data.stats_tables) {
    w.Str(table);
    w.Str(blob);
  }

  w.U32(static_cast<uint32_t>(data.plans.size()));
  for (const auto& [key, entry] : data.plans) {
    w.Str(key);
    WriteCachedPlan(w, entry);
  }
  return body;
}

bool DecodeBody(const std::string& body, SnapshotData* out) {
  common::BinReader r(body);
  uint8_t version = 0;
  if (!r.U8(&version) || version != kFormatVersion) return false;
  uint32_t num_tables = 0;
  if (!r.U64(&out->last_seq) || !r.U64(&out->drift_epoch) ||
      !r.I64(&out->current_week) || !r.U32(&num_tables)) {
    return false;
  }
  out->store_tables.clear();
  for (uint32_t t = 0; t < num_tables; ++t) {
    SnapshotData::TableViews table;
    uint32_t num_views = 0;
    if (!r.Str(&table.table) || !r.U32(&num_views)) return false;
    table.views.reserve(num_views);
    for (uint32_t v = 0; v < num_views; ++v) {
      semstore::StoredView view;
      uint32_t num_rows = 0;
      if (!common::ReadBox(r, &view.region) || !r.I64(&view.epoch) ||
          !r.U32(&num_rows)) {
        return false;
      }
      view.rows.reserve(num_rows);
      for (uint32_t i = 0; i < num_rows; ++i) {
        Row row;
        if (!common::ReadRow(r, &row)) return false;
        view.rows.push_back(std::move(row));
      }
      table.views.push_back(std::move(view));
    }
    out->store_tables.push_back(std::move(table));
  }

  uint32_t num_stats = 0;
  if (!r.U32(&num_stats)) return false;
  out->stats_tables.clear();
  for (uint32_t i = 0; i < num_stats; ++i) {
    std::string table, blob;
    if (!r.Str(&table) || !r.Str(&blob)) return false;
    out->stats_tables.emplace_back(std::move(table), std::move(blob));
  }

  uint32_t num_plans = 0;
  if (!r.U32(&num_plans)) return false;
  out->plans.clear();
  for (uint32_t i = 0; i < num_plans; ++i) {
    std::string key;
    core::CachedPlan entry;
    if (!r.Str(&key) || !ReadCachedPlan(r, &entry)) return false;
    out->plans.emplace_back(std::move(key), std::move(entry));
  }
  return r.ok() && r.remaining() == 0;
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const SnapshotData& data) {
  const std::string body = EncodeBody(data);
  std::string file;
  file.append(kMagic, sizeof(kMagic));
  common::BinWriter w(&file);
  w.U32(Crc32(body));
  w.U64(body.size());
  file += body;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("snapshot open '" + tmp + "' failed");
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("snapshot write '" + tmp + "' failed");
    }
  }
  // The rename is the commit point: readers see the old complete file or
  // the new complete file, never bytes of both.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("snapshot rename '" + tmp + "' -> '" + path +
                            "': " + std::strerror(errno));
  }
  return Status::OK();
}

Status ReadSnapshotFile(const std::string& path, SnapshotData* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no snapshot at '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();
  if (file.size() < sizeof(kMagic) + 12 ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Internal("snapshot '" + path + "': bad magic");
  }
  common::BinReader r(file.data() + sizeof(kMagic),
                      file.size() - sizeof(kMagic));
  uint32_t crc = 0;
  uint64_t body_len = 0;
  if (!r.U32(&crc) || !r.U64(&body_len) || r.remaining() != body_len) {
    return Status::Internal("snapshot '" + path + "': truncated header");
  }
  const std::string body = file.substr(sizeof(kMagic) + 12);
  if (Crc32(body) != crc) {
    return Status::Internal("snapshot '" + path + "': CRC mismatch");
  }
  if (!DecodeBody(body, out)) {
    return Status::Internal("snapshot '" + path + "': decode failed");
  }
  return Status::OK();
}

}  // namespace payless::durability
