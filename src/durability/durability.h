// Durability manager: crash-consistent persistence for everything PayLess
// paid for — semantic-store views, feedback-histogram state, and plan
// templates — so a process death never forfeits purchased data (ROADMAP
// item 4: purchased data is capital).
//
// Write path. The manager sits at the single billing point (the market-
// connector listener): every harvest is assigned a sequence number,
// framed into the write-ahead log (fsync per policy), applied in memory
// through the owner's listener body, and periodically compacted into a
// snapshot that atomically replaces its predecessor and resets the log.
// The whole harvest pipeline is serialized under one mutex — a deliberate
// trade: reads (the query hot path) stay lock-free on the COW snapshots,
// while the write side, already serialized per table and bounded by
// market-call latency, gains a total order that makes the log a faithful
// replay script and leaves no window where a snapshot could double- or
// half-count an in-flight harvest.
//
// Recovery. Construction-time Recover() loads the snapshot (views replayed
// into the store, estimator blobs into the statistics registry, templates
// into the plan cache), then replays every intact WAL record with
// seq > snapshot.last_seq through the same listener body. Torn log tails
// are dropped, never applied; a crash between the snapshot rename and the
// log reset is handled by that seq filter. The recovery metric is
// monetary: a recovered run re-buys exactly the harvests that were billed
// but not yet durable (crash before/mid append) and nothing else.
//
// Crash injection. At five pipeline points the manager consults the
// FaultInjector for an armed CrashPlan. A hard plan _Exit()s the process
// (the kill/restart harness); a soft plan freezes the on-disk state
// exactly as the kill would have left it and stops persisting, so a test
// can recover a twin instance from the files while the "dead" instance is
// discarded.
#ifndef PAYLESS_DURABILITY_DURABILITY_H_
#define PAYLESS_DURABILITY_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/plan_cache.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "market/data_market.h"
#include "market/fault_injector.h"
#include "obs/metrics.h"
#include "semstore/semantic_store.h"
#include "stats/estimator.h"

namespace payless::durability {

/// When the WAL is forced to stable storage.
enum class FsyncPolicy {
  kEveryAppend,  // every harvest durable before it is applied (default)
  kOnSnapshot,   // OS-buffered appends; fsync only at snapshot boundaries
  kNever         // benchmarks/tests only
};

struct DurabilityOptions {
  /// Directory holding harvest.wal + store.snap. Empty = durability off
  /// (PayLess then behaves exactly as before this subsystem existed).
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kEveryAppend;
  /// Compact a snapshot after this many logged harvests (0 = only explicit
  /// SnapshotNow calls).
  size_t snapshot_every_records = 512;
  /// Crash-point oracle; nullptr = no crash injection.
  market::FaultInjector* crash_injector = nullptr;
};

/// What recovery found and rebuilt, surfaced on /store and the dashboard.
struct RecoveryInfo {
  bool recovered = false;     // any state restored (snapshot or replay)
  bool had_snapshot = false;
  uint64_t snapshot_seq = 0;  // last_seq folded into the loaded snapshot
  uint64_t replayed_records = 0;  // WAL records applied after the snapshot
  uint64_t skipped_records = 0;   // WAL records the seq filter dropped
  uint64_t recovered_views = 0;
  uint64_t recovered_rows = 0;
  uint64_t recovered_plans = 0;
  uint64_t recovered_stats_tables = 0;
  bool wal_torn_tail = false;
  int64_t wal_bytes = 0;  // intact prefix re-adopted as the live log
  int64_t recovery_micros = 0;
  int64_t restored_week = 0;
  uint64_t restored_drift_epoch = 0;
};

class DurabilityManager {
 public:
  /// Replay/apply sink: the owner's listener body (store + feedback +
  /// accuracy tracking) — one code path for live harvests and recovery.
  using HarvestApply = std::function<void(
      const catalog::TableDef& def, const Box& region, std::vector<Row> rows,
      int64_t num_records, int64_t epoch)>;

  DurabilityManager(DurabilityOptions options, const catalog::Catalog* catalog,
                    semstore::SemanticStore* store,
                    stats::StatsRegistry* stats, core::PlanCache* plan_cache,
                    obs::MetricsRegistry* metrics);

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Scalar state captured into snapshots: the owner's accuracy drift epoch
  /// and store week. Set before the first LogAndApply/SnapshotNow.
  void SetStateSuppliers(std::function<uint64_t()> drift_epoch,
                         std::function<int64_t()> current_week);

  /// Loads the snapshot, replays the log tail through `apply`, re-adopts
  /// the intact log prefix for appending. Call once, before serving.
  Status Recover(const HarvestApply& apply);

  /// The live harvest path: seq + log append (+fsync) + in-memory apply +
  /// periodic snapshot, serialized under the manager mutex. After a
  /// simulated (soft) crash the apply still runs — the instance keeps
  /// serving from memory — but nothing further reaches the disk.
  void LogAndApply(const catalog::TableDef& def, const Box& region,
                   const market::CallResult& result, int64_t epoch,
                   const HarvestApply& apply);

  /// Forces a compaction now (tests; an operator endpoint could too).
  Status SnapshotNow();

  const RecoveryInfo& recovery() const { return recovery_; }
  bool enabled() const { return !options_.dir.empty(); }
  /// True after a soft (simulated) crash: the on-disk state is frozen.
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  uint64_t next_seq() const;
  int64_t wal_bytes() const;

  std::string wal_path() const { return options_.dir + "/harvest.wal"; }
  std::string snapshot_path() const { return options_.dir + "/store.snap"; }

  /// {"enabled":...,"wal_bytes":...,"recovery":{...}} — spliced into the
  /// /store introspection document and rendered on the dashboard.
  std::string StatsJson() const;

 private:
  /// Fires `point` against the armed crash plan; returns true when the
  /// caller must stop persisting (soft death — already marked). A hard
  /// plan never returns. kMidHarvestLog is handled inline in LogAndApply
  /// instead (its torn frame must be written before a hard exit).
  bool MaybeCrash(market::CrashPoint point);

  Status SnapshotLocked();

  DurabilityOptions options_;
  const catalog::Catalog* catalog_;
  semstore::SemanticStore* store_;
  stats::StatsRegistry* stats_;
  core::PlanCache* plan_cache_;
  std::function<uint64_t()> drift_epoch_supplier_;
  std::function<int64_t()> current_week_supplier_;

  mutable std::mutex mutex_;
  WriteAheadLog wal_;
  uint64_t next_seq_ = 1;
  uint64_t last_snapshot_seq_ = 0;
  size_t records_since_snapshot_ = 0;
  std::atomic<bool> dead_{false};
  RecoveryInfo recovery_;

  struct Metrics {
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_bytes = nullptr;
    obs::Histogram* fsync_micros = nullptr;
    obs::Gauge* wal_size = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Gauge* snapshot_bytes = nullptr;
    obs::Gauge* snapshot_age_records = nullptr;
    obs::Gauge* recovery_micros = nullptr;
    obs::Gauge* recovered_views = nullptr;
    obs::Gauge* recovered_rows = nullptr;
    obs::Gauge* recovered_plans = nullptr;
    obs::Counter* replayed_records = nullptr;
  } metric_;
};

}  // namespace payless::durability

#endif  // PAYLESS_DURABILITY_DURABILITY_H_
