// Append-only write-ahead log for the harvest path.
//
// Every record is one HARVEST: a market call's billed result at the single
// point where money turned into state (the connector listener that feeds
// the semantic store and the statistics — Fig. 3, steps 5.3/5.4). Replaying
// the log through that same listener deterministically rebuilds the store,
// the feedback histograms and the estimator-accuracy drift epoch, which is
// what makes a warm restart billing-correct: a slab whose record is on disk
// is never re-bought, and nothing is ever served that was not paid for.
//
// The on-disk format is the shared CRC framing in common/framing.h
// (`[u32 len][u32 crc][payload]`, torn-tail discipline); this header adds
// the harvest record codec on top of it.
#ifndef PAYLESS_DURABILITY_WAL_H_
#define PAYLESS_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/framing.h"
#include "common/geometry.h"
#include "common/status.h"
#include "common/value.h"

namespace payless::durability {

/// CRC-32 (IEEE, reflected) of a byte span — the frame checksum.
inline uint32_t Crc32(const char* data, size_t size) {
  return common::Crc32(data, size);
}
inline uint32_t Crc32(const std::string& s) { return common::Crc32(s); }

/// One logged harvest: the market call's identity and billed result, plus
/// everything the listener needs to re-apply it (region + rows + epoch).
/// `transactions`/`price` are audit fields (what this slab cost under
/// Eq. 1); replay does not re-bill them.
struct HarvestRecord {
  uint64_t seq = 0;  // assigned by the log, strictly increasing from 1
  std::string table;
  std::string dataset;
  int64_t epoch = 0;        // store week the harvest was stamped with
  int64_t num_records = 0;  // true result size fed back to the statistics
  int64_t transactions = 0;
  double price = 0.0;
  Box region;
  std::vector<Row> rows;
};

std::string EncodeHarvest(const HarvestRecord& record);
bool DecodeHarvest(const std::string& payload, HarvestRecord* out);

/// Append handle over one log file. Not thread-safe: the durability
/// manager serializes the whole harvest path, so the log never sees
/// concurrent appends.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::string path) : file_(std::move(path)) {}

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if absent) for append. Idempotent.
  Status Open() { return file_.Open(); }

  /// Frames and appends one payload; fsyncs when asked. Size accounting
  /// includes the 8-byte frame header.
  Status Append(const std::string& payload, bool fsync) {
    return file_.Append(payload, fsync);
  }

  /// Crash-injection path: writes only the first `torn_bytes` bytes of the
  /// frame (header included) and stops — the torn tail a real kill
  /// mid-append leaves behind. Never fsyncs (the process "died").
  Status AppendTorn(const std::string& payload, size_t torn_bytes) {
    return file_.AppendTorn(payload, torn_bytes);
  }

  /// Truncates the log to empty (after a snapshot made its records
  /// redundant).
  Status Reset() { return file_.Reset(); }

  void Close() { file_.Close(); }

  int64_t size_bytes() const { return file_.size_bytes(); }
  const std::string& path() const { return file_.path(); }

 private:
  common::FramedAppendFile file_;
};

/// Everything one pass over a log file yields.
struct WalReadResult {
  std::vector<std::string> payloads;  // intact frames, in append order
  bool torn_tail = false;             // file ends in an invalid frame
  int64_t valid_bytes = 0;            // prefix covered by intact frames
  int64_t total_bytes = 0;            // file size as read
};

/// Reads every intact frame of the log at `path`. A missing file is an
/// empty, un-torn log. Never fails on torn or corrupt content — the torn
/// tail is data about the crash, not an error.
WalReadResult ReadWal(const std::string& path);

}  // namespace payless::durability

#endif  // PAYLESS_DURABILITY_WAL_H_
