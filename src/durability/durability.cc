#include "durability/durability.h"

#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/flight_recorder.h"

namespace payless::durability {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     const catalog::Catalog* catalog,
                                     semstore::SemanticStore* store,
                                     stats::StatsRegistry* stats,
                                     core::PlanCache* plan_cache,
                                     obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      catalog_(catalog),
      store_(store),
      stats_(stats),
      plan_cache_(plan_cache),
      wal_(options_.dir.empty() ? std::string()
                                : options_.dir + "/harvest.wal") {
  assert(metrics != nullptr);
  metric_.wal_appends = metrics->GetCounter("payless_wal_appends_total");
  metric_.wal_bytes = metrics->GetCounter("payless_wal_bytes_total");
  metric_.fsync_micros = metrics->GetHistogram(
      "payless_wal_fsync_micros",
      {10, 25, 50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000, 25'000});
  metric_.wal_size = metrics->GetGauge("payless_wal_size_bytes");
  metric_.snapshots = metrics->GetCounter("payless_snapshots_total");
  metric_.snapshot_bytes = metrics->GetGauge("payless_snapshot_bytes");
  metric_.snapshot_age_records =
      metrics->GetGauge("payless_snapshot_age_records");
  metric_.recovery_micros = metrics->GetGauge("payless_recovery_micros");
  metric_.recovered_views = metrics->GetGauge("payless_recovered_views");
  metric_.recovered_rows = metrics->GetGauge("payless_recovered_rows");
  metric_.recovered_plans = metrics->GetGauge("payless_recovered_plans");
  metric_.replayed_records =
      metrics->GetCounter("payless_recovery_replayed_records");
}

void DurabilityManager::SetStateSuppliers(
    std::function<uint64_t()> drift_epoch,
    std::function<int64_t()> current_week) {
  drift_epoch_supplier_ = std::move(drift_epoch);
  current_week_supplier_ = std::move(current_week);
}

Status DurabilityManager::Recover(const HarvestApply& apply) {
  if (!enabled()) return Status::OK();
  const int64_t start = NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("durability dir '" + options_.dir +
                            "': " + ec.message());
  }

  // ---- Snapshot: the compacted base image.
  SnapshotData snap;
  const Status snap_status = ReadSnapshotFile(snapshot_path(), &snap);
  if (snap_status.ok()) {
    recovery_.had_snapshot = true;
    recovery_.snapshot_seq = snap.last_seq;
    recovery_.restored_week = snap.current_week;
    recovery_.restored_drift_epoch = snap.drift_epoch;
    for (const SnapshotData::TableViews& table : snap.store_tables) {
      const catalog::TableDef* def = catalog_->FindTable(table.table);
      if (def == nullptr) continue;  // table left the catalog: drop it
      for (const semstore::StoredView& view : table.views) {
        recovery_.recovered_rows += view.rows.size();
        ++recovery_.recovered_views;
        store_->Store(*def, view.region, view.rows, view.epoch);
      }
    }
    for (const auto& [table, blob] : snap.stats_tables) {
      if (stats_->RestoreTable(table, blob)) {
        ++recovery_.recovered_stats_tables;
      }
    }
    for (const auto& [key, entry] : snap.plans) {
      plan_cache_->Insert(key, entry);
      ++recovery_.recovered_plans;
    }
  } else if (snap_status.code() != Status::Code::kNotFound) {
    return snap_status;  // an unreadable snapshot is a real error
  }

  // ---- Log tail: everything durable after the snapshot, re-applied
  // through the same listener body that absorbed it the first time.
  const WalReadResult wal = ReadWal(wal_path());
  recovery_.wal_torn_tail = wal.torn_tail;
  recovery_.wal_bytes = wal.valid_bytes;
  uint64_t max_seq = snap.last_seq;
  int64_t max_epoch = snap.current_week;
  for (const std::string& payload : wal.payloads) {
    HarvestRecord record;
    if (!DecodeHarvest(payload, &record)) {
      // A CRC-intact frame that fails to decode is treated like a torn
      // tail: stop replaying, re-adopt only the prefix before it.
      recovery_.wal_torn_tail = true;
      break;
    }
    if (record.seq > max_seq) max_seq = record.seq;
    if (record.seq <= snap.last_seq) {
      // Crash landed between the snapshot rename and the log reset: this
      // record is already folded into the snapshot.
      ++recovery_.skipped_records;
      continue;
    }
    const catalog::TableDef* def = catalog_->FindTable(record.table);
    if (def == nullptr) continue;
    if (record.epoch > max_epoch) max_epoch = record.epoch;
    apply(*def, record.region, std::move(record.rows), record.num_records,
          record.epoch);
    ++recovery_.replayed_records;
    ++records_since_snapshot_;
  }
  recovery_.restored_week = max_epoch;
  next_seq_ = max_seq + 1;
  last_snapshot_seq_ = snap.last_seq;
  recovery_.recovered =
      recovery_.had_snapshot || recovery_.replayed_records > 0;

  // Re-adopt only the intact prefix: appending after torn bytes would bury
  // every future record behind an unreadable frame.
  if (wal.valid_bytes < wal.total_bytes) {
    if (::truncate(wal_path().c_str(), wal.valid_bytes) != 0) {
      return Status::Internal("wal truncate-to-valid '" + wal_path() +
                              "' failed");
    }
  }
  PAYLESS_RETURN_IF_ERROR(wal_.Open());

  recovery_.recovery_micros = NowMicros() - start;
  metric_.recovery_micros->Set(recovery_.recovery_micros);
  metric_.recovered_views->Set(
      static_cast<int64_t>(recovery_.recovered_views));
  metric_.recovered_rows->Set(static_cast<int64_t>(recovery_.recovered_rows));
  metric_.recovered_plans->Set(
      static_cast<int64_t>(recovery_.recovered_plans));
  metric_.replayed_records->Add(
      static_cast<int64_t>(recovery_.replayed_records));
  metric_.wal_size->Set(wal_.size_bytes());
  metric_.snapshot_age_records->Set(
      static_cast<int64_t>(records_since_snapshot_));
  return Status::OK();
}

bool DurabilityManager::MaybeCrash(market::CrashPoint point) {
  if (options_.crash_injector == nullptr) return false;
  const std::optional<market::CrashPlan> plan =
      options_.crash_injector->CrashAt(point);
  if (!plan.has_value()) return false;
  if (plan->hard) {
    // Last words before the kill: the armed flight recorder (if any) dumps
    // its ring with async-signal-safe writes — the only telemetry that
    // survives a hard crash.
    obs::FlightRecorder::DumpArmedRecorder();
    std::_Exit(42);  // the real kill: no destructors, no flush
  }
  dead_.store(true, std::memory_order_release);
  return true;
}

void DurabilityManager::LogAndApply(const catalog::TableDef& def,
                                    const Box& region,
                                    const market::CallResult& result,
                                    int64_t epoch,
                                    const HarvestApply& apply) {
  if (!enabled() || dead()) {
    // Disabled: plain pass-through. Dead: the simulated kill already froze
    // the disk; the in-memory instance keeps serving (tests discard it).
    apply(def, region, result.rows, result.num_records, epoch);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);

  if (MaybeCrash(market::CrashPoint::kBeforeHarvestLog)) {
    // Billed but never durable: the one harvest a restart legitimately
    // re-buys.
    apply(def, region, result.rows, result.num_records, epoch);
    return;
  }

  HarvestRecord record;
  record.seq = next_seq_;
  record.table = def.name;
  record.dataset = def.dataset;
  record.epoch = epoch;
  record.num_records = result.num_records;
  record.transactions = result.transactions;
  record.price = result.price;
  record.region = region;
  record.rows = result.rows;
  const std::string payload = EncodeHarvest(record);

  if (options_.crash_injector != nullptr) {
    // Mid-append death is handled inline (not via MaybeCrash) because the
    // torn frame must reach the disk BEFORE a hard plan kills the process —
    // that partial frame is the whole point of the crash.
    const std::optional<market::CrashPlan> mid =
        options_.crash_injector->CrashAt(market::CrashPoint::kMidHarvestLog);
    if (mid.has_value()) {
      (void)wal_.AppendTorn(payload, mid->torn_bytes);
      if (mid->hard) {
        obs::FlightRecorder::DumpArmedRecorder();
        std::_Exit(42);
      }
      dead_.store(true, std::memory_order_release);
      apply(def, region, result.rows, result.num_records, epoch);
      return;
    }
  }

  const int64_t append_start = NowMicros();
  const Status appended =
      wal_.Append(payload, options_.fsync == FsyncPolicy::kEveryAppend);
  assert(appended.ok());
  (void)appended;
  metric_.fsync_micros->Observe(NowMicros() - append_start);
  metric_.wal_appends->Add(1);
  metric_.wal_bytes->Add(static_cast<int64_t>(payload.size()) + 8);
  metric_.wal_size->Set(wal_.size_bytes());
  ++next_seq_;
  ++records_since_snapshot_;
  metric_.snapshot_age_records->Set(
      static_cast<int64_t>(records_since_snapshot_));

  const bool died_after_log =
      MaybeCrash(market::CrashPoint::kAfterHarvestLog);

  apply(def, region, result.rows, result.num_records, epoch);
  if (died_after_log) return;

  if (options_.snapshot_every_records > 0 &&
      records_since_snapshot_ >= options_.snapshot_every_records) {
    const Status snapped = SnapshotLocked();
    assert(snapped.ok());
    (void)snapped;
  }
}

Status DurabilityManager::SnapshotNow() {
  if (!enabled() || dead()) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  return SnapshotLocked();
}

Status DurabilityManager::SnapshotLocked() {
  SnapshotData data;
  data.last_seq = next_seq_ - 1;
  data.drift_epoch =
      drift_epoch_supplier_ != nullptr ? drift_epoch_supplier_() : 0;
  data.current_week =
      current_week_supplier_ != nullptr ? current_week_supplier_() : 0;
  for (const std::string& table : store_->TableNames()) {
    SnapshotData::TableViews views;
    views.table = table;
    views.views = store_->ViewsOf(table);
    if (!views.views.empty()) data.store_tables.push_back(std::move(views));
  }
  for (const std::string& table : stats_->TableNames()) {
    std::string blob;
    if (stats_->SaveTable(table, &blob)) {
      data.stats_tables.emplace_back(table, std::move(blob));
    }
  }
  for (const auto& [key, entry] : plan_cache_->Entries()) {
    data.plans.emplace_back(key, *entry);
  }

  if (MaybeCrash(market::CrashPoint::kMidSnapshot)) {
    // Death mid-write: a garbage tmp file, the real snapshot untouched.
    std::ofstream partial(snapshot_path() + ".tmp",
                          std::ios::binary | std::ios::trunc);
    partial << "torn-snapshot";
    return Status::OK();
  }

  PAYLESS_RETURN_IF_ERROR(WriteSnapshotFile(snapshot_path(), data));
  metric_.snapshots->Add(1);
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(snapshot_path(), ec);
  if (!ec) metric_.snapshot_bytes->Set(static_cast<int64_t>(size));

  if (MaybeCrash(market::CrashPoint::kAfterSnapshotBeforeReset)) {
    // Snapshot committed, log not yet reset: the seq filter makes the
    // overlap harmless at the next recovery.
    return Status::OK();
  }

  PAYLESS_RETURN_IF_ERROR(wal_.Reset());
  last_snapshot_seq_ = data.last_seq;
  records_since_snapshot_ = 0;
  metric_.wal_size->Set(wal_.size_bytes());
  metric_.snapshot_age_records->Set(0);
  return Status::OK();
}

uint64_t DurabilityManager::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

int64_t DurabilityManager::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_.size_bytes();
}

std::string DurabilityManager::StatsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"enabled\":" << (enabled() ? "true" : "false")
      << ",\"dead\":" << (dead() ? "true" : "false")
      << ",\"wal_bytes\":" << wal_.size_bytes()
      << ",\"records_since_snapshot\":" << records_since_snapshot_
      << ",\"next_seq\":" << next_seq_
      << ",\"snapshot_seq\":" << last_snapshot_seq_ << ",\"recovery\":{"
      << "\"recovered\":" << (recovery_.recovered ? "true" : "false")
      << ",\"had_snapshot\":" << (recovery_.had_snapshot ? "true" : "false")
      << ",\"snapshot_seq\":" << recovery_.snapshot_seq
      << ",\"replayed_records\":" << recovery_.replayed_records
      << ",\"skipped_records\":" << recovery_.skipped_records
      << ",\"recovered_views\":" << recovery_.recovered_views
      << ",\"recovered_rows\":" << recovery_.recovered_rows
      << ",\"recovered_plans\":" << recovery_.recovered_plans
      << ",\"recovered_stats_tables\":" << recovery_.recovered_stats_tables
      << ",\"wal_torn_tail\":" << (recovery_.wal_torn_tail ? "true" : "false")
      << ",\"wal_bytes\":" << recovery_.wal_bytes
      << ",\"recovery_micros\":" << recovery_.recovery_micros
      << ",\"restored_week\":" << recovery_.restored_week
      << ",\"restored_drift_epoch\":" << recovery_.restored_drift_epoch
      << "}}";
  return out.str();
}

}  // namespace payless::durability
