#include "federation/market_endpoint.h"

#include <limits>
#include <utility>

#include "common/snapshot.h"

namespace payless::federation {

MarketEndpoint::MarketEndpoint(EndpointConfig config, catalog::Catalog catalog,
                               uint64_t sub_seed)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      market_(&catalog_),
      sub_seed_(sub_seed) {
  if (config_.inject_faults) {
    market::FaultProfile profile = config_.fault_profile;
    profile.seed = sub_seed_;
    injector_ = std::make_unique<market::FaultInjector>(profile);
  }
}

double MarketEndpoint::CostPerTuple(const std::string& dataset) const {
  const catalog::DatasetDef* def = catalog_.FindDataset(dataset);
  if (def == nullptr || def->tuples_per_transaction <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return def->price_per_transaction /
         static_cast<double>(def->tuples_per_transaction);
}

FederatedMarket::FederatedMarket(const catalog::Catalog* base,
                                 uint64_t base_seed)
    : base_(base), base_seed_(base_seed) {}

uint64_t FederatedMarket::SubSeed(uint64_t base_seed,
                                  const std::string& endpoint_id) {
  // FNV-1a over the id bytes gives a platform-stable name hash; SplitMix64
  // then decorrelates it from the base seed so neighboring ids ("m0", "m1")
  // do not produce neighboring streams.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : endpoint_id) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return common::SplitMix64(base_seed ^ h);
}

Status FederatedMarket::AddEndpoint(EndpointConfig config) {
  if (config.id.empty()) {
    return Status::InvalidArgument("endpoint id must be non-empty");
  }
  for (const auto& e : endpoints_) {
    if (e->id() == config.id) {
      return Status::InvalidArgument("endpoint '" + config.id +
                                     "' already registered");
    }
  }
  catalog::Catalog catalog = *base_;
  for (const auto& [dataset, terms] : config.menu) {
    catalog::DatasetDef def;
    def.name = dataset;
    def.price_per_transaction = terms.price_per_transaction;
    def.tuples_per_transaction = terms.tuples_per_transaction;
    const Status s = catalog.OverrideDataset(std::move(def));
    if (!s.ok()) return s;
  }
  const uint64_t sub_seed = SubSeed(base_seed_, config.id);
  endpoints_.push_back(std::make_unique<MarketEndpoint>(
      std::move(config), std::move(catalog), sub_seed));
  return Status::OK();
}

Status FederatedMarket::HostTable(const std::string& name,
                                  std::vector<Row> rows) {
  if (endpoints_.empty()) {
    return Status::InvalidArgument("federation has no endpoints");
  }
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    // The last endpoint can take the rows by move; earlier ones copy.
    std::vector<Row> copy =
        i + 1 == endpoints_.size() ? std::move(rows) : rows;
    const Status s = endpoints_[i]->market()->HostTable(name, std::move(copy));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status FederatedMarket::AppendRows(const std::string& name,
                                   const std::vector<Row>& rows) {
  for (const auto& e : endpoints_) {
    const Status s = e->market()->AppendRows(name, rows);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

MarketEndpoint* FederatedMarket::endpoint(const std::string& id) {
  for (const auto& e : endpoints_) {
    if (e->id() == id) return e.get();
  }
  return nullptr;
}

}  // namespace payless::federation
