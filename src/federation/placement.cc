#include "federation/placement.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace payless::federation {

PlacementPolicy::PlacementPolicy(PlacementOptions options,
                                 semstore::SemanticStore* store,
                                 const catalog::Catalog* catalog,
                                 EndpointRouter* router,
                                 durability::DurabilityManager* durability)
    : options_(options),
      store_(store),
      catalog_(catalog),
      router_(router),
      durability_(durability) {}

PlacementPolicy::~PlacementPolicy() { Stop(); }

void PlacementPolicy::Start() {
  if (options_.tick_interval_micros <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void PlacementPolicy::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void PlacementPolicy::Loop() {
  const auto interval =
      std::chrono::microseconds(options_.tick_interval_micros);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

size_t PlacementPolicy::Tick() {
  // Rank every stored table by re-buy value density: what the cheapest
  // live endpoint would bill to re-acquire the pooled rows, per retained
  // byte. Cheap-to-rebuy tables go first when over budget.
  std::vector<TableValue> ranking;
  int64_t total_bytes = 0;
  for (const semstore::StoreTableStats& stats : store_->SnapshotStats()) {
    if (stats.pooled_rows == 0 && stats.views == 0) continue;
    TableValue value;
    value.table = stats.table;
    value.bytes = stats.approx_bytes;
    value.pooled_rows = static_cast<int64_t>(stats.pooled_rows);
    const catalog::TableDef* def = catalog_->FindTable(stats.table);
    if (def != nullptr) value.dataset = def->dataset;

    double cost_per_tuple = 0.0;
    if (!value.dataset.empty()) {
      const catalog::DatasetDef* base_terms =
          catalog_->FindDataset(value.dataset);
      if (base_terms != nullptr && base_terms->tuples_per_transaction > 0) {
        cost_per_tuple = base_terms->price_per_transaction /
                         static_cast<double>(base_terms->tuples_per_transaction);
      }
      if (router_ != nullptr) {
        const std::string cheapest =
            router_->NextCheapestLive(value.dataset, {});
        if (!cheapest.empty()) {
          MarketEndpoint* endpoint =
              router_->federation()->endpoint(cheapest);
          if (endpoint != nullptr) {
            cost_per_tuple = endpoint->CostPerTuple(value.dataset);
            value.cheapest_endpoint = cheapest;
          }
        }
      }
    }
    value.rebuy_cost =
        cost_per_tuple * static_cast<double>(value.pooled_rows);
    total_bytes += value.bytes;
    ranking.push_back(std::move(value));
  }

  size_t evicted = 0;
  if (options_.capacity_bytes > 0 && total_bytes > options_.capacity_bytes) {
    // Local tables (empty dataset) are not purchased data — never evicted
    // here — so sort priced tables by value density, cheapest-to-rebuy
    // first, and drop until the budget holds.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < ranking.size(); ++i) {
      if (!ranking[i].dataset.empty()) candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](size_t a, size_t b) {
                const auto density = [&](const TableValue& v) {
                  return v.bytes > 0
                             ? v.rebuy_cost / static_cast<double>(v.bytes)
                             : 0.0;
                };
                const double da = density(ranking[a]);
                const double db = density(ranking[b]);
                if (da != db) return da < db;
                return ranking[a].table < ranking[b].table;  // determinism
              });
    for (const size_t i : candidates) {
      if (total_bytes <= options_.capacity_bytes) break;
      store_->DropTable(ranking[i].table);
      ranking[i].retained = false;
      total_bytes -= ranking[i].bytes;
      ++evicted;
    }
    if (evicted > 0 && durability_ != nullptr && durability_->enabled()) {
      // SnapshotNow compacts from the LIVE store, so the snapshot that
      // survives a restart reflects the placement decision, not the
      // pre-eviction state.
      durability_->SnapshotNow();
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  last_decision_ = std::move(ranking);
  retained_bytes_ = total_bytes;
  ++ticks_;
  evicted_tables_ += static_cast<int64_t>(evicted);
  return evicted;
}

std::vector<PlacementPolicy::TableValue> PlacementPolicy::LastDecision()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_decision_;
}

int64_t PlacementPolicy::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

int64_t PlacementPolicy::evicted_tables() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_tables_;
}

std::string PlacementPolicy::StatsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"capacity_bytes\":" << options_.capacity_bytes
     << ",\"retained_bytes\":" << retained_bytes_ << ",\"ticks\":" << ticks_
     << ",\"evicted_tables\":" << evicted_tables_ << ",\"tables\":[";
  bool first = true;
  for (const TableValue& v : last_decision_) {
    if (!first) os << ",";
    first = false;
    os << "{\"table\":\"" << v.table << "\",\"dataset\":\"" << v.dataset
       << "\",\"bytes\":" << v.bytes << ",\"pooled_rows\":" << v.pooled_rows
       << ",\"rebuy_cost\":" << v.rebuy_cost << ",\"cheapest_endpoint\":\""
       << v.cheapest_endpoint << "\",\"retained\":"
       << (v.retained ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace payless::federation
