// Per-client routing across a federation's endpoints.
//
// Each PayLess client owns one EndpointRouter, and the router owns one
// MarketConnector per endpoint — listeners (semantic store, statistics,
// durability) are per-client state, so connectors cannot be shared between
// clients. The router wires each connector to its endpoint's market, fault
// injector, simulated latency and market label, fans the client's retry
// policy and listeners out to all of them, and answers two questions on
// the query path:
//
//   - BuildPricing(): the point-in-time buy-site menu (terms + breaker
//     liveness) the optimizer prices each access against;
//   - NextCheapestLive(): where the executor fails over to when an
//     endpoint's breaker opens mid-query. Ranking is static per-tuple
//     cost under each endpoint's menu, so failover walks the price menu
//     cheapest-first and never revisits a tried endpoint.
//
// Billing stays per-endpoint: every connector bills its own meter and
// stamps its market label into the CostLedger, so
//   ledger total == sum over endpoints of meter totals
// holds under failover by construction (the failover re-issues only calls
// that billed nothing on the dead endpoint).
#ifndef PAYLESS_FEDERATION_ENDPOINT_ROUTER_H_
#define PAYLESS_FEDERATION_ENDPOINT_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/federation.h"
#include "federation/market_endpoint.h"
#include "market/data_market.h"
#include "obs/latency.h"

namespace payless::federation {

class EndpointRouter {
 public:
  /// `federation` must outlive the router. Endpoint order (and therefore
  /// primary()) follows registration order.
  explicit EndpointRouter(FederatedMarket* federation);

  EndpointRouter(const EndpointRouter&) = delete;
  EndpointRouter& operator=(const EndpointRouter&) = delete;

  size_t num_endpoints() const { return connectors_.size(); }
  FederatedMarket* federation() { return federation_; }

  /// Endpoint 0's connector — the default buy-site when an access carries
  /// no annotation (e.g. single-market plans replayed under federation).
  market::MarketConnector* primary() { return connectors_[0].get(); }

  /// Connector of the named endpoint; "" or an unknown id falls back to
  /// the primary (an access annotated against a menu snapshot may name an
  /// endpoint that was since removed — never in this in-process model, but
  /// the fallback keeps routing total).
  market::MarketConnector* ConnectorFor(const std::string& endpoint_id);

  market::MarketConnector* connector(size_t i) { return connectors_[i].get(); }
  const market::MarketConnector& connector(size_t i) const {
    return *connectors_[i];
  }
  const std::string& endpoint_id(size_t i) const {
    return federation_->endpoint(i)->id();
  }

  /// Fan-out to every endpoint connector (setup-time).
  void SetRetryPolicy(const market::RetryPolicy& policy);
  void AddListener(market::MarketConnector::Listener listener);

  /// Latency health per endpoint (setup-time): `rtt` receives every
  /// attempt's round trip, `slo` judges each against its target and feeds
  /// the burn-rate column of /markets. The router keeps the handles so
  /// StatsJson can render latency next to breaker state; ownership stays
  /// with the caller (the registry / the PayLess client).
  void BindLatency(size_t i, obs::LatencyHistogram* rtt, obs::LatencySlo* slo);

  /// Point-in-time buy-site menu: every endpoint's terms for every
  /// dataset, with `live` reflecting the endpoint's breaker state for that
  /// dataset NOW. Snapshotted per query, before optimization.
  core::FederationPricing BuildPricing() const;

  /// The cheapest endpoint (per-tuple cost for `dataset`) whose breaker is
  /// not open and whose id is not in `exclude`. Empty string when every
  /// endpoint is excluded or down.
  std::string NextCheapestLive(const std::string& dataset,
                               const std::vector<std::string>& exclude) const;

  /// Failover accounting (the executor reports; /markets renders).
  void CountRoutedCalls(const std::string& endpoint_id, int64_t calls);
  void CountFailover();
  int64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  int64_t routed_calls(size_t i) const {
    return routed_calls_[i]->load(std::memory_order_relaxed);
  }

  /// Sum of every endpoint meter's billed transactions — the reconciliation
  /// counterpart of the CostLedger total.
  int64_t TotalMeteredTransactions() const;

  /// {"federated":true,"endpoints":[{"id":...,"transactions":...,
  ///   "price":...,"calls":...,"routed_calls":...,"breakers":{...}},...],
  ///  "failovers":N} — the /markets introspection document.
  std::string StatsJson() const;

 private:
  size_t IndexOf(const std::string& endpoint_id) const;  // SIZE_MAX if none
  std::vector<std::string> DatasetNames() const;

  FederatedMarket* federation_;
  std::vector<std::unique_ptr<market::MarketConnector>> connectors_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> routed_calls_;
  /// Per-endpoint latency handles (not owned); nullptr until bound.
  std::vector<obs::LatencyHistogram*> rtt_;
  std::vector<obs::LatencySlo*> slos_;
  std::atomic<int64_t> failovers_{0};
};

}  // namespace payless::federation

#endif  // PAYLESS_FEDERATION_ENDPOINT_ROUTER_H_
