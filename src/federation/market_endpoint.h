// Multi-market federation: a registry of market endpoints that sell
// overlapping logical datasets under different terms.
//
// The paper prices every access against one market (Eq. 1), but real cloud
// data markets are geo-distributed: the same dataset is offered by several
// regions/sellers at different prices, page sizes, latencies and fault
// rates. A MarketEndpoint wraps one such seller — its own DataMarket over
// its own copy of the catalog (so Eq. 1 is evaluated under THAT endpoint's
// menu), an optional independent FaultInjector, and a simulated network
// latency. The FederatedMarket owns the endpoints and replicates hosted
// data to all of them, modeling sellers that carry the same logical
// product.
//
// Determinism: each endpoint's injector is seeded with an independent
// sub-seed derived via SplitMix64 from the base seed and the endpoint id,
// so adding an endpoint never perturbs another endpoint's fault stream and
// single-market runs stay byte-identical.
#ifndef PAYLESS_FEDERATION_MARKET_ENDPOINT_H_
#define PAYLESS_FEDERATION_MARKET_ENDPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "market/data_market.h"
#include "market/fault_injector.h"

namespace payless::federation {

/// One endpoint's terms for one dataset (its row of the price menu).
struct DatasetTerms {
  double price_per_transaction = 1.0;
  int64_t tuples_per_transaction = 100;
};

struct EndpointConfig {
  std::string id;  // e.g. "us-east"; must be unique within a federation
  /// Per-dataset menu overrides; datasets not listed keep the base
  /// catalog's terms.
  std::map<std::string, DatasetTerms> menu;
  /// Round-trip latency every call to this endpoint pays (0 = off).
  int64_t simulated_latency_micros = 0;
  /// Fault mix of this endpoint; only attached when `inject_faults`. The
  /// profile's seed field is ignored — the federation derives the
  /// endpoint's sub-seed from its own base seed and the endpoint id.
  market::FaultProfile fault_profile;
  bool inject_faults = false;
};

/// One market endpoint: catalog copy under its menu + DataMarket + injector.
class MarketEndpoint {
 public:
  MarketEndpoint(EndpointConfig config, catalog::Catalog catalog,
                 uint64_t sub_seed);

  MarketEndpoint(const MarketEndpoint&) = delete;
  MarketEndpoint& operator=(const MarketEndpoint&) = delete;

  const std::string& id() const { return config_.id; }
  const EndpointConfig& config() const { return config_; }
  /// The base catalog with this endpoint's dataset terms substituted in.
  const catalog::Catalog& catalog() const { return catalog_; }
  market::DataMarket* market() { return &market_; }
  const market::DataMarket& market() const { return market_; }
  /// nullptr when the endpoint injects no faults.
  market::FaultInjector* injector() { return injector_.get(); }
  uint64_t sub_seed() const { return sub_seed_; }

  /// Money per tuple for `dataset` under this endpoint's menu — the
  /// static cheapness ordering the failover ranking uses. Infinity when
  /// the dataset is unknown here.
  double CostPerTuple(const std::string& dataset) const;

 private:
  EndpointConfig config_;
  catalog::Catalog catalog_;  // stable: DataMarket points into it
  market::DataMarket market_;
  uint64_t sub_seed_ = 0;
  std::unique_ptr<market::FaultInjector> injector_;
};

/// The endpoint registry plus data replication. Endpoints are append-only
/// and setup-time: add them all, host the data, then serve queries.
class FederatedMarket {
 public:
  /// `base` must outlive the federation; `base_seed` roots every
  /// endpoint's fault-injector sub-seed.
  explicit FederatedMarket(const catalog::Catalog* base,
                           uint64_t base_seed = 42);

  FederatedMarket(const FederatedMarket&) = delete;
  FederatedMarket& operator=(const FederatedMarket&) = delete;

  /// Registers an endpoint: copies the base catalog, applies the menu
  /// overrides, derives the sub-seed, attaches the injector. Rejects
  /// duplicate ids and menu entries naming unknown datasets.
  Status AddEndpoint(EndpointConfig config);

  /// Hosts `rows` as table `name` on EVERY endpoint (sellers carry the
  /// same logical product; per-endpoint terms differ, contents do not).
  Status HostTable(const std::string& name, std::vector<Row> rows);

  /// Periodic data release, replicated to every endpoint.
  Status AppendRows(const std::string& name, const std::vector<Row>& rows);

  MarketEndpoint* endpoint(const std::string& id);
  MarketEndpoint* endpoint(size_t i) { return endpoints_[i].get(); }
  const MarketEndpoint& endpoint(size_t i) const { return *endpoints_[i]; }
  size_t num_endpoints() const { return endpoints_.size(); }

  const catalog::Catalog* base_catalog() const { return base_; }
  uint64_t base_seed() const { return base_seed_; }

  /// The deterministic per-endpoint seed: SplitMix64 over the base seed
  /// mixed with a stable hash of the endpoint id.
  static uint64_t SubSeed(uint64_t base_seed, const std::string& endpoint_id);

 private:
  const catalog::Catalog* base_;
  uint64_t base_seed_;
  std::vector<std::unique_ptr<MarketEndpoint>> endpoints_;
};

}  // namespace payless::federation

#endif  // PAYLESS_FEDERATION_MARKET_ENDPOINT_H_
