// Slab placement under a capacity budget.
//
// The semantic store is deliberately append-only — the paper trades cheap
// buyer-side storage for never re-buying data (§3). A federated buyer has
// a better lever: when local capacity is bounded, the slabs worth keeping
// are the ones that would be EXPENSIVE to re-buy at the cheapest live
// endpoint, and the ones worth evicting are cheap to re-acquire there.
// The PlacementPolicy ranks every stored table by re-buy cost per retained
// byte (transactions the cheapest live endpoint would bill for the pooled
// rows, divided by the table's approximate footprint) and evicts the
// lowest-value tables until the store fits the budget.
//
// Persistence: each pass that evicts anything forces a durability snapshot
// (DurabilityManager::SnapshotNow compacts from LIVE store state), so the
// placement decision — not the pre-eviction state — is what a restart
// recovers. No durability format change is needed.
//
// Runs either manually (Tick(), tests and benches) or on a background
// thread (Start/Stop) when a tick interval is configured.
#ifndef PAYLESS_FEDERATION_PLACEMENT_H_
#define PAYLESS_FEDERATION_PLACEMENT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "durability/durability.h"
#include "federation/endpoint_router.h"
#include "semstore/semantic_store.h"

namespace payless::federation {

struct PlacementOptions {
  /// Retained-payload budget (approx_bytes across tables). 0 = unbounded:
  /// the policy observes but never evicts.
  int64_t capacity_bytes = 0;
  /// Background cadence; 0 = manual Tick() only.
  int64_t tick_interval_micros = 0;
};

class PlacementPolicy {
 public:
  /// One table's standing in the latest placement decision.
  struct TableValue {
    std::string table;
    std::string dataset;
    std::string cheapest_endpoint;  // where a re-buy would be routed
    int64_t bytes = 0;              // approx retained payload
    int64_t pooled_rows = 0;
    double rebuy_cost = 0.0;  // money to re-buy the pooled rows there
    bool retained = true;
  };

  /// `store` and `catalog` must outlive the policy. `router` (nullable)
  /// supplies per-endpoint menus and liveness — without it re-buy cost is
  /// priced against the base catalog. `durability` (nullable) persists
  /// each eviction pass.
  PlacementPolicy(PlacementOptions options, semstore::SemanticStore* store,
                  const catalog::Catalog* catalog, EndpointRouter* router,
                  durability::DurabilityManager* durability);
  ~PlacementPolicy();

  PlacementPolicy(const PlacementPolicy&) = delete;
  PlacementPolicy& operator=(const PlacementPolicy&) = delete;

  /// Launches the background thread (no-op without a tick interval).
  void Start();
  /// Stops and joins the background thread (idempotent; ~ calls it).
  void Stop();

  /// One placement pass: rank tables, evict lowest-value until the store
  /// fits the budget, snapshot if anything was evicted. Returns the number
  /// of tables evicted. Safe to call concurrently with queries (DropTable
  /// publishes an empty snapshot; readers keep their pinned one).
  size_t Tick();

  /// The latest pass's ranking (copy; empty before the first Tick).
  std::vector<TableValue> LastDecision() const;

  int64_t ticks() const;
  int64_t evicted_tables() const;

  /// {"capacity_bytes":...,"retained_bytes":...,"ticks":...,
  ///  "evicted_tables":...,"tables":[{...}]} — spliced into /markets.
  std::string StatsJson() const;

 private:
  void Loop();

  PlacementOptions options_;
  semstore::SemanticStore* store_;
  const catalog::Catalog* catalog_;
  EndpointRouter* router_;  // nullable
  durability::DurabilityManager* durability_;  // nullable

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
  std::vector<TableValue> last_decision_;
  int64_t retained_bytes_ = 0;
  int64_t ticks_ = 0;
  int64_t evicted_tables_ = 0;
};

}  // namespace payless::federation

#endif  // PAYLESS_FEDERATION_PLACEMENT_H_
