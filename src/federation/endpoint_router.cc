#include "federation/endpoint_router.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

namespace payless::federation {

namespace {

const char* BreakerStateName(market::CircuitBreakerSet::State state) {
  switch (state) {
    case market::CircuitBreakerSet::State::kClosed:
      return "closed";
    case market::CircuitBreakerSet::State::kOpen:
      return "open";
    case market::CircuitBreakerSet::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace

EndpointRouter::EndpointRouter(FederatedMarket* federation)
    : federation_(federation) {
  for (size_t i = 0; i < federation_->num_endpoints(); ++i) {
    MarketEndpoint* endpoint = federation_->endpoint(i);
    auto connector =
        std::make_unique<market::MarketConnector>(endpoint->market());
    connector->SetMarketLabel(endpoint->id());
    connector->SetFaultInjector(endpoint->injector());
    connector->SetSimulatedLatencyMicros(
        endpoint->config().simulated_latency_micros);
    connectors_.push_back(std::move(connector));
    routed_calls_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    rtt_.push_back(nullptr);
    slos_.push_back(nullptr);
  }
}

void EndpointRouter::BindLatency(size_t i, obs::LatencyHistogram* rtt,
                                 obs::LatencySlo* slo) {
  if (i >= connectors_.size()) return;
  rtt_[i] = rtt;
  slos_[i] = slo;
  market::MarketConnector::LatencyHooks hooks;
  hooks.rtt = rtt;
  hooks.slo = slo;
  connectors_[i]->BindLatency(hooks);
}

size_t EndpointRouter::IndexOf(const std::string& endpoint_id) const {
  for (size_t i = 0; i < connectors_.size(); ++i) {
    if (federation_->endpoint(i)->id() == endpoint_id) return i;
  }
  return std::numeric_limits<size_t>::max();
}

market::MarketConnector* EndpointRouter::ConnectorFor(
    const std::string& endpoint_id) {
  const size_t i = IndexOf(endpoint_id);
  return i == std::numeric_limits<size_t>::max() ? primary()
                                                 : connectors_[i].get();
}

void EndpointRouter::SetRetryPolicy(const market::RetryPolicy& policy) {
  for (const auto& connector : connectors_) {
    connector->SetRetryPolicy(policy);
  }
}

void EndpointRouter::AddListener(market::MarketConnector::Listener listener) {
  for (const auto& connector : connectors_) {
    connector->AddListener(listener);
  }
}

std::vector<std::string> EndpointRouter::DatasetNames() const {
  std::set<std::string> names;
  const catalog::Catalog* base = federation_->base_catalog();
  for (const std::string& table : base->TableNames()) {
    const catalog::TableDef* def = base->FindTable(table);
    if (def != nullptr && !def->dataset.empty()) names.insert(def->dataset);
  }
  return {names.begin(), names.end()};
}

core::FederationPricing EndpointRouter::BuildPricing() const {
  core::FederationPricing pricing;
  const std::vector<std::string> datasets = DatasetNames();
  for (size_t i = 0; i < connectors_.size(); ++i) {
    const MarketEndpoint& endpoint = *federation_->endpoint(i);
    for (const std::string& dataset : datasets) {
      const catalog::DatasetDef* def = endpoint.catalog().FindDataset(dataset);
      if (def == nullptr) continue;
      core::BuySiteMenu menu;
      menu.endpoint = endpoint.id();
      menu.price_per_transaction = def->price_per_transaction;
      menu.tuples_per_transaction = def->tuples_per_transaction;
      menu.live = connectors_[i]->breaker_state(dataset) !=
                  market::CircuitBreakerSet::State::kOpen;
      pricing.menus[dataset].push_back(std::move(menu));
    }
  }
  return pricing;
}

std::string EndpointRouter::NextCheapestLive(
    const std::string& dataset,
    const std::vector<std::string>& exclude) const {
  std::string best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < connectors_.size(); ++i) {
    const MarketEndpoint& endpoint = *federation_->endpoint(i);
    if (std::find(exclude.begin(), exclude.end(), endpoint.id()) !=
        exclude.end()) {
      continue;
    }
    if (connectors_[i]->breaker_state(dataset) ==
        market::CircuitBreakerSet::State::kOpen) {
      continue;
    }
    const double cost = endpoint.CostPerTuple(dataset);
    if (cost < best_cost) {
      best_cost = cost;
      best = endpoint.id();
    }
  }
  return best;
}

void EndpointRouter::CountRoutedCalls(const std::string& endpoint_id,
                                      int64_t calls) {
  const size_t i = IndexOf(endpoint_id);
  if (i == std::numeric_limits<size_t>::max()) return;
  routed_calls_[i]->fetch_add(calls, std::memory_order_relaxed);
}

void EndpointRouter::CountFailover() {
  failovers_.fetch_add(1, std::memory_order_relaxed);
}

int64_t EndpointRouter::TotalMeteredTransactions() const {
  int64_t total = 0;
  for (const auto& connector : connectors_) {
    total += connector->meter().total_transactions();
  }
  return total;
}

std::string EndpointRouter::StatsJson() const {
  const std::vector<std::string> datasets = DatasetNames();
  std::ostringstream os;
  os << "{\"federated\":true,\"endpoints\":[";
  for (size_t i = 0; i < connectors_.size(); ++i) {
    const MarketEndpoint& endpoint = *federation_->endpoint(i);
    const market::BillingMeter& meter = connectors_[i]->meter();
    if (i > 0) os << ",";
    os << "{\"id\":\"" << endpoint.id() << "\""
       << ",\"transactions\":" << meter.total_transactions()
       << ",\"price\":" << meter.total_price()
       << ",\"calls\":" << meter.total_calls() << ",\"routed_calls\":"
       << routed_calls_[i]->load(std::memory_order_relaxed)
       << ",\"breakers\":{";
    bool first = true;
    for (const std::string& dataset : datasets) {
      if (!first) os << ",";
      first = false;
      os << "\"" << dataset << "\":\""
         << BreakerStateName(connectors_[i]->breaker_state(dataset)) << "\"";
    }
    os << "}";
    // Latency health next to breaker state: the endpoint's RTT tail and
    // its SLO burn rate over the active window.
    if (i < slos_.size() && slos_[i] != nullptr) {
      const obs::LatencySlo& slo = *slos_[i];
      char burn[32];
      std::snprintf(burn, sizeof(burn), "%.3f", slo.BurnRate());
      os << ",\"latency\":{\"target_us\":" << slo.target_micros()
         << ",\"objective\":" << slo.objective()
         << ",\"window_total\":" << slo.window_total()
         << ",\"window_breaches\":" << slo.window_breaches()
         << ",\"burn_rate\":" << burn;
      if (i < rtt_.size() && rtt_[i] != nullptr) {
        os << ",\"rtt_p50_us\":" << rtt_[i]->ValueAtQuantile(0.50)
           << ",\"rtt_p99_us\":" << rtt_[i]->ValueAtQuantile(0.99);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"failovers\":" << failovers_.load(std::memory_order_relaxed)
     << "}";
  return os.str();
}

}  // namespace payless::federation
