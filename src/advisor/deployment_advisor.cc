#include "advisor/deployment_advisor.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <thread>

#include "common/thread_pool.h"

namespace payless::advisor {

namespace {

constexpr int64_t kBoundedStoreBytes = 256 << 10;

std::string CellName(int64_t store_bytes, bool prefetch, size_t markets,
                     int64_t cap) {
  std::ostringstream os;
  os << "store="
     << (store_bytes == 0 ? std::string("unbounded")
                          : std::to_string(store_bytes >> 10) + "KiB")
     << ",prefetch=" << (prefetch ? "on" : "off") << ",markets=" << markets
     << ",cap=" << (cap == 0 ? std::string("none") : std::to_string(cap));
  return os.str();
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

std::vector<ShadowConfig> DefaultGrid(
    const std::vector<obs::WorkloadRecord>& records) {
  // A cap that genuinely binds: half the smallest spending tenant's
  // recorded spend, so capped cells reject part of the workload and the
  // feasibility rule (not the price) is what sorts them out.
  std::map<std::string, int64_t> recorded_spend;
  for (const obs::WorkloadRecord& record : records) {
    recorded_spend[record.tenant] += record.transactions;
  }
  int64_t min_spend = 0;
  for (const auto& [tenant, spend] : recorded_spend) {
    if (spend > 0 && (min_spend == 0 || spend < min_spend)) min_spend = spend;
  }
  const int64_t tight_cap = std::max<int64_t>(1, min_spend / 2);

  std::vector<ShadowConfig> grid;
  ShadowConfig seed;
  seed.name = kSeedConfigName;
  grid.push_back(seed);
  for (const int64_t store_bytes : {int64_t{0}, kBoundedStoreBytes}) {
    for (const bool prefetch : {false, true}) {
      for (const size_t markets : {size_t{1}, size_t{2}}) {
        for (const int64_t cap : {int64_t{0}, tight_cap}) {
          if (store_bytes == 0 && !prefetch && markets == 1 && cap == 0) {
            continue;  // identical to the seed cell
          }
          ShadowConfig cell;
          cell.name = CellName(store_bytes, prefetch, markets, cap);
          cell.store_budget_bytes = store_bytes;
          cell.batch_prefetch = prefetch;
          cell.tenant_hard_cap = cap;
          cell.federation_endpoints = markets;
          grid.push_back(std::move(cell));
        }
      }
    }
  }
  return grid;
}

Result<AdvisorReport> Advise(const workload::Bundle& bundle,
                             const std::vector<obs::WorkloadRecord>& records,
                             const AdvisorOptions& options) {
  if (records.empty()) {
    return Status::InvalidArgument("advisor: empty workload journal");
  }
  std::vector<ShadowConfig> grid =
      options.grid.empty() ? DefaultGrid(records) : options.grid;
  for (ShadowConfig& cell : grid) {
    cell.simulated_latency_us = options.simulated_latency_us;
  }

  std::vector<CellOutcome> outcomes(grid.size());
  size_t parallel = options.max_parallel_cells != 0
                        ? options.max_parallel_cells
                        : std::max(1u, std::thread::hardware_concurrency());
  common::ParallelFor(
      common::ThreadPool::Shared(), grid.size(), parallel, [&](size_t i) {
        CellOutcome& outcome = outcomes[i];
        outcome.config = grid[i];
        outcome.replay = ReplayJournal(bundle, records, grid[i]);
        outcome.fingerprint = BillFingerprint(outcome.replay);
        if (options.twin_check) {
          const ReplayResult twin = ReplayJournal(bundle, records, grid[i]);
          outcome.twin_identical =
              BillFingerprint(twin) == outcome.fingerprint;
        }
      });

  for (CellOutcome& outcome : outcomes) {
    const ReplayResult& r = outcome.replay;
    if (!r.error.ok()) {
      outcome.infeasible_reasons.push_back("replay error: " +
                                           r.error.ToString());
    }
    if (!outcome.twin_identical) {
      outcome.infeasible_reasons.push_back("twin replays diverged");
    }
    if (!r.ledger_matches_meter) {
      outcome.infeasible_reasons.push_back("ledger != meter");
    }
    if (r.failed > 0) {
      outcome.infeasible_reasons.push_back(
          std::to_string(r.failed) + " queries failed");
    }
    if (r.rejected > 0) {
      outcome.infeasible_reasons.push_back(
          std::to_string(r.rejected) + " queries budget-rejected");
    }
    if (options.objective.max_mean_latency_us > 0 &&
        r.mean_latency_us >
            static_cast<double>(options.objective.max_mean_latency_us)) {
      outcome.infeasible_reasons.push_back("mean latency over objective");
    }
    if (options.objective.max_p99_latency_us > 0 &&
        r.p99_latency_us > options.objective.max_p99_latency_us) {
      outcome.infeasible_reasons.push_back("p99 latency over objective");
    }
    outcome.feasible = outcome.infeasible_reasons.empty();
  }

  // Rank: feasible before infeasible, then cheapest money, then fewest
  // transactions, then name (a total, deterministic order).
  std::sort(outcomes.begin(), outcomes.end(),
            [](const CellOutcome& a, const CellOutcome& b) {
              if (a.feasible != b.feasible) return a.feasible;
              if (a.replay.total_price != b.replay.total_price) {
                return a.replay.total_price < b.replay.total_price;
              }
              if (a.replay.total_transactions !=
                  b.replay.total_transactions) {
                return a.replay.total_transactions <
                       b.replay.total_transactions;
              }
              return a.config.name < b.config.name;
            });

  AdvisorReport report;
  report.records_replayed = static_cast<int64_t>(records.size());
  report.seed_name = grid.front().name;
  for (const CellOutcome& outcome : outcomes) {
    if (outcome.config.name == report.seed_name) {
      report.seed_price = outcome.replay.total_price;
    }
  }
  if (!outcomes.empty() && outcomes.front().feasible) {
    report.recommended = outcomes.front().config.name;
    report.recommended_price = outcomes.front().replay.total_price;
    if (report.seed_price > 0) {
      report.savings_vs_seed_pct = 100.0 *
                                   (report.seed_price -
                                    report.recommended_price) /
                                   report.seed_price;
    }
  }
  report.ranked = std::move(outcomes);
  return report;
}

std::string AdvisorReport::ToJson() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "{\"records_replayed\":" << records_replayed << ",\"recommended\":\"";
  AppendJsonEscaped(os, recommended);
  os << "\",\"seed\":\"";
  AppendJsonEscaped(os, seed_name);
  os << "\",\"seed_price\":" << seed_price
     << ",\"recommended_price\":" << recommended_price
     << ",\"savings_vs_seed_pct\":" << savings_vs_seed_pct << ",\"cells\":[";
  for (size_t i = 0; i < ranked.size(); ++i) {
    const CellOutcome& c = ranked[i];
    if (i > 0) os << ",";
    os << "{\"rank\":" << (i + 1) << ",\"name\":\"";
    AppendJsonEscaped(os, c.config.name);
    os << "\",\"feasible\":" << (c.feasible ? "true" : "false")
       << ",\"twin_identical\":" << (c.twin_identical ? "true" : "false")
       << ",\"ledger_matches_meter\":"
       << (c.replay.ledger_matches_meter ? "true" : "false")
       << ",\"config\":{\"store_budget_bytes\":" << c.config.store_budget_bytes
       << ",\"batch_prefetch\":" << (c.config.batch_prefetch ? "true" : "false")
       << ",\"prefetch_window\":" << c.config.prefetch_window
       << ",\"tenant_hard_cap\":" << c.config.tenant_hard_cap
       << ",\"federation_endpoints\":" << c.config.federation_endpoints << "}"
       << ",\"total_transactions\":" << c.replay.total_transactions
       << ",\"total_price\":" << c.replay.total_price
       << ",\"queries\":" << c.replay.queries
       << ",\"rejected\":" << c.replay.rejected
       << ",\"failed\":" << c.replay.failed
       << ",\"savings_transactions\":" << c.replay.savings_transactions
       << ",\"infeasible_reasons\":[";
    for (size_t k = 0; k < c.infeasible_reasons.size(); ++k) {
      if (k > 0) os << ",";
      os << "\"";
      AppendJsonEscaped(os, c.infeasible_reasons[k]);
      os << "\"";
    }
    os << "],\"bills\":{";
    bool first = true;
    for (const auto& [tenant, bill] : c.replay.bills) {
      if (!first) os << ",";
      first = false;
      os << "\"";
      AppendJsonEscaped(os, tenant);
      os << "\":{\"transactions\":" << bill.transactions
         << ",\"price\":" << bill.price << "}";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string AdvisorReport::RenderText() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "Deployment advisor · " << records_replayed
     << " recorded queries replayed per cell\n";
  os << std::setw(4) << "rank" << "  " << std::left << std::setw(52)
     << "configuration" << std::right << std::setw(12) << "price"
     << std::setw(10) << "txn" << std::setw(9) << "rejects" << std::setw(8)
     << "fails" << std::setw(11) << "mean_us" << std::setw(10) << "p99_us"
     << "  feasible\n";
  for (size_t i = 0; i < ranked.size(); ++i) {
    const CellOutcome& c = ranked[i];
    os << std::setw(4) << (i + 1) << "  " << std::left << std::setw(52)
       << c.config.name << std::right << std::setw(12) << std::setprecision(2)
       << c.replay.total_price << std::setw(10) << c.replay.total_transactions
       << std::setw(9) << c.replay.rejected << std::setw(8) << c.replay.failed
       << std::setw(11) << std::setprecision(0) << c.replay.mean_latency_us
       << std::setw(10) << c.replay.p99_latency_us << "  "
       << (c.feasible ? "yes" : "NO");
    if (!c.infeasible_reasons.empty()) {
      os << "  (";
      for (size_t k = 0; k < c.infeasible_reasons.size(); ++k) {
        if (k > 0) os << "; ";
        os << c.infeasible_reasons[k];
      }
      os << ")";
    }
    os << "\n";
  }
  os << std::setprecision(2);
  if (recommended.empty()) {
    os << "recommended: none — no feasible configuration\n";
  } else {
    os << "recommended: " << recommended << " at " << recommended_price
       << " vs seed '" << seed_name << "' at " << seed_price;
    if (seed_price > 0) {
      os << " (" << (recommended_price <= seed_price ? "-" : "+")
         << std::abs(savings_vs_seed_pct) << "% money)";
    }
    os << "\n";
  }
  return os.str();
}

void RegisterAdvisorRoute(obs::HttpExpositionServer* server,
                          std::shared_ptr<const AdvisorReport> report) {
  server->AddRoute("/advisor", [report](const std::string&) {
    return obs::HttpReply::Json(report->ToJson());
  });
}

}  // namespace payless::advisor
