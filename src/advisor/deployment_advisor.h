// The what-if deployment advisor (ROADMAP item 2): enumerate a grid of
// deployment configurations — semantic-store byte budget × batch prefetch
// × budget-governor caps × per-endpoint federation menus — shadow-replay
// the RECORDED workload through every cell (in parallel), and rank the
// cells by total spend subject to a latency objective. The recommendation
// answers the operator's actual question: on the traffic we really
// served, which configuration would have been cheapest?
//
// Every cell is replayed twice (the twin check): the two bills must match
// byte for byte, and the shadow ledger must reconcile with the shadow
// meters, before a cell's number is allowed into the ranking.
#ifndef PAYLESS_ADVISOR_DEPLOYMENT_ADVISOR_H_
#define PAYLESS_ADVISOR_DEPLOYMENT_ADVISOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "advisor/shadow_replay.h"
#include "obs/http_exposition.h"
#include "obs/workload_journal.h"
#include "workload/bundle.h"

namespace payless::advisor {

/// Latency objective a feasible configuration must meet. 0 = unconstrained.
struct AdvisorObjective {
  int64_t max_mean_latency_us = 0;
  int64_t max_p99_latency_us = 0;
};

struct AdvisorOptions {
  /// The grid to enumerate. Empty = DefaultGrid(records).
  std::vector<ShadowConfig> grid;
  AdvisorObjective objective;
  /// Replay every cell twice and require byte-identical bills. On by
  /// default — a non-reproducible cell is a bug, not a recommendation.
  bool twin_check = true;
  /// Concurrent cell replays (each cell is its own shadow world, the
  /// bundle is shared read-only). 0 = hardware concurrency.
  size_t max_parallel_cells = 0;
  /// Simulated market RTT applied to every cell, so latency objectives
  /// bind against realistic replayed latencies.
  int64_t simulated_latency_us = 0;
};

/// One evaluated grid cell.
struct CellOutcome {
  ShadowConfig config;
  ReplayResult replay;
  std::string fingerprint;     // canonical bill (twin-checked)
  bool twin_identical = true;  // both replays produced `fingerprint`
  /// Feasible = reproducible, reconciling, zero failures, zero budget
  /// rejections, and within the latency objective. Only feasible cells can
  /// be recommended — a config that silently drops queries is not
  /// "cheaper", it serves a different workload.
  bool feasible = false;
  std::vector<std::string> infeasible_reasons;
};

struct AdvisorReport {
  /// Feasible cells first, cheapest total price first (ties: fewer
  /// transactions, then name); infeasible cells after, same order.
  std::vector<CellOutcome> ranked;
  std::string recommended;  // name of ranked[0] when feasible; "" if none
  /// The seed cell — the recorded deployment's configuration — for the
  /// "would a different configuration have been cheaper" comparison.
  std::string seed_name;
  double seed_price = 0.0;
  double recommended_price = 0.0;
  /// 100 * (seed - recommended) / seed; 0 when the seed wins.
  double savings_vs_seed_pct = 0.0;
  int64_t records_replayed = 0;

  /// Machine-readable ranked report. Deterministic: no timestamps, no
  /// environment — two runs over the same journal emit identical bytes.
  std::string ToJson() const;
  /// EXPLAIN-style rendering: the grid as an annotated table plus the
  /// recommendation and why.
  std::string RenderText() const;
};

/// The default grid: seed (the recorded deployment: unbounded store, no
/// prefetch, no caps, single market) plus every combination of
/// {unbounded, bounded store} × {prefetch off, on} × {1, 2 markets} ×
/// {uncapped, tight per-tenant cap}. The tight cap is derived from the
/// recorded per-tenant spend so capped cells genuinely reject.
std::vector<ShadowConfig> DefaultGrid(
    const std::vector<obs::WorkloadRecord>& records);

/// The name DefaultGrid gives the seed cell.
inline constexpr char kSeedConfigName[] = "seed";

/// Enumerates, replays and ranks. `bundle` is the seeded shadow market the
/// journal was recorded against (rebuild it with the same workload
/// options); `records` come from obs::ReadJournal.
Result<AdvisorReport> Advise(const workload::Bundle& bundle,
                             const std::vector<obs::WorkloadRecord>& records,
                             const AdvisorOptions& options);

/// Serves the report (ToJson) at /advisor. The report is captured by
/// value; call before server->Start().
void RegisterAdvisorRoute(obs::HttpExpositionServer* server,
                          std::shared_ptr<const AdvisorReport> report);

}  // namespace payless::advisor

#endif  // PAYLESS_ADVISOR_DEPLOYMENT_ADVISOR_H_
