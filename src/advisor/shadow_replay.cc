#include "advisor/shadow_replay.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>

#include "obs/observability.h"

namespace payless::advisor {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The shadow client config for one tenant under one cell: the paper's
/// full system, forced strictly serial (single-call fan-out, no tracing,
/// no flight recorder, no durability) so two replays take byte-identical
/// paths through the market.
exec::PayLessConfig ShadowClientConfig(const ShadowConfig& cell,
                                       const std::string& tenant,
                                       obs::Observability* obs) {
  exec::PayLessConfig config = workload::PayLessFullConfig();
  config.tenant = tenant;
  config.observability = obs;
  config.max_parallel_calls = 1;
  config.enable_tracing = false;
  config.enable_flight_recorder = false;
  config.enable_savings_accounting = true;
  config.placement_capacity_bytes = cell.store_budget_bytes;
  return config;
}

}  // namespace

std::string BillFingerprint(const ReplayResult& result) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  for (const auto& [tenant, bill] : result.bills) {  // std::map: sorted
    os << tenant << "={txn=" << bill.transactions << ",price=" << bill.price;
    for (const auto& [dataset, transactions] : bill.by_dataset) {
      os << "," << dataset << "=" << transactions;
    }
    os << "}\n";
  }
  os << "total={txn=" << result.total_transactions
     << ",price=" << result.total_price << "}\n";
  return os.str();
}

ReplayResult ReplayJournal(const workload::Bundle& bundle,
                           const std::vector<obs::WorkloadRecord>& records,
                           const ShadowConfig& config) {
  ReplayResult result;
  result.config_name = config.name;

  // Journal seq order IS the virtual arrival order: appends happen in
  // completion order, so re-sort by the seq assigned at arrival capture.
  std::vector<const obs::WorkloadRecord*> ordered;
  ordered.reserve(records.size());
  for (const obs::WorkloadRecord& record : records) {
    ordered.push_back(&record);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const obs::WorkloadRecord* a, const obs::WorkloadRecord* b) {
              return a->seq < b->seq;
            });

  // Shadow world: private observability context, private federation
  // overlay (for multi-market cells), private per-tenant clients. The
  // bundle — catalog, hosted data, the single market — is only read.
  auto obs = std::make_unique<obs::Observability>();
  std::unique_ptr<federation::FederatedMarket> federation;
  if (config.federation_endpoints >= 2) {
    std::vector<workload::FederatedEndpointSpec> specs;
    for (size_t e = 0; e < config.federation_endpoints; ++e) {
      workload::FederatedEndpointSpec spec;
      spec.id = "shadow-m" + std::to_string(e);
      spec.simulated_latency_micros = config.simulated_latency_us;
      specs.push_back(std::move(spec));
    }
    federation = workload::MakeFederatedMarket(bundle, specs);
  }

  std::map<std::string, std::unique_ptr<exec::PayLess>> clients;
  const auto client_for =
      [&](const std::string& tenant) -> exec::PayLess* {
    auto it = clients.find(tenant);
    if (it != clients.end()) return it->second.get();
    if (config.tenant_hard_cap > 0) {
      obs::TenantBudget budget;
      budget.hard_cap_transactions = config.tenant_hard_cap;
      obs->governor.SetBudget(tenant, budget);
    }
    exec::PayLessConfig client_config =
        ShadowClientConfig(config, tenant, obs.get());
    std::unique_ptr<exec::PayLess> client;
    if (federation != nullptr) {
      client_config.federation = federation.get();
      client = workload::NewFederatedPayLessClient(bundle, federation.get(),
                                                   std::move(client_config));
    } else {
      client = workload::NewPayLessClient(bundle, std::move(client_config));
      client->connector()->SetSimulatedLatencyMicros(
          config.simulated_latency_us);
    }
    return clients.emplace(tenant, std::move(client)).first->second.get();
  };

  std::vector<int64_t> latencies;
  latencies.reserve(ordered.size());
  const auto absorb_single = [&](exec::PayLess* client,
                                 const obs::WorkloadRecord& record) {
    const auto start = std::chrono::steady_clock::now();
    Result<exec::QueryReport> report =
        client->QueryWithReport(record.sql, record.params);
    ++result.queries;
    if (!report.ok()) {
      if (report.status().code() == Status::Code::kBudgetExceeded) {
        ++result.rejected;
      } else {
        ++result.failed;
      }
      latencies.push_back(MicrosSince(start));
      return;
    }
    if (!report->error.ok()) ++result.failed;
    latencies.push_back(report->latency_us);
  };

  // Replay in virtual arrival order. With batch prefetch on, consecutive
  // same-tenant arrivals (up to the window) become one deferred batch —
  // the §7 multi-query optimization the recorded deployment did not run.
  size_t i = 0;
  while (i < ordered.size()) {
    exec::PayLess* client = client_for(ordered[i]->tenant);
    size_t window = 1;
    if (config.batch_prefetch) {
      while (i + window < ordered.size() && window < config.prefetch_window &&
             ordered[i + window]->tenant == ordered[i]->tenant) {
        ++window;
      }
    }
    if (window < 2) {
      absorb_single(client, *ordered[i]);
      ++i;
      continue;
    }
    std::vector<exec::BatchQuery> batch;
    batch.reserve(window);
    for (size_t k = 0; k < window; ++k) {
      batch.push_back(
          exec::BatchQuery{ordered[i + k]->sql, ordered[i + k]->params});
    }
    const auto start = std::chrono::steady_clock::now();
    Result<exec::BatchReport> batch_report = client->QueryBatch(batch);
    if (batch_report.ok()) {
      result.queries += static_cast<int64_t>(window);
      const int64_t per_query =
          MicrosSince(start) / static_cast<int64_t>(window);
      for (size_t k = 0; k < window; ++k) latencies.push_back(per_query);
    } else {
      // A mid-batch failure (e.g. a budget rejection inside the batch)
      // aborts QueryBatch without per-query outcomes; replay the window
      // individually instead. Queries the batch already ran re-execute
      // against a store that holds their data, so the path — and the bill
      // — stays deterministic.
      for (size_t k = 0; k < window; ++k) {
        absorb_single(client, *ordered[i + k]);
      }
    }
    i += window;
  }

  // The bill, straight from the shadow ledger.
  for (const auto& [tenant, client] : clients) {
    TenantBill bill;
    bill.transactions = obs->ledger.TenantTransactions(tenant);
    bill.price = obs->ledger.TenantPrice(tenant);
    for (const auto& [dataset, cell] : obs->ledger.TenantByDataset(tenant)) {
      bill.by_dataset[dataset] = cell.transactions;
    }
    result.bills[tenant] = std::move(bill);
  }
  result.total_transactions = obs->ledger.total_transactions();
  result.total_price = obs->ledger.total_price();
  result.savings_transactions = obs->savings.total_savings();

  // Reconciliation: every transaction the shadow ledger attributed must be
  // on exactly one shadow connector meter (per-endpoint meters when
  // federated) — ledger == meter, per cell, every replay.
  int64_t metered = 0;
  for (const auto& [tenant, client] : clients) {
    if (client->router() != nullptr) {
      metered += client->router()->TotalMeteredTransactions();
    } else {
      metered += client->meter().total_transactions();
    }
  }
  result.ledger_matches_meter = metered == result.total_transactions;

  if (!latencies.empty()) {
    int64_t sum = 0;
    for (const int64_t v : latencies) sum += v;
    result.mean_latency_us =
        static_cast<double>(sum) / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    const size_t rank =
        (latencies.size() * 99 + 99) / 100;  // ceil(0.99 * n), 1-based
    result.p99_latency_us = latencies[std::min(rank, latencies.size()) - 1];
  }
  return result;
}

}  // namespace payless::advisor
