// payless_advisor: the record → advise CLI.
//
//   payless_advisor --journal_dir=/var/payless/journal [--json=report.json]
//
// Loads the workload journal a production deployment recorded (see
// PayLessConfig::workload_journal), rebuilds the seeded shadow market the
// journal was recorded against, shadow-replays the recorded queries
// through every cell of the configuration grid, and prints the ranked
// recommendation. Exit status: 0 on success; 2 when --gate_beats_seed is
// set and the recommendation does not spend strictly less than the seed
// configuration; 1 on usage or replay errors.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "advisor/deployment_advisor.h"
#include "obs/workload_journal.h"
#include "workload/bundle.h"

namespace {

int64_t FlagOr(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double DoubleFlagOr(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string StringFlagOr(int argc, char** argv, const char* name,
                         const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace payless;

  const std::string journal_dir =
      StringFlagOr(argc, argv, "journal_dir", "");
  if (journal_dir.empty()) {
    std::cerr << "usage: payless_advisor --journal_dir=DIR [--json=PATH]\n"
              << "  [--scale=0.1] [--seed=42] [--call_latency_us=0]\n"
              << "  [--latency_mean_us=0] [--latency_p99_us=0]\n"
              << "  [--threads=0] [--gate_beats_seed]\n";
    return 1;
  }

  const obs::JournalReadResult journal = obs::ReadJournal(journal_dir);
  std::cerr << "journal: " << journal.records.size() << " records in "
            << journal.segments << " segments"
            << (journal.torn_tail ? " (torn tail dropped)" : "") << "\n";
  if (journal.records.empty()) {
    std::cerr << "error: no records under " << journal_dir << "\n";
    return 1;
  }

  // The shadow market: the same seeded generation the recorded deployment
  // served (data only — the recorded queries replace generated ones).
  workload::RealDataOptions data_options;
  data_options.scale = DoubleFlagOr(argc, argv, "scale", 0.1);
  data_options.seed =
      static_cast<uint64_t>(FlagOr(argc, argv, "seed", 42));
  const auto bundle =
      workload::MakeRealBundle(data_options, /*per_template=*/1,
                               /*query_seed=*/1);

  advisor::AdvisorOptions options;
  options.objective.max_mean_latency_us =
      FlagOr(argc, argv, "latency_mean_us", 0);
  options.objective.max_p99_latency_us =
      FlagOr(argc, argv, "latency_p99_us", 0);
  options.simulated_latency_us = FlagOr(argc, argv, "call_latency_us", 0);
  options.max_parallel_cells =
      static_cast<size_t>(FlagOr(argc, argv, "threads", 0));

  const Result<advisor::AdvisorReport> report =
      advisor::Advise(*bundle, journal.records, options);
  if (!report.ok()) {
    std::cerr << "error: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << report->RenderText();

  const std::string json_path = StringFlagOr(argc, argv, "json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << report->ToJson() << "\n";
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "report written to " << json_path << "\n";
  }

  if (BoolFlag(argc, argv, "gate_beats_seed")) {
    if (report->recommended.empty() ||
        report->recommended_price >= report->seed_price) {
      std::cerr << "GATE FAILED: recommendation does not beat the seed "
                   "configuration\n";
      return 2;
    }
  }
  return 0;
}
