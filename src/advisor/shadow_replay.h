// Deterministic shadow replay: re-drives a recorded workload journal
// through fresh in-process PayLess clients against a seeded shadow market.
// No production billing, no production store mutation — the replay builds
// its own observability context (CostLedger + SavingsLedger), its own
// per-tenant clients and, for federated cells, its own federation overlay,
// and tears everything down when it returns. What survives is the bill:
// per-tenant transactions, money and per-dataset breakdown under the
// configuration being tried.
//
// Determinism contract: replays issue the recorded queries strictly
// serially in journal seq order (the virtual arrival order) with
// single-call fan-out, so two replays of the same journal under the same
// ShadowConfig produce BYTE-IDENTICAL bills — `BillFingerprint` is the
// canonical byte string the advisor's twin check compares.
#ifndef PAYLESS_ADVISOR_SHADOW_REPLAY_H_
#define PAYLESS_ADVISOR_SHADOW_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/workload_journal.h"
#include "workload/bundle.h"

namespace payless::advisor {

/// One cell of the advisor's configuration grid — the knobs a deployment
/// operator can actually turn, applied to every shadow client.
struct ShadowConfig {
  std::string name;
  /// Semantic-store retained-slab budget (placement_capacity_bytes);
  /// 0 = unbounded.
  int64_t store_budget_bytes = 0;
  /// Group consecutive same-tenant queries into deferred batches of up to
  /// `prefetch_window` and run them through QueryBatch, so overlapping
  /// market footprints are merged and prefetched (§7).
  bool batch_prefetch = false;
  size_t prefetch_window = 8;
  /// Per-tenant hard budget cap in transactions; 0 = uncapped. Applied to
  /// every tenant seen in the journal.
  int64_t tenant_hard_cap = 0;
  /// 1 = the bundle's single market. >= 2 = a federation overlay with this
  /// many endpoints over the same data (deterministic menus: dataset d is
  /// discounted at endpoint d % N), so cross-market buy-site optimization
  /// is part of the trial.
  size_t federation_endpoints = 1;
  /// Simulated per-call market RTT inside the shadow, so replayed
  /// latencies are comparable against a latency objective.
  int64_t simulated_latency_us = 0;
};

/// One tenant's bill under one configuration.
struct TenantBill {
  int64_t transactions = 0;
  double price = 0.0;
  std::map<std::string, int64_t> by_dataset;
};

/// Everything one shadow replay yields.
struct ReplayResult {
  std::string config_name;
  std::map<std::string, TenantBill> bills;  // per tenant, from the ledger
  int64_t total_transactions = 0;
  double total_price = 0.0;
  int64_t queries = 0;      // records replayed
  int64_t rejected = 0;     // budget-rejected by the shadow governor
  int64_t failed = 0;       // any other per-query error
  double mean_latency_us = 0.0;
  int64_t p99_latency_us = 0;
  /// Savings the shadow's SavingsLedger attributed (net transactions saved
  /// vs the store-less counterfactual) — the per-config what-if accounting.
  int64_t savings_transactions = 0;
  /// The reconciliation invariant, checked per replay: the shadow ledger's
  /// billed transactions equal the sum of every shadow connector meter.
  bool ledger_matches_meter = false;
  /// Infrastructure failure of the replay itself (shadow setup, not a
  /// per-query error). When not ok, every other field is meaningless.
  Status error;
};

/// Canonical byte string of the per-tenant bills: tenants in sorted order,
/// each with transactions, price (fixed 6-decimal rendering) and the
/// sorted per-dataset breakdown. Twin replays must produce identical
/// strings, byte for byte.
std::string BillFingerprint(const ReplayResult& result);

/// Replays `records` (journal seq order) through fresh shadow clients of
/// `bundle` under `config`. Thread-safe against concurrent replays of
/// other cells over the same bundle: the bundle is only read.
ReplayResult ReplayJournal(const workload::Bundle& bundle,
                           const std::vector<obs::WorkloadRecord>& records,
                           const ShadowConfig& config);

}  // namespace payless::advisor

#endif  // PAYLESS_ADVISOR_SHADOW_REPLAY_H_
