// Cardinality estimation for PayLess's cost-based optimizer.
//
// Data markets publish only "basic statistics" — attribute domains and table
// cardinality (§2.1) — so the optimizer starts from the textbook uniform
// assumption (§4.3) and *learns*: every REST call's true result size is fed
// back (Fig. 3, step 5.4), progressively refining a multidimensional
// feedback histogram. The paper uses ISOMER [44]; we implement an
// STHoles/ISOMER-style structure — buckets split along query-feedback
// boundaries, counts reconciled to the observed cardinalities — with
// one-step proportional fitting in place of ISOMER's full maximum-entropy
// iterative scaling (see DESIGN.md, substitutions).
#ifndef PAYLESS_STATS_ESTIMATOR_H_
#define PAYLESS_STATS_ESTIMATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/binio.h"
#include "common/geometry.h"
#include "common/snapshot.h"

namespace payless::stats {

/// Introspection snapshot of one table's estimator — what EXPLAIN and the
/// stats-quality gauges report about statistics maturity.
struct EstimatorInfo {
  size_t buckets = 0;     // histogram buckets (1 for uniform estimators)
  size_t feedbacks = 0;   // feedback observations absorbed so far
  double total_count = 0; // current believed table cardinality
};

/// Row-count estimation over a table's constrainable-attribute space.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Expected number of rows whose constrainable attributes fall in
  /// `region`. Never negative.
  virtual double EstimateRows(const Box& region) const = 0;

  /// Records that `region` was observed to contain exactly `actual_rows`.
  virtual void Feedback(const Box& region, int64_t actual_rows) = 0;

  /// Structure snapshot for observability surfaces.
  virtual EstimatorInfo Info() const = 0;

  /// Deep copy — the registry's copy-on-write Feedback path clones the
  /// current estimator, mutates the clone, and republishes it so concurrent
  /// EstimateRows reads never see a half-applied feedback.
  virtual std::unique_ptr<Estimator> Clone() const = 0;

  /// Appends this estimator's full learned state (without a kind tag —
  /// SaveEstimator frames it) so a restart resumes learning exactly where
  /// the process died instead of falling back to the uniform cold start.
  virtual void SaveState(common::BinWriter& w) const = 0;
};

/// Kind-tagged estimator state: one byte identifying the concrete class,
/// then its SaveState bytes. LoadEstimator returns nullptr on any decode
/// failure (unknown tag, truncated state).
void SaveEstimator(const Estimator& estimator, std::string* out);
std::unique_ptr<Estimator> LoadEstimator(common::BinReader& r);

/// The cold-start estimator: published cardinality spread uniformly over the
/// domain (the paper's "basic textbook methods", §4.3).
class UniformEstimator : public Estimator {
 public:
  UniformEstimator(Box full_region, int64_t cardinality);

  double EstimateRows(const Box& region) const override;

  /// Only whole-table feedback is usable under uniformity: it recalibrates
  /// the total count. Sub-region feedback is ignored.
  void Feedback(const Box& region, int64_t actual_rows) override;

  EstimatorInfo Info() const override {
    return EstimatorInfo{1, num_feedbacks_, cardinality_};
  }

  std::unique_ptr<Estimator> Clone() const override {
    return std::make_unique<UniformEstimator>(*this);
  }

  void SaveState(common::BinWriter& w) const override;
  static std::unique_ptr<UniformEstimator> Load(common::BinReader& r);

 private:
  UniformEstimator() = default;  // Load fills every field

  Box full_region_;
  double cardinality_ = 0.0;
  size_t num_feedbacks_ = 0;
};

/// Feedback-refined multidimensional histogram (the ISOMER role).
///
/// Invariant: buckets are disjoint boxes covering exactly the full region;
/// each carries a non-negative expected row count, assumed uniform within
/// the bucket. Feedback splits every bucket straddling the fed-back region
/// along the region's faces, then rescales the inside buckets so their sum
/// matches the observation. Estimates for regions aligned with past
/// feedback are therefore exact; unaligned regions interpolate uniformly
/// within buckets.
class FeedbackHistogram : public Estimator {
 public:
  /// `max_buckets` bounds memory: once reached, feedback stops splitting
  /// and reconciles counts by proportional overlap instead.
  FeedbackHistogram(Box full_region, int64_t initial_cardinality,
                    size_t max_buckets = 4096);

  double EstimateRows(const Box& region) const override;
  void Feedback(const Box& region, int64_t actual_rows) override;

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_feedbacks() const { return num_feedbacks_; }
  double total_count() const;

  EstimatorInfo Info() const override {
    return EstimatorInfo{buckets_.size(), num_feedbacks_, total_count()};
  }

  std::unique_ptr<Estimator> Clone() const override {
    return std::make_unique<FeedbackHistogram>(*this);
  }

  void SaveState(common::BinWriter& w) const override;
  static std::unique_ptr<FeedbackHistogram> Load(common::BinReader& r);

 private:
  FeedbackHistogram() = default;  // Load fills every field

  struct Bucket {
    Box box;
    double count = 0.0;
  };

  /// Expected rows of `bucket` falling inside `region` under intra-bucket
  /// uniformity.
  static double OverlapCount(const Bucket& bucket, const Box& region);

  Box full_region_;
  size_t max_buckets_ = 0;
  std::vector<Bucket> buckets_;
  size_t num_feedbacks_ = 0;
};

/// Alternative updatable statistic (§3: "we will test other updatable
/// statistics in place of ISOMER"): one 1-D feedback histogram per
/// dimension combined under the attribute-value-independence assumption.
/// Cheaper than the multidimensional histogram (no bucket blowup across
/// dimensions) but blind to correlations; `bench_ablation_stats` compares
/// the two on the paper's workloads.
class IndependentDimEstimator : public Estimator {
 public:
  IndependentDimEstimator(Box full_region, int64_t initial_cardinality,
                          size_t max_buckets_per_dim = 256);

  double EstimateRows(const Box& region) const override;

  /// Joint feedback is deconvolved into per-dimension marginals: dimension
  /// d receives `actual / (estimated fraction of the other dimensions)`,
  /// clamped to the current total. Exact when the other dimensions span
  /// their full domains; a heuristic otherwise.
  void Feedback(const Box& region, int64_t actual_rows) override;

  double total_count() const { return total_; }

  /// Buckets are summed across the per-dimension histograms; feedbacks
  /// count joint observations (each fans out to every dimension).
  EstimatorInfo Info() const override;

  std::unique_ptr<Estimator> Clone() const override {
    return std::make_unique<IndependentDimEstimator>(*this);
  }

  void SaveState(common::BinWriter& w) const override;
  static std::unique_ptr<IndependentDimEstimator> Load(common::BinReader& r);

 private:
  IndependentDimEstimator() = default;  // Load fills every field

  Box full_region_;
  double total_ = 0.0;
  size_t num_feedbacks_ = 0;
  /// Per-dimension 1-D histograms over a normalized mass of `total_`.
  std::vector<FeedbackHistogram> dims_;
};

/// Which estimator the registry instantiates per table.
enum class StatsKind {
  kUniform,              // never learns (cold start forever)
  kFeedbackHistogram,    // multidimensional, the ISOMER role (default)
  kIndependentHistograms,  // per-dimension 1-D histograms + independence
};

/// Per-table estimator registry: the statistics block of Fig. 3. Tables are
/// seeded from catalog metadata (initial state == uniform assumption);
/// learning can be disabled to study the cold-start optimizer.
///
/// Thread-safe and lock-free on the read side: estimators live in a hash-
/// sharded cell map (common::ShardedCellMap) and each table's estimator is
/// an immutable published snapshot, so EstimateRows (the optimizer's hot
/// read) is two atomic loads plus the estimation itself. Feedback clones
/// the current estimator under a per-table writer mutex, applies the
/// observation to the clone, and republishes — writers to different tables
/// never contend. A monotonic version counter ticks on every Feedback so
/// the plan-template cache can invalidate plans whose cost estimates may
/// have shifted.
class StatsRegistry {
 public:
  explicit StatsRegistry(bool learning_enabled = true)
      : kind_(learning_enabled ? StatsKind::kFeedbackHistogram
                               : StatsKind::kUniform) {}
  explicit StatsRegistry(StatsKind kind) : kind_(kind) {}

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void RegisterTable(const catalog::TableDef& def);
  bool HasTable(const std::string& table) const;

  /// Estimate for an unknown table falls back to 0 (callers register every
  /// catalog table up front).
  double EstimateRows(const std::string& table, const Box& region) const;

  void Feedback(const std::string& table, const Box& region,
                int64_t actual_rows);

  size_t TotalFeedbacks() const;

  /// Introspection snapshot for `table` (zeroed when unknown).
  EstimatorInfo Info(const std::string& table) const;

  StatsKind kind() const { return kind_; }

  /// Names of every registered table, sorted (the durability snapshot
  /// iterates them).
  std::vector<std::string> TableNames() const;

  /// Serializes `table`'s current estimator (kind-tagged) into `out`.
  /// False when the table is unknown.
  bool SaveTable(const std::string& table, std::string* out) const;

  /// Replaces `table`'s estimator with the deserialized `blob` state (the
  /// recovery path — the table must already be registered, so a blob for a
  /// table dropped from the catalog is skipped). Bumps version(). False on
  /// unknown table or decode failure.
  bool RestoreTable(const std::string& table, const std::string& blob);

  /// Monotonic mutation counter (ticks on every Feedback).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  /// One table's estimator: the published immutable snapshot plus the
  /// writer mutex serializing Feedback on this table.
  struct EstimatorCell {
    std::mutex write_mutex;
    common::SnapshotCell<Estimator> current;
  };

  StatsKind kind_;
  common::ShardedCellMap<EstimatorCell> cells_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace payless::stats

#endif  // PAYLESS_STATS_ESTIMATOR_H_
