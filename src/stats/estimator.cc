#include "stats/estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

namespace payless::stats {

namespace {

/// Volume as a double; boxes here are clipped to real attribute domains so
/// saturation never triggers in practice, but stay safe anyway.
double Vol(const Box& box) { return static_cast<double>(box.Volume()); }

}  // namespace

UniformEstimator::UniformEstimator(Box full_region, int64_t cardinality)
    : full_region_(std::move(full_region)),
      cardinality_(static_cast<double>(cardinality)) {}

double UniformEstimator::EstimateRows(const Box& region) const {
  const Box clipped = full_region_.Intersect(region);
  if (clipped.empty()) return 0.0;
  const double total = Vol(full_region_);
  if (total <= 0.0) return cardinality_;
  return cardinality_ * (Vol(clipped) / total);
}

void UniformEstimator::Feedback(const Box& region, int64_t actual_rows) {
  ++num_feedbacks_;
  if (region == full_region_) {
    cardinality_ = static_cast<double>(actual_rows);
  }
}

FeedbackHistogram::FeedbackHistogram(Box full_region,
                                     int64_t initial_cardinality,
                                     size_t max_buckets)
    : full_region_(std::move(full_region)), max_buckets_(max_buckets) {
  buckets_.push_back(
      Bucket{full_region_, static_cast<double>(initial_cardinality)});
}

double FeedbackHistogram::OverlapCount(const Bucket& bucket,
                                       const Box& region) {
  const Box overlap = bucket.box.Intersect(region);
  if (overlap.empty()) return 0.0;
  const double bucket_volume = Vol(bucket.box);
  if (bucket_volume <= 0.0) return 0.0;
  return bucket.count * (Vol(overlap) / bucket_volume);
}

double FeedbackHistogram::EstimateRows(const Box& region) const {
  const Box clipped = full_region_.Intersect(region);
  if (clipped.empty()) return 0.0;
  double total = 0.0;
  for (const Bucket& bucket : buckets_) {
    total += OverlapCount(bucket, clipped);
  }
  return total;
}

void FeedbackHistogram::Feedback(const Box& region, int64_t actual_rows) {
  const Box target = full_region_.Intersect(region);
  if (target.empty()) return;
  ++num_feedbacks_;

  // Phase 1: split buckets that straddle the target so that afterwards every
  // bucket is either inside or outside it (skipped at capacity).
  if (buckets_.size() < max_buckets_) {
    std::vector<Bucket> next;
    next.reserve(buckets_.size() + 4);
    for (const Bucket& bucket : buckets_) {
      const Box inside = bucket.box.Intersect(target);
      if (inside.empty() || inside == bucket.box) {
        next.push_back(bucket);
        continue;
      }
      const double volume = Vol(bucket.box);
      // Distribute the bucket's count over the fragments by volume share
      // (uniformity within the bucket).
      Bucket in_piece{inside, bucket.count * (Vol(inside) / volume)};
      next.push_back(std::move(in_piece));
      for (Box& piece : SubtractBox(bucket.box, target)) {
        const double share = bucket.count * (Vol(piece) / volume);
        next.push_back(Bucket{std::move(piece), share});
      }
      if (next.size() >= max_buckets_ * 2) break;  // runaway guard
    }
    buckets_ = std::move(next);
  }

  // Phase 2: reconcile — scale the mass inside the target to the observed
  // count (one-step proportional fitting in place of ISOMER's iterative
  // max-entropy scaling). Buckets partially overlapping (possible only at
  // capacity) move only their inside share.
  double inside_mass = 0.0;
  for (const Bucket& bucket : buckets_) {
    inside_mass += OverlapCount(bucket, target);
  }
  const double actual = static_cast<double>(actual_rows);
  if (inside_mass <= 1e-9) {
    if (actual <= 0.0) return;
    // Nothing to scale: spread the observed rows over the inside volume.
    const double target_volume = Vol(target);
    for (Bucket& bucket : buckets_) {
      const Box overlap = bucket.box.Intersect(target);
      if (overlap.empty()) continue;
      bucket.count += actual * (Vol(overlap) / target_volume);
    }
    return;
  }
  const double scale = actual / inside_mass;
  for (Bucket& bucket : buckets_) {
    const double inside = OverlapCount(bucket, target);
    if (inside <= 0.0) continue;
    bucket.count += inside * (scale - 1.0);
    if (bucket.count < 0.0) bucket.count = 0.0;
  }
}

double FeedbackHistogram::total_count() const {
  double total = 0.0;
  for (const Bucket& bucket : buckets_) total += bucket.count;
  return total;
}

IndependentDimEstimator::IndependentDimEstimator(Box full_region,
                                                 int64_t initial_cardinality,
                                                 size_t max_buckets_per_dim)
    : full_region_(std::move(full_region)),
      total_(static_cast<double>(initial_cardinality)) {
  for (size_t d = 0; d < full_region_.num_dims(); ++d) {
    dims_.emplace_back(Box({full_region_.dim(d)}), initial_cardinality,
                       max_buckets_per_dim);
  }
}

double IndependentDimEstimator::EstimateRows(const Box& region) const {
  const Box clipped = full_region_.Intersect(region);
  if (clipped.empty()) return 0.0;
  if (dims_.empty()) return total_;  // zero-dimensional table space
  // Each per-dimension histogram carries the (unnormalized) marginal
  // distribution; only the probabilities P_d(extent) matter.
  double probability = 1.0;
  for (size_t d = 0; d < dims_.size(); ++d) {
    const double dim_total = dims_[d].total_count();
    if (dim_total <= 0.0) return 0.0;
    const double dim_mass = dims_[d].EstimateRows(Box({clipped.dim(d)}));
    probability *= std::clamp(dim_mass / dim_total, 0.0, 1.0);
  }
  return total_ * probability;
}

void IndependentDimEstimator::Feedback(const Box& region,
                                       int64_t actual_rows) {
  const Box target = full_region_.Intersect(region);
  if (target.empty()) return;
  ++num_feedbacks_;
  const double actual = static_cast<double>(actual_rows);

  // Whole-table observation recalibrates the total directly; any
  // observation puts a lower bound on it.
  if (target == full_region_) {
    total_ = actual;
    return;
  }
  if (actual > total_) total_ = actual;
  if (total_ <= 0.0) return;

  for (size_t d = 0; d < dims_.size(); ++d) {
    // A full-domain extent has marginal probability 1 by definition:
    // nothing to learn (and the outside-mass formula would degenerate).
    if (target.dim(d) == full_region_.dim(d)) continue;
    // Deconvolve the joint observation into a target marginal probability
    // for dimension d under the other dimensions' current marginals:
    //   actual = total * P_d(extent) * prod_{o != d} P_o(extent_o)
    double other_probability = 1.0;
    for (size_t o = 0; o < dims_.size(); ++o) {
      if (o == d) continue;
      const double o_total = dims_[o].total_count();
      if (o_total <= 0.0) continue;
      other_probability *= std::clamp(
          dims_[o].EstimateRows(Box({target.dim(o)})) / o_total, 1e-6, 1.0);
    }
    const double p =
        std::clamp(actual / (total_ * other_probability), 0.0, 0.999);
    // Choose the in-extent mass m so that after the 1-D histogram's
    // rescale, P_d(extent) = m / (m + outside) = p. The outside mass is
    // untouched by the 1-D feedback.
    const double dim_total = dims_[d].total_count();
    const double inside = dims_[d].EstimateRows(Box({target.dim(d)}));
    const double outside = std::max(dim_total - inside, 1e-9);
    const double new_inside = p * outside / (1.0 - p);
    dims_[d].Feedback(Box({target.dim(d)}),
                      static_cast<int64_t>(new_inside + 0.5));
  }
}

EstimatorInfo IndependentDimEstimator::Info() const {
  size_t buckets = 0;
  for (const FeedbackHistogram& dim : dims_) buckets += dim.num_buckets();
  return EstimatorInfo{std::max<size_t>(buckets, 1), num_feedbacks_, total_};
}

void StatsRegistry::RegisterTable(const catalog::TableDef& def) {
  const std::shared_ptr<EstimatorCell> cell = cells_.GetOrCreate(def.name);
  std::lock_guard<std::mutex> lock(cell->write_mutex);
  if (cell->current.Load() != nullptr) return;
  const Box full = def.FullRegion();
  std::shared_ptr<const Estimator> initial;
  switch (kind_) {
    case StatsKind::kUniform:
      initial = std::make_shared<UniformEstimator>(full, def.cardinality);
      break;
    case StatsKind::kFeedbackHistogram:
      initial = std::make_shared<FeedbackHistogram>(full, def.cardinality);
      break;
    case StatsKind::kIndependentHistograms:
      initial =
          std::make_shared<IndependentDimEstimator>(full, def.cardinality);
      break;
  }
  cell->current.Store(std::move(initial));
}

bool StatsRegistry::HasTable(const std::string& table) const {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  return cell != nullptr && cell->current.Load() != nullptr;
}

double StatsRegistry::EstimateRows(const std::string& table,
                                   const Box& region) const {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  if (cell == nullptr) return 0.0;
  const std::shared_ptr<const Estimator> est = cell->current.Load();
  if (est == nullptr) return 0.0;
  return est->EstimateRows(region);
}

void StatsRegistry::Feedback(const std::string& table, const Box& region,
                             int64_t actual_rows) {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  if (cell == nullptr) return;
  std::lock_guard<std::mutex> lock(cell->write_mutex);
  const std::shared_ptr<const Estimator> current = cell->current.Load();
  if (current == nullptr) return;
  std::unique_ptr<Estimator> next = current->Clone();
  next->Feedback(region, actual_rows);
  cell->current.Store(std::move(next));
  version_.fetch_add(1, std::memory_order_release);
}

size_t StatsRegistry::TotalFeedbacks() const {
  size_t total = 0;
  cells_.ForEach([&](const std::string&, const EstimatorCell& cell) {
    const std::shared_ptr<const Estimator> est = cell.current.Load();
    const auto* hist = dynamic_cast<const FeedbackHistogram*>(est.get());
    if (hist != nullptr) total += hist->num_feedbacks();
  });
  return total;
}

// ---- Serialization (durability snapshots).

namespace {
// Kind tags framing estimator state on disk; append-only.
constexpr uint8_t kUniformTag = 1;
constexpr uint8_t kFeedbackHistogramTag = 2;
constexpr uint8_t kIndependentDimTag = 3;
}  // namespace

void UniformEstimator::SaveState(common::BinWriter& w) const {
  common::WriteBox(w, full_region_);
  w.F64(cardinality_);
  w.U64(num_feedbacks_);
}

std::unique_ptr<UniformEstimator> UniformEstimator::Load(
    common::BinReader& r) {
  std::unique_ptr<UniformEstimator> est(new UniformEstimator());
  uint64_t feedbacks = 0;
  if (!common::ReadBox(r, &est->full_region_) || !r.F64(&est->cardinality_) ||
      !r.U64(&feedbacks)) {
    return nullptr;
  }
  est->num_feedbacks_ = static_cast<size_t>(feedbacks);
  return est;
}

void FeedbackHistogram::SaveState(common::BinWriter& w) const {
  common::WriteBox(w, full_region_);
  w.U64(max_buckets_);
  w.U64(num_feedbacks_);
  w.U32(static_cast<uint32_t>(buckets_.size()));
  for (const Bucket& bucket : buckets_) {
    common::WriteBox(w, bucket.box);
    w.F64(bucket.count);
  }
}

std::unique_ptr<FeedbackHistogram> FeedbackHistogram::Load(
    common::BinReader& r) {
  std::unique_ptr<FeedbackHistogram> est(new FeedbackHistogram());
  uint64_t max_buckets = 0, feedbacks = 0;
  uint32_t num_buckets = 0;
  if (!common::ReadBox(r, &est->full_region_) || !r.U64(&max_buckets) ||
      !r.U64(&feedbacks) || !r.U32(&num_buckets)) {
    return nullptr;
  }
  est->max_buckets_ = static_cast<size_t>(max_buckets);
  est->num_feedbacks_ = static_cast<size_t>(feedbacks);
  est->buckets_.reserve(num_buckets);
  for (uint32_t i = 0; i < num_buckets; ++i) {
    Bucket bucket;
    if (!common::ReadBox(r, &bucket.box) || !r.F64(&bucket.count)) {
      return nullptr;
    }
    est->buckets_.push_back(std::move(bucket));
  }
  return est;
}

void IndependentDimEstimator::SaveState(common::BinWriter& w) const {
  common::WriteBox(w, full_region_);
  w.F64(total_);
  w.U64(num_feedbacks_);
  w.U32(static_cast<uint32_t>(dims_.size()));
  for (const FeedbackHistogram& dim : dims_) dim.SaveState(w);
}

std::unique_ptr<IndependentDimEstimator> IndependentDimEstimator::Load(
    common::BinReader& r) {
  std::unique_ptr<IndependentDimEstimator> est(new IndependentDimEstimator());
  uint64_t feedbacks = 0;
  uint32_t num_dims = 0;
  if (!common::ReadBox(r, &est->full_region_) || !r.F64(&est->total_) ||
      !r.U64(&feedbacks) || !r.U32(&num_dims)) {
    return nullptr;
  }
  est->num_feedbacks_ = static_cast<size_t>(feedbacks);
  est->dims_.reserve(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    std::unique_ptr<FeedbackHistogram> dim = FeedbackHistogram::Load(r);
    if (dim == nullptr) return nullptr;
    est->dims_.push_back(std::move(*dim));
  }
  return est;
}

void SaveEstimator(const Estimator& estimator, std::string* out) {
  common::BinWriter w(out);
  if (dynamic_cast<const UniformEstimator*>(&estimator) != nullptr) {
    w.U8(kUniformTag);
  } else if (dynamic_cast<const FeedbackHistogram*>(&estimator) != nullptr) {
    w.U8(kFeedbackHistogramTag);
  } else {
    assert(dynamic_cast<const IndependentDimEstimator*>(&estimator) !=
           nullptr);
    w.U8(kIndependentDimTag);
  }
  estimator.SaveState(w);
}

std::unique_ptr<Estimator> LoadEstimator(common::BinReader& r) {
  uint8_t tag = 0;
  if (!r.U8(&tag)) return nullptr;
  switch (tag) {
    case kUniformTag:
      return UniformEstimator::Load(r);
    case kFeedbackHistogramTag:
      return FeedbackHistogram::Load(r);
    case kIndependentDimTag:
      return IndependentDimEstimator::Load(r);
    default:
      return nullptr;
  }
}

std::vector<std::string> StatsRegistry::TableNames() const {
  std::vector<std::string> names;
  cells_.ForEach([&](const std::string& name, const EstimatorCell&) {
    names.push_back(name);
  });
  std::sort(names.begin(), names.end());
  return names;
}

bool StatsRegistry::SaveTable(const std::string& table,
                              std::string* out) const {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  if (cell == nullptr) return false;
  const std::shared_ptr<const Estimator> est = cell->current.Load();
  if (est == nullptr) return false;
  SaveEstimator(*est, out);
  return true;
}

bool StatsRegistry::RestoreTable(const std::string& table,
                                 const std::string& blob) {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  if (cell == nullptr) return false;
  common::BinReader r(blob);
  std::unique_ptr<Estimator> restored = LoadEstimator(r);
  if (restored == nullptr) return false;
  std::lock_guard<std::mutex> lock(cell->write_mutex);
  cell->current.Store(std::move(restored));
  version_.fetch_add(1, std::memory_order_release);
  return true;
}

EstimatorInfo StatsRegistry::Info(const std::string& table) const {
  const std::shared_ptr<EstimatorCell> cell = cells_.Find(table);
  if (cell == nullptr) return EstimatorInfo{};
  const std::shared_ptr<const Estimator> est = cell->current.Load();
  if (est == nullptr) return EstimatorInfo{};
  return est->Info();
}

}  // namespace payless::stats
