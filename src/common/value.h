// The scalar value type flowing through PayLess: tuples in the local DBMS,
// records returned by data-market REST calls, literals in SQL predicates,
// and binding values for bind joins all carry `Value`s.
#ifndef PAYLESS_COMMON_VALUE_H_
#define PAYLESS_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace payless {

/// Column / value type. Dates are modelled as kInt64 in YYYYMMDD form, the
/// encoding Windows Azure Marketplace uses for range-bindable date attributes.
enum class ValueType {
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar. Nullable (SQL NULL) via the monostate
/// alternative; NULL compares less than every non-NULL value so sorted
/// operators have a total order.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 and double both convert; asserts otherwise.
  double AsNumeric() const;

  ValueType type() const;

  /// Three-way comparison with NULL < everything; numeric types compare by
  /// numeric value, so Value(1) == Value(1.0).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash compatible with operator== (numeric cross-type equality included).
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

using Row = std::vector<Value>;

/// Hash of a full row, for duplicate elimination and hash joins.
size_t HashRow(const Row& row);

std::string RowToString(const Row& row);

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHasher {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

}  // namespace payless

#endif  // PAYLESS_COMMON_VALUE_H_
