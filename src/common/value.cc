#include "common/value.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace payless {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsNumeric() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  assert(is_double());
  return AsDouble();
}

ValueType Value::type() const {
  assert(!is_null());
  if (is_int64()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  return ValueType::kString;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool self_numeric = is_int64() || is_double();
  const bool other_numeric = other.is_int64() || other.is_double();
  if (self_numeric && other_numeric) {
    // Exact path when both sides are integers; avoids double rounding for
    // large keys (e.g. 19-digit TPC-H synthetic keys would lose precision).
    if (is_int64() && other.is_int64()) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsNumeric();
    const double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (self_numeric != other_numeric) {
    // Heterogeneous comparison (number vs string): order by type tag so the
    // comparator stays total; queries never rely on this ordering.
    return self_numeric ? -1 : 1;
  }
  return AsString().compare(other.AsString());
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return std::hash<std::string>()(AsString());
  // Hash all numerics through double so Value(1) and Value(1.0) collide,
  // matching operator==; integral doubles convert exactly for |v| < 2^53.
  const double d = AsNumeric();
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::abs(d) < 9.0e18) {
    return std::hash<int64_t>()(static_cast<int64_t>(d));
  }
  return std::hash<double>()(d);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    std::ostringstream os;
    os << AsDouble();
    return os.str();
  }
  return "'" + AsString() + "'";
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace payless
