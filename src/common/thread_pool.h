// Fixed-size thread pool for overlapping REST calls.
//
// A production middleware overlaps the per-binding-value calls of a bind
// join instead of issuing them back-to-back; this pool is the substrate.
// Deliberately minimal — no work stealing, no task futures: the executor
// only needs bounded fan-out with deterministic result merging, which
// ParallelFor provides by indexing results, not by completion order.
#ifndef PAYLESS_COMMON_THREAD_POOL_H_
#define PAYLESS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace payless::common {

class ThreadPool {
 public:
  /// `num_threads == 0` falls back to the hardware concurrency (min 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks still run before the workers exit.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw and must not block on other
  /// tasks' completion (no nested ParallelFor over the same pool).
  void Submit(std::function<void()> task);

  size_t num_threads() const { return threads_.size(); }

  /// Process-wide shared pool sized to the hardware concurrency, created on
  /// first use and never destroyed (client threads may still be inside it
  /// at static-destruction time).
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs `fn(0) ... fn(n-1)` with at most `max_parallel` invocations in
/// flight: up to `max_parallel - 1` pool workers plus the calling thread,
/// which always participates — so this makes progress (and degrades to the
/// plain serial loop) even when the pool is saturated or absent. Returns
/// after ALL n invocations finished. `fn` must be thread-safe; results
/// should be written to index-addressed slots so the merge order is the
/// caller's, not the completion order.
void ParallelFor(ThreadPool* pool, size_t n, size_t max_parallel,
                 const std::function<void(size_t)>& fn);

}  // namespace payless::common

#endif  // PAYLESS_COMMON_THREAD_POOL_H_
