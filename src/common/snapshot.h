// Copy-on-write snapshot cells and a sharded cell map: the concurrency
// substrate for the read-dominated hot path (semantic store, stats
// registry, plan cache). Writers build a fresh immutable value and publish
// it with one release; readers pin the current snapshot with one
// acquire and then walk a structure that can never change underneath
// them. This is the epoch-validated optimistic-read protocol taken to its
// fixed point: the "epoch check" always succeeds because a published
// snapshot is immutable, so readers never retry on content and never
// block on writers building the next version.
#ifndef PAYLESS_COMMON_SNAPSHOT_H_
#define PAYLESS_COMMON_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

namespace payless::common {

/// One atomically publishable immutable value. Load() pins the current
/// snapshot (a reference-counted pointer copy under a per-cell lock bit
/// held for the duration of one refcount bump); Store() makes the new
/// value visible to all subsequent loads and destroys the displaced
/// snapshot outside the critical section. The pointed-to value must never
/// be mutated after Store() — copy, modify, re-publish instead.
///
/// Not std::atomic<std::shared_ptr> (libstdc++ _Sp_atomic): its load()
/// releases the embedded lock bit with memory_order_relaxed, so the plain
/// pointer-word read has no happens-before edge to the next store's plain
/// write — a formal data race (flagged by TSan) even though the lock bit
/// excludes in practice. This cell runs the same protocol with
/// acquire/release on BOTH paths, which makes it model-correct and keeps
/// the TSan preset meaningful for the code built on top.
template <typename T>
class SnapshotCell {
 public:
  SnapshotCell() = default;
  explicit SnapshotCell(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  std::shared_ptr<const T> Load() const {
    Lock();
    std::shared_ptr<const T> pinned = ptr_;
    Unlock();
    return pinned;
  }

  void Store(std::shared_ptr<const T> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
    // `next` now holds the displaced snapshot; its (possibly expensive)
    // destruction happens here, after the lock is released.
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // The critical section is a single refcount bump, so the holder is
      // gone in nanoseconds — unless it was preempted, which on few-core
      // hosts makes spinning the worst response. Yield instead.
      std::this_thread::yield();
    }
  }

  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const T> ptr_;
};

/// Stateless splitmix64 step — the per-call jitter generator. Feeding the
/// output back in as the next input yields a full-period 64-bit sequence;
/// distinct seeds give statistically independent streams, so every
/// in-flight market call can draw backoff jitter without sharing a mutex.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps `x` to a uniform double in [lo, hi).
inline double ToUnitRange(uint64_t x, double lo, double hi) {
  const double unit =
      static_cast<double>(x >> 11) * 0x1.0p-53;  // 53 mantissa bits
  return lo + (hi - lo) * unit;
}

inline constexpr std::size_t kDefaultShards = 16;

/// Shard index for a string key. Stable within a process run; used to
/// partition per-table state so writers to different tables never contend.
inline std::size_t ShardOf(std::string_view key, std::size_t num_shards) {
  return std::hash<std::string_view>{}(key) % num_shards;
}

/// A string-keyed map of long-lived cells, sharded by key hash. Lookups are
/// lock-free (one snapshot load of the shard's index plus a map find);
/// inserts copy-on-write the shard index under a per-shard writer mutex.
/// Cells themselves are shared_ptrs, so a reader that found a cell keeps it
/// alive even across a concurrent Clear().
template <typename Cell, std::size_t kShards = kDefaultShards>
class ShardedCellMap {
 public:
  using CellPtr = std::shared_ptr<Cell>;
  using Index = std::map<std::string, CellPtr>;

  ShardedCellMap() {
    for (Shard& s : shards_) s.index.Store(std::make_shared<const Index>());
  }

  /// Lock-free lookup; nullptr when absent.
  CellPtr Find(const std::string& key) const {
    const Shard& s = shards_[ShardOf(key, kShards)];
    const std::shared_ptr<const Index> idx = s.index.Load();
    const auto it = idx->find(key);
    return it == idx->end() ? nullptr : it->second;
  }

  /// Returns the existing cell or inserts a default-constructed one.
  CellPtr GetOrCreate(const std::string& key) {
    Shard& s = shards_[ShardOf(key, kShards)];
    {  // fast path: already present
      const std::shared_ptr<const Index> idx = s.index.Load();
      const auto it = idx->find(key);
      if (it != idx->end()) return it->second;
    }
    std::lock_guard<std::mutex> lock(s.write_mutex);
    const std::shared_ptr<const Index> idx = s.index.Load();
    const auto it = idx->find(key);
    if (it != idx->end()) return it->second;
    auto next = std::make_shared<Index>(*idx);
    CellPtr cell = std::make_shared<Cell>();
    (*next)[key] = cell;
    s.index.Store(std::move(next));
    return cell;
  }

  /// Visits every cell. Iteration is per-shard (keys sorted within a shard
  /// but not globally); callers needing global order must sort the results.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& s : shards_) {
      const std::shared_ptr<const Index> idx = s.index.Load();
      for (const auto& [key, cell] : *idx) fn(key, *cell);
    }
  }

  /// Drops every cell. Readers holding a cell keep it alive; subsequent
  /// lookups miss.
  void Clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.write_mutex);
      s.index.Store(std::make_shared<const Index>());
    }
  }

  std::size_t NumCells() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.index.Load()->size();
    return n;
  }

 private:
  struct Shard {
    std::mutex write_mutex;
    SnapshotCell<Index> index;
  };

  std::array<Shard, kShards> shards_;
};

}  // namespace payless::common

#endif  // PAYLESS_COMMON_SNAPSHOT_H_
