#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace payless::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Shared() {
  // Sized for latency-bound work, not CPU-bound: the pool's job is to
  // overlap REST round trips, so it must honor fan-outs well above the
  // core count even on small machines. Leaked deliberately (process-long).
  static ThreadPool* pool = new ThreadPool(
      std::max(16u, std::thread::hardware_concurrency()));
  return pool;
}

namespace {

/// Shared between the caller and its helpers; shared_ptr-owned so whichever
/// participant finishes last tears it down — the caller may return while a
/// slow helper is still inside its final unlock.
struct ParallelForState {
  const std::function<void(size_t)>* fn = nullptr;  // outlives all claims
  size_t n = 0;
  size_t helpers = 0;
  std::atomic<size_t> next{0};
  size_t done_helpers = 0;  // guarded by mutex
  std::mutex mutex;
  std::condition_variable cv;

  void Drain() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i);
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, size_t max_parallel,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers =
      pool == nullptr
          ? 0
          : std::min({max_parallel > 0 ? max_parallel - 1 : 0,
                      pool->num_threads(), n - 1});
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->fn = &fn;  // all uses finish before the caller's wait returns
  state->n = n;
  state->helpers = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] {
      state->Drain();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (++state->done_helpers == state->helpers) state->cv.notify_one();
    });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&state] { return state->done_helpers == state->helpers; });
}

}  // namespace payless::common
