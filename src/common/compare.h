// Scalar comparison operators shared by the SQL front end, the local
// relational operators, and REST-call condition evaluation.
#ifndef PAYLESS_COMMON_COMPARE_H_
#define PAYLESS_COMMON_COMPARE_H_

#include "common/value.h"

namespace payless {

enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

inline const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

/// SQL comparison semantics: any comparison with NULL is false.
inline bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace payless

#endif  // PAYLESS_COMMON_COMPARE_H_
